#include "super/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "core/spec_scheduler.hpp"
#include "fault/fault.hpp"
#include "io/source_gate.hpp"
#include "proc/process_table.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace mw {

void SuperCtx::effect(std::function<void()> act) {
  sup_->deliver_effect(pid_, std::move(act));
}

Supervisor::Supervisor(RestartPolicy policy, CheckpointSchedule schedule)
    : policy_(policy), schedule_(schedule) {}

void Supervisor::attach(ProcessTable& table) { table_ = &table; }

void Supervisor::attach_gate(SourceGate& gate, PredicateSet preds) {
  MW_CHECK(table_ != nullptr);  // the gate observes pids in the table
  gate_ = &gate;
  preds_ = std::move(preds);
}

void Supervisor::deliver_effect(Pid pid, std::function<void()> act) {
  const std::uint64_t seq = effect_seq_++;
  if (!ledger_.admit(seq)) return;  // replay of an already-emitted effect
  if (gate_ != nullptr) {
    gate_->request(pid, preds_, std::move(act));
  } else {
    act();
  }
}

SupervisedResult Supervisor::run(const TaskSpec& task) {
  return run_impl(task, nullptr);
}

SupervisedResult Supervisor::run_on(SpecScheduler& sched,
                                    const TaskSpec& task) {
  return run_impl(task, &sched);
}

SupervisedResult Supervisor::run_impl(const TaskSpec& task,
                                      SpecScheduler* sched) {
  MW_CHECK(task.step != nullptr);
  MW_CHECK(task.total_steps > 0);

  SupervisedResult res;
  ledger_ = EffectLedger{};
  effect_seq_ = 0;

  VTime clock = 0;

  // The image chain {full, Δ, Δ, ...} plus the COW snapshot of the space
  // as of the newest image — what the next delta diffs against.
  std::vector<CheckpointImage> chain;
  std::optional<AddressSpace> snapshot;
  std::size_t deltas_since_full = 0;
  std::size_t chain_step = 0;     // first step NOT covered by the chain
  std::size_t chain_pages = 0;    // pages serialized across the chain

  std::size_t restarts_used = 0;
  std::size_t consecutive_no_progress = 0;
  // Progress marker of the previous failure: (chain position, failing
  // step). A repeat of both means the restart replayed into the same fate.
  std::pair<std::size_t, std::size_t> prev_failure_marker{0, 0};
  bool had_failure = false;

  Pid prev_pid = kNoPid;

  while (true) {
    ++res.attempts;

    Pid pid = kNoPid;
    if (table_ != nullptr) {
      pid = table_->create(kNoPid, 0,
                           task.name + "#a" + std::to_string(res.attempts));
      table_->set_status(pid, ProcStatus::kRunning);
      if (prev_pid != kNoPid) {
        // Hand the dead attempt's deferred intents to the successor
        // *before* the terminal transition drops them.
        if (gate_ != nullptr) gate_->transfer(prev_pid, pid);
        table_->set_status(prev_pid, ProcStatus::kFailed);
      }
    }
    if (res.attempts > 1)
      MW_TRACE_EVENT(trace::EventKind::kSuperRestart, pid, prev_pid,
                     res.attempts, 0, clock);
    prev_pid = pid;
    MW_TRACE_SET_NOW(clock);

    AddressSpace space(task.page_size, task.num_pages);
    Registers regs;
    std::size_t start_step = 0;

    if (!chain.empty()) {
      RestoreResult r = restore_chain(chain);
      MW_CHECK(r.ok);  // we sealed these images ourselves
      space = std::move(r.space);
      regs = r.regs;
      start_step = static_cast<std::size_t>(regs.pc);
      effect_seq_ = regs.gp[0];
      snapshot = space.fork();
      const VDuration rc =
          schedule_.restore_base +
          schedule_.restore_per_page * static_cast<VDuration>(chain_pages);
      clock += rc;
      res.restore_overhead += rc;
    } else {
      effect_seq_ = 0;
    }

    const VTime attempt_start = clock;
    VDuration work_since_image = 0;
    std::size_t steps_this_attempt = start_step;

    enum class Failure { kNone, kCrash, kHang };
    Failure failure = Failure::kNone;

    // The attempt body: the whole step loop. Inline for run(); dispatched
    // as one pool task for run_on(), where an exception escaping a step
    // (e.g. an injected crash object) is contained as a crash failure
    // rather than unwinding through a pool worker.
    auto attempt_body = [&] {
      try {
        for (std::size_t s = start_step; s < task.total_steps; ++s) {
          const FaultAction fa = fault_point(task.fault_point, clock);
          if (fa.kind == FaultKind::kCrashException ||
              fa.kind == FaultKind::kFailAlternative ||
              fa.kind == FaultKind::kNodeCrash) {
            failure = Failure::kCrash;
            break;
          }
          if (fa.kind == FaultKind::kHang) {
            // The task stops making progress; the watchdog notices when the
            // attempt's deadline expires.
            const VTime detect_at =
                std::max(clock, attempt_start + policy_.attempt_deadline);
            res.detect_latency += detect_at - clock;
            clock = detect_at;
            failure = Failure::kHang;
            break;
          }
          if (fa.kind == FaultKind::kDelay) clock += fa.delay;

          SuperCtx ctx;
          ctx.sup_ = this;
          ctx.space_ = &space;
          ctx.step_ = s;
          ctx.attempt_ = res.attempts;
          ctx.pid_ = pid;
          task.step(ctx);
          clock += task.step_cost;
          work_since_image += task.step_cost;
          ++res.steps_executed;
          steps_this_attempt = s + 1;

          if (clock - attempt_start > policy_.attempt_deadline &&
              s + 1 < task.total_steps) {
            // Deadline overrun (e.g. injected delays): treat as a hang-class
            // failure — the watchdog kills and restarts the attempt.
            failure = Failure::kHang;
            break;
          }

          if (schedule_.enabled() && work_since_image >= schedule_.interval &&
              s + 1 < task.total_steps) {
            regs.pc = s + 1;
            regs.gp[0] = effect_seq_;  // the ledger's resume point
            CheckpointImage img;
            if (chain.empty() || !schedule_.incremental ||
                deltas_since_full >= schedule_.full_every) {
              img = take_checkpoint(space, regs);
              chain.clear();
              chain_pages = 0;
              deltas_since_full = 0;
              ++res.checkpoints_full;
              res.checkpoint_bytes_full += img.size_bytes();
            } else {
              img = take_delta_checkpoint(space, regs, *snapshot, chain.back());
              ++deltas_since_full;
              ++res.checkpoints_delta;
              res.checkpoint_bytes_delta += img.size_bytes();
            }
            const VDuration cc =
                schedule_.cost_base +
                schedule_.cost_per_page *
                    static_cast<VDuration>(img.resident_pages);
            chain_pages += img.resident_pages;
            MW_TRACE_EVENT(trace::EventKind::kSuperCheckpoint, pid, kNoPid,
                           img.resident_pages, chain.empty() ? 0 : 1, clock);
            chain.push_back(std::move(img));
            snapshot = space.fork();
            chain_step = s + 1;
            clock += cc;
            res.checkpoint_overhead += cc;
            work_since_image = 0;
          }
        }
      } catch (...) {
        failure = Failure::kCrash;
      }
    };

    if (sched == nullptr) {
      attempt_body();
    } else {
      // Submit through the shared inbox: the executing worker always
      // *steals* the attempt (sched.steal coverage). The supervisor thread
      // is the only writer of the captured state until the task reaches a
      // terminal state, which it waits for here.
      SchedTaskRef t = sched->submit(attempt_body, /*priority=*/1.0,
                                     /*group=*/0, pid, nullptr, kNoPid,
                                     res.attempts);
      for (;;) {
        const SchedTask::State st = t->state();
        if (st == SchedTask::State::kDone) break;
        if (st == SchedTask::State::kFaulted ||
            st == SchedTask::State::kRevoked) {
          // The worker died with the attempt in hand (or the pool is
          // shutting down): a crash failure, recovered like any other.
          failure = Failure::kCrash;
          break;
        }
        if (sched->should_help()) {
          if (!sched->run_one()) std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    }

    if (failure == Failure::kNone) {
      res.ok = true;
      res.final_pid = pid;
      res.regs = regs;
      res.state = std::move(space);
      if (table_ != nullptr) {
        // Syncing releases any deferred source intents — exactly once,
        // because replayed emissions never reached the gate.
        table_->set_status(pid, ProcStatus::kSynced);
      }
      break;
    }

    if (failure == Failure::kCrash) ++res.failures_crash;
    if (failure == Failure::kHang) ++res.failures_hang;
    res.work_lost +=
        static_cast<VDuration>(steps_this_attempt - chain_step) *
        task.step_cost;

    // Crash-loop detection: a failure at the same step with no new
    // checkpoint since the previous failure means restarting replays
    // into the same fate (a deterministic fault).
    const std::pair<std::size_t, std::size_t> marker{chain_step,
                                                     steps_this_attempt};
    if (had_failure && marker == prev_failure_marker) {
      ++consecutive_no_progress;
    } else {
      consecutive_no_progress = 1;
    }
    had_failure = true;
    prev_failure_marker = marker;

    if (restarts_used >= policy_.max_restarts ||
        consecutive_no_progress >= policy_.quarantine_after) {
      res.quarantined = true;
      MW_TRACE_EVENT(trace::EventKind::kSuperQuarantine, pid, kNoPid,
                     restarts_used, 0, clock);
      res.final_pid = pid;
      if (table_ != nullptr) {
        table_->set_label(
            pid, task.name + " [quarantined after " +
                     std::to_string(restarts_used) + " restarts]");
        table_->set_status(pid, ProcStatus::kFailed);
      }
      break;
    }

    ++restarts_used;
    ++res.restarts;
    const VDuration b = policy_.backoff_for(restarts_used - 1);
    clock += b;
    res.backoff_total += b;
  }

  res.elapsed = clock;
  res.effects_emitted = ledger_.recorded();
  res.effects_suppressed = ledger_.suppressed();
  return res;
}

}  // namespace mw
