// Restart and checkpoint policy knobs for supervised recovery (PR 3).
//
// The paper's speculation machinery treats failure as "the (n+1)-th
// alternative": a crashed or hung attempt is simply eliminated. The
// supervision layer adds the missing middle ground — restart the attempt
// from its last checkpoint image instead of discarding its work — with the
// safety rails any restart loop needs: a total restart budget, capped
// exponential backoff between attempts, quarantine when restarting stops
// producing progress (a deterministic crash repeats forever), and a
// per-attempt deadline watchdog so a hung attempt is detected at all.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/vtime.hpp"

namespace mw {

struct RestartPolicy {
  /// Total restarts a supervisor will fund for one task before quarantine.
  std::size_t max_restarts = 8;

  /// Consecutive failures with *no durable progress* between them (the
  /// newest checkpoint's step never advanced) before the task is declared
  /// deterministic-faulty and quarantined. Progress resets the count: a
  /// task that keeps moving may spend its whole restart budget.
  std::size_t quarantine_after = 3;

  /// Capped exponential backoff charged before restart k (0-based):
  /// min(cap, initial * factor^k).
  VDuration backoff_initial = vt_ms(5);
  double backoff_factor = 2.0;
  VDuration backoff_cap = vt_ms(80);

  /// Deadline watchdog: an attempt that has neither completed nor failed
  /// within this much virtual time of its start is declared hung and
  /// restarted. This is also the hang-fault *detection latency* — a hang
  /// costs the deadline's residue before recovery begins.
  VDuration attempt_deadline = vt_sec(10);

  VDuration backoff_for(std::size_t restart_index) const {
    double b = static_cast<double>(backoff_initial);
    for (std::size_t k = 0; k < restart_index; ++k) {
      b *= backoff_factor;
      if (b >= static_cast<double>(backoff_cap)) return backoff_cap;
    }
    const auto v = static_cast<VDuration>(b);
    return v < backoff_cap ? v : backoff_cap;
  }
};

/// When and how a supervised task takes checkpoints, and what each image
/// costs in virtual time (checkpoint creation is CPU work the paper calls
/// "the major cost" of migration — it cannot be free here either).
struct CheckpointSchedule {
  /// Accounted work between images. 0 disables checkpointing entirely:
  /// every restart is from scratch (the baseline the MTTR bench beats).
  VDuration interval = 0;

  /// Chain cap: after this many consecutive deltas the next image is full
  /// again, bounding restore to full_every+1 images.
  std::size_t full_every = 8;

  /// Incremental mode: images after the first serialize only the pages
  /// written since the previous image (PageMap::diff against the snapshot),
  /// so checkpoint cost tracks the write set, not the resident set.
  bool incremental = true;

  /// Virtual cost of taking an image: base + per serialized page.
  VDuration cost_base = vt_us(50);
  VDuration cost_per_page = vt_us(10);
  /// Virtual cost of bootstrapping from a chain: base + per restored page.
  VDuration restore_base = vt_us(50);
  VDuration restore_per_page = vt_us(5);

  bool enabled() const { return interval > 0; }
};

/// Exactly-once side-effect ledger for replayed computations. A restarted
/// attempt deterministically re-executes the steps since its checkpoint and
/// therefore re-emits the same effect sequence numbers; the ledger admits
/// each number once and suppresses the replays, so an effect is recorded
/// (deferred into a SourceGate, or executed) exactly once no matter how
/// many times the attempt crashes and replays through it.
class EffectLedger {
 public:
  /// True if effect #seq has not been seen: records it and advances the
  /// high-water mark. False for a replayed (already recorded) number.
  bool admit(std::uint64_t seq) {
    if (seq < next_) {
      ++suppressed_;
      return false;
    }
    next_ = seq + 1;
    ++recorded_;
    return true;
  }

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t suppressed() const { return suppressed_; }
  /// The next unseen sequence number (what a checkpoint must persist).
  std::uint64_t high_water() const { return next_; }

  /// Reinstates a checkpointed ledger. Numbers below `next` are treated as
  /// already recorded — the restored owner replays them without re-emitting
  /// the effect — so a snapshot only has to persist the three counters.
  void restore(std::uint64_t next, std::uint64_t recorded = 0,
               std::uint64_t suppressed = 0) {
    next_ = next;
    recorded_ = recorded;
    suppressed_ = suppressed;
  }

 private:
  std::uint64_t next_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace mw
