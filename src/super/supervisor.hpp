// Supervisor — checkpoint-restart recovery for speculative alternatives.
//
// The paper's answer to a failed alternative is elimination: "failure is
// the (n+1)-th alternative". A Supervisor adds *recovery*: it drives a
// deterministic task under the ambient FaultInjector, takes periodic
// checkpoint images of the task's address space (full or incremental — the
// persistent PageMap's diff makes a delta image O(write set)), and when
// the task crashes or hangs it restarts the attempt from the newest image
// chain instead of from scratch — under a RestartPolicy's budget, backoff,
// quarantine, and deadline watchdog.
//
// Process-table integration: every attempt runs under its own Pid; on
// restart the dead attempt's deferred source intents are transferred to
// the successor *before* the dead pid is marked Failed (otherwise the
// SourceGate would drop them), and the successor replays through an
// EffectLedger so each intent is emitted exactly once across any number
// of restarts. On success the final pid syncs (kSynced) and the gate
// releases its intents; on quarantine the pid fails and they are dropped.
// Every path leaves the RuntimeAuditor clean.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dist/checkpoint.hpp"
#include "pagestore/address_space.hpp"
#include "pred/predicate_set.hpp"
#include "super/restart_policy.hpp"
#include "util/ids.hpp"
#include "util/vtime.hpp"

namespace mw {

class ProcessTable;
class SourceGate;
class SpecScheduler;
class Supervisor;

/// What a supervised step sees: its address space, its position, and the
/// exactly-once effect channel.
class SuperCtx {
 public:
  AddressSpace& space() { return *space_; }
  /// The step index being executed (0-based).
  std::size_t step() const { return step_; }
  /// The attempt number (1 = first run, 2 = first restart, ...).
  std::size_t attempt() const { return attempt_; }
  /// True once the task has been restarted at least once.
  bool restarted() const { return attempt_ > 1; }

  /// Emits an observable side effect. Effects are numbered in emission
  /// order; a replayed step re-emits the same numbers and the supervisor's
  /// EffectLedger suppresses the duplicates, so each effect reaches the
  /// outside world (directly, or deferred through an attached SourceGate)
  /// exactly once regardless of restarts.
  void effect(std::function<void()> act);

 private:
  friend class Supervisor;
  Supervisor* sup_ = nullptr;
  AddressSpace* space_ = nullptr;
  std::size_t step_ = 0;
  std::size_t attempt_ = 0;
  Pid pid_ = kNoPid;
};

/// A deterministic supervised computation. `step` is called once per step
/// index and must be a pure function of (address space, step index) — the
/// replay-after-restart contract; effects must go through SuperCtx::effect.
struct TaskSpec {
  std::string name = "task";
  std::size_t page_size = 256;
  std::size_t num_pages = 64;
  std::size_t total_steps = 100;
  /// Virtual work accounted per executed step.
  VDuration step_cost = vt_us(100);
  std::function<void(SuperCtx&)> step;
  /// The fault point queried before every step (clock as `now`).
  std::string fault_point = "super.step";
};

struct SupervisedResult {
  bool ok = false;
  bool quarantined = false;

  std::size_t attempts = 0;  // 1 + restarts
  std::size_t restarts = 0;
  std::size_t failures_crash = 0;
  std::size_t failures_hang = 0;

  std::size_t checkpoints_full = 0;
  std::size_t checkpoints_delta = 0;
  std::uint64_t checkpoint_bytes_full = 0;
  std::uint64_t checkpoint_bytes_delta = 0;

  /// Total virtual time from start to completion/quarantine, including
  /// checkpoint overhead, backoff, restore, and replayed work.
  VDuration elapsed = 0;
  /// Work executed and then discarded by failures (the replay debt).
  VDuration work_lost = 0;
  VDuration backoff_total = 0;
  VDuration checkpoint_overhead = 0;
  VDuration restore_overhead = 0;
  /// Hang faults only: time between the hang and the watchdog noticing.
  VDuration detect_latency = 0;

  std::uint64_t effects_emitted = 0;    // admitted by the ledger
  std::uint64_t effects_suppressed = 0; // replayed duplicates swallowed
  std::size_t steps_executed = 0;       // including replays

  Pid final_pid = kNoPid;
  /// Final address space (meaningful when ok).
  AddressSpace state{1, 1};
  Registers regs;

  /// Mean time to repair: per-failure recovery cost — detection latency,
  /// backoff, chain restore, and replayed work.
  VDuration mttr() const {
    const std::size_t f = failures_crash + failures_hang;
    if (f == 0) return 0;
    return (detect_latency + backoff_total + restore_overhead + work_lost) /
           static_cast<VDuration>(f);
  }
};

class Supervisor {
 public:
  Supervisor(RestartPolicy policy, CheckpointSchedule schedule);

  /// Registers attempts as processes in `table` (one pid per attempt,
  /// labeled "<name>#aN"); required for attach_gate.
  void attach(ProcessTable& table);

  /// Routes ctx.effect() through `gate` under `preds`: speculative effects
  /// defer until the attempt's pid resolves. Must be the gate built over
  /// the attached table.
  void attach_gate(SourceGate& gate, PredicateSet preds);

  /// Runs the task to completion or quarantine under the ambient fault
  /// injector. Virtual time starts at 0 for each run() call.
  SupervisedResult run(const TaskSpec& task);

  /// Like run(), but each attempt executes as a task on `sched`'s
  /// work-stealing pool instead of inline. The attempt goes through the
  /// shared inbox, so a worker always *steals* it — which places it under
  /// the `sched.steal` fault point: a worker killed with the attempt in
  /// hand surfaces as a crash failure and is restarted from the newest
  /// checkpoint chain, with the effect ledger still exactly-once.
  SupervisedResult run_on(SpecScheduler& sched, const TaskSpec& task);

  const RestartPolicy& policy() const { return policy_; }
  const CheckpointSchedule& schedule() const { return schedule_; }

 private:
  friend class SuperCtx;
  void deliver_effect(Pid pid, std::function<void()> act);
  SupervisedResult run_impl(const TaskSpec& task, SpecScheduler* sched);

  RestartPolicy policy_;
  CheckpointSchedule schedule_;
  ProcessTable* table_ = nullptr;
  SourceGate* gate_ = nullptr;
  PredicateSet preds_;

  // Per-run state (run() is not reentrant).
  EffectLedger ledger_;
  std::uint64_t effect_seq_ = 0;
};

}  // namespace mw
