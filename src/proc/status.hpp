// Process status lifecycle and the tri-state completion oracle (§2.4.2).
#pragma once

namespace mw {

/// Status of a speculative process. Transitions:
///   Ready -> Running -> {Blocked <-> Running, Synced, Failed, Eliminated}
/// Synced, Failed and Eliminated are terminal.
enum class ProcStatus {
  kReady,       // spawned, not yet scheduled
  kRunning,     // executing
  kBlocked,     // waiting (message receive, source access, alt_wait)
  kSynced,      // won its alternative block: successfully synchronized
  kFailed,      // guard unsatisfied / aborted / timed out
  kEliminated,  // killed as a losing sibling or a doomed world copy
};

inline bool is_terminal(ProcStatus s) {
  return s == ProcStatus::kSynced || s == ProcStatus::kFailed ||
         s == ProcStatus::kEliminated;
}

/// The paper's complete(P): TRUE when P successfully synchronizes with its
/// parent; FALSE when P failed or was eliminated; otherwise indeterminate.
enum class Completion { kTrue, kFalse, kIndeterminate };

inline Completion completion_of(ProcStatus s) {
  switch (s) {
    case ProcStatus::kSynced:
      return Completion::kTrue;
    case ProcStatus::kFailed:
    case ProcStatus::kEliminated:
      return Completion::kFalse;
    default:
      return Completion::kIndeterminate;
  }
}

inline const char* to_string(ProcStatus s) {
  switch (s) {
    case ProcStatus::kReady:
      return "ready";
    case ProcStatus::kRunning:
      return "running";
    case ProcStatus::kBlocked:
      return "blocked";
    case ProcStatus::kSynced:
      return "synced";
    case ProcStatus::kFailed:
      return "failed";
    case ProcStatus::kEliminated:
      return "eliminated";
  }
  return "?";
}

}  // namespace mw
