// Virtual-time cost model for the speculation overheads the paper measures
// in §3.4. The calibrated presets translate the paper's published numbers
// into per-operation tick costs so the discrete-event backend reproduces
// the same overhead *ratios* the authors observed:
//
//   AT&T 3B2/310:    fork of a 320 KB address space ≈ 31 ms;
//                    COW page-copy service rate 326 2K-pages/s;
//   HP 9000/350:     fork ≈ 12 ms; 1034 4K-pages/s;
//   either machine:  eliminating 16 subprocesses ≈ 40 ms waiting for
//                    termination, ≈ 20 ms issued asynchronously.
#pragma once

#include <cstddef>

#include "util/vtime.hpp"

namespace mw {

struct CostModel {
  // Spawn: fixed cost plus per-resident-page table-copy cost, charged
  // serially to the parent for each alternative spawned.
  VDuration fork_base = 0;
  VDuration fork_per_page = 0;

  // Run time: cost of breaking COW sharing on first write to a page.
  VDuration cow_copy_per_page = 0;

  // Completion: alt_wait rendezvous plus absorbing the winner's changed
  // pages into the parent.
  VDuration commit_base = 0;
  VDuration commit_per_page = 0;

  // Sibling elimination, per sibling. Issue cost is always paid by the
  // parent; the wait cost is additionally paid only under synchronous
  // elimination (§2.2.1).
  VDuration kill_issue = 0;
  VDuration kill_wait = 0;

  std::size_t page_size = 4096;

  VDuration fork_cost(std::size_t resident_pages) const {
    return fork_base + fork_per_page * static_cast<VDuration>(resident_pages);
  }
  VDuration commit_cost(std::size_t changed_pages) const {
    return commit_base + commit_per_page * static_cast<VDuration>(changed_pages);
  }
  VDuration elimination_cost(std::size_t siblings, bool synchronous) const {
    const auto n = static_cast<VDuration>(siblings);
    return n * (synchronous ? kill_issue + kill_wait : kill_issue);
  }

  /// Calibrated to the AT&T 3B2/310 measurements (2 KiB pages).
  static CostModel calibrated_3b2();

  /// Calibrated to the HP 9000/350 measurements (4 KiB pages).
  static CostModel calibrated_hp();

  /// All-zero overheads: isolates algorithmic time in tests.
  static CostModel free();
};

}  // namespace mw
