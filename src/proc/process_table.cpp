#include "proc/process_table.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mw {

ProcessTable::ProcessTable() = default;

Pid ProcessTable::create(Pid parent, std::uint64_t alt_group,
                         std::string label) {
  std::lock_guard<std::mutex> lk(mu_);
  const Pid pid = next_pid_++;
  ProcessRecord rec;
  rec.pid = pid;
  rec.parent = parent;
  rec.alt_group = alt_group;
  rec.label = std::move(label);
  records_.emplace(pid, std::move(rec));
  if (parent != kNoPid) {
    auto it = records_.find(parent);
    if (it != records_.end()) it->second.children.push_back(pid);
  }
  return pid;
}

ProcessRecord ProcessTable::get(Pid pid) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = records_.find(pid);
  MW_CHECK(it != records_.end());
  return it->second;
}

bool ProcessTable::exists(Pid pid) const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.count(pid) > 0;
}

ProcStatus ProcessTable::status(Pid pid) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = records_.find(pid);
  MW_CHECK(it != records_.end());
  return it->second.status;
}

bool ProcessTable::set_status(Pid pid, ProcStatus next) {
  ProcStatus old;
  std::vector<StatusListener> listeners;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = records_.find(pid);
    MW_CHECK(it != records_.end());
    old = it->second.status;
    if (is_terminal(old)) return false;
    it->second.status = next;
    listeners = listeners_;  // snapshot; invoke outside the lock
  }
  for (auto& fn : listeners) fn(pid, old, next);
  return true;
}

Completion ProcessTable::complete(Pid pid) const {
  return completion_of(status(pid));
}

void ProcessTable::set_label(Pid pid, std::string label) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = records_.find(pid);
  MW_CHECK(it != records_.end());
  it->second.label = std::move(label);
}

void ProcessTable::subscribe(StatusListener fn) {
  std::lock_guard<std::mutex> lk(mu_);
  listeners_.push_back(std::move(fn));
}

std::size_t ProcessTable::process_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.size();
}

std::size_t ProcessTable::live_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& [pid, rec] : records_)
    if (!is_terminal(rec.status)) ++n;
  return n;
}

std::vector<ProcessRecord> ProcessTable::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ProcessRecord> out;
  out.reserve(records_.size());
  for (const auto& [pid, rec] : records_) out.push_back(rec);
  std::sort(out.begin(), out.end(),
            [](const ProcessRecord& a, const ProcessRecord& b) {
              return a.pid < b.pid;
            });
  return out;
}

}  // namespace mw
