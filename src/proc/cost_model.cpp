#include "proc/cost_model.hpp"

namespace mw {

CostModel CostModel::calibrated_3b2() {
  CostModel m;
  m.page_size = 2048;
  // 31 ms fork of a 320 KB (160-page) address space: ~190 us/page plus a
  // small fixed cost.
  m.fork_base = vt_us(500);
  m.fork_per_page = vt_us(190);
  // 326 2K-pages/second copy service rate -> ~3067 us per page copied.
  m.cow_copy_per_page = vt_us(3067);
  // Commit re-walks only changed pages; same copy engine.
  m.commit_base = vt_us(500);
  m.commit_per_page = vt_us(3067);
  // 16 children: 40 ms waited, 20 ms async -> 1.25 ms issue + 1.25 ms wait.
  m.kill_issue = vt_us(1250);
  m.kill_wait = vt_us(1250);
  return m;
}

CostModel CostModel::calibrated_hp() {
  CostModel m;
  m.page_size = 4096;
  // 12 ms fork of a 320 KB (80-page) address space: ~145 us/page.
  m.fork_base = vt_us(400);
  m.fork_per_page = vt_us(145);
  // 1034 4K-pages/second -> ~967 us per page copied.
  m.cow_copy_per_page = vt_us(967);
  m.commit_base = vt_us(400);
  m.commit_per_page = vt_us(967);
  // The HP is ~2.5x faster; scale the elimination costs accordingly.
  m.kill_issue = vt_us(500);
  m.kill_wait = vt_us(500);
  return m;
}

CostModel CostModel::free() { return CostModel{}; }

}  // namespace mw
