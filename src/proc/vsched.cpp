#include "proc/vsched.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace mw {

ScheduleOutcome list_schedule(std::size_t processors,
                              const std::vector<VirtualTask>& tasks) {
  MW_CHECK(processors > 0);
  ScheduleOutcome out;
  out.tasks.resize(tasks.size());

  // FCFS dispatch order: by ready time, ties by input order.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return tasks[a].ready_at < tasks[b].ready_at;
                   });

  // Processor free times. With identical processors only the multiset
  // matters; always dispatch onto the earliest-free one.
  std::vector<VTime> free_at(processors, 0);

  // First pass: the uncut schedule, as if nothing were eliminated. The
  // winner in the cut schedule is provably the same: eliminations free
  // processors only at the winner's finish time, so no task can start
  // earlier than that and overtake it.
  for (std::size_t idx : order) {
    const VirtualTask& t = tasks[idx];
    auto it = std::min_element(free_at.begin(), free_at.end());
    const VTime start = std::max(t.ready_at, *it);
    const VTime finish = start + t.duration;
    *it = finish;
    out.tasks[idx] =
        TaskSchedule{t.pid, /*ran=*/true, t.success, start, finish};
  }

  // Winner: first successful finisher (ties by input order — matching the
  // at-most-once CAS, where the earlier-spawned sibling wins the race).
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const TaskSchedule& s = out.tasks[i];
    if (!s.success) continue;
    if (s.finish < out.winner_finish) {
      out.winner_finish = s.finish;
      out.winner_index = i;
    }
  }

  // Cut: siblings that had not started when the winner synchronized are
  // eliminated in the ready queue and never run.
  if (out.winner_index.has_value()) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (i == *out.winner_index) continue;
      TaskSchedule& s = out.tasks[i];
      if (s.start >= out.winner_finish) {
        s.ran = false;
        s.success = false;
        s.start = s.finish = out.winner_finish;
      } else if (s.finish > out.winner_finish) {
        // Running when the winner synchronized: killed mid-flight.
        s.success = false;
        s.finish = out.winner_finish;
      }
    }
  }
  return out;
}

ScheduleOutcome ps_schedule(std::size_t processors,
                            const std::vector<VirtualTask>& tasks) {
  MW_CHECK(processors > 0);
  ScheduleOutcome out;
  out.tasks.resize(tasks.size());

  // Fluid simulation in double precision; finish times rounded to ticks.
  const std::size_t n = tasks.size();
  std::vector<double> remaining(n);
  std::vector<bool> done(n, false);
  std::vector<double> finish(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    remaining[i] = static_cast<double>(tasks[i].duration);

  double now = 0.0;
  std::size_t completed = 0;
  while (completed < n) {
    // Runnable set: arrived, not finished.
    std::size_t runnable = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (!done[i] && static_cast<double>(tasks[i].ready_at) <= now) ++runnable;

    if (runnable == 0) {
      // Jump to the next arrival.
      double next_arrival = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i)
        if (!done[i])
          next_arrival =
              std::min(next_arrival, static_cast<double>(tasks[i].ready_at));
      now = next_arrival;
      continue;
    }

    const double rate =
        std::min(1.0, static_cast<double>(processors) /
                          static_cast<double>(runnable));

    // Next event: a completion among runnables, or an arrival.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      const double ready = static_cast<double>(tasks[i].ready_at);
      if (ready <= now) {
        dt = std::min(dt, remaining[i] / rate);
      } else {
        dt = std::min(dt, ready - now);
      }
    }
    // Advance.
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i] || static_cast<double>(tasks[i].ready_at) > now) continue;
      remaining[i] -= rate * dt;
      if (remaining[i] <= 1e-9) {
        remaining[i] = 0.0;
        done[i] = true;
        finish[i] = now + dt;
        ++completed;
      }
    }
    now += dt;
  }

  for (std::size_t i = 0; i < n; ++i) {
    out.tasks[i] = TaskSchedule{
        tasks[i].pid, /*ran=*/true, tasks[i].success, tasks[i].ready_at,
        static_cast<VTime>(std::llround(finish[i]))};
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!tasks[i].success) continue;
    if (out.tasks[i].finish < out.winner_finish) {
      out.winner_finish = out.tasks[i].finish;
      out.winner_index = i;
    }
  }
  if (out.winner_index.has_value()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i == *out.winner_index) continue;
      TaskSchedule& s = out.tasks[i];
      if (s.start >= out.winner_finish) {
        s.ran = false;
        s.success = false;
        s.start = s.finish = out.winner_finish;
      } else if (s.finish > out.winner_finish) {
        s.success = false;
        s.finish = out.winner_finish;
      }
    }
  }
  return out;
}

}  // namespace mw
