// Deterministic virtual-time scheduler for alternative blocks.
//
// The paper evaluates on a 2-processor Ardent Titan with more alternatives
// than processors (Table I). To reproduce that regime deterministically —
// and on hosts with any core count — alternatives in the virtual backend
// execute as instrumented bodies that account work in ticks; this scheduler
// then lays the recorded tasks out on P virtual processors, FCFS
// non-preemptive (the behaviour of a run-to-completion OS run queue), and
// identifies the winning alternative: the first successful finisher.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/ids.hpp"
#include "util/vtime.hpp"

namespace mw {

struct VirtualTask {
  Pid pid = kNoPid;
  /// When the parent finished spawning this alternative (fork costs are
  /// charged serially to the parent, so later siblings arrive later).
  VTime ready_at = 0;
  /// Virtual work to run the body to its sync/abort point.
  VDuration duration = 0;
  /// Whether the body reaches alt_wait with its guard satisfied.
  bool success = false;
};

struct TaskSchedule {
  Pid pid = kNoPid;
  bool ran = false;          // started before the winner synchronized
  bool success = false;      // reached a successful sync (if it ran)
  VTime start = 0;
  VTime finish = 0;
};

struct ScheduleOutcome {
  std::vector<TaskSchedule> tasks;  // input order
  std::optional<std::size_t> winner_index;
  /// Virtual time at which the winner synchronized (kVTimeMax if none).
  VTime winner_finish = kVTimeMax;
};

/// Lays `tasks` out on `processors` identical virtual processors, FCFS by
/// ready time (ties broken by input order), non-preemptive. Tasks that
/// would only start after the winner synchronizes are marked as never run:
/// they are eliminated while still in the ready queue.
ScheduleOutcome list_schedule(std::size_t processors,
                              const std::vector<VirtualTask>& tasks);

/// Egalitarian processor sharing: every arrived task progresses at rate
/// min(1, P/R) where R is the number of runnable tasks — the fluid limit
/// of a round-robin timesharing scheduler, which is what the paper's
/// 2-processor Ardent Titan actually ran. This is the policy that
/// reproduces Table I's degradation when processes outnumber processors
/// (5 processes on 2 CPUs → everyone runs at 2/5 speed).
ScheduleOutcome ps_schedule(std::size_t processors,
                            const std::vector<VirtualTask>& tasks);

}  // namespace mw
