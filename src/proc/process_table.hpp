// ProcessTable: the registry of speculative processes — pid allocation,
// parent/child links, status lifecycle, and status-change notification.
//
// Predicate resolution is event-driven: the predicated message layer and
// the Multiple Worlds runtime subscribe here, and react when a process
// reaches a terminal status ("we can update the value of these elements as
// processes change status ... much less frequently than they make memory
// references", §2.3).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "proc/status.hpp"
#include "util/ids.hpp"

namespace mw {

struct ProcessRecord {
  Pid pid = kNoPid;
  Pid parent = kNoPid;
  ProcStatus status = ProcStatus::kReady;
  std::uint64_t alt_group = 0;  // alt_spawn group id, 0 = none
  std::string label;            // diagnostic only
  std::vector<Pid> children;
};

class ProcessTable {
 public:
  using StatusListener =
      std::function<void(Pid, ProcStatus /*old*/, ProcStatus /*new*/)>;

  ProcessTable();

  /// Creates a process; pids are never reused within one table.
  Pid create(Pid parent, std::uint64_t alt_group = 0, std::string label = {});

  /// Snapshot of the record (by value: the live record may change).
  ProcessRecord get(Pid pid) const;
  bool exists(Pid pid) const;

  ProcStatus status(Pid pid) const;

  /// Transitions `pid`; enforces that terminal states are never left.
  /// Returns false (no-op, no notification) if the process was already
  /// terminal — e.g. an elimination racing a self-initiated failure.
  bool set_status(Pid pid, ProcStatus next);

  /// The completion oracle complete(P) over live table state.
  Completion complete(Pid pid) const;

  /// Replaces a process's diagnostic label — how the supervision layer
  /// annotates a pid with its fate ("quarantined after N restarts").
  void set_label(Pid pid, std::string label);

  /// Registers a listener invoked (outside the table lock) after every
  /// successful status transition. Listeners cannot be removed — the
  /// subsystems that subscribe live as long as the table.
  void subscribe(StatusListener fn);

  std::size_t process_count() const;

  /// Number of processes currently in a non-terminal state.
  std::size_t live_count() const;

  /// Copy of every record, ordered by pid — the auditor's view.
  std::vector<ProcessRecord> snapshot() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<Pid, ProcessRecord> records_;
  Pid next_pid_ = 1;
  std::vector<StatusListener> listeners_;
};

}  // namespace mw
