// altc — the §2.2 language preprocessor: "a language preprocessor applied
// to a program with mutually exclusive alternatives would generate (in
// pseudo-C): switch (alt_spawn(n)) { case 0: ... }".
//
// This is that preprocessor for C++: it scans a source file for alt-block
// DSL regions and rewrites each into a run_alternatives call against this
// library. Everything outside the regions passes through untouched.
//
// DSL:
//
//   ALT_BLOCK(name) [timeout(<ticks-expr>)] [sync|async] {
//     alternative("label") [guard(<bool-expr-over w>)] {
//       ... C++ statements, `ctx` in scope ...
//     }
//     alternative("label2") { ... }
//   } ON_FAIL {
//     ... C++ statements run when the block fails ...
//   }
//
// generates (schematically):
//
//   {
//     mw::AltOutcome name = mw::run_alternatives(rt, world, {...}, opts);
//     if (name.failed) { ...ON_FAIL body... }
//   }
#pragma once

#include <string>
#include <vector>

namespace mw::altc {

struct TranslateResult {
  bool ok = false;
  std::string output;        // translated source (valid even on error: input)
  std::string error;         // first error message
  int blocks_translated = 0;
};

/// Translates every ALT_BLOCK region in `source`. `runtime_expr` and
/// `world_expr` name the mw::Runtime and mw::World in scope at each block.
TranslateResult translate(const std::string& source,
                          const std::string& runtime_expr = "rt",
                          const std::string& world_expr = "world");

}  // namespace mw::altc
