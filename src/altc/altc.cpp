#include "altc/altc.hpp"

#include <cctype>

namespace mw::altc {

namespace {

/// Cursor over the source with brace-aware scanning. This is a lexical
/// preprocessor: it understands C++ only as far as strings, comments and
/// brace nesting — the same contract as the C preprocessor the paper
/// assumes.
class Scanner {
 public:
  explicit Scanner(const std::string& src) : src_(src) {}

  bool at_end() const { return pos_ >= src_.size(); }
  std::size_t pos() const { return pos_; }
  void seek(std::size_t p) { pos_ = p; }

  /// Finds the next occurrence of `token` at the current level (outside
  /// strings/comments); npos if none.
  std::size_t find(const std::string& token) {
    for (std::size_t i = pos_; i + token.size() <= src_.size(); ++i) {
      i = skip_noncode(i);
      if (i + token.size() > src_.size()) return std::string::npos;
      if (src_.compare(i, token.size(), token) == 0) {
        // Token boundary: not part of a longer identifier.
        const bool left_ok =
            i == 0 || !(std::isalnum(static_cast<unsigned char>(src_[i - 1])) ||
                        src_[i - 1] == '_');
        const std::size_t after = i + token.size();
        const bool right_ok =
            after >= src_.size() ||
            !(std::isalnum(static_cast<unsigned char>(src_[after])) ||
              src_[after] == '_');
        if (left_ok && right_ok) return i;
      }
    }
    return std::string::npos;
  }

  void skip_ws() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_])))
      ++pos_;
  }

  bool accept(const std::string& tok) {
    const std::size_t saved = pos_;
    skip_ws();
    if (src_.compare(pos_, tok.size(), tok) == 0) {
      pos_ += tok.size();
      return true;
    }
    pos_ = saved;  // no match: leave the source (incl. whitespace) intact
    return false;
  }

  /// Reads an identifier.
  std::string ident() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_'))
      ++pos_;
    return src_.substr(start, pos_ - start);
  }

  /// Reads a "..." string literal; empty on failure.
  std::string string_lit() {
    skip_ws();
    if (pos_ >= src_.size() || src_[pos_] != '"') return {};
    std::size_t start = ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= src_.size()) return {};
    std::string out = src_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    return out;
  }

  /// Reads a balanced (...) group, returning the inside.
  bool paren_group(std::string* out) {
    skip_ws();
    if (pos_ >= src_.size() || src_[pos_] != '(') return false;
    return balanced('(', ')', out);
  }

  /// Reads a balanced {...} group, returning the inside.
  bool brace_group(std::string* out) {
    skip_ws();
    if (pos_ >= src_.size() || src_[pos_] != '{') return false;
    return balanced('{', '}', out);
  }

 private:
  /// Positions `i` past any comment/string starting there; returns the
  /// first code position >= i.
  std::size_t skip_noncode(std::size_t i) {
    for (;;) {
      if (i + 1 < src_.size() && src_[i] == '/' && src_[i + 1] == '/') {
        while (i < src_.size() && src_[i] != '\n') ++i;
      } else if (i + 1 < src_.size() && src_[i] == '/' && src_[i + 1] == '*') {
        i += 2;
        while (i + 1 < src_.size() &&
               !(src_[i] == '*' && src_[i + 1] == '/'))
          ++i;
        i = std::min(i + 2, src_.size());
      } else if (i < src_.size() && (src_[i] == '"' || src_[i] == '\'')) {
        const char q = src_[i++];
        while (i < src_.size() && src_[i] != q) {
          if (src_[i] == '\\') ++i;
          ++i;
        }
        if (i < src_.size()) ++i;
      } else {
        return i;
      }
    }
  }

  bool balanced(char open, char close, std::string* out) {
    std::size_t depth = 0;
    const std::size_t start = pos_;
    while (pos_ < src_.size()) {
      const std::size_t code = skip_noncode(pos_);
      if (code != pos_) {
        pos_ = code;
        continue;
      }
      if (src_[pos_] == open) ++depth;
      if (src_[pos_] == close) {
        --depth;
        if (depth == 0) {
          *out = src_.substr(start + 1, pos_ - start - 1);
          ++pos_;
          return true;
        }
      }
      ++pos_;
    }
    return false;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
};

struct AltDef {
  std::string label;
  std::string guard;  // empty = none
  std::string body;
};

std::string emit_block(const std::string& name, const std::string& timeout,
                       bool synchronous, const std::vector<AltDef>& alts,
                       const std::string& on_fail,
                       const std::string& runtime_expr,
                       const std::string& world_expr) {
  std::string out;
  out += "{\n  std::vector<mw::Alternative> name_alts__;\n";
  for (const AltDef& a : alts) {
    out += "  name_alts__.push_back(mw::Alternative{\"" + a.label + "\", ";
    if (a.guard.empty()) {
      out += "nullptr, ";
    } else {
      out += "[&](const mw::World& w) { return (" + a.guard + "); }, ";
    }
    out += "[&](mw::AltContext& ctx) {" + a.body + "}, nullptr});\n";
  }
  out += "  mw::AltOptions name_opts__;\n";
  if (!timeout.empty()) out += "  name_opts__.timeout = (" + timeout + ");\n";
  out += std::string("  name_opts__.elimination = mw::Elimination::") +
         (synchronous ? "kSynchronous" : "kAsynchronous") + ";\n";
  out += "  mw::AltOutcome " + name + " = mw::run_alternatives(" +
         runtime_expr + ", " + world_expr + ", name_alts__, name_opts__);\n";
  if (!on_fail.empty()) {
    out += "  if (" + name + ".failed) {" + on_fail + "}\n";
  }
  out += "}";
  // Uniquify the scratch identifiers per block name.
  std::string unique;
  for (std::size_t i = 0; i < out.size();) {
    if (out.compare(i, 6, "name_a") == 0 || out.compare(i, 6, "name_o") == 0) {
      unique += name + out.substr(i + 4, 5);  // name + "alts__"/"opts__"...
      i += 9;
    } else {
      unique += out[i++];
    }
  }
  return unique;
}

}  // namespace

TranslateResult translate(const std::string& source,
                          const std::string& runtime_expr,
                          const std::string& world_expr) {
  TranslateResult res;
  res.output = source;

  std::string out;
  Scanner sc(source);
  std::size_t copied = 0;
  for (;;) {
    sc.seek(copied);
    const std::size_t at = sc.find("ALT_BLOCK");
    if (at == std::string::npos) break;
    out += source.substr(copied, at - copied);
    sc.seek(at + std::string("ALT_BLOCK").size());

    std::string name;
    if (!sc.paren_group(&name)) {
      res.error = "ALT_BLOCK: expected (name)";
      return res;
    }
    std::string timeout;
    bool synchronous = false;
    for (;;) {
      if (sc.accept("timeout")) {
        if (!sc.paren_group(&timeout)) {
          res.error = "timeout: expected (expr)";
          return res;
        }
      } else if (sc.accept("sync")) {
        synchronous = true;
      } else if (sc.accept("async")) {
        synchronous = false;
      } else {
        break;
      }
    }
    std::string region;
    if (!sc.brace_group(&region)) {
      res.error = "ALT_BLOCK: expected { alternatives }";
      return res;
    }

    // Parse the alternatives inside the region.
    std::vector<AltDef> alts;
    Scanner inner(region);
    for (;;) {
      inner.skip_ws();
      if (inner.at_end()) break;
      if (!inner.accept("alternative")) {
        res.error = "expected `alternative` in block '" + name + "'";
        return res;
      }
      std::string label_group;
      if (!inner.paren_group(&label_group)) {
        res.error = "alternative: expected (\"label\")";
        return res;
      }
      Scanner lg(label_group);
      AltDef def;
      def.label = lg.string_lit();
      if (def.label.empty()) {
        res.error = "alternative: label must be a string literal";
        return res;
      }
      if (inner.accept("guard")) {
        if (!inner.paren_group(&def.guard)) {
          res.error = "guard: expected (expr)";
          return res;
        }
      }
      if (!inner.brace_group(&def.body)) {
        res.error = "alternative '" + def.label + "': expected { body }";
        return res;
      }
      alts.push_back(std::move(def));
    }
    if (alts.empty()) {
      res.error = "ALT_BLOCK '" + name + "' has no alternatives";
      return res;
    }

    std::string on_fail;
    if (sc.accept("ON_FAIL")) {
      if (!sc.brace_group(&on_fail)) {
        res.error = "ON_FAIL: expected { body }";
        return res;
      }
    }

    out += emit_block(name, timeout, synchronous, alts, on_fail,
                      runtime_expr, world_expr);
    ++res.blocks_translated;
    copied = sc.pos();
  }
  out += source.substr(copied);
  res.output = std::move(out);
  res.ok = true;
  return res;
}

}  // namespace mw::altc
