// Programs: Horn clauses ("Prolog ... uses Horn clauses to describe data
// and interrelationships", §4.2) plus a functor/arity clause index.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "prolog/term.hpp"

namespace mw::prolog {

struct Clause {
  TermPtr head;
  std::vector<TermPtr> body;  // empty = fact
};

class Program {
 public:
  /// Parses clauses from Prolog source text. Supports facts, rules,
  /// lists, integers, arithmetic (`is`, + - * // mod), and comparison
  /// operators. Aborts with a parse error message on malformed input.
  static Program parse(const std::string& source);

  void add(Clause c);

  const std::vector<Clause>& clauses() const { return clauses_; }

  /// Clause indices whose head functor/arity can possibly match `goal`.
  std::vector<std::size_t> candidates(const TermPtr& goal) const;

  const Clause& clause(std::size_t i) const { return clauses_[i]; }

 private:
  static std::string key_of(const TermPtr& head);

  std::vector<Clause> clauses_;
  std::map<std::string, std::vector<std::size_t>> index_;
};

/// Parses a query: a comma-separated conjunction of goals (no trailing
/// dot required).
std::vector<TermPtr> parse_query(const std::string& text);

/// Parses a single term (used by tests).
TermPtr parse_term(const std::string& text);

}  // namespace mw::prolog
