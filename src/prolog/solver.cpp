#include "prolog/solver.hpp"

#include <set>

#include "util/check.hpp"

namespace mw::prolog {

namespace {

void collect_vars(const TermPtr& t, std::set<std::string>* out) {
  switch (t->kind) {
    case Term::Kind::kVar:
      // Standard convention: variables starting with '_' are anonymous and
      // never reported in solutions.
      if (!t->name.empty() && t->name[0] != '_') out->insert(t->name);
      return;
    case Term::Kind::kStruct:
      for (const auto& a : t->args) collect_vars(a, out);
      return;
    default:
      return;
  }
}

}  // namespace

std::vector<std::string> query_variables(const std::vector<TermPtr>& goals) {
  std::set<std::string> vars;
  for (const auto& g : goals) collect_vars(g, &vars);
  return {vars.begin(), vars.end()};
}

bool is_builtin(const TermPtr& goal) {
  if (goal->kind == Term::Kind::kAtom)
    return goal->name == "true" || goal->name == "fail";
  if (goal->kind != Term::Kind::kStruct) return false;
  if (goal->args.size() == 1) return goal->name == "\\+";
  if (goal->args.size() == 3) return goal->name == "between";
  if (goal->args.size() != 2) return false;
  static const std::set<std::string> kOps{"=",  "\\=", "<",   ">",
                                          "=<", ">=",  "=:=", "=\\=",
                                          "is"};
  return kOps.count(goal->name) > 0;
}

std::optional<std::int64_t> eval_arith(const TermPtr& t,
                                       const Bindings& env) {
  TermPtr w = walk(t, env);
  switch (w->kind) {
    case Term::Kind::kInt:
      return w->value;
    case Term::Kind::kVar:
    case Term::Kind::kAtom:
      return std::nullopt;
    case Term::Kind::kStruct: {
      if (w->args.size() != 2) return std::nullopt;
      auto a = eval_arith(w->args[0], env);
      auto b = eval_arith(w->args[1], env);
      if (!a || !b) return std::nullopt;
      if (w->name == "+") return *a + *b;
      if (w->name == "-") return *a - *b;
      if (w->name == "*") return *a * *b;
      if (w->name == "//") return *b == 0 ? std::nullopt
                                          : std::optional<std::int64_t>(*a / *b);
      if (w->name == "mod")
        return *b == 0 ? std::nullopt : std::optional<std::int64_t>(
                                            ((*a % *b) + *b) % *b);
      return std::nullopt;
    }
  }
  return std::nullopt;
}

namespace {

/// DFS state shared across the recursion.
struct SolveSession {
  const Program& program;
  const SolveConfig& cfg;
  Solver& solver;
  SolveResult result;
  std::vector<std::string> query_vars;
  Bindings env;
  Trail trail;
  std::uint64_t rename_counter = 0;
  bool first_reduction = true;

  bool budget_ok() {
    if (cfg.max_inferences != 0 && result.inferences >= cfg.max_inferences) {
      result.budget_exhausted = true;
      return false;
    }
    return true;
  }

  void charge() {
    ++result.inferences;
    if (solver.on_inference) solver.on_inference();
  }

  /// Returns true to stop the whole search (enough solutions or budget).
  bool solve_goals(std::vector<TermPtr> goals) {
    if (goals.empty()) {
      Solution sol;
      Bindings raw;
      for (const auto& v : query_vars) {
        TermPtr value = resolve(mk_var(v), env);
        sol[v] = to_string(value);
        raw[v] = std::move(value);
      }
      result.solutions.push_back(std::move(sol));
      result.raw_solutions.push_back(std::move(raw));
      return result.solutions.size() >= cfg.max_solutions;
    }
    if (!budget_ok()) return true;

    TermPtr goal = walk(goals.front(), env);
    std::vector<TermPtr> rest(goals.begin() + 1, goals.end());

    if (is_builtin(goal)) {
      charge();
      return solve_builtin(goal, std::move(rest));
    }

    std::vector<std::size_t> cands = program.candidates(goal);
    // An OR-parallel alternative commits to one clause at its first
    // choice point.
    if (first_reduction) {
      first_reduction = false;
      if (auto forced = take_first_choice()) {
        cands.clear();
        cands.push_back(*forced);
      }
    }

    for (std::size_t idx : cands) {
      if (!budget_ok()) return true;
      charge();
      const Clause& c = program.clause(idx);
      const std::uint64_t suffix = ++rename_counter;
      TermPtr head = rename_vars(c.head, suffix);
      const std::size_t mark = trail.size();
      if (!unify(goal, head, env, trail)) continue;
      std::vector<TermPtr> next;
      next.reserve(c.body.size() + rest.size());
      for (const auto& b : c.body) next.push_back(rename_vars(b, suffix));
      next.insert(next.end(), rest.begin(), rest.end());
      if (solve_goals(std::move(next))) return true;
      undo_to(env, trail, mark);
    }
    return false;
  }

  std::optional<std::size_t> take_first_choice() {
    return solver.take_first_choice();
  }

  bool solve_builtin(const TermPtr& goal, std::vector<TermPtr> rest) {
    if (goal->kind == Term::Kind::kAtom) {
      if (goal->name == "true") return solve_goals(std::move(rest));
      return false;  // fail
    }

    if (goal->name == "\\+" && goal->args.size() == 1) {
      // Negation as failure: succeed iff the sub-goal has no solution
      // under the current bindings. The sub-search leaves env untouched.
      SolveConfig sub_cfg;
      sub_cfg.max_solutions = 1;
      if (cfg.max_inferences != 0) {
        sub_cfg.max_inferences =
            cfg.max_inferences > result.inferences
                ? cfg.max_inferences - result.inferences
                : 1;
      }
      Solver sub_solver(program);
      SolveSession sub{program, sub_cfg, sub_solver, {}, {}, env, {}};
      sub.rename_counter = rename_counter + 100000;
      const bool found = sub.solve_goals({goal->args[0]});
      result.inferences += sub.result.inferences;
      if (sub.result.budget_exhausted) {
        result.budget_exhausted = true;
        return true;  // stop the whole search
      }
      if (found && !sub.result.solutions.empty()) return false;
      return solve_goals(std::move(rest));
    }

    if (goal->name == "between" && goal->args.size() == 3) {
      // between(Lo, Hi, X): enumerate integers Lo..Hi; Lo/Hi must be
      // evaluable, X may be bound (membership test) or free (generator).
      auto lo = eval_arith(goal->args[0], env);
      auto hi = eval_arith(goal->args[1], env);
      if (!lo || !hi) return false;
      for (std::int64_t v = *lo; v <= *hi; ++v) {
        if (!budget_ok()) return true;
        charge();
        const std::size_t mark = trail.size();
        if (unify(goal->args[2], mk_int(v), env, trail)) {
          if (solve_goals(rest)) return true;
        }
        undo_to(env, trail, mark);
      }
      return false;
    }

    const TermPtr& lhs = goal->args[0];
    const TermPtr& rhs = goal->args[1];

    if (goal->name == "=") {
      const std::size_t mark = trail.size();
      if (!unify(lhs, rhs, env, trail)) return false;
      if (solve_goals(std::move(rest))) return true;
      undo_to(env, trail, mark);
      return false;
    }
    if (goal->name == "\\=") {
      // Negation of unifiability, evaluated against the current bindings.
      const std::size_t mark = trail.size();
      Bindings probe = env;
      Trail probe_trail;
      const bool unifies = unify(lhs, rhs, probe, probe_trail);
      undo_to(env, trail, mark);
      if (unifies) return false;
      return solve_goals(std::move(rest));
    }
    if (goal->name == "is") {
      auto v = eval_arith(rhs, env);
      if (!v) return false;
      const std::size_t mark = trail.size();
      if (!unify(lhs, mk_int(*v), env, trail)) return false;
      if (solve_goals(std::move(rest))) return true;
      undo_to(env, trail, mark);
      return false;
    }
    // Arithmetic comparisons: both sides must evaluate.
    auto a = eval_arith(lhs, env);
    auto b = eval_arith(rhs, env);
    if (!a || !b) return false;
    bool ok = false;
    if (goal->name == "<") ok = *a < *b;
    else if (goal->name == ">") ok = *a > *b;
    else if (goal->name == "=<") ok = *a <= *b;
    else if (goal->name == ">=") ok = *a >= *b;
    else if (goal->name == "=:=") ok = *a == *b;
    else if (goal->name == "=\\=") ok = *a != *b;
    if (!ok) return false;
    return solve_goals(std::move(rest));
  }
};

}  // namespace

SolveResult Solver::solve(const std::vector<TermPtr>& goals,
                          const SolveConfig& cfg) {
  SolveSession session{*program_, cfg, *this, {}, query_variables(goals),
                       {}, {}};
  session.solve_goals(goals);
  session.result.success = !session.result.solutions.empty();
  return session.result;
}

SolveResult Solver::solve(const std::string& query, const SolveConfig& cfg) {
  return solve(parse_query(query), cfg);
}

}  // namespace mw::prolog
