// Tokenizer and recursive-descent parser for the mini-Prolog syntax.
//
// Supported: facts `f(a).`, rules `h :- g1, g2.`, lists `[a,b|T]`,
// integers, variables, `%` comments, and infix expressions with standard
// priorities: comparison/is (700, non-assoc) > additive (500, left) >
// multiplicative (400, left).
#include <cctype>

#include "prolog/program.hpp"
#include "util/check.hpp"

namespace mw::prolog {

namespace {

struct Token {
  enum class Kind { kAtom, kVar, kInt, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  std::int64_t value = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& peek() const { return tok_; }

  Token take() {
    Token t = tok_;
    advance();
    return t;
  }

  bool at_punct(const std::string& p) const {
    return tok_.kind == Token::Kind::kPunct && tok_.text == p;
  }

  void expect_punct(const std::string& p) {
    if (!at_punct(p)) {
      std::fprintf(stderr, "prolog parse error: expected '%s' got '%s'\n",
                   p.c_str(), tok_.text.c_str());
      std::abort();
    }
    advance();
  }

 private:
  void advance() {
    skip_space();
    tok_ = Token{};
    if (pos_ >= src_.size()) {
      tok_.kind = Token::Kind::kEnd;
      return;
    }
    const char c = src_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_])))
        ++pos_;
      tok_.kind = Token::Kind::kInt;
      tok_.text = src_.substr(start, pos_ - start);
      tok_.value = std::stoll(tok_.text);
      return;
    }
    if (std::islower(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_'))
        ++pos_;
      tok_.kind = Token::Kind::kAtom;
      tok_.text = src_.substr(start, pos_ - start);
      return;
    }
    if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_'))
        ++pos_;
      tok_.kind = Token::Kind::kVar;
      tok_.text = src_.substr(start, pos_ - start);
      return;
    }
    // Multi-character punctuation, longest match first.
    static const char* kPuncts[] = {":-", "?-", "=..", "=:=", "=\\=", "\\=",
                                    "\\+", "=<", ">=", "//", "=", "<",
                                    ">",  "+",  "-",  "*",  "(",  ")",
                                    ",",  ".",  "[",  "]",  "|"};
    for (const char* p : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (src_.compare(pos_, len, p) == 0) {
        tok_.kind = Token::Kind::kPunct;
        tok_.text = p;
        pos_ += len;
        return;
      }
    }
    std::fprintf(stderr, "prolog lex error at '%c'\n", c);
    std::abort();
  }

  void skip_space() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_])))
        ++pos_;
      if (pos_ < src_.size() && src_[pos_] == '%') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  Token tok_;
};

class Parser {
 public:
  explicit Parser(const std::string& src) : lex_(src) {}

  bool at_end() const { return lex_.peek().kind == Token::Kind::kEnd; }

  Clause parse_clause() {
    Clause c;
    c.head = parse_expr(699);  // heads don't take comparison operators
    if (lex_.at_punct(":-")) {
      lex_.take();
      c.body = parse_conjunction();
    }
    lex_.expect_punct(".");
    return c;
  }

  std::vector<TermPtr> parse_conjunction() {
    std::vector<TermPtr> goals;
    goals.push_back(parse_expr(700));
    while (lex_.at_punct(",")) {
      lex_.take();
      goals.push_back(parse_expr(700));
    }
    return goals;
  }

  TermPtr parse_expr(int max_prec) {
    // Prefix negation-as-failure: \+ Goal (priority above comparisons).
    if (max_prec >= 700 && lex_.at_punct("\\+")) {
      lex_.take();
      return mk_struct("\\+", {parse_expr(700)});
    }
    TermPtr left = parse_additive();
    if (max_prec >= 700) {
      // Non-associative comparison tier.
      static const char* kCmp[] = {"=", "\\=", "<", ">", "=<", ">=",
                                   "=:=", "=\\="};
      for (const char* op : kCmp) {
        if (lex_.at_punct(op)) {
          lex_.take();
          TermPtr right = parse_additive();
          return mk_struct(op, {left, right});
        }
      }
      if (lex_.peek().kind == Token::Kind::kAtom && lex_.peek().text == "is") {
        lex_.take();
        TermPtr right = parse_additive();
        return mk_struct("is", {left, right});
      }
    }
    return left;
  }

 private:
  TermPtr parse_additive() {
    TermPtr left = parse_multiplicative();
    for (;;) {
      if (lex_.at_punct("+") || lex_.at_punct("-")) {
        const std::string op = lex_.take().text;
        TermPtr right = parse_multiplicative();
        left = mk_struct(op, {left, right});
      } else {
        return left;
      }
    }
  }

  TermPtr parse_multiplicative() {
    TermPtr left = parse_primary();
    for (;;) {
      if (lex_.at_punct("*") || lex_.at_punct("//")) {
        const std::string op = lex_.take().text;
        TermPtr right = parse_primary();
        left = mk_struct(op, {left, right});
      } else if (lex_.peek().kind == Token::Kind::kAtom &&
                 lex_.peek().text == "mod") {
        lex_.take();
        TermPtr right = parse_primary();
        left = mk_struct("mod", {left, right});
      } else {
        return left;
      }
    }
  }

  TermPtr parse_primary() {
    const Token& t = lex_.peek();
    switch (t.kind) {
      case Token::Kind::kInt: {
        Token tok = lex_.take();
        return mk_int(tok.value);
      }
      case Token::Kind::kVar: {
        Token tok = lex_.take();
        // Every textual `_` is a distinct anonymous variable.
        if (tok.text == "_")
          return mk_var("_G" + std::to_string(++anon_counter_));
        return mk_var(tok.text);
      }
      case Token::Kind::kAtom: {
        Token tok = lex_.take();
        if (lex_.at_punct("(")) {
          lex_.take();
          std::vector<TermPtr> args;
          args.push_back(parse_expr(700));
          while (lex_.at_punct(",")) {
            lex_.take();
            args.push_back(parse_expr(700));
          }
          lex_.expect_punct(")");
          return mk_struct(tok.text, std::move(args));
        }
        return mk_atom(tok.text);
      }
      case Token::Kind::kPunct: {
        if (t.text == "(") {
          lex_.take();
          TermPtr inner = parse_expr(700);
          lex_.expect_punct(")");
          return inner;
        }
        if (t.text == "[") return parse_list();
        if (t.text == "-") {
          // Unary minus on an integer literal.
          lex_.take();
          const Token num = lex_.take();
          MW_CHECK(num.kind == Token::Kind::kInt);
          return mk_int(-num.value);
        }
        break;
      }
      case Token::Kind::kEnd:
        break;
    }
    std::fprintf(stderr, "prolog parse error near '%s'\n", t.text.c_str());
    std::abort();
  }

  std::uint64_t anon_counter_ = 0;

  TermPtr parse_list() {
    lex_.expect_punct("[");
    if (lex_.at_punct("]")) {
      lex_.take();
      return mk_atom(kNil);
    }
    std::vector<TermPtr> items;
    items.push_back(parse_expr(700));
    while (lex_.at_punct(",")) {
      lex_.take();
      items.push_back(parse_expr(700));
    }
    TermPtr tail = nullptr;
    if (lex_.at_punct("|")) {
      lex_.take();
      tail = parse_expr(700);
    }
    lex_.expect_punct("]");
    return mk_list(items, tail);
  }

  Lexer lex_;
};

}  // namespace

Program Program::parse(const std::string& source) {
  Program prog;
  Parser p(source);
  while (!p.at_end()) prog.add(p.parse_clause());
  return prog;
}

void Program::add(Clause c) {
  index_[key_of(c.head)].push_back(clauses_.size());
  clauses_.push_back(std::move(c));
}

std::string Program::key_of(const TermPtr& head) {
  if (head->kind == Term::Kind::kStruct)
    return head->name + "/" + std::to_string(head->args.size());
  return head->name + "/0";
}

std::vector<std::size_t> Program::candidates(const TermPtr& goal) const {
  auto it = index_.find(key_of(goal));
  if (it == index_.end()) return {};
  return it->second;
}

std::vector<TermPtr> parse_query(const std::string& text) {
  Parser p(text);
  return p.parse_conjunction();
}

TermPtr parse_term(const std::string& text) {
  Parser p(text);
  return p.parse_expr(700);
}

}  // namespace mw::prolog
