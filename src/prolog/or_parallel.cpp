#include "prolog/or_parallel.hpp"

#include <atomic>

#include "core/alt_context.hpp"
#include "util/check.hpp"

namespace mw::prolog {

namespace {

/// A branch state in resolved form: bindings are substituted into the
/// goals/answer terms, so branches are self-contained values that can be
/// shipped into speculative worlds without sharing an environment — the
/// paper's copy-not-share choice, taken to its logical end.
struct Branch {
  std::vector<TermPtr> goals;
  TermPtr answer;
};

enum class StepKind { kSolved, kDead, kReduced, kChoice, kLeaf };

struct StepOutcome {
  StepKind kind = StepKind::kDead;
  Branch next;                        // kReduced
  std::vector<std::size_t> choices;  // kChoice
};

/// Commits `branch` to clause `idx` for its first goal: unify, substitute,
/// splice the clause body. nullopt if the head does not unify.
std::optional<Branch> reduce_with_clause(const Program& prog,
                                         const Branch& branch,
                                         std::size_t idx,
                                         std::uint64_t suffix) {
  const Clause& c = prog.clause(idx);
  Bindings env;
  Trail trail;
  TermPtr head = rename_vars(c.head, suffix);
  if (!unify(branch.goals.front(), head, env, trail)) return std::nullopt;
  Branch out;
  out.goals.reserve(c.body.size() + branch.goals.size() - 1);
  for (const auto& b : c.body)
    out.goals.push_back(resolve(rename_vars(b, suffix), env));
  for (std::size_t i = 1; i < branch.goals.size(); ++i)
    out.goals.push_back(resolve(branch.goals[i], env));
  out.answer = resolve(branch.answer, env);
  return out;
}

/// One deterministic step of resolved-form SLD: builtins evaluate in
/// place; user goals with a single candidate clause reduce; multiple
/// candidates surface as a choice point for the speculation layer.
StepOutcome step(const Program& prog, const Branch& branch,
                 std::atomic<std::uint64_t>* suffix_counter) {
  StepOutcome out;
  if (branch.goals.empty()) {
    out.kind = StepKind::kSolved;
    return out;
  }
  const TermPtr& g = branch.goals.front();

  if (is_builtin(g)) {
    // Builtins that require a full sub-search (negation as failure,
    // between/3's enumeration) are beyond single-step reduction: hand the
    // branch to the leaf solver.
    if (g->kind == Term::Kind::kStruct &&
        (g->name == "\\+" || g->name == "between")) {
      out.kind = StepKind::kLeaf;
      return out;
    }
    Bindings env;
    Trail trail;
    bool ok = false;
    if (g->kind == Term::Kind::kAtom) {
      ok = g->name == "true";
    } else if (g->name == "=") {
      ok = unify(g->args[0], g->args[1], env, trail);
    } else if (g->name == "\\=") {
      ok = !unify(g->args[0], g->args[1], env, trail);
      env.clear();
    } else if (g->name == "is") {
      auto v = eval_arith(g->args[1], env);
      ok = v.has_value() && unify(g->args[0], mk_int(*v), env, trail);
    } else {
      Bindings empty;
      auto a = eval_arith(g->args[0], empty);
      auto b = eval_arith(g->args[1], empty);
      if (a && b) {
        if (g->name == "<") ok = *a < *b;
        else if (g->name == ">") ok = *a > *b;
        else if (g->name == "=<") ok = *a <= *b;
        else if (g->name == ">=") ok = *a >= *b;
        else if (g->name == "=:=") ok = *a == *b;
        else if (g->name == "=\\=") ok = *a != *b;
      }
    }
    if (!ok) return out;  // kDead
    out.kind = StepKind::kReduced;
    for (std::size_t i = 1; i < branch.goals.size(); ++i)
      out.next.goals.push_back(resolve(branch.goals[i], env));
    out.next.answer = resolve(branch.answer, env);
    return out;
  }

  std::vector<std::size_t> cands = prog.candidates(g);
  if (cands.empty()) return out;  // kDead
  if (cands.size() == 1) {
    auto red = reduce_with_clause(prog, branch, cands[0],
                                  suffix_counter->fetch_add(1) + 1);
    if (!red) return out;  // kDead
    out.kind = StepKind::kReduced;
    out.next = std::move(*red);
    return out;
  }
  out.kind = StepKind::kChoice;
  out.choices = std::move(cands);
  return out;
}

struct Shared {
  Runtime& rt;
  const Program& prog;
  const OrParallelConfig& cfg;
  std::vector<std::string> vars;  // original query variables, in order
  std::atomic<std::uint64_t> total_inferences{0};
  std::atomic<std::uint64_t> worlds_spawned{0};
  std::atomic<std::uint64_t> splits_vetoed{0};
  // Fresh-variable renaming must be unique across all worlds.
  std::atomic<std::uint64_t> suffix{1000};
};

std::string serialize_answer(const Shared& sh, const TermPtr& answer) {
  MW_CHECK(answer->is_functor("ans", sh.vars.size()) || sh.vars.empty());
  std::string out;
  for (std::size_t i = 0; i < sh.vars.size(); ++i) {
    out += sh.vars[i] + "=" + to_string(answer->args[i]) + "\n";
  }
  return out;
}

struct DriveResult {
  bool success = false;
  std::string result;      // serialized answer lines
  VDuration elapsed = 0;   // virtual time of this subtree
};

DriveResult drive(Shared& sh, World& world, Branch branch, int depth) {
  DriveResult out;
  std::uint64_t budget = sh.cfg.max_inferences;

  for (;;) {
    StepOutcome so = step(sh.prog, branch, &sh.suffix);
    sh.total_inferences.fetch_add(1);
    out.elapsed += sh.cfg.ticks_per_inference;
    if (budget != 0 && --budget == 0) return out;

    switch (so.kind) {
      case StepKind::kSolved:
        out.success = true;
        out.result = serialize_answer(sh, branch.answer);
        return out;
      case StepKind::kDead:
        return out;
      case StepKind::kReduced:
        branch = std::move(so.next);
        continue;
      case StepKind::kChoice:
      case StepKind::kLeaf:
        break;
    }

    // A choice point (or a search-requiring builtin): below the spawn
    // depth the sequential engine takes over; kLeaf always does. The
    // runtime's policy engine holds the splitting-strategy decision: in
    // kAdaptive mode a choice point whose speculation has not been paying
    // (high wasted-work ratio) is vetoed and searched sequentially too;
    // kStatic never vetoes.
    bool veto = false;
    if (so.kind == StepKind::kChoice && depth < sh.cfg.spawn_depth &&
        !sh.rt.policy().allow_split(0, so.choices.size())) {
      veto = true;
      sh.splits_vetoed.fetch_add(1);
    }
    if (so.kind == StepKind::kLeaf || depth >= sh.cfg.spawn_depth || veto) {
      // Leaf: hand the whole remaining search to the sequential engine.
      Solver solver(sh.prog);
      SolveConfig scfg;
      scfg.max_solutions = 1;
      scfg.max_inferences = budget;
      std::uint64_t leaf_inferences = 0;
      solver.on_inference = [&] { ++leaf_inferences; };
      SolveResult sr = solver.solve(branch.goals, scfg);
      sh.total_inferences.fetch_add(leaf_inferences);
      out.elapsed += sh.cfg.ticks_per_inference *
                     static_cast<VDuration>(leaf_inferences);
      if (!sr.success) return out;
      // Substitute the leaf's bindings into the answer.
      out.success = true;
      out.result =
          serialize_answer(sh, resolve(branch.answer, sr.raw_solutions[0]));
      return out;
    }

    // Spawn one speculative world per candidate clause: committed choice.
    std::vector<Alternative> alts;
    for (std::size_t idx : so.choices) {
      alts.push_back(Alternative{
          "clause#" + std::to_string(idx), nullptr,
          [&sh, branch, idx, depth](AltContext& ctx) {
            const std::uint64_t sfx = sh.suffix.fetch_add(1);
            auto red = reduce_with_clause(sh.prog, branch, idx, sfx);
            sh.total_inferences.fetch_add(1);
            ctx.work(sh.cfg.ticks_per_inference);
            if (!red) ctx.fail("head mismatch");
            DriveResult dr =
                drive(sh, ctx.world(), std::move(*red), depth + 1);
            ctx.work(dr.elapsed);
            if (!dr.success) ctx.fail("branch failed");
            ctx.set_result_string(dr.result);
          },
          nullptr});
    }
    sh.worlds_spawned.fetch_add(alts.size());
    AltOutcome ao = run_alternatives(sh.rt, world, alts);
    out.elapsed += ao.elapsed;
    if (ao.failed) return out;
    out.success = true;
    out.result = std::string(ao.result.begin(), ao.result.end());
    return out;
  }
}

}  // namespace

OrParallelResult solve_or_parallel(Runtime& rt, const Program& program,
                                   const std::string& query,
                                   const OrParallelConfig& cfg) {
  OrParallelResult out;
  std::vector<TermPtr> goals = parse_query(query);
  Shared sh{rt, program, cfg, query_variables(goals)};

  // Sequential baseline: what a one-world engine pays to the first answer.
  {
    Solver seq(program);
    SolveConfig scfg;
    scfg.max_solutions = 1;
    scfg.max_inferences = cfg.max_inferences;
    out.sequential_inferences = seq.solve(goals, scfg).inferences;
  }

  Branch root;
  root.goals = goals;
  if (sh.vars.empty()) {
    root.answer = mk_atom("ans");
  } else {
    std::vector<TermPtr> args;
    for (const auto& v : sh.vars) args.push_back(mk_var(v));
    root.answer = mk_struct("ans", std::move(args));
  }

  World world = rt.make_root("prolog-query");
  DriveResult dr = drive(sh, world, std::move(root), 0);
  out.success = dr.success;
  out.elapsed = dr.elapsed;
  out.total_inferences = sh.total_inferences.load();
  out.worlds_spawned = sh.worlds_spawned.load();
  out.splits_vetoed = sh.splits_vetoed.load();
  if (dr.success) {
    // Parse "var=value" lines.
    std::size_t pos = 0;
    while (pos < dr.result.size()) {
      const std::size_t nl = dr.result.find('\n', pos);
      const std::string line = dr.result.substr(pos, nl - pos);
      pos = (nl == std::string::npos) ? dr.result.size() : nl + 1;
      const std::size_t eq = line.find('=');
      if (eq != std::string::npos)
        out.solution[line.substr(0, eq)] = line.substr(eq + 1);
    }
  }
  return out;
}

}  // namespace mw::prolog
