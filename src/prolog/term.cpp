#include "prolog/term.hpp"

#include <atomic>

#include "util/check.hpp"

namespace mw::prolog {

TermPtr mk_atom(std::string name) {
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kAtom;
  t->name = std::move(name);
  return t;
}

TermPtr mk_int(std::int64_t v) {
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kInt;
  t->value = v;
  return t;
}

TermPtr mk_var(std::string name) {
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kVar;
  t->name = std::move(name);
  return t;
}

TermPtr mk_struct(std::string functor, std::vector<TermPtr> args) {
  MW_CHECK(!args.empty());
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kStruct;
  t->name = std::move(functor);
  t->args = std::move(args);
  return t;
}

TermPtr mk_list(const std::vector<TermPtr>& items, TermPtr tail) {
  TermPtr acc = tail ? tail : mk_atom(kNil);
  for (std::size_t i = items.size(); i-- > 0;)
    acc = mk_struct(kCons, {items[i], acc});
  return acc;
}

TermPtr walk(TermPtr t, const Bindings& env) {
  while (t->kind == Term::Kind::kVar) {
    auto it = env.find(t->name);
    if (it == env.end()) return t;
    t = it->second;
  }
  return t;
}

TermPtr resolve(TermPtr t, const Bindings& env) {
  t = walk(t, env);
  if (t->kind != Term::Kind::kStruct) return t;
  std::vector<TermPtr> args;
  args.reserve(t->args.size());
  bool changed = false;
  for (const auto& a : t->args) {
    TermPtr r = resolve(a, env);
    changed |= (r != a);
    args.push_back(std::move(r));
  }
  if (!changed) return t;
  return mk_struct(t->name, std::move(args));
}

TermPtr rename_vars(TermPtr t, std::uint64_t suffix) {
  switch (t->kind) {
    case Term::Kind::kAtom:
    case Term::Kind::kInt:
      return t;
    case Term::Kind::kVar:
      if (t->name == "_") {
        // Each anonymous variable is unique; give it a distinct identity.
        static std::atomic<std::uint64_t> anon_counter{0};
        return mk_var("_anon" + std::to_string(++anon_counter) + "~" +
                      std::to_string(suffix));
      }
      return mk_var(t->name + "~" + std::to_string(suffix));
    case Term::Kind::kStruct: {
      std::vector<TermPtr> args;
      args.reserve(t->args.size());
      for (const auto& a : t->args) args.push_back(rename_vars(a, suffix));
      return mk_struct(t->name, std::move(args));
    }
  }
  return t;
}

namespace {

/// Appends list elements; returns the non-nil tail if improper/open.
TermPtr print_list_items(const TermPtr& cons, std::string* out) {
  TermPtr cur = cons;
  bool first = true;
  while (cur->is_functor(kCons, 2)) {
    if (!first) *out += ",";
    *out += to_string(cur->args[0]);
    first = false;
    cur = cur->args[1];
  }
  return cur;
}

}  // namespace

std::string to_string(const TermPtr& t) {
  switch (t->kind) {
    case Term::Kind::kAtom:
      return t->name;
    case Term::Kind::kInt:
      return std::to_string(t->value);
    case Term::Kind::kVar: {
      // Strip renaming suffixes for readability.
      auto pos = t->name.find('~');
      return pos == std::string::npos ? t->name : t->name.substr(0, pos);
    }
    case Term::Kind::kStruct: {
      if (t->is_functor(kCons, 2)) {
        std::string out = "[";
        TermPtr tail = print_list_items(t, &out);
        if (!tail->is_atom(kNil)) out += "|" + to_string(tail);
        return out + "]";
      }
      std::string out = t->name + "(";
      for (std::size_t i = 0; i < t->args.size(); ++i) {
        if (i) out += ",";
        out += to_string(t->args[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

bool equal(const TermPtr& a, const TermPtr& b) {
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case Term::Kind::kAtom:
    case Term::Kind::kVar:
      return a->name == b->name;
    case Term::Kind::kInt:
      return a->value == b->value;
    case Term::Kind::kStruct: {
      if (a->name != b->name || a->args.size() != b->args.size()) return false;
      for (std::size_t i = 0; i < a->args.size(); ++i)
        if (!equal(a->args[i], b->args[i])) return false;
      return true;
    }
  }
  return false;
}

}  // namespace mw::prolog
