// Sequential SLD resolution with chronological backtracking — the
// baseline engine that OR-parallel execution competes against (§4.2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "prolog/program.hpp"
#include "prolog/unify.hpp"

namespace mw::prolog {

/// One solution: original query variable -> fully resolved term.
using Solution = std::map<std::string, std::string>;

struct SolveConfig {
  std::size_t max_solutions = 1;
  /// Inference budget (goal reductions); 0 = unlimited. Exceeding it stops
  /// the search with budget_exhausted set.
  std::uint64_t max_inferences = 0;
};

struct SolveResult {
  bool success = false;
  std::vector<Solution> solutions;
  /// Term-level bindings per solution (query var -> resolved term); what
  /// the OR-parallel layer composes with.
  std::vector<Bindings> raw_solutions;
  std::uint64_t inferences = 0;
  bool budget_exhausted = false;
};

class Solver {
 public:
  explicit Solver(const Program& program) : program_(&program) {}

  /// Solves a parsed goal list.
  SolveResult solve(const std::vector<TermPtr>& goals,
                    const SolveConfig& cfg = {});

  /// Convenience: parses and solves a query string.
  SolveResult solve(const std::string& query, const SolveConfig& cfg = {});

  /// Hook invoked on every inference (goal reduction) — the OR-parallel
  /// layer charges virtual work through this.
  std::function<void()> on_inference;

  /// Restricts the solver to one specific clause for the *first* reduction
  /// of the initial goal — how an OR-parallel alternative commits to its
  /// branch. Index into Program::clauses(). Consumed on first use.
  void restrict_first_choice(std::size_t clause_index) {
    first_choice_ = clause_index;
  }

  /// Consumes the pending first-choice restriction (engine internal).
  std::optional<std::size_t> take_first_choice() {
    auto fc = first_choice_;
    first_choice_.reset();
    return fc;
  }

 private:
  const Program* program_;
  std::optional<std::size_t> first_choice_;
};

/// Collects the names of the (non-renamed) variables in a goal list.
std::vector<std::string> query_variables(const std::vector<TermPtr>& goals);

/// True if the functor/arity pair is a builtin handled by the engine
/// (true/0, fail/0, =/2, \=/2, comparisons, is/2).
bool is_builtin(const TermPtr& goal);

/// Evaluates an arithmetic expression to an integer; nullopt if unbound
/// variables or bad operators appear.
std::optional<std::int64_t> eval_arith(const TermPtr& t, const Bindings& env);

}  // namespace mw::prolog
