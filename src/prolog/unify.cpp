#include "prolog/unify.hpp"

namespace mw::prolog {

namespace {

bool unify_rec(TermPtr a, TermPtr b, Bindings& env, Trail& trail) {
  a = walk(std::move(a), env);
  b = walk(std::move(b), env);

  if (a->kind == Term::Kind::kVar && b->kind == Term::Kind::kVar &&
      a->name == b->name) {
    return true;
  }
  if (a->kind == Term::Kind::kVar) {
    env[a->name] = b;
    trail.push_back(a->name);
    return true;
  }
  if (b->kind == Term::Kind::kVar) {
    env[b->name] = a;
    trail.push_back(b->name);
    return true;
  }
  switch (a->kind) {
    case Term::Kind::kAtom:
      return b->kind == Term::Kind::kAtom && a->name == b->name;
    case Term::Kind::kInt:
      return b->kind == Term::Kind::kInt && a->value == b->value;
    case Term::Kind::kStruct: {
      if (b->kind != Term::Kind::kStruct || a->name != b->name ||
          a->args.size() != b->args.size()) {
        return false;
      }
      for (std::size_t i = 0; i < a->args.size(); ++i) {
        if (!unify_rec(a->args[i], b->args[i], env, trail)) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

bool unify(TermPtr a, TermPtr b, Bindings& env, Trail& trail) {
  const std::size_t mark = trail.size();
  if (unify_rec(std::move(a), std::move(b), env, trail)) return true;
  undo_to(env, trail, mark);
  return false;
}

void undo_to(Bindings& env, Trail& trail, std::size_t n) {
  while (trail.size() > n) {
    env.erase(trail.back());
    trail.pop_back();
  }
}

bool is_ground(const TermPtr& t, const Bindings& env) {
  TermPtr w = walk(t, env);
  switch (w->kind) {
    case Term::Kind::kVar:
      return false;
    case Term::Kind::kAtom:
    case Term::Kind::kInt:
      return true;
    case Term::Kind::kStruct:
      for (const auto& a : w->args)
        if (!is_ground(a, env)) return false;
      return true;
  }
  return false;
}

}  // namespace mw::prolog
