// OR-parallel, committed-choice query execution (§4.2): the alternative
// clauses at a choice point become mutually exclusive speculative worlds;
// the first to find a solution synchronizes and the rest are eliminated.
//
// "The sort of committed-choice nondeterminism we advocate here is popular
// in another segment of the Prolog community addressing OR-parallelism."
// Binding environments are copied per world (no shared pointer chains to
// traverse; no merging — only one alternative's bindings survive).
#pragma once

#include <cstdint>
#include <string>

#include "core/alt.hpp"
#include "core/runtime.hpp"
#include "prolog/solver.hpp"

namespace mw::prolog {

struct OrParallelConfig {
  /// Virtual work charged per inference.
  VDuration ticks_per_inference = 1;
  /// Choice points at goal depth < spawn_depth fork alternatives; deeper
  /// ones run sequentially. "How aggressively available parallelism is
  /// exploited is a function of the overhead associated with maintaining a
  /// process" — this is that granularity knob.
  int spawn_depth = 1;
  /// Per-alternative inference budget (0 = unlimited).
  std::uint64_t max_inferences = 0;
};

struct OrParallelResult {
  bool success = false;
  Solution solution;
  /// Parent-observed virtual time of the whole query (overheads included).
  VDuration elapsed = 0;
  /// Total inferences across all worlds, winners and losers — the
  /// throughput price of speculation.
  std::uint64_t total_inferences = 0;
  /// Worlds spawned across all choice points.
  std::uint64_t worlds_spawned = 0;
  /// Inferences the sequential engine would have performed (first-solution
  /// search), for speedup comparisons.
  std::uint64_t sequential_inferences = 0;
  /// Choice points the runtime's SpecPolicy refused to split (kAdaptive
  /// only): the splitting-strategy decision delegated to the policy engine.
  /// These ran on the sequential leaf solver instead.
  std::uint64_t splits_vetoed = 0;
};

/// Runs `query` against `program` with OR-parallel committed choice on the
/// given runtime (virtual backend recommended: deterministic schedules).
OrParallelResult solve_or_parallel(Runtime& rt, const Program& program,
                                   const std::string& query,
                                   const OrParallelConfig& cfg = {});

}  // namespace mw::prolog
