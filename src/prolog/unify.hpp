// Unification (§4.2; Crammond [5] surveys the OR-parallel variants). This
// engine uses plain Robinson unification over a copied binding environment;
// the trail exists so the *sequential* backtracking solver can undo
// bindings cheaply, while the OR-parallel solver copies environments
// instead — the paper's "copying, no merging" choice.
#pragma once

#include <vector>

#include "prolog/term.hpp"

namespace mw::prolog {

/// Names bound during a unification attempt, for O(bindings) undo.
using Trail = std::vector<std::string>;

/// Attempts to unify a and b under env. On success, returns true with new
/// bindings recorded in env and their names appended to trail. On failure,
/// env is rolled back to its state at entry.
bool unify(TermPtr a, TermPtr b, Bindings& env, Trail& trail);

/// Removes the `n` most recent trail entries from env (backtracking).
void undo_to(Bindings& env, Trail& trail, std::size_t n);

/// True if `t` (after resolution) contains no unbound variables.
bool is_ground(const TermPtr& t, const Bindings& env);

}  // namespace mw::prolog
