// Term representation for the mini-Prolog engine (§4.2). Terms are
// immutable and shared; variable bindings live in a separate environment so
// that OR-parallel worlds can copy environments without touching terms —
// "what our method does is copy, and since we choose only one alternative,
// no merging is necessary".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mw::prolog {

struct Term;
using TermPtr = std::shared_ptr<const Term>;

struct Term {
  enum class Kind { kAtom, kInt, kVar, kStruct };

  Kind kind = Kind::kAtom;
  std::string name;           // atom text, variable name, or functor
  std::int64_t value = 0;     // kInt payload
  std::vector<TermPtr> args;  // kStruct arguments

  bool is_atom(const std::string& n) const {
    return kind == Kind::kAtom && name == n;
  }
  bool is_functor(const std::string& n, std::size_t arity) const {
    return kind == Kind::kStruct && name == n && args.size() == arity;
  }
};

TermPtr mk_atom(std::string name);
TermPtr mk_int(std::int64_t v);
TermPtr mk_var(std::string name);
TermPtr mk_struct(std::string functor, std::vector<TermPtr> args);

/// Builds a proper list term ('.'/2 chain ending in []).
TermPtr mk_list(const std::vector<TermPtr>& items, TermPtr tail = nullptr);

inline const std::string kNil = "[]";
inline const std::string kCons = ".";

/// Variable bindings: name -> term. Environments are *copied* between
/// OR-parallel worlds, per the paper's copy-don't-merge choice.
using Bindings = std::map<std::string, TermPtr>;

/// Follows variable bindings until a non-variable or unbound variable.
TermPtr walk(TermPtr t, const Bindings& env);

/// Fully substitutes bindings into `t` (deep walk).
TermPtr resolve(TermPtr t, const Bindings& env);

/// Renames every variable in `t` to "<name>~<suffix>" — fresh variables
/// for each clause activation.
TermPtr rename_vars(TermPtr t, std::uint64_t suffix);

/// Canonical printing: atoms/ints verbatim, lists in [a,b|T] form,
/// structs as f(x,y).
std::string to_string(const TermPtr& t);

/// Structural equality (no bindings involved).
bool equal(const TermPtr& a, const TermPtr& b);

}  // namespace mw::prolog
