#include "pred/predicate_set.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mw {

namespace {

bool sorted_contains(const std::vector<Pid>& v, Pid p) {
  return std::binary_search(v.begin(), v.end(), p);
}

void sorted_insert(std::vector<Pid>& v, Pid p) {
  auto it = std::lower_bound(v.begin(), v.end(), p);
  if (it == v.end() || *it != p) v.insert(it, p);
}

bool sorted_erase(std::vector<Pid>& v, Pid p) {
  auto it = std::lower_bound(v.begin(), v.end(), p);
  if (it != v.end() && *it == p) {
    v.erase(it);
    return true;
  }
  return false;
}

}  // namespace

bool PredicateSet::assume_completes(Pid p) {
  MW_CHECK(p != kNoPid);
  if (sorted_contains(cant_, p)) return false;
  sorted_insert(must_, p);
  return true;
}

bool PredicateSet::assume_fails(Pid p) {
  MW_CHECK(p != kNoPid);
  if (sorted_contains(must_, p)) return false;
  sorted_insert(cant_, p);
  return true;
}

bool PredicateSet::assumes_completes(Pid p) const {
  return sorted_contains(must_, p);
}

bool PredicateSet::assumes_fails(Pid p) const {
  return sorted_contains(cant_, p);
}

PredRelation PredicateSet::relation_to(const PredicateSet& sender) const {
  bool extension = false;
  for (Pid p : sender.must_) {
    if (sorted_contains(cant_, p)) return PredRelation::kConflict;
    if (!sorted_contains(must_, p)) extension = true;
  }
  for (Pid p : sender.cant_) {
    if (sorted_contains(must_, p)) return PredRelation::kConflict;
    if (!sorted_contains(cant_, p)) extension = true;
  }
  return extension ? PredRelation::kExtension : PredRelation::kImplied;
}

PredicateSet PredicateSet::missing_from(const PredicateSet& sender) const {
  PredicateSet out;
  for (Pid p : sender.must_)
    if (!sorted_contains(must_, p)) sorted_insert(out.must_, p);
  for (Pid p : sender.cant_)
    if (!sorted_contains(cant_, p)) sorted_insert(out.cant_, p);
  return out;
}

bool PredicateSet::merge(const PredicateSet& other) {
  for (Pid p : other.must_)
    if (sorted_contains(cant_, p)) return false;
  for (Pid p : other.cant_)
    if (sorted_contains(must_, p)) return false;
  for (Pid p : other.must_) sorted_insert(must_, p);
  for (Pid p : other.cant_) sorted_insert(cant_, p);
  return true;
}

PredicateSet::Fate PredicateSet::resolve(Pid p, bool completed) {
  if (completed) {
    if (sorted_contains(cant_, p)) return Fate::kDoomed;
    return sorted_erase(must_, p) ? Fate::kSimplified : Fate::kUnaffected;
  }
  if (sorted_contains(must_, p)) return Fate::kDoomed;
  return sorted_erase(cant_, p) ? Fate::kSimplified : Fate::kUnaffected;
}

PredicateSet PredicateSet::for_alternative(const PredicateSet& parent,
                                           Pid self,
                                           const std::vector<Pid>& siblings) {
  PredicateSet out = parent;
  MW_CHECK(out.assume_completes(self));
  for (Pid s : siblings) {
    if (s == self) continue;
    MW_CHECK(out.assume_fails(s));
  }
  return out;
}

PredicateSet PredicateSet::for_failure(const PredicateSet& parent,
                                       const std::vector<Pid>& siblings) {
  PredicateSet out = parent;
  for (Pid s : siblings) MW_CHECK(out.assume_fails(s));
  return out;
}

std::string PredicateSet::to_string() const {
  std::string s = "{must:";
  for (Pid p : must_) s += " " + std::to_string(p);
  s += " | cant:";
  for (Pid p : cant_) s += " " + std::to_string(p);
  s += "}";
  return s;
}

}  // namespace mw
