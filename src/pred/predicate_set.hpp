// PredicateSet — the paper's §2.3 representation of a world's assumptions:
// two lists of process identifiers, "must complete" and "can't complete".
//
// Construction rules from the paper:
//  * a child inherits its parent's predicates (nesting);
//  * each spawned alternative additionally assumes that *it* completes and
//    that each of its siblings does not ("sibling rivalry");
//  * the failure alternative assumes none of the siblings complete.
//
// Message acceptance compares the sender's set S against the receiver's R:
//  * S ⊆ R (every assumption already held)          → accept immediately;
//  * ∃p: p ∈ S and ¬p ∈ R (or vice versa)           → conflict, ignore;
//  * otherwise                                       → the receiver must be
//    split into a copy that adopts S and a copy that assumes the *sender*
//    does not complete (negating complete(sender) rather than all of S,
//    which could demand two mutually exclusive processes both complete).
#pragma once

#include <string>
#include <vector>

#include "util/ids.hpp"

namespace mw {

/// Relationship between a sender's assumptions and a receiver's.
enum class PredRelation {
  kImplied,    // receiver already assumes everything the sender does
  kConflict,   // receiver assumes the negation of a sender assumption
  kExtension,  // acceptance requires the receiver to assume more
};

class PredicateSet {
 public:
  PredicateSet() = default;

  /// Adds the assumption complete(p). Returns false (set unchanged) if the
  /// set already assumes ¬complete(p) — callers treat that as a conflict.
  bool assume_completes(Pid p);

  /// Adds the assumption ¬complete(p); false on conflict with complete(p).
  bool assume_fails(Pid p);

  bool assumes_completes(Pid p) const;
  bool assumes_fails(Pid p) const;

  /// True when no assumptions remain: the world is certain, and is free to
  /// touch sources (§2.4.2).
  bool empty() const { return must_.empty() && cant_.empty(); }
  std::size_t size() const { return must_.size() + cant_.size(); }

  const std::vector<Pid>& must_complete() const { return must_; }
  const std::vector<Pid>& cant_complete() const { return cant_; }

  /// Classifies `sender` relative to this (receiver) set.
  PredRelation relation_to(const PredicateSet& sender) const;

  /// The assumptions in `sender` this set does not already hold.
  PredicateSet missing_from(const PredicateSet& sender) const;

  /// Union with `other`; returns false and leaves this unchanged if the
  /// union would be inconsistent.
  bool merge(const PredicateSet& other);

  /// Outcome of resolving complete(p) against a predicate set.
  enum class Fate {
    kUnaffected,  // p not mentioned
    kSimplified,  // an assumption became true and was removed
    kDoomed,      // an assumption became false: the world must be eliminated
  };

  /// Applies the fact complete(p) == `completed`: satisfied assumptions are
  /// deleted (the paper: "they can be eliminated from the lists"); falsified
  /// assumptions doom the world.
  Fate resolve(Pid p, bool completed);

  /// The "sibling rivalry" set for alternative `self` among `siblings`
  /// (which includes `self`), on top of the parent's assumptions.
  static PredicateSet for_alternative(const PredicateSet& parent, Pid self,
                                      const std::vector<Pid>& siblings);

  /// The failure alternative: assumes none of `siblings` complete.
  static PredicateSet for_failure(const PredicateSet& parent,
                                  const std::vector<Pid>& siblings);

  bool operator==(const PredicateSet&) const = default;

  std::string to_string() const;

 private:
  // Sorted, deduplicated, mutually disjoint.
  std::vector<Pid> must_;
  std::vector<Pid> cant_;
};

}  // namespace mw
