#include "service/service.hpp"

#include <map>

namespace mw {

namespace {

// Knuth's MMIX multiplier, as in transport_race: every step changes every
// bit, so a lost or doubled execution cannot produce the right value by
// accident.
constexpr std::uint64_t kStepMultiplier = 6364136223846793005ull;

}  // namespace

const char* to_string(SvcStatus s) {
  switch (s) {
    case SvcStatus::kOk: return "ok";
    case SvcStatus::kShed: return "shed";
    case SvcStatus::kStale: return "stale";
    case SvcStatus::kFailed: return "failed";
  }
  return "?";
}

std::uint64_t service_reference(std::uint64_t payload, std::uint64_t work) {
  std::uint64_t acc = payload;
  for (std::uint64_t s = 0; s < work; ++s) acc = acc * kStepMultiplier + s;
  return acc;
}

Bytes encode_request(const SvcRequest& r) {
  ByteWriter w;
  w.put_u8(kSvcTagRequest);
  w.put_u64(r.client);
  w.put_u64(r.seq);
  w.put_u64(static_cast<std::uint64_t>(r.deadline));
  w.put_u64(r.work);
  w.put_u64(r.payload);
  return w.take();
}

Bytes encode_response(const SvcResponse& r) {
  ByteWriter w;
  w.put_u8(kSvcTagResponse);
  w.put_u64(r.client);
  w.put_u64(r.seq);
  w.put_u8(static_cast<std::uint8_t>(r.status));
  w.put_u64(r.value);
  w.put_u8(r.flags);
  return w.take();
}

Bytes encode_exec(const SvcExec& e) {
  ByteWriter w;
  w.put_u8(kSvcTagExec);
  w.put_u64(e.ticket);
  w.put_u64(e.work);
  w.put_u64(e.payload);
  w.put_u64(static_cast<std::uint64_t>(e.budget));
  return w.take();
}

Bytes encode_exec_done(const SvcExecDone& d) {
  ByteWriter w;
  w.put_u8(kSvcTagExecDone);
  w.put_u64(d.ticket);
  w.put_u64(d.value);
  return w.take();
}

Bytes encode_beat() {
  ByteWriter w;
  w.put_u8(kSvcTagBeat);
  return w.take();
}

Bytes encode_handoff(const SvcHandoff& h) {
  ByteWriter w;
  w.put_u8(kSvcTagHandoff);
  w.put_u64(h.from);
  w.put_u64(h.epoch);
  w.put_u64(h.image.size());
  w.put_bytes(std::span<const std::uint8_t>(h.image.data(), h.image.size()));
  return w.take();
}

Bytes encode_handoff_ack(const SvcHandoffAck& a) {
  ByteWriter w;
  w.put_u8(kSvcTagHandoffAck);
  w.put_u64(a.from);
  w.put_u64(a.epoch);
  return w.take();
}

std::uint8_t svc_message_tag(std::span<const std::uint8_t> payload) {
  return payload.empty() ? 0 : payload[0];
}

std::optional<SvcRequest> decode_request(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  if (r.get_u8() != kSvcTagRequest) return std::nullopt;
  SvcRequest out;
  out.client = r.get_u64();
  out.seq = r.get_u64();
  out.deadline = static_cast<VDuration>(r.get_u64());
  out.work = r.get_u64();
  out.payload = r.get_u64();
  if (!r.ok()) return std::nullopt;
  return out;
}

std::optional<SvcResponse> decode_response(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  if (r.get_u8() != kSvcTagResponse) return std::nullopt;
  SvcResponse out;
  out.client = r.get_u64();
  out.seq = r.get_u64();
  const std::uint8_t status = r.get_u8();
  out.value = r.get_u64();
  out.flags = r.get_u8();
  if (!r.ok() || status > static_cast<std::uint8_t>(SvcStatus::kFailed))
    return std::nullopt;
  out.status = static_cast<SvcStatus>(status);
  return out;
}

std::optional<SvcExec> decode_exec(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  if (r.get_u8() != kSvcTagExec) return std::nullopt;
  SvcExec out;
  out.ticket = r.get_u64();
  out.work = r.get_u64();
  out.payload = r.get_u64();
  out.budget = static_cast<VDuration>(r.get_u64());
  if (!r.ok()) return std::nullopt;
  return out;
}

std::optional<SvcExecDone> decode_exec_done(
    std::span<const std::uint8_t> p) {
  ByteReader r(p);
  if (r.get_u8() != kSvcTagExecDone) return std::nullopt;
  SvcExecDone out;
  out.ticket = r.get_u64();
  out.value = r.get_u64();
  if (!r.ok()) return std::nullopt;
  return out;
}

std::optional<SvcHandoff> decode_handoff(std::span<const std::uint8_t> p) {
  ByteReader r(p);
  if (r.get_u8() != kSvcTagHandoff) return std::nullopt;
  SvcHandoff out;
  out.from = r.get_u64();
  out.epoch = r.get_u64();
  const std::uint64_t len = r.get_u64();
  if (!r.ok() || len > r.remaining()) return std::nullopt;
  out.image = r.get_blob(static_cast<std::size_t>(len));
  if (!r.ok()) return std::nullopt;
  return out;
}

std::optional<SvcHandoffAck> decode_handoff_ack(
    std::span<const std::uint8_t> p) {
  ByteReader r(p);
  if (r.get_u8() != kSvcTagHandoffAck) return std::nullopt;
  SvcHandoffAck out;
  out.from = r.get_u64();
  out.epoch = r.get_u64();
  if (!r.ok()) return std::nullopt;
  return out;
}

std::size_t EffectLog::duplicates() const {
  std::map<std::pair<NodeId, std::uint64_t>, std::size_t> seen;
  std::size_t dups = 0;
  for (const Effect& e : entries_)
    if (++seen[{e.client, e.seq}] > 1) ++dups;
  return dups;
}

}  // namespace mw
