// ServiceClient: the at-most-once request discipline from the client side
// (oscar's model): one outstanding call at a time, each numbered by a
// monotonically increasing seq. A timeout retries the SAME seq with capped
// exponential backoff — the retry is exactly the duplicate the server's
// SessionTable must absorb — and a retry budget turns persistent silence
// into a local timeout failure. Responses for superseded seqs are ignored.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "service/service.hpp"

namespace mw {

struct ClientConfig {
  VDuration retry_after = vt_ms(10);  // initial retransmit timeout
  double backoff_factor = 2.0;
  VDuration retry_cap = vt_ms(80);
  std::size_t max_retries = 4;        // beyond the first send
  VDuration deadline = vt_ms(50);     // propagated to the server
};

struct CallRecord {
  std::uint64_t seq = 0;
  bool answered = false;      // any response arrived (vs. local timeout)
  SvcStatus status = SvcStatus::kFailed;
  std::uint64_t value = 0;
  std::uint8_t flags = 0;     // kSvcFlagReplayed / kSvcFlagLocal
  std::size_t retries = 0;    // duplicate sends this call made
  VTime sent_at = 0;
  VDuration latency = 0;      // first send -> terminal response
  std::uint64_t work = 0;
  std::uint64_t payload = 0;

  bool ok() const { return answered && status == SvcStatus::kOk; }
};

class ServiceClient : public TransportReceiver {
 public:
  ServiceClient(Transport& transport, NodeId self, NodeId server,
                ClientConfig config = {});
  ~ServiceClient() override;

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  NodeId self() const { return self_; }
  NodeId server() const { return server_; }
  /// Retargets subsequent sends (including retries of the current call).
  void set_server(NodeId server) { server_ = server; }
  bool idle() const { return !outstanding_; }

  /// Cluster routing hook (ClusterRouter::attach). When set it is consulted
  /// for the target node at every send: attempt 0 on a fresh call, then the
  /// retry count on each re-send — so a silent (dead) owner is routed
  /// around with the SAME seq, which is exactly the duplicate the new
  /// owner's session layer must absorb. A kShed response with this hook set
  /// does not complete the call either: it burns one retry and re-sends at
  /// the hook's next choice (a shed from a non-owner is a re-route hint,
  /// not a terminal answer).
  std::function<NodeId(NodeId self, NodeId current, std::size_t attempt)>
      route;

  /// Starts the next call (requires idle()). Returns its seq.
  std::uint64_t call(std::uint64_t work, std::uint64_t payload);

  /// Completed calls in completion order. Calls that exhausted their retry
  /// budget appear with answered == false.
  const std::vector<CallRecord>& records() const { return records_; }
  /// Invoked as each call reaches a terminal state (open-loop generators
  /// use this to start the next call).
  std::function<void(const CallRecord&)> on_complete;

 private:
  void on_message(NodeId from, std::span<const std::uint8_t> payload) override;
  void send_current();
  void on_retry_timer();
  void complete(bool answered, const SvcResponse* r);

  Transport& transport_;
  NodeId self_;
  NodeId server_;
  ClientConfig config_;
  bool outstanding_ = false;
  CallRecord current_;
  std::uint64_t next_seq_ = 0;
  TimerId retry_timer_ = kNoTimer;
  std::vector<CallRecord> records_;
};

}  // namespace mw
