// Per-backend circuit breaker, driven by two signals: direct outcome
// observations (exec sends that fail, attempts the backend never answered)
// and PeerHealth transitions (suspect/dead/resurrected). The classic three
// states:
//
//   kClosed    normal traffic; `failure_threshold` consecutive failures
//              (or a PeerHealth death) trip it open.
//   kOpen      no traffic at all — not even hedges — until `cooldown`
//              elapses or PeerHealth hears the peer again (resurrection),
//              either of which arms a half-open probe.
//   kHalfOpen  exactly one probe request may pass; its success closes the
//              breaker, its failure re-opens it (fresh cooldown).
//
// Suspect peers keep a *closed* breaker (a slow peer is not a dead peer)
// but the server separately refuses to aim hedges at them: hedging exists
// to shave the tail, and a suspect backend IS the tail.
#pragma once

#include <cstdint>

#include "util/vtime.hpp"

namespace mw {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1,
                                         kHalfOpen = 2 };

const char* breaker_state_name(BreakerState s);

struct BreakerConfig {
  std::size_t failure_threshold = 3;  // consecutive failures to trip
  VDuration cooldown = vt_ms(100);    // open -> half-open delay
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {}) : config_(config) {}

  /// May a request (primary, failover, or probe) go to this backend now?
  /// Half-open admits exactly one in-flight probe.
  bool allow(VTime now) {
    refresh(now);
    if (state_ == BreakerState::kClosed) return true;
    if (state_ == BreakerState::kHalfOpen && !probe_outstanding_) {
      probe_outstanding_ = true;
      return true;
    }
    return false;
  }

  /// True while requests beyond the probe must not be routed here —
  /// hedging eligibility. (allow() is the mutating gate; this just reads.)
  BreakerState state(VTime now) {
    refresh(now);
    return state_;
  }

  void record_success() {
    failures_ = 0;
    probe_outstanding_ = false;
    if (state_ != BreakerState::kClosed) ++closes_;
    state_ = BreakerState::kClosed;
  }

  /// Returns true when this failure tripped the breaker open (so the
  /// caller can trace the transition exactly once).
  bool record_failure(VTime now) {
    probe_outstanding_ = false;
    if (state_ == BreakerState::kHalfOpen) {  // failed probe: re-open
      trip(now);
      return true;
    }
    if (state_ == BreakerState::kOpen) return false;
    if (++failures_ < config_.failure_threshold) return false;
    trip(now);
    return true;
  }

  /// PeerHealth declared the backend dead: trip immediately regardless of
  /// the consecutive-failure count. Returns true on a fresh open.
  bool on_peer_dead(VTime now) {
    if (state_ == BreakerState::kOpen) return false;
    trip(now);
    return true;
  }

  /// PeerHealth heard a dead peer again: skip the cooldown residue and arm
  /// the probe — resurrection is better evidence than a timer.
  void on_peer_resurrected() {
    if (state_ == BreakerState::kOpen) {
      state_ = BreakerState::kHalfOpen;
      probe_outstanding_ = false;
    }
  }

  std::uint64_t opens() const { return opens_; }
  std::uint64_t closes() const { return closes_; }

 private:
  void refresh(VTime now) {
    if (state_ == BreakerState::kOpen && now >= open_until_) {
      state_ = BreakerState::kHalfOpen;
      probe_outstanding_ = false;
    }
  }

  void trip(VTime now) {
    state_ = BreakerState::kOpen;
    open_until_ = now + config_.cooldown;
    failures_ = 0;
    probe_outstanding_ = false;
    ++opens_;
  }

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t failures_ = 0;
  VTime open_until_ = 0;
  bool probe_outstanding_ = false;
  std::uint64_t opens_ = 0;
  std::uint64_t closes_ = 0;
};

}  // namespace mw
