#include "service/hedged_server.hpp"

#include <algorithm>
#include <string>

#include "core/replicate.hpp"
#include "trace/trace.hpp"

namespace mw {

namespace {

RuntimeConfig local_runtime_config(const ServiceConfig& c) {
  RuntimeConfig rc;
  rc.backend = AltBackend::kPool;
  rc.page_size = c.page_size;
  rc.num_pages = c.num_pages;
  rc.seed = c.seed;
  rc.pool = c.pool;
  rc.policy = c.policy;  // local races inherit the policy mode
  return rc;
}

PolicyConfig hedge_policy_config(const ServiceConfig& c) {
  PolicyConfig pc = c.policy;
  if (pc.seed == 0) pc.seed = c.seed ^ 0x68656467706f6cull;  // "hedgpol"
  return pc;
}

}  // namespace

HedgedServer::HedgedServer(Transport& transport, NodeId self,
                           EffectLog& effects, ServiceConfig config)
    : transport_(transport),
      self_(self),
      effects_(effects),
      config_(config),
      health_(config.health),
      rng_(config.seed ^ 0x73766373727672ull),  // "svcsrvr"
      runtime_(local_runtime_config(config)),
      policy_(hedge_policy_config(config)) {
  transport_.bind(self_, *this);
  health_timer_ = transport_.schedule(config_.health.heartbeat_interval,
                                      [this] { health_tick(); });
  brownout_timer_ = transport_.schedule(config_.brownout_window,
                                        [this] { brownout_tick(); });
}

HedgedServer::~HedgedServer() {
  closed_ = true;
  for (auto& [ticket, p] : pendings_) {
    if (p.hedge_timer != kNoTimer) transport_.cancel(p.hedge_timer);
    if (p.deadline_timer != kNoTimer) transport_.cancel(p.deadline_timer);
    if (p.local_timer != kNoTimer) transport_.cancel(p.local_timer);
  }
  if (health_timer_ != kNoTimer) transport_.cancel(health_timer_);
  if (brownout_timer_ != kNoTimer) transport_.cancel(brownout_timer_);
  transport_.unbind(self_);
}

void HedgedServer::add_backend(NodeId node) {
  if (backend_set_.insert(node).second) {
    backends_.push_back(node);
    breakers_.emplace(node, CircuitBreaker(config_.breaker));
    health_.watch(node, transport_.now());
  }
}

void HedgedServer::on_message(NodeId from,
                              std::span<const std::uint8_t> payload) {
  if (closed_) return;
  if (backend_set_.count(from)) health_.heard_from(from, transport_.now());
  switch (svc_message_tag(payload)) {
    case kSvcTagRequest:
      if (auto r = decode_request(payload)) handle_request(*r);
      break;
    case kSvcTagExecDone:
      if (auto d = decode_exec_done(payload)) handle_exec_done(from, *d);
      break;
    case kSvcTagBeat:
      break;  // liveness only, consumed above
    default:
      break;  // foreign or truncated frame: the transport is unreliable
  }
}

void HedgedServer::handle_request(const SvcRequest& r) {
  ++stats_.requests;
  const VTime now = transport_.now();
  switch (sessions_.peek(r.client, r.seq)) {
    case SessionVerdict::kReplay: {
      sessions_.begin(r.client, r.seq);  // counts the replay
      const SessionTable::Session* s = sessions_.find(r.client);
      ++stats_.replays;
      MW_TRACE_EVENT(trace::EventKind::kSvcReplay, kNoPid, kNoPid, r.client,
                     r.seq, now);
      respond(r.client, r.seq, s->status, s->value,
              static_cast<std::uint8_t>(kSvcFlagReplayed));
      return;
    }
    case SessionVerdict::kInFlight:
      // The pending execution's response answers this retry too.
      ++stats_.in_flight_dups;
      return;
    case SessionVerdict::kStale:
      ++stats_.stale;
      respond(r.client, r.seq, SvcStatus::kStale, 0, 0);
      return;
    case SessionVerdict::kExecute:
      break;
  }

  // Admission. Shedding must precede begin(): a shed request leaves no
  // session trace, so the client's retry of the same seq is still fresh.
  const bool must_queue = inflight_ >= config_.max_inflight;
  if (must_queue && queue_.size() >= config_.queue_capacity) {
    ++stats_.shed;
    MW_TRACE_EVENT(trace::EventKind::kSvcShed, kNoPid, kNoPid, r.client,
                   queue_.size(), now);
    respond(r.client, r.seq, SvcStatus::kShed, 0, 0);
    return;
  }

  sessions_.begin(r.client, r.seq);
  ++stats_.admitted;
  ++window_admitted_;
  MW_TRACE_EVENT(trace::EventKind::kSvcRequest, kNoPid, kNoPid, r.client,
                 r.seq, now);

  const std::uint64_t ticket = next_ticket_++;
  Pending p;
  p.ticket = ticket;
  p.client = r.client;
  p.seq = r.seq;
  p.work = r.work;
  p.payload = r.payload;
  p.arrived = now;
  p.deadline_abs =
      now + (r.deadline > 0 ? r.deadline : config_.default_deadline);
  pendings_.emplace(ticket, std::move(p));
  policy_.observe_admission(must_queue);

  if (must_queue) {
    queue_.push_back(ticket);
    ++stats_.queued;
    ++window_deferred_;
    stats_.queue_peak = std::max(stats_.queue_peak, queue_.size());
    return;
  }
  dispatch(ticket);
}

void HedgedServer::dispatch(std::uint64_t ticket) {
  auto it = pendings_.find(ticket);
  if (it == pendings_.end()) return;
  Pending& p = it->second;
  const VTime now = transport_.now();
  if (now >= p.deadline_abs) {  // expired while queued
    finish(ticket, SvcStatus::kFailed, 0, 0);
    return;
  }
  p.dispatched = true;
  ++inflight_;
  p.deadline_timer = transport_.schedule(
      p.deadline_abs - now, [this, ticket] { on_deadline(ticket); });

  const NodeId backend =
      backends_.empty() ? 0 : pick_backend(p.outstanding, false);
  if (backend != 0 && dispatch_remote(p, backend)) {
    if (!brownout_ && config_.hedge_budget > 0)
      p.hedge_timer = transport_.schedule(
          next_hedge_delay(ticket),
          [this, ticket] { on_hedge_timer(ticket); });
    return;
  }
  if (!backends_.empty()) {
    // Every backend dead, broken, or unreachable: transport_race's
    // finish-locally move — degraded latency, never a wrong answer.
    ++stats_.local_fallbacks;
    MW_TRACE_EVENT(trace::EventKind::kSvcLocalFallback, kNoPid, kNoPid,
                   ticket, 0, now);
  }
  run_local(p);
}

bool HedgedServer::dispatch_remote(Pending& p, NodeId backend) {
  SvcExec e;
  e.ticket = p.ticket;
  e.work = p.work;
  e.payload = p.payload;
  e.budget = p.deadline_abs - transport_.now();
  const Bytes frame = encode_exec(e);
  if (!transport_.send(self_, backend,
                       std::span<const std::uint8_t>(frame.data(),
                                                     frame.size()))) {
    auto b = breakers_.find(backend);
    if (b != breakers_.end() && b->second.record_failure(transport_.now())) {
      ++stats_.breaker_opens;
      MW_TRACE_EVENT(trace::EventKind::kSvcBreaker, kNoPid, kNoPid, backend,
                     static_cast<std::uint64_t>(BreakerState::kOpen),
                     transport_.now());
    }
    return false;
  }
  p.outstanding.push_back(backend);
  if (std::find(p.tried.begin(), p.tried.end(), backend) == p.tried.end())
    p.tried.push_back(backend);
  return true;
}

void HedgedServer::run_local(Pending& p) {
  ++stats_.local_races;
  p.local = true;
  const int k = brownout_ ? 1 : std::max(1, config_.local_replicas);
  const std::uint64_t work = p.work;
  const std::uint64_t payload = p.payload;
  World root = runtime_.make_root("svc-" + std::to_string(p.ticket));
  ReplicateOptions opts;
  opts.stagger_priority = config_.stagger_priority;
  auto res = replicate<std::uint64_t>(
      runtime_, root,
      [work, payload](AltContext&, int) {
        return service_reference(payload, work);
      },
      k, opts);
  p.local_ok = res.value.has_value();
  p.local_value = res.value.value_or(0);
  const std::uint64_t ticket = p.ticket;
  p.local_timer = transport_.schedule(
      draw_service_delay(), [this, ticket] { on_local_done(ticket); });
}

void HedgedServer::on_local_done(std::uint64_t ticket) {
  auto it = pendings_.find(ticket);
  if (it == pendings_.end()) return;
  it->second.local_timer = kNoTimer;
  if (it->second.local_ok) {
    finish(ticket, SvcStatus::kOk, it->second.local_value, kSvcFlagLocal);
  } else {
    finish(ticket, SvcStatus::kFailed, 0, kSvcFlagLocal);
  }
}

void HedgedServer::on_hedge_timer(std::uint64_t ticket) {
  auto it = pendings_.find(ticket);
  if (it == pendings_.end()) return;
  Pending& p = it->second;
  p.hedge_timer = kNoTimer;
  if (brownout_ || p.local || p.hedges_used >= config_.hedge_budget) return;
  const NodeId backend = pick_backend(p.tried, true);
  if (backend == 0) return;  // nobody healthy enough to hedge at
  if (!dispatch_remote(p, backend)) return;
  ++p.hedges_used;
  ++stats_.hedges;
  MW_TRACE_EVENT(trace::EventKind::kSvcHedge, kNoPid, kNoPid, ticket,
                 backend, transport_.now());
  if (p.hedges_used < config_.hedge_budget)
    p.hedge_timer = transport_.schedule(
        next_hedge_delay(ticket),
        [this, ticket] { on_hedge_timer(ticket); });
}

VDuration HedgedServer::next_hedge_delay(std::uint64_t ticket) {
  return policy_.hedge_delay(config_.hedge_delay, ticket);
}

void HedgedServer::handle_exec_done(NodeId from, const SvcExecDone& d) {
  auto b = breakers_.find(from);
  if (b != breakers_.end()) b->second.record_success();
  auto it = pendings_.find(d.ticket);
  if (it == pendings_.end()) return;  // late answer: already finished
  finish(d.ticket, SvcStatus::kOk, d.value, 0);
}

void HedgedServer::on_deadline(std::uint64_t ticket) {
  auto it = pendings_.find(ticket);
  if (it == pendings_.end()) return;
  Pending& p = it->second;
  p.deadline_timer = kNoTimer;
  // Attempts still outstanding at the deadline are failures the breaker
  // should know about — a backend that never answers is indistinguishable
  // from a dead one at this granularity.
  for (NodeId backend : p.outstanding) {
    auto b = breakers_.find(backend);
    if (b != breakers_.end() && b->second.record_failure(transport_.now())) {
      ++stats_.breaker_opens;
      MW_TRACE_EVENT(trace::EventKind::kSvcBreaker, kNoPid, kNoPid, backend,
                     static_cast<std::uint64_t>(BreakerState::kOpen),
                     transport_.now());
    }
  }
  finish(ticket, SvcStatus::kFailed, 0, 0);
}

void HedgedServer::handle_backend_failure(NodeId backend) {
  std::vector<std::uint64_t> affected;
  for (const auto& [ticket, p] : pendings_)
    if (std::find(p.outstanding.begin(), p.outstanding.end(), backend) !=
        p.outstanding.end())
      affected.push_back(ticket);
  for (std::uint64_t ticket : affected) {
    auto it = pendings_.find(ticket);
    if (it == pendings_.end()) continue;
    Pending& p = it->second;
    p.outstanding.erase(
        std::remove(p.outstanding.begin(), p.outstanding.end(), backend),
        p.outstanding.end());
    if (p.outstanding.empty() && !p.local) fail_over(p);
  }
}

void HedgedServer::fail_over(Pending& p) {
  const std::uint64_t ticket = p.ticket;
  while (p.retries_used < config_.retry_budget) {
    const NodeId backend = pick_backend(p.tried, false);
    const NodeId fresh = backend != 0 ? backend : pick_backend({}, false);
    if (fresh == 0) break;
    ++p.retries_used;
    if (!dispatch_remote(p, fresh)) continue;
    ++stats_.failovers;
    MW_TRACE_EVENT(trace::EventKind::kSvcFailover, kNoPid, kNoPid, ticket,
                   fresh, transport_.now());
    return;
  }
  // Budget burned or nobody left: graceful degradation.
  ++stats_.local_fallbacks;
  MW_TRACE_EVENT(trace::EventKind::kSvcLocalFallback, kNoPid, kNoPid, ticket,
                 0, transport_.now());
  run_local(p);
}

void HedgedServer::finish(std::uint64_t ticket, SvcStatus status,
                          std::uint64_t value, std::uint8_t flags) {
  auto it = pendings_.find(ticket);
  if (it == pendings_.end()) return;
  Pending p = std::move(it->second);
  pendings_.erase(it);
  if (p.hedge_timer != kNoTimer) transport_.cancel(p.hedge_timer);
  if (p.deadline_timer != kNoTimer) transport_.cancel(p.deadline_timer);
  if (p.local_timer != kNoTimer) transport_.cancel(p.local_timer);
  if (p.dispatched) {
    --inflight_;
  } else {
    auto q = std::find(queue_.begin(), queue_.end(), ticket);
    if (q != queue_.end()) queue_.erase(q);
  }

  sessions_.commit(p.client, p.seq, status, value, effects_);
  if (status == SvcStatus::kOk) {
    ++stats_.ok;
    // Feed the hedge-timing reservoir: admission-to-commit latency of
    // completed requests is the distribution whose p95 adaptive hedging
    // waits out. Failures are censored at the deadline and excluded.
    policy_.observe_latency(transport_.now() - p.arrived);
    MW_TRACE_EVENT(trace::EventKind::kSvcResponse, kNoPid, kNoPid, p.client,
                   p.seq, transport_.now());
  } else {
    ++stats_.failed;
  }
  respond(p.client, p.seq, status, value, flags);
  pump_queue();
}

std::size_t HedgedServer::shed_pendings_if(
    const std::function<bool(NodeId)>& pred) {
  std::vector<std::uint64_t> affected;
  for (const auto& [ticket, p] : pendings_)
    if (pred(p.client)) affected.push_back(ticket);
  for (std::uint64_t ticket : affected) {
    auto it = pendings_.find(ticket);
    if (it == pendings_.end()) continue;
    Pending p = std::move(it->second);
    pendings_.erase(it);
    if (p.hedge_timer != kNoTimer) transport_.cancel(p.hedge_timer);
    if (p.deadline_timer != kNoTimer) transport_.cancel(p.deadline_timer);
    if (p.local_timer != kNoTimer) transport_.cancel(p.local_timer);
    if (p.dispatched) {
      --inflight_;
    } else {
      auto q = std::find(queue_.begin(), queue_.end(), ticket);
      if (q != queue_.end()) queue_.erase(q);
    }
    ++stats_.shed;
    MW_TRACE_EVENT(trace::EventKind::kSvcShed, kNoPid, kNoPid, p.client,
                   queue_.size(), transport_.now());
    respond(p.client, p.seq, SvcStatus::kShed, 0, 0);
  }
  if (!affected.empty()) pump_queue();
  return affected.size();
}

void HedgedServer::respond(NodeId client, std::uint64_t seq, SvcStatus status,
                           std::uint64_t value, std::uint8_t flags) {
  SvcResponse r;
  r.client = client;
  r.seq = seq;
  r.status = status;
  r.value = value;
  r.flags = flags;
  const Bytes frame = encode_response(r);
  transport_.send(self_, client,
                  std::span<const std::uint8_t>(frame.data(), frame.size()));
}

void HedgedServer::pump_queue() {
  if (pumping_) return;
  pumping_ = true;
  while (inflight_ < config_.max_inflight && !queue_.empty()) {
    const std::uint64_t ticket = queue_.front();
    queue_.pop_front();
    dispatch(ticket);
  }
  pumping_ = false;
}

void HedgedServer::health_tick() {
  if (closed_) return;
  for (const PeerHealth::Transition& t : health_.check(transport_.now())) {
    auto b = breakers_.find(t.peer);
    if (b == breakers_.end()) continue;
    if (t.state == PeerState::kDead) {
      if (b->second.on_peer_dead(transport_.now())) {
        ++stats_.breaker_opens;
        MW_TRACE_EVENT(trace::EventKind::kSvcBreaker, kNoPid, kNoPid, t.peer,
                       static_cast<std::uint64_t>(BreakerState::kOpen),
                       transport_.now());
      }
      handle_backend_failure(t.peer);
    } else if (t.state == PeerState::kAlive) {
      // Resurrection: better evidence than the cooldown timer — arm the
      // half-open probe immediately.
      b->second.on_peer_resurrected();
      MW_TRACE_EVENT(trace::EventKind::kSvcBreaker, kNoPid, kNoPid, t.peer,
                     static_cast<std::uint64_t>(b->second.state(
                         transport_.now())),
                     transport_.now());
    }
  }
  health_timer_ = transport_.schedule(config_.health.heartbeat_interval,
                                      [this] { health_tick(); });
}

void HedgedServer::brownout_tick() {
  if (closed_) return;
  std::uint64_t deferred = window_deferred_;
  if (stats_.local_races > 0) {
    // Scheduler admission deferrals count toward the pressure signal; the
    // guard keeps an idle (purely remote) server from spawning the pool.
    const std::uint64_t total = runtime_.scheduler().stats()
                                    .admission_deferred;
    deferred += total - sched_deferred_seen_;
    sched_deferred_seen_ = total;
  }
  const double rate =
      window_admitted_ > 0
          ? static_cast<double>(deferred) /
                static_cast<double>(window_admitted_)
          : 0.0;
  const auto permille = static_cast<std::uint64_t>(rate * 1000.0);
  if (!brownout_ && window_admitted_ > 0 && rate > config_.brownout_enter) {
    brownout_ = true;
    ++stats_.brownout_enters;
    MW_TRACE_EVENT(trace::EventKind::kSvcBrownout, kNoPid, kNoPid, 1,
                   permille, transport_.now());
  } else if (brownout_ && rate < config_.brownout_exit) {
    brownout_ = false;
    ++stats_.brownout_exits;
    MW_TRACE_EVENT(trace::EventKind::kSvcBrownout, kNoPid, kNoPid, 0,
                   permille, transport_.now());
  }
  window_admitted_ = 0;
  window_deferred_ = 0;
  brownout_timer_ = transport_.schedule(config_.brownout_window,
                                        [this] { brownout_tick(); });
}

NodeId HedgedServer::pick_backend(const std::vector<NodeId>& exclude,
                                  bool hedge) {
  const VTime now = transport_.now();
  const std::size_t n = backends_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (rr_ + i) % n;
    const NodeId b = backends_[idx];
    if (std::find(exclude.begin(), exclude.end(), b) != exclude.end())
      continue;
    const PeerState state = health_.state(b, now);
    if (state == PeerState::kDead) continue;
    auto br = breakers_.find(b);
    if (br == breakers_.end()) continue;
    if (hedge) {
      // Hedges only go to fully healthy peers: a suspect backend IS the
      // tail the hedge is trying to shave, and a half-open probe slot is
      // too precious to spend on speculative traffic.
      if (state != PeerState::kAlive ||
          br->second.state(now) != BreakerState::kClosed)
        continue;
    } else if (!br->second.allow(now)) {
      continue;
    }
    rr_ = idx + 1;
    return b;
  }
  return 0;
}

VDuration HedgedServer::draw_service_delay() {
  double d =
      rng_.next_exponential(static_cast<double>(config_.service_mean));
  if (rng_.next_bool(config_.tail_prob)) d *= config_.tail_factor;
  const auto v = static_cast<VDuration>(d);
  return v < 1 ? 1 : v;
}

bool HedgedServer::restore(const Bytes& image, const EffectLog& log) {
  if (!sessions_.restore(image)) return false;
  sessions_.reconcile(log);
  return true;
}

}  // namespace mw
