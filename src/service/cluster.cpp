#include "service/cluster.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "trace/trace.hpp"

namespace mw {

namespace {

// splitmix64 finalizer: every input bit affects every output bit, so
// client IDs and virtual-node indices spread uniformly over the ring no
// matter how sequential they are.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// HashRing

std::uint64_t HashRing::point(NodeId node, std::size_t replica) const {
  return mix64(seed_ ^ mix64(node) ^ mix64(replica * 0x100000001b3ull));
}

std::uint64_t HashRing::key_of(NodeId client) const {
  return mix64(seed_ ^ mix64(client));
}

void HashRing::add(NodeId node) {
  if (!members_.insert(node).second) return;
  for (std::size_t r = 0; r < vnodes_; ++r)
    ring_.emplace(std::make_pair(point(node, r), node), node);
}

bool HashRing::remove(NodeId node) {
  if (members_.erase(node) == 0) return false;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node)
      it = ring_.erase(it);
    else
      ++it;
  }
  return true;
}

NodeId HashRing::owner_of(NodeId client) const {
  if (ring_.empty()) return 0;
  auto it = ring_.lower_bound(std::make_pair(key_of(client), NodeId{0}));
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::vector<NodeId> HashRing::preference(NodeId client) const {
  std::vector<NodeId> out;
  if (ring_.empty()) return out;
  auto it = ring_.lower_bound(std::make_pair(key_of(client), NodeId{0}));
  for (std::size_t seen = 0; seen < ring_.size() && out.size() < members_.size();
       ++seen) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end())
      out.push_back(it->second);
    ++it;
  }
  return out;
}

// ---------------------------------------------------------------------------
// ClusterNode

ClusterNode::ClusterNode(Transport& transport, NodeId self,
                         const std::vector<NodeId>& members,
                         EffectLog& effects, ClusterConfig config)
    : transport_(transport),
      self_(self),
      config_(config),
      effects_(effects),
      health_(config.peer_health),
      ring_(config.seed, config.vnodes),
      server_(transport, self, effects, config.service) {
  for (NodeId m : members) {
    members_.insert(m);
    ring_.add(m);
    if (m != self_) health_.watch(m, transport_.now());
  }
  // The server bound itself in its ctor; interpose ahead of it so every
  // frame passes the cluster rules first.
  transport_.bind(self_, *this);
  update_fence();
  // Restart path: whatever the cluster committed while this node was down
  // (or in a previous life) must replay, not re-execute.
  effects_.refresh();
  reconcile_from_log();
  beat_timer_ = transport_.schedule(config_.beat_interval,
                                    [this] { beat_tick(); });
}

ClusterNode::~ClusterNode() {
  if (beat_timer_ != kNoTimer) transport_.cancel(beat_timer_);
  for (auto& [key, ph] : handoffs_)
    if (ph.timer != kNoTimer) transport_.cancel(ph.timer);
  transport_.unbind(self_);
  // server_'s dtor runs next and unbinds again — harmlessly idempotent.
}

void ClusterNode::on_message(NodeId from,
                             std::span<const std::uint8_t> payload) {
  if (members_.count(from) && from != self_)
    health_.heard_from(from, transport_.now());
  switch (svc_message_tag(payload)) {
    case kSvcTagRequest:
      if (auto r = decode_request(payload))
        handle_request_frame(from, *r, payload);
      return;
    case kSvcTagHandoff:
      if (auto h = decode_handoff(payload)) handle_handoff(from, *h);
      return;
    case kSvcTagHandoffAck:
      if (auto a = decode_handoff_ack(payload)) handle_handoff_ack(*a);
      return;
    case kSvcTagBeat:
      if (members_.count(from)) return;  // peer liveness, consumed above
      break;  // a backend's beat: the server's PeerHealth wants it
    default:
      break;
  }
  server_.on_message(from, payload);
}

void ClusterNode::handle_request_frame(NodeId from, const SvcRequest& r,
                                       std::span<const std::uint8_t> payload) {
  if (fenced_) {
    // Minority side of a partition: serving here risks committing what the
    // majority's new owner is also executing. Shed; the client routes on.
    ++stats_.fence_sheds;
    respond_direct(r.client, r.seq, SvcStatus::kShed, 0, 0);
    return;
  }
  const NodeId owner = ring_.owner_of(r.client);
  if (owner != self_) {
    ++stats_.misroutes;
    MW_TRACE_EVENT(trace::EventKind::kSvcClusterMisroute, kNoPid, kNoPid,
                   r.client, owner, transport_.now());
    respond_direct(r.client, r.seq, SvcStatus::kShed, 0, 0);
    return;
  }
  // Cluster-wide replay check: an effect committed by ANY node (found via
  // the shared log) answers a retry from cache, never re-executes. The
  // refresh matters on the socket backend, where sibling processes appended
  // to the shared file since the last beat; on the sim's shared in-memory
  // log it is a no-op.
  effects_.refresh();
  advance_log_index();
  auto it = log_index_.find({r.client, r.seq});
  if (it != log_index_.end()) {
    ++stats_.log_replays;
    MW_TRACE_EVENT(trace::EventKind::kSvcReplay, kNoPid, kNoPid, r.client,
                   r.seq, transport_.now());
    respond_direct(r.client, r.seq, SvcStatus::kOk, it->second,
                   kSvcFlagReplayed);
    return;
  }
  server_.on_message(from, payload);
}

void ClusterNode::handle_handoff(NodeId /*from*/, const SvcHandoff& h) {
  if (!server_.sessions().absorb(h.image)) return;  // bad image: no ack
  ++stats_.handoffs_received;
  const Bytes ack = encode_handoff_ack({self_, h.epoch});
  transport_.send(self_, h.from,
                  std::span<const std::uint8_t>(ack.data(), ack.size()));
}

void ClusterNode::handle_handoff_ack(const SvcHandoffAck& a) {
  auto it = handoffs_.find({a.from, a.epoch});
  if (it == handoffs_.end()) return;  // duplicate ack
  if (it->second.timer != kNoTimer) transport_.cancel(it->second.timer);
  handoffs_.erase(it);
  ++stats_.handoff_acks;
}

void ClusterNode::beat_tick() {
  const VTime now = transport_.now();
  const Bytes beat = encode_beat();
  for (NodeId m : members_)
    if (m != self_)
      transport_.send(self_, m,
                      std::span<const std::uint8_t>(beat.data(), beat.size()));
  for (const PeerHealth::Transition& t : health_.check(now)) {
    if (t.state == PeerState::kDead && ring_.contains(t.peer)) {
      probation_until_.erase(t.peer);
      evict(t.peer);
    } else if (t.state == PeerState::kAlive && !ring_.contains(t.peer) &&
               members_.count(t.peer)) {
      // Resurrection: half-open probation before the ring churns.
      probation_until_[t.peer] = now + config_.probation;
    }
  }
  for (auto it = probation_until_.begin(); it != probation_until_.end();) {
    const NodeId peer = it->first;
    if (health_.state(peer, now) != PeerState::kAlive) {
      it = probation_until_.erase(it);  // relapsed; wait for the next beat
    } else if (now >= it->second) {
      it = probation_until_.erase(it);
      rejoin(peer);
    } else {
      ++it;
    }
  }
  effects_.refresh();
  advance_log_index();
  beat_timer_ = transport_.schedule(config_.beat_interval,
                                    [this] { beat_tick(); });
}

void ClusterNode::evict(NodeId peer) {
  ring_.remove(peer);
  ++epoch_;
  ++stats_.evictions;
  MW_TRACE_EVENT(trace::EventKind::kSvcClusterEvict, kNoPid, kNoPid, peer,
                 epoch_, transport_.now());
  // A dead peer will never ack — its committed state lives in the log.
  for (auto it = handoffs_.begin(); it != handoffs_.end();) {
    if (it->second.to == peer) {
      if (it->second.timer != kNoTimer) transport_.cancel(it->second.timer);
      it = handoffs_.erase(it);
    } else {
      ++it;
    }
  }
  update_fence();
  if (!fenced_) {
    // This node may have just inherited the dead peer's ranges: redo the
    // shared log so the inherited clients' committed effects replay.
    effects_.refresh();
    reconcile_from_log();
  }
}

void ClusterNode::rejoin(NodeId peer) {
  ring_.add(peer);
  ++epoch_;
  ++stats_.rejoins;
  MW_TRACE_EVENT(trace::EventKind::kSvcClusterRejoin, kNoPid, kNoPid, peer,
                 epoch_, transport_.now());
  update_fence();
  hand_off_lost_sessions();
  if (!fenced_) {
    effects_.refresh();
    reconcile_from_log();
  }
}

void ClusterNode::hand_off_lost_sessions() {
  // Revoke first, uncommitted: finishing a pending for a client this node
  // no longer owns could race the new owner into a double execution.
  stats_.revoked += server_.shed_pendings_if(
      [this](NodeId client) { return ring_.owner_of(client) != self_; });
  for (NodeId m : ring_.members()) {
    if (m == self_) continue;
    auto owned_by_m = [this, m](NodeId client) {
      return ring_.owner_of(client) == m;
    };
    Bytes image = server_.sessions().snapshot_clients(owned_by_m);
    // MWSES01 layout: magic u32, then the session count.
    ByteReader r(std::span<const std::uint8_t>(image.data(), image.size()));
    r.get_u32();
    const std::uint64_t carried = r.get_u64();
    if (carried == 0) continue;
    server_.sessions().erase_clients(owned_by_m);
    queue_handoff(m, std::move(image), carried);
  }
}

void ClusterNode::queue_handoff(NodeId to, Bytes image,
                                std::uint64_t carried) {
  PendingHandoff ph;
  ph.to = to;
  ph.epoch = epoch_;
  ph.image = std::move(image);
  ph.carried = carried;
  send_handoff(ph);
  ++stats_.handoffs_sent;
  MW_TRACE_EVENT(trace::EventKind::kSvcClusterHandoff, kNoPid, kNoPid, to,
                 carried, transport_.now());
  const auto key = std::make_pair(to, ph.epoch);
  auto [it, inserted] = handoffs_.emplace(key, std::move(ph));
  if (!inserted) return;  // same dest + epoch: already pending
  const std::uint64_t epoch = it->second.epoch;
  it->second.timer = transport_.schedule(
      config_.handoff_retry, [this, to, epoch] { retry_handoff(to, epoch); });
}

void ClusterNode::retry_handoff(NodeId to, std::uint64_t epoch) {
  auto it = handoffs_.find({to, epoch});
  if (it == handoffs_.end()) return;
  ++stats_.handoff_retries;
  send_handoff(it->second);
  it->second.timer = transport_.schedule(
      config_.handoff_retry, [this, to, epoch] { retry_handoff(to, epoch); });
}

void ClusterNode::send_handoff(const PendingHandoff& ph) {
  SvcHandoff h;
  h.from = self_;
  h.epoch = ph.epoch;
  h.image = ph.image;
  const Bytes frame = encode_handoff(h);
  transport_.send(self_, ph.to,
                  std::span<const std::uint8_t>(frame.data(), frame.size()));
}

void ClusterNode::update_fence() {
  const bool was = fenced_;
  fenced_ = config_.fencing && members_.size() > 1 &&
            ring_.size() * 2 <= members_.size();
  if (fenced_ && !was) {
    // Entering the minority: everything in flight is revoked uncommitted.
    stats_.revoked +=
        server_.shed_pendings_if([](NodeId) { return true; });
  } else if (!fenced_ && was) {
    // Back in the majority: catch up on what the others committed.
    effects_.refresh();
    reconcile_from_log();
  }
}

void ClusterNode::reconcile_from_log() {
  ++stats_.reconciles;
  server_.sessions().reconcile(effects_);
  // reconcile() materializes a session for every client in the log —
  // cluster-wide. Keep only the ones this ring assigns here; the log (and
  // the admission-time index over it) still answers for everyone else.
  // Safe because every churn path sheds non-owned pendings before calling
  // this, so no live execution references a pruned session.
  server_.sessions().erase_clients(
      [this](NodeId client) { return ring_.owner_of(client) != self_; });
  advance_log_index();
}

void ClusterNode::advance_log_index() {
  const std::vector<Effect>& entries = effects_.entries();
  for (; log_seen_ < entries.size(); ++log_seen_) {
    const Effect& e = entries[log_seen_];
    log_index_.emplace(std::make_pair(e.client, e.seq), e.value);
  }
}

void ClusterNode::respond_direct(NodeId client, std::uint64_t seq,
                                 SvcStatus status, std::uint64_t value,
                                 std::uint8_t flags) {
  SvcResponse r;
  r.client = client;
  r.seq = seq;
  r.status = status;
  r.value = value;
  r.flags = flags;
  const Bytes frame = encode_response(r);
  transport_.send(self_, client,
                  std::span<const std::uint8_t>(frame.data(), frame.size()));
}

void ClusterNode::add_node(NodeId node) {
  members_.insert(node);
  if (node == self_) return;
  health_.watch(node, transport_.now());
  if (!ring_.contains(node)) rejoin(node);
}

void ClusterNode::remove_node(NodeId node) {
  members_.erase(node);
  if (node != self_) health_.forget(node);
  probation_until_.erase(node);
  if (!ring_.contains(node)) {
    update_fence();
    return;
  }
  ring_.remove(node);
  ++epoch_;
  MW_TRACE_EVENT(trace::EventKind::kSvcClusterEvict, kNoPid, kNoPid, node,
                 epoch_, transport_.now());
  if (node == self_) {
    // Planned departure: everything this node holds moves to the
    // survivors, shed-then-handoff, before traffic stops arriving.
    hand_off_lost_sessions();
    update_fence();
    return;
  }
  ++stats_.evictions;
  update_fence();
  if (!fenced_) {
    effects_.refresh();
    reconcile_from_log();
  }
}

// ---------------------------------------------------------------------------
// ClusterRouter

ClusterRouter::ClusterRouter(const std::vector<NodeId>& members,
                             std::uint64_t seed, std::size_t vnodes)
    : ring_(seed, vnodes) {
  for (NodeId m : members) ring_.add(m);
}

void ClusterRouter::attach(ServiceClient& client) {
  client.route = [this](NodeId self, NodeId /*current*/,
                        std::size_t attempt) -> NodeId {
    const std::vector<NodeId> pref = ring_.preference(self);
    if (pref.empty()) return 0;
    return pref[attempt % pref.size()];
  };
  client.set_server(ring_.owner_of(client.self()));
}

// ---------------------------------------------------------------------------
// FileEffectLog

namespace {

constexpr std::size_t kEffectRecordBytes = 32;

void put_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

FileEffectLog::FileEffectLog(const std::string& path, NodeId writer)
    : writer_(writer) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  refresh();  // fold in whatever predecessors already committed
}

FileEffectLog::~FileEffectLog() {
  if (fd_ >= 0) ::close(fd_);
}

void FileEffectLog::append(const Effect& e) {
  if (fd_ >= 0) {
    std::uint8_t rec[kEffectRecordBytes];
    put_le64(rec + 0, writer_);
    put_le64(rec + 8, e.client);
    put_le64(rec + 16, e.seq);
    put_le64(rec + 24, e.value);
    // One O_APPEND write per record: atomic on local filesystems, so a
    // SIGKILL between records never tears the log.
    [[maybe_unused]] ssize_t n = ::write(fd_, rec, kEffectRecordBytes);
  }
  EffectLog::append(e);
}

std::size_t FileEffectLog::refresh() {
  if (fd_ < 0) return 0;
  std::size_t folded = 0;
  std::uint8_t rec[kEffectRecordBytes];
  for (;;) {
    const ssize_t n = ::pread(fd_, rec, kEffectRecordBytes,
                              static_cast<off_t>(read_offset_));
    if (n < static_cast<ssize_t>(kEffectRecordBytes)) break;
    read_offset_ += kEffectRecordBytes;
    const NodeId writer = get_le64(rec + 0);
    if (writer == writer_) continue;  // ours: appended live already
    Effect e;
    e.client = get_le64(rec + 8);
    e.seq = get_le64(rec + 16);
    e.value = get_le64(rec + 24);
    entries_.push_back(e);
    ++folded;
  }
  return folded;
}

std::vector<Effect> FileEffectLog::read_all(const std::string& path) {
  std::vector<Effect> out;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return out;
  std::uint8_t rec[kEffectRecordBytes];
  off_t off = 0;
  for (;;) {
    const ssize_t n = ::pread(fd, rec, kEffectRecordBytes, off);
    if (n < static_cast<ssize_t>(kEffectRecordBytes)) break;
    off += kEffectRecordBytes;
    Effect e;
    e.client = get_le64(rec + 8);
    e.seq = get_le64(rec + 16);
    e.value = get_le64(rec + 24);
    out.push_back(e);
  }
  ::close(fd);
  return out;
}

}  // namespace mw
