// The hedged-service cluster (ROADMAP's "scale the hedged service out"):
// N HedgedServer nodes behind consistent-hash session routing, with the
// exactly-once guarantee surviving re-routing. The paper's multiple-worlds
// framing extends one level up — which *node* owns which session is just
// another scheduling policy (the or-parallel splitting-strategies catalogue,
// PAPERS.md arXiv:1301.7690), and like every policy here it comes with an
// explicit, testable transfer protocol. docs/CLUSTER.md is the operations
// manual for this file.
//
// Placement: a seeded consistent-hash ring over client IDs (HashRing,
// `vnodes` virtual points per node). Every participant — each ClusterNode
// and the client-side ClusterRouter — builds the same ring from the same
// (seed, vnodes, membership), so ownership is a pure function and no
// placement traffic exists. Membership changes move only the departed or
// arrived node's ranges; everything else stays put.
//
// Safety rules, outermost first (the ClusterFaultMatrix drives all four):
//
//   1. Ownership — a node serves a request only for clients its *current*
//      ring assigns to it. Anything else is answered kShed and traced as a
//      misroute; the client's router treats that shed as a re-route hint
//      and retries the SAME seq at its next preference, so the session
//      layer (not a new seq) absorbs the duplicate.
//   2. Fencing — a node that can see at most half of the configured
//      membership assumes it is the partitioned minority: it sheds all
//      traffic and revokes every pending request WITHOUT committing. The
//      majority side serves; split-brain double-execution is fenced off.
//      (The per-node HedgedServer still degrades to its local kPool race
//      when its *backends* are partitioned away — fencing is about peer
//      nodes, degradation about executors.)
//   3. Revocation — when a ring change moves a client away mid-flight, the
//      old owner sheds that pending uncommitted (HedgedServer::
//      shed_pendings_if). Committing after losing ownership could race the
//      new owner into a double execution.
//   4. Handoff + reconciliation — planned moves (rejoin after probation,
//      add_node/remove_node) ship an MWSES01 snapshot of the moved
//      sessions in a kSvcHandoff frame, retried until the kSvcHandoffAck
//      arrives; SessionTable::absorb is idempotent and monotone, so
//      duplicated or reordered handoffs are no-ops. Node *death* cannot
//      hand anything off — the survivors instead redo the shared EffectLog
//      (SessionTable::reconcile), which holds every committed effect
//      cluster-wide; and every node checks arriving (client, seq) pairs
//      against the log so a retry of an effect committed elsewhere replays
//      the logged value instead of re-executing.
//
// The ring is eventually consistent — there is deliberately no consensus
// layer. Rules 1–4 close every window the fault matrix drives (drop, dup,
// delay, SIGKILL, rebalance); the residual exposure and its tuning are
// documented in docs/CLUSTER.md ("Failure modes").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "service/hedged_server.hpp"
#include "service/service.hpp"
#include "service/service_client.hpp"

namespace mw {

/// Seeded consistent-hash ring: `vnodes` virtual points per member, keyed
/// by (hash, node) so the layout is a pure function of (seed, membership)
/// — independent of insertion order, identical on every participant.
class HashRing {
 public:
  explicit HashRing(std::uint64_t seed = 1, std::size_t vnodes = 16)
      : seed_(seed), vnodes_(vnodes < 1 ? 1 : vnodes) {}

  void add(NodeId node);
  bool remove(NodeId node);
  bool contains(NodeId node) const { return members_.count(node) != 0; }
  std::size_t size() const { return members_.size(); }
  const std::set<NodeId>& members() const { return members_; }

  /// The member owning `client`'s sessions; 0 when the ring is empty.
  NodeId owner_of(NodeId client) const;

  /// Every member, in clockwise order from the client's hash point: the
  /// owner first, then the fallbacks a router should try on silence or
  /// shed. Deterministic per (seed, membership, client).
  std::vector<NodeId> preference(NodeId client) const;

 private:
  std::uint64_t point(NodeId node, std::size_t replica) const;
  std::uint64_t key_of(NodeId client) const;

  std::uint64_t seed_;
  std::size_t vnodes_;
  // (hash, node) -> node. The pair key makes 64-bit point collisions
  // deterministic instead of insertion-order-dependent.
  std::map<std::pair<std::uint64_t, NodeId>, NodeId> ring_;
  std::set<NodeId> members_;
};

struct ClusterConfig {
  std::uint64_t seed = 1;      // ring seed — identical cluster-wide
  std::size_t vnodes = 16;     // virtual points per node
  VDuration beat_interval = vt_ms(10);  // node-to-node liveness beats
  PeerHealthConfig peer_health{.heartbeat_interval = vt_ms(10),
                               .suspect_after = vt_ms(40),
                               .dead_after = vt_ms(120)};
  VDuration handoff_retry = vt_ms(10);  // resend cadence until the ack
  /// Breaker-style resurrection: a dead peer heard from again must stay
  /// alive this long before it rejoins the ring (half-open probation — a
  /// flapping node must not churn ownership on every beat).
  VDuration probation = vt_ms(60);
  bool fencing = true;  // minority partitions shed instead of serving
  ServiceConfig service;  // per-node HedgedServer configuration
};

struct ClusterStats {
  std::uint64_t misroutes = 0;      // requests refused as non-owner
  std::uint64_t fence_sheds = 0;    // requests refused while fenced
  std::uint64_t evictions = 0;      // peers dropped from the ring
  std::uint64_t rejoins = 0;        // peers re-added after probation
  std::uint64_t handoffs_sent = 0;
  std::uint64_t handoff_retries = 0;
  std::uint64_t handoffs_received = 0;
  std::uint64_t handoff_acks = 0;   // acks that settled a pending handoff
  std::uint64_t log_replays = 0;    // answered from the cluster-wide log
  std::uint64_t reconciles = 0;     // EffectLog redo passes
  std::uint64_t revoked = 0;        // pendings shed uncommitted
};

/// One cluster member: interposes on the node's transport binding ahead of
/// its embedded HedgedServer, enforcing the safety rules above before any
/// frame reaches the service. Single-threaded on the transport's driver
/// thread, like everything on the seam.
class ClusterNode : public TransportReceiver {
 public:
  /// `members` is the configured universe (all node IDs, self included) —
  /// the fencing denominator. All start presumed alive; the first beats
  /// settle reality. `effects` is the cluster-shared durable sink: one
  /// EffectLog object shared by every node in-process (sim), or a
  /// FileEffectLog over one shared file across processes (socket).
  ClusterNode(Transport& transport, NodeId self,
              const std::vector<NodeId>& members, EffectLog& effects,
              ClusterConfig config = {});
  ~ClusterNode() override;

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  NodeId self() const { return self_; }
  HedgedServer& server() { return server_; }
  const HedgedServer& server() const { return server_; }
  const HashRing& ring() const { return ring_; }
  std::uint64_t epoch() const { return epoch_; }
  bool fenced() const { return fenced_; }
  const ClusterStats& stats() const { return stats_; }
  bool owns(NodeId client) const { return ring_.owner_of(client) == self_; }

  /// Planned rebalance: grow or shrink the ring (and the fencing
  /// universe). The caller drives the same call on every participant;
  /// sessions moving away from this node are handed off immediately.
  void add_node(NodeId node);
  void remove_node(NodeId node);

  void on_message(NodeId from, std::span<const std::uint8_t> payload) override;

 private:
  struct PendingHandoff {
    NodeId to = 0;
    std::uint64_t epoch = 0;
    Bytes image;
    std::uint64_t carried = 0;  // sessions in the image
    TimerId timer = kNoTimer;
  };

  void handle_request_frame(NodeId from, const SvcRequest& r,
                            std::span<const std::uint8_t> payload);
  void handle_handoff(NodeId from, const SvcHandoff& h);
  void handle_handoff_ack(const SvcHandoffAck& a);
  void beat_tick();
  void evict(NodeId peer);
  void rejoin(NodeId peer);
  /// Revokes + hands off everything this node holds but no longer owns.
  void hand_off_lost_sessions();
  void queue_handoff(NodeId to, Bytes image, std::uint64_t carried);
  void retry_handoff(NodeId to, std::uint64_t epoch);
  void send_handoff(const PendingHandoff& ph);
  void update_fence();
  void reconcile_from_log();
  void advance_log_index();
  void respond_direct(NodeId client, std::uint64_t seq, SvcStatus status,
                      std::uint64_t value, std::uint8_t flags);

  Transport& transport_;
  NodeId self_;
  ClusterConfig config_;
  EffectLog& effects_;
  PeerHealth health_;
  HashRing ring_;
  std::set<NodeId> members_;  // configured universe (fencing denominator)
  std::uint64_t epoch_ = 0;   // bumped on every local ring change
  bool fenced_ = false;
  std::map<NodeId, VTime> probation_until_;
  std::map<std::pair<NodeId, std::uint64_t>, PendingHandoff> handoffs_;
  // Cluster-wide (client, seq) -> value index over the shared EffectLog,
  // advanced incrementally — the admission-time replay check.
  std::map<std::pair<NodeId, std::uint64_t>, std::uint64_t> log_index_;
  std::size_t log_seen_ = 0;
  TimerId beat_timer_ = kNoTimer;
  ClusterStats stats_;
  HedgedServer server_;  // last: its ctor binds, then we re-bind over it
};

/// Client-side placement: the same seeded ring, attached to a
/// ServiceClient as its routing hook. The owner is tried first; silence or
/// a shed rotates through the client's preference list with the same seq.
class ClusterRouter {
 public:
  explicit ClusterRouter(const std::vector<NodeId>& members,
                         std::uint64_t seed = 1, std::size_t vnodes = 16);

  const HashRing& ring() const { return ring_; }
  NodeId owner_of(NodeId client) const { return ring_.owner_of(client); }
  void add_node(NodeId node) { ring_.add(node); }
  void remove_node(NodeId node) { ring_.remove(node); }

  void attach(ServiceClient& client);

 private:
  HashRing ring_;
};

/// Cross-process durable effect sink for the socket-backend cluster:
/// fixed 32-byte records (writer, client, seq, value) appended with one
/// O_APPEND write() each — atomic on local filesystems — so a SIGKILLed
/// server's committed effects survive for the survivors' reconcile and for
/// the harness's cluster-wide duplicates() check. refresh() folds in
/// records sibling processes appended since the last call (own records are
/// skipped: they entered the in-memory view at append() time).
class FileEffectLog : public EffectLog {
 public:
  FileEffectLog(const std::string& path, NodeId writer);
  ~FileEffectLog() override;

  bool valid() const { return fd_ >= 0; }
  void append(const Effect& e) override;
  std::size_t refresh() override;

  /// Every record in the file, every writer — the harness's cluster-wide
  /// view for EffectLog::duplicates().
  static std::vector<Effect> read_all(const std::string& path);

 private:
  int fd_ = -1;
  NodeId writer_ = 0;
  std::size_t read_offset_ = 0;  // file bytes already folded in
};

}  // namespace mw
