// The hedged-speculation service (ROADMAP's "millions of users" item): a
// request/response protocol on the Transport seam, built to survive the
// things production traffic does to a hedging server — duplicate requests,
// overload, slow and dead backends, partitions, and the server itself
// crashing mid-stream. The same code runs on SimTransport (deterministic
// fault matrices) and SocketTransport (real processes, real SIGKILLs).
//
// Message protocol (raw transport datagrams — deliberately *not* riding
// TransportChannel: the reliable channel's duplicate suppression would
// shield the server from exactly the retries and net.dup deliveries the
// session layer exists to absorb):
//
//   kSvcRequest  u8=1 | client u64 | seq u64 | deadline u64 | work u64
//                | payload u64                          client  -> server
//   kSvcResponse u8=2 | client u64 | seq u64 | status u8 | value u64
//                | flags u8                             server  -> client
//   kSvcExec     u8=3 | ticket u64 | work u64 | payload u64 | budget u64
//                                                       server  -> backend
//   kSvcExecDone u8=4 | ticket u64 | value u64          backend -> server
//   kSvcBeat     u8=5                                   backend -> server
//   kSvcHandoff  u8=6 | from u64 | epoch u64 | len u64
//                | image bytes                          node    -> node
//   kSvcHandoffAck u8=7 | from u64 | epoch u64         node    -> node
//
// `deadline` and `budget` are relative ticks (virtual on sim, µs on
// sockets) — absolute times cannot cross transports whose clocks differ.
// The workload is the same checkable recurrence transport_race uses
// (acc' = acc * K + step, seeded by the request payload), so every layer
// of retry/hedge/failover is *provable*: a response is correct iff its
// value equals service_reference(payload, work).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dist/transport.hpp"
#include "util/bytes.hpp"

namespace mw {

/// Response status codes (on the wire; append, never renumber).
enum class SvcStatus : std::uint8_t {
  kOk = 0,      // executed (or replayed), value is authoritative
  kShed = 1,    // refused at admission — retry against a less loaded server
  kStale = 2,   // seq below the client's session horizon (late duplicate)
  kFailed = 3,  // admitted but not completed within the deadline
};

const char* to_string(SvcStatus s);

/// kSvcResponse flag bits.
inline constexpr std::uint8_t kSvcFlagReplayed = 1;  // served from cache
inline constexpr std::uint8_t kSvcFlagLocal = 2;     // local race, no backend

/// The recurrence every request computes, seeded by its payload. The
/// coordinator-side correctness check for every execution path.
std::uint64_t service_reference(std::uint64_t payload, std::uint64_t work);

struct SvcRequest {
  NodeId client = 0;
  std::uint64_t seq = 0;
  VDuration deadline = 0;  // relative; 0 = server default
  std::uint64_t work = 0;
  std::uint64_t payload = 0;
};

struct SvcResponse {
  NodeId client = 0;
  std::uint64_t seq = 0;
  SvcStatus status = SvcStatus::kOk;
  std::uint64_t value = 0;
  std::uint8_t flags = 0;
};

struct SvcExec {
  std::uint64_t ticket = 0;
  std::uint64_t work = 0;
  std::uint64_t payload = 0;
  VDuration budget = 0;  // relative deadline residue
};

struct SvcExecDone {
  std::uint64_t ticket = 0;
  std::uint64_t value = 0;
};

/// Session-ownership transfer between cluster nodes (src/service/cluster).
/// `image` is an MWSES01 SessionTable snapshot restricted to the clients
/// whose ownership moved; `epoch` is the sender's ring epoch, so a receiver
/// can discard a handoff that raced a newer ring change. Retried until the
/// matching ack arrives — absorb() is idempotent, so duplicates are safe.
struct SvcHandoff {
  NodeId from = 0;
  std::uint64_t epoch = 0;
  Bytes image;
};

struct SvcHandoffAck {
  NodeId from = 0;
  std::uint64_t epoch = 0;
};

Bytes encode_request(const SvcRequest& r);
Bytes encode_response(const SvcResponse& r);
Bytes encode_exec(const SvcExec& e);
Bytes encode_exec_done(const SvcExecDone& d);
Bytes encode_beat();
Bytes encode_handoff(const SvcHandoff& h);
Bytes encode_handoff_ack(const SvcHandoffAck& a);

/// First byte of a service payload, or 0 for an empty/foreign frame.
std::uint8_t svc_message_tag(std::span<const std::uint8_t> payload);

inline constexpr std::uint8_t kSvcTagRequest = 1;
inline constexpr std::uint8_t kSvcTagResponse = 2;
inline constexpr std::uint8_t kSvcTagExec = 3;
inline constexpr std::uint8_t kSvcTagExecDone = 4;
inline constexpr std::uint8_t kSvcTagBeat = 5;
inline constexpr std::uint8_t kSvcTagHandoff = 6;
inline constexpr std::uint8_t kSvcTagHandoffAck = 7;

/// Decoders return nullopt on any truncated or mis-tagged frame — an
/// unreliable transport may hand the service anything.
std::optional<SvcRequest> decode_request(std::span<const std::uint8_t> p);
std::optional<SvcResponse> decode_response(std::span<const std::uint8_t> p);
std::optional<SvcExec> decode_exec(std::span<const std::uint8_t> p);
std::optional<SvcExecDone> decode_exec_done(std::span<const std::uint8_t> p);
std::optional<SvcHandoff> decode_handoff(std::span<const std::uint8_t> p);
std::optional<SvcHandoffAck> decode_handoff_ack(
    std::span<const std::uint8_t> p);

/// One committed side effect. The log is the service's *external* durable
/// sink — it outlives the server object, which is exactly what makes the
/// exactly-once claim testable across a crash/restart: the restarted
/// server must never append a (client, seq) pair the log already holds.
struct Effect {
  NodeId client = 0;
  std::uint64_t seq = 0;
  std::uint64_t value = 0;
};

class EffectLog {
 public:
  virtual ~EffectLog() = default;
  virtual void append(const Effect& e) { entries_.push_back(e); }
  /// Folds in effects other writers committed since the last call. The
  /// in-memory log is always current (one process, one object) so the
  /// default is a no-op; FileEffectLog (src/service/cluster.hpp) overrides
  /// it to pull records sibling *processes* appended to the shared file.
  virtual std::size_t refresh() { return 0; }
  const std::vector<Effect>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// (client, seq) pairs appearing more than once — the exactly-once
  /// invariant is `duplicates() == 0`, machine-checked per fault seed.
  std::size_t duplicates() const;

 protected:
  std::vector<Effect> entries_;
};

}  // namespace mw
