#include "service/service_client.hpp"

#include <algorithm>

namespace mw {

ServiceClient::ServiceClient(Transport& transport, NodeId self, NodeId server,
                             ClientConfig config)
    : transport_(transport), self_(self), server_(server), config_(config) {
  transport_.bind(self_, *this);
}

ServiceClient::~ServiceClient() {
  if (retry_timer_ != kNoTimer) transport_.cancel(retry_timer_);
  transport_.unbind(self_);
}

std::uint64_t ServiceClient::call(std::uint64_t work, std::uint64_t payload) {
  current_ = CallRecord{};
  current_.seq = ++next_seq_;
  current_.work = work;
  current_.payload = payload;
  current_.sent_at = transport_.now();
  outstanding_ = true;
  if (route) server_ = route(self_, server_, 0);
  send_current();
  return current_.seq;
}

void ServiceClient::send_current() {
  SvcRequest r;
  r.client = self_;
  r.seq = current_.seq;
  // Deadline residue: the server should not spend budget this call has
  // already burned waiting for a lost frame.
  const VDuration spent = transport_.now() - current_.sent_at;
  r.deadline = config_.deadline > spent ? config_.deadline - spent : 1;
  r.work = current_.work;
  r.payload = current_.payload;
  const Bytes frame = encode_request(r);
  transport_.send(self_, server_,
                  std::span<const std::uint8_t>(frame.data(), frame.size()));
  double rto = static_cast<double>(config_.retry_after);
  for (std::size_t i = 0; i < current_.retries; ++i)
    rto *= config_.backoff_factor;
  rto = std::min(rto, static_cast<double>(config_.retry_cap));
  retry_timer_ = transport_.schedule(static_cast<VDuration>(rto),
                                     [this] { on_retry_timer(); });
}

void ServiceClient::on_retry_timer() {
  retry_timer_ = kNoTimer;
  if (!outstanding_) return;
  if (current_.retries >= config_.max_retries) {
    complete(false, nullptr);  // persistent silence: local timeout
    return;
  }
  ++current_.retries;
  if (route) server_ = route(self_, server_, current_.retries);
  send_current();
}

void ServiceClient::on_message(NodeId from,
                               std::span<const std::uint8_t> payload) {
  if (from != server_ || !outstanding_) return;
  if (svc_message_tag(payload) != kSvcTagResponse) return;
  auto r = decode_response(payload);
  if (!r || r->client != self_ || r->seq != current_.seq) return;
  if (r->status == SvcStatus::kShed && route &&
      current_.retries < config_.max_retries) {
    // Re-route, same seq: the shed may mean "not the owner anymore".
    if (retry_timer_ != kNoTimer) {
      transport_.cancel(retry_timer_);
      retry_timer_ = kNoTimer;
    }
    ++current_.retries;
    const NodeId prev = server_;
    server_ = route(self_, server_, current_.retries);
    if (server_ != prev) {
      send_current();  // a different node may well be the owner: go now
    } else {
      // Rotation wrapped back to the same node — that shed meant genuine
      // overload, so hammering it immediately would be rude.
      retry_timer_ = transport_.schedule(config_.retry_after, [this] {
        retry_timer_ = kNoTimer;
        if (outstanding_) send_current();
      });
    }
    return;
  }
  complete(true, &*r);
}

void ServiceClient::complete(bool answered, const SvcResponse* r) {
  if (retry_timer_ != kNoTimer) {
    transport_.cancel(retry_timer_);
    retry_timer_ = kNoTimer;
  }
  outstanding_ = false;
  current_.answered = answered;
  if (r) {
    current_.status = r->status;
    current_.value = r->value;
    current_.flags = r->flags;
  }
  current_.latency = transport_.now() - current_.sent_at;
  records_.push_back(current_);
  if (on_complete) on_complete(records_.back());
}

}  // namespace mw
