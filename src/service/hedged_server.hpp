// HedgedServer: the production face of the paper's replication-×-speculation
// story (§5). One server node accepts numbered client requests and answers
// each one exactly once, while everything around it misbehaves. Four
// robustness layers, outermost first:
//
//   1. Sessions — every arriving (client, seq) passes the SessionTable
//      before any work happens: committed duplicates replay the cached
//      response, concurrent duplicates are dropped, stale numbers are
//      refused. The per-client EffectLedger + external EffectLog make the
//      committed effect exactly-once even across a server restart
//      (snapshot / restore / reconcile).
//   2. Admission — at most `max_inflight` requests execute concurrently; a
//      bounded FIFO absorbs bursts; overflow is *shed* with an explicit
//      kShed response (and untouched session state, so the retry is still
//      fresh). Deadlines propagate from the client and are re-checked at
//      dequeue. When the windowed defer rate (queueing + scheduler
//      admission deferrals) crosses `brownout_enter`, hedging is disabled
//      entirely — first replica only — until the rate falls below
//      `brownout_exit` (hysteresis). Shed-not-collapse is the contract
//      bench/service_load --check enforces.
//   3. Backends — with add_backend()ed executor nodes, each request is
//      sent to one backend and, after `hedge_delay` of silence, hedged to
//      another (budgeted). A per-backend CircuitBreaker driven by
//      PeerHealth gates routing: suspect peers take no hedges, dead peers
//      trip the breaker and fail running attempts over to a standby
//      (budgeted), a resurrected peer gets one half-open probe.
//   4. Degradation — when no backend is usable (total partition, all
//      breakers open), the request finishes on the server's own kPool
//      hedged race (transport_race's finish-locally move): slower, never
//      wrong, and still exactly-once.
//
// Without backends the server runs every request through the local race —
// replicate() on AltBackend::kPool with a stagger ladder — so the same
// binary serves as the single-node hedging service the bench loads.
//
// Single-threaded by construction, like everything on the Transport seam:
// all state changes happen on the thread driving the transport. "Crash"
// granularity for restart tests is therefore the event-loop turn.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/runtime.hpp"
#include "service/breaker.hpp"
#include "service/service.hpp"
#include "service/session.hpp"

namespace mw {

struct ServiceConfig {
  std::uint64_t seed = 1;
  PeerHealthConfig health;
  BreakerConfig breaker;

  // Admission.
  std::size_t max_inflight = 32;   // concurrently executing requests
  std::size_t queue_capacity = 64; // waiting room; overflow is shed
  VDuration default_deadline = vt_ms(50);

  // Hedging / failover budgets (per request).
  VDuration hedge_delay = vt_ms(2);
  std::size_t hedge_budget = 1;
  std::size_t retry_budget = 2;

  // Brownout hysteresis over `brownout_window` samples of the defer rate.
  double brownout_enter = 0.5;
  double brownout_exit = 0.2;
  VDuration brownout_window = vt_ms(20);

  // Service-time model for executions the server performs itself (and the
  // default for backends): exponential with a heavy tail — the tail is
  // what hedging exists to shave.
  VDuration service_mean = vt_ms(4);
  double tail_prob = 0.05;
  double tail_factor = 5.0;

  // Local kPool race: replicas per request (1 under brownout) and the
  // hedging ladder's priority stagger.
  int local_replicas = 2;
  double stagger_priority = 1.0;
  SchedConfig pool{.workers = 2};
  std::size_t page_size = 256;  // world geometry for the local races
  std::size_t num_pages = 16;

  // Adaptive speculation policy (core/spec_policy.hpp). kAdaptive hedges
  // after the observed p95 of completed-request latency instead of the
  // fixed hedge_delay (falling back to hedge_delay while the reservoir is
  // cold), and the local kPool races inherit the same mode. kStatic is
  // bit-for-bit today's behavior. policy.seed 0 derives from `seed`.
  PolicyConfig policy;
};

struct ServiceStats {
  std::uint64_t requests = 0;        // well-formed kSvcRequest frames
  std::uint64_t admitted = 0;        // began executing (or queued)
  std::uint64_t ok = 0;
  std::uint64_t replays = 0;
  std::uint64_t in_flight_dups = 0;  // dropped concurrent duplicates
  std::uint64_t stale = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;          // admitted but deadline-expired
  std::uint64_t queued = 0;          // admissions that had to wait
  std::uint64_t hedges = 0;
  std::uint64_t failovers = 0;
  std::uint64_t local_races = 0;     // requests finished on the local race
  std::uint64_t local_fallbacks = 0; // subset: backends existed, none usable
  std::uint64_t brownout_enters = 0;
  std::uint64_t brownout_exits = 0;
  std::uint64_t breaker_opens = 0;
  std::size_t queue_peak = 0;
};

class HedgedServer : public TransportReceiver {
 public:
  /// Binds to `self` on `transport`. `effects` is the external durable
  /// effect sink — it must outlive the server, and across a restart the
  /// *same* log is handed to the successor (that is the exactly-once
  /// test surface).
  HedgedServer(Transport& transport, NodeId self, EffectLog& effects,
               ServiceConfig config = {});
  ~HedgedServer() override;

  HedgedServer(const HedgedServer&) = delete;
  HedgedServer& operator=(const HedgedServer&) = delete;

  NodeId self() const { return self_; }

  /// Registers an executor node. Requests are routed (and hedged) across
  /// registered backends; with none, every request runs locally.
  void add_backend(NodeId node);
  const std::vector<NodeId>& backends() const { return backends_; }

  void on_message(NodeId from, std::span<const std::uint8_t> payload) override;

  /// Revokes every pending request whose client matches `pred` *without*
  /// committing: timers cancelled, admission bookkeeping unwound, the
  /// client answered kShed so it retries at the session's real owner. The
  /// cluster layer calls this when a ring change moves ownership away
  /// mid-flight — committing here could race the new owner into a double
  /// execution. Returns how many pendings were revoked.
  std::size_t shed_pendings_if(const std::function<bool(NodeId)>& pred);

  /// Session image for restart tests (take between event-loop turns).
  Bytes snapshot() const { return sessions_.snapshot(); }
  /// Reinstates a predecessor's snapshot and redo-applies the effect log
  /// (which may hold commits newer than the image). Call before serving.
  bool restore(const Bytes& image, const EffectLog& log);

  bool brownout() const { return brownout_; }
  std::size_t inflight() const { return inflight_; }
  std::size_t queue_depth() const { return queue_.size(); }
  const ServiceStats& stats() const { return stats_; }
  const SessionTable& sessions() const { return sessions_; }
  SessionTable& sessions() { return sessions_; }
  Runtime& runtime() { return runtime_; }
  /// The hedge-timing policy engine (fed by every OK response's latency).
  SpecPolicy& policy() { return policy_; }

 private:
  struct Pending {
    std::uint64_t ticket = 0;
    NodeId client = 0;
    std::uint64_t seq = 0;
    std::uint64_t work = 0;
    std::uint64_t payload = 0;
    VTime arrived = 0;  // admission time: the latency reservoir's epoch
    VTime deadline_abs = 0;
    bool dispatched = false;          // false while still queued
    bool local = false;               // finishing on the local race
    std::size_t hedges_used = 0;
    std::size_t retries_used = 0;
    std::vector<NodeId> tried;        // backends this request ever used
    std::vector<NodeId> outstanding;  // backends with a live attempt
    std::uint64_t local_value = 0;
    bool local_ok = false;
    TimerId hedge_timer = kNoTimer;
    TimerId deadline_timer = kNoTimer;
    TimerId local_timer = kNoTimer;
  };

  void handle_request(const SvcRequest& r);
  void handle_exec_done(NodeId from, const SvcExecDone& d);
  void dispatch(std::uint64_t ticket);
  /// Sends one kSvcExec attempt; false if the send could not even be
  /// attempted (the failure is recorded against the backend's breaker).
  bool dispatch_remote(Pending& p, NodeId backend);
  void run_local(Pending& p);
  void on_hedge_timer(std::uint64_t ticket);
  void on_deadline(std::uint64_t ticket);
  void on_local_done(std::uint64_t ticket);
  void handle_backend_failure(NodeId backend);
  void fail_over(Pending& p);
  void finish(std::uint64_t ticket, SvcStatus status, std::uint64_t value,
              std::uint8_t flags);
  void respond(NodeId client, std::uint64_t seq, SvcStatus status,
               std::uint64_t value, std::uint8_t flags);
  void pump_queue();
  void health_tick();
  void brownout_tick();
  /// First routable backend in round-robin order, excluding `exclude`;
  /// `hedge` restricts to fully healthy peers (alive + breaker closed).
  /// 0 = none (backend node ids must be nonzero).
  NodeId pick_backend(const std::vector<NodeId>& exclude, bool hedge);
  VDuration draw_service_delay();
  /// The delay before the next hedge attempt: config_.hedge_delay in
  /// kStatic mode (or while the latency reservoir is cold), the observed
  /// p95 once the policy engine is warm.
  VDuration next_hedge_delay(std::uint64_t ticket);

  Transport& transport_;
  NodeId self_;
  EffectLog& effects_;
  ServiceConfig config_;
  SessionTable sessions_;
  PeerHealth health_;
  Rng rng_;
  Runtime runtime_;
  SpecPolicy policy_;

  std::vector<NodeId> backends_;
  std::set<NodeId> backend_set_;
  std::map<NodeId, CircuitBreaker> breakers_;
  std::size_t rr_ = 0;  // round-robin cursor

  std::map<std::uint64_t, Pending> pendings_;
  std::deque<std::uint64_t> queue_;
  std::size_t inflight_ = 0;
  std::uint64_t next_ticket_ = 1;
  bool pumping_ = false;  // flattens finish() -> pump_queue() recursion
  TimerId health_timer_ = kNoTimer;
  TimerId brownout_timer_ = kNoTimer;

  bool brownout_ = false;
  std::uint64_t window_admitted_ = 0;
  std::uint64_t window_deferred_ = 0;
  std::uint64_t sched_deferred_seen_ = 0;

  ServiceStats stats_;
  bool closed_ = false;
};

}  // namespace mw
