#include "service/breaker.hpp"

namespace mw {

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace mw
