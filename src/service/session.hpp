// Per-client at-most-once sessions (oscar's ClientTable shape). Each
// client runs one monotonically numbered outstanding request at a time;
// the table decides, per arriving (client, seq), whether to execute,
// replay the cached response, drop a concurrent duplicate, or reject a
// stale number — and owns the per-client EffectLedger that makes "commit
// the effect once" hold even when the *server* restarts mid-stream.
//
// Recovery protocol (the part naive snapshots get wrong): a snapshot is
// taken between event-loop turns and serializes every session including
// its ledger high-water mark. A commit that lands *after* the snapshot is
// in the external EffectLog but not in the image — restoring the image
// alone would let a client retry re-execute it and the ledger would admit
// the duplicate. reconcile() therefore redo-applies the log: every logged
// effect at or above a session's restored horizon re-marks that seq as
// committed (cached for replay) and advances the ledger past it. Requests
// that were merely *in flight* at the crash restore as uncommitted — the
// client's retry re-executes them, which is safe precisely because their
// effect never reached the log.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "service/service.hpp"
#include "super/restart_policy.hpp"

namespace mw {

/// What the server should do with an arriving (client, seq).
enum class SessionVerdict {
  kExecute,   // fresh work: begin() has marked it in flight
  kReplay,    // committed duplicate: answer from the cached response
  kInFlight,  // concurrent duplicate: drop — the pending execution's
              //   response covers the retry that raced it
  kStale,     // seq below the horizon: late duplicate of a superseded call
};

const char* to_string(SessionVerdict v);

class SessionTable {
 public:
  struct Session {
    std::uint64_t last_seq = 0;  // highest seq ever begun
    bool in_flight = false;      // last_seq admitted, not yet committed
    bool committed = false;      // last_seq has a cached response
    SvcStatus status = SvcStatus::kOk;
    std::uint64_t value = 0;
    EffectLedger ledger;
  };

  /// Classifies (client, seq) and, for kExecute, marks it in flight and
  /// advances the horizon. Never call for a request the server is about to
  /// shed — shedding must leave the session untouched so the client's
  /// retry of the same seq is still fresh.
  SessionVerdict begin(NodeId client, std::uint64_t seq);

  /// Same classification without any state change — the admission path
  /// peeks first so replays and stale duplicates are answered from cache
  /// even when the server is refusing new work.
  SessionVerdict peek(NodeId client, std::uint64_t seq) const;

  /// Commits the outcome of an in-flight (client, seq): caches the
  /// response for future replays and, for successful executions whose
  /// ledger admits the seq, appends the effect to `log`. Returns true iff
  /// the effect was appended (exactly-once: at most one true per pair).
  bool commit(NodeId client, std::uint64_t seq, SvcStatus status,
              std::uint64_t value, EffectLog& log);

  /// Cached response for a kReplay verdict.
  const Session* find(NodeId client) const;

  std::size_t size() const { return sessions_.size(); }
  std::uint64_t replays() const { return replays_; }
  std::uint64_t effects_admitted() const { return effects_admitted_; }
  std::uint64_t effects_suppressed() const { return effects_suppressed_; }

  /// Serializes every session (MWSES01). Taken between event-loop turns.
  Bytes snapshot() const;
  /// Same image format, restricted to clients matching `pred` — the
  /// cluster's handoff payload carries only the sessions whose ownership
  /// moved, not the whole table.
  Bytes snapshot_clients(const std::function<bool(NodeId)>& pred) const;
  /// Reinstates a snapshot, replacing all state. False on a bad image.
  bool restore(const Bytes& image);
  /// Merges a (partial) snapshot into the live table without touching
  /// sessions the image does not mention. Per client the *newer* side wins
  /// (higher last_seq; at a tie, committed beats uncommitted) and the
  /// ledger horizon never moves backward — so replaying a duplicated or
  /// stale handoff frame is a no-op. False on a bad image.
  bool absorb(const Bytes& image);
  /// Drops every session matching `pred` (ownership moved away; the new
  /// owner holds the handed-off image). Returns how many were erased.
  std::size_t erase_clients(const std::function<bool(NodeId)>& pred);
  /// Redo-applies the external effect log over restored state (see the
  /// file comment); returns how many log entries were re-marked committed.
  std::size_t reconcile(const EffectLog& log);

 private:
  static bool parse(const Bytes& image, std::map<NodeId, Session>& out);

  std::map<NodeId, Session> sessions_;  // ordered: deterministic snapshot
  std::uint64_t replays_ = 0;
  std::uint64_t effects_admitted_ = 0;
  std::uint64_t effects_suppressed_ = 0;
};

}  // namespace mw
