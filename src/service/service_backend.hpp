// ServiceBackend: a stateless executor node. It computes
// service_reference(payload, work) for each kSvcExec after a seeded
// service delay and reports kSvcExecDone; all session/effect state lives
// at the server, so a backend can be killed, duplicated, partitioned, or
// replaced without any hand-off protocol — exactly the property hedging
// needs (the same exec may run on two backends at once; the server keeps
// one answer and the effect commits once).
//
// Chaos surface: every kSvcExec passes the "svc.exec" fault point —
// kNodeCrash / kCrashException kill the backend silently (the observable
// behavior of a SIGKILLed process: no more execs, answers, or beats),
// kHang swallows that one exec (the server's hedge or deadline covers
// it), kDelay stretches its service time.
#pragma once

#include <cstdint>
#include <map>

#include "service/service.hpp"
#include "util/rng.hpp"

namespace mw {

struct BackendConfig {
  std::uint64_t seed = 1;
  PeerHealthConfig health;  // heartbeat_interval paces kSvcBeat
  // Service-time model (matches ServiceConfig's by default).
  VDuration service_mean = vt_ms(4);
  double tail_prob = 0.05;
  double tail_factor = 5.0;
};

class ServiceBackend : public TransportReceiver {
 public:
  ServiceBackend(Transport& transport, NodeId self, NodeId server,
                 BackendConfig config = {});
  ~ServiceBackend() override;

  ServiceBackend(const ServiceBackend&) = delete;
  ServiceBackend& operator=(const ServiceBackend&) = delete;

  NodeId self() const { return self_; }
  bool done() const { return done_; }

  /// Simulated process death for in-process (sim) tests: immediately
  /// silent — no execs, answers, or beats — like a SIGKILLed process.
  void kill();

  std::uint64_t executed() const { return executed_; }
  std::uint64_t hung() const { return hung_; }

 private:
  void on_message(NodeId from, std::span<const std::uint8_t> payload) override;
  void on_exec(const SvcExec& e);
  void beat();
  VDuration draw_service_delay();

  Transport& transport_;
  NodeId self_;
  NodeId server_;
  BackendConfig config_;
  Rng rng_;
  bool done_ = false;
  std::uint64_t executed_ = 0;
  std::uint64_t hung_ = 0;
  TimerId beat_timer_ = kNoTimer;
  std::uint64_t next_job_ = 1;
  std::map<std::uint64_t, TimerId> jobs_;  // live completion timers
};

}  // namespace mw
