#include "service/service_backend.hpp"

#include "fault/fault.hpp"

namespace mw {

ServiceBackend::ServiceBackend(Transport& transport, NodeId self,
                               NodeId server, BackendConfig config)
    : transport_(transport),
      self_(self),
      server_(server),
      config_(config),
      rng_(config.seed ^ self * 0x9e3779b97f4a7c15ull) {
  transport_.bind(self_, *this);
  beat();  // immediate join beat: teaches SocketTransport our address
}

ServiceBackend::~ServiceBackend() {
  done_ = true;
  if (beat_timer_ != kNoTimer) transport_.cancel(beat_timer_);
  for (const auto& [job, timer] : jobs_) transport_.cancel(timer);
  transport_.unbind(self_);
}

void ServiceBackend::kill() {
  done_ = true;
  if (beat_timer_ != kNoTimer) transport_.cancel(beat_timer_);
  beat_timer_ = kNoTimer;
  for (const auto& [job, timer] : jobs_) transport_.cancel(timer);
  jobs_.clear();
}

void ServiceBackend::beat() {
  if (done_) return;
  const Bytes frame = encode_beat();
  transport_.send(self_, server_,
                  std::span<const std::uint8_t>(frame.data(), frame.size()));
  beat_timer_ = transport_.schedule(config_.health.heartbeat_interval,
                                    [this] { beat(); });
}

void ServiceBackend::on_message(NodeId from,
                                std::span<const std::uint8_t> payload) {
  if (done_ || from != server_) return;
  if (svc_message_tag(payload) != kSvcTagExec) return;
  if (auto e = decode_exec(payload)) on_exec(*e);
}

void ServiceBackend::on_exec(const SvcExec& e) {
  VDuration delay = draw_service_delay();
  if (FaultAction a = MW_FAULT_POINT("svc.exec", transport_.now())) {
    switch (a.kind) {
      case FaultKind::kNodeCrash:
      case FaultKind::kCrashException:
        kill();
        return;
      case FaultKind::kHang:
        ++hung_;  // this exec never answers; hedge/deadline covers it
        return;
      case FaultKind::kDelay:
        delay += a.delay;
        break;
      default:
        break;
    }
  }
  const std::uint64_t value = service_reference(e.payload, e.work);
  const std::uint64_t ticket = e.ticket;
  const std::uint64_t job = next_job_++;
  jobs_[job] = transport_.schedule(delay, [this, ticket, value, job] {
    jobs_.erase(job);
    if (done_) return;
    ++executed_;
    const Bytes frame = encode_exec_done({ticket, value});
    transport_.send(self_, server_,
                    std::span<const std::uint8_t>(frame.data(),
                                                  frame.size()));
  });
}

VDuration ServiceBackend::draw_service_delay() {
  double d =
      rng_.next_exponential(static_cast<double>(config_.service_mean));
  if (rng_.next_bool(config_.tail_prob)) d *= config_.tail_factor;
  const auto v = static_cast<VDuration>(d);
  return v < 1 ? 1 : v;
}

}  // namespace mw
