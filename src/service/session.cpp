#include "service/session.hpp"

#include <algorithm>

namespace mw {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x31534553u;  // "SES1"

}  // namespace

const char* to_string(SessionVerdict v) {
  switch (v) {
    case SessionVerdict::kExecute: return "execute";
    case SessionVerdict::kReplay: return "replay";
    case SessionVerdict::kInFlight: return "in-flight";
    case SessionVerdict::kStale: return "stale";
  }
  return "?";
}

SessionVerdict SessionTable::peek(NodeId client, std::uint64_t seq) const {
  auto it = sessions_.find(client);
  if (it == sessions_.end()) return SessionVerdict::kExecute;
  const Session& s = it->second;
  if (seq > s.last_seq) return SessionVerdict::kExecute;
  if (seq < s.last_seq) return SessionVerdict::kStale;
  if (s.committed) return SessionVerdict::kReplay;
  if (s.in_flight) return SessionVerdict::kInFlight;
  // seq == last_seq with neither flag: the horizon was restored from a
  // snapshot that caught the request mid-execution. Its effect never
  // reached the log (reconcile would have marked it committed), so the
  // client's retry may execute again.
  return SessionVerdict::kExecute;
}

SessionVerdict SessionTable::begin(NodeId client, std::uint64_t seq) {
  const SessionVerdict v = peek(client, seq);
  if (v == SessionVerdict::kReplay) ++replays_;
  if (v != SessionVerdict::kExecute) return v;
  Session& s = sessions_[client];
  s.last_seq = seq;
  s.in_flight = true;
  s.committed = false;
  return SessionVerdict::kExecute;
}

bool SessionTable::commit(NodeId client, std::uint64_t seq, SvcStatus status,
                          std::uint64_t value, EffectLog& log) {
  auto it = sessions_.find(client);
  if (it == sessions_.end() || it->second.last_seq != seq) return false;
  Session& s = it->second;
  s.in_flight = false;
  s.committed = true;
  s.status = status;
  s.value = value;
  if (status != SvcStatus::kOk) return false;  // failures have no effect
  if (!s.ledger.admit(seq)) {
    ++effects_suppressed_;
    return false;
  }
  ++effects_admitted_;
  log.append({client, seq, value});
  return true;
}

const SessionTable::Session* SessionTable::find(NodeId client) const {
  auto it = sessions_.find(client);
  return it == sessions_.end() ? nullptr : &it->second;
}

Bytes SessionTable::snapshot() const {
  return snapshot_clients([](NodeId) { return true; });
}

Bytes SessionTable::snapshot_clients(
    const std::function<bool(NodeId)>& pred) const {
  ByteWriter w;
  w.put_u32(kSnapshotMagic);
  std::uint64_t count = 0;
  for (const auto& [client, s] : sessions_)
    if (pred(client)) ++count;
  w.put_u64(count);
  for (const auto& [client, s] : sessions_) {
    if (!pred(client)) continue;
    w.put_u64(client);
    w.put_u64(s.last_seq);
    // An in-flight request restores as neither committed nor in flight:
    // the execution died with the server, so the retry must re-execute.
    w.put_u8(s.committed ? 1 : 0);
    w.put_u8(static_cast<std::uint8_t>(s.status));
    w.put_u64(s.value);
    w.put_u64(s.ledger.high_water());
    w.put_u64(s.ledger.recorded());
    w.put_u64(s.ledger.suppressed());
  }
  return w.take();
}

bool SessionTable::parse(const Bytes& image,
                         std::map<NodeId, Session>& out) {
  ByteReader r(std::span<const std::uint8_t>(image.data(), image.size()));
  if (r.get_u32() != kSnapshotMagic) return false;
  const std::uint64_t count = r.get_u64();
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    const NodeId client = r.get_u64();
    Session s;
    s.last_seq = r.get_u64();
    s.committed = r.get_u8() != 0;
    const std::uint8_t status = r.get_u8();
    s.value = r.get_u64();
    const std::uint64_t next = r.get_u64();
    const std::uint64_t recorded = r.get_u64();
    const std::uint64_t suppressed = r.get_u64();
    if (status > static_cast<std::uint8_t>(SvcStatus::kFailed)) return false;
    s.status = static_cast<SvcStatus>(status);
    s.ledger.restore(next, recorded, suppressed);
    out.emplace(client, std::move(s));
  }
  return r.ok() && r.at_end();
}

bool SessionTable::restore(const Bytes& image) {
  std::map<NodeId, Session> restored;
  if (!parse(image, restored)) return false;
  sessions_ = std::move(restored);
  return true;
}

bool SessionTable::absorb(const Bytes& image) {
  std::map<NodeId, Session> incoming;
  if (!parse(image, incoming)) return false;
  for (auto& [client, in] : incoming) {
    auto it = sessions_.find(client);
    if (it == sessions_.end()) {
      sessions_.emplace(client, std::move(in));
      continue;
    }
    Session& cur = it->second;
    const bool newer =
        in.last_seq > cur.last_seq ||
        (in.last_seq == cur.last_seq && in.committed && !cur.committed);
    // The ledger horizon is monotone regardless of which side's response
    // cache wins — an effect admitted anywhere stays suppressed everywhere.
    const std::uint64_t high =
        std::max(in.ledger.high_water(), cur.ledger.high_water());
    const std::uint64_t recorded =
        std::max(in.ledger.recorded(), cur.ledger.recorded());
    const std::uint64_t suppressed =
        std::max(in.ledger.suppressed(), cur.ledger.suppressed());
    if (newer) cur = std::move(in);
    cur.ledger.restore(high, recorded, suppressed);
  }
  return true;
}

std::size_t SessionTable::erase_clients(
    const std::function<bool(NodeId)>& pred) {
  std::size_t erased = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (pred(it->first)) {
      it = sessions_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

std::size_t SessionTable::reconcile(const EffectLog& log) {
  std::size_t redone = 0;
  for (const Effect& e : log.entries()) {
    Session& s = sessions_[e.client];
    if (e.seq < s.ledger.high_water()) continue;  // already in the image
    // This effect committed after the snapshot: re-mark it so a retry
    // replays the cached response instead of executing a second time.
    if (e.seq >= s.last_seq) {
      s.last_seq = e.seq;
      s.in_flight = false;
      s.committed = true;
      s.status = SvcStatus::kOk;
      s.value = e.value;
    }
    s.ledger.restore(e.seq + 1, s.ledger.recorded() + 1,
                     s.ledger.suppressed());
    ++redone;
  }
  return redone;
}

}  // namespace mw
