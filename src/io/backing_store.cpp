#include "io/backing_store.hpp"

#include "util/check.hpp"

namespace mw {

FileId BackingStore::create(const std::string& name, std::size_t pages) {
  MW_CHECK(!names_.count(name));
  const FileId id = next_id_++;
  files_.emplace(id, PageTable(page_size_, pages));
  names_.emplace(name, id);
  return id;
}

std::optional<FileId> BackingStore::lookup(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) return std::nullopt;
  return it->second;
}

const PageTable& BackingStore::file(FileId id) const {
  auto it = files_.find(id);
  MW_CHECK(it != files_.end());
  return it->second;
}

PageTable& BackingStore::file(FileId id) {
  auto it = files_.find(id);
  MW_CHECK(it != files_.end());
  return it->second;
}

std::size_t BackingStore::file_pages(FileId id) const {
  return file(id).num_pages();
}

void BackingStore::read(FileId id, std::uint64_t off,
                        std::span<std::uint8_t> dst) const {
  file(id).read(off, dst);
  ++const_cast<BackingStore*>(this)->reads_;
}

void BackingStore::write(FileId id, std::uint64_t off,
                         std::span<const std::uint8_t> src) {
  file(id).write(off, src);
  ++writes_;
}

PageTable BackingStore::snapshot(FileId id) const { return file(id).fork(); }

void BackingStore::replace(FileId id, PageTable&& pages) {
  file(id).adopt(std::move(pages));
}

}  // namespace mw
