// BackingStore: the paper's canonical *sink* (§2.1) — a single-level store
// of named files, each a set of fixed-size pages (MULTICS-style). Page
// operations are idempotent: retrying a read or rewrite has no observable
// effect beyond the final state, which is what lets speculation hide sink
// side effects.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pagestore/page_table.hpp"

namespace mw {

using FileId = std::uint32_t;
inline constexpr FileId kNoFile = 0;

class BackingStore {
 public:
  explicit BackingStore(std::size_t page_size) : page_size_(page_size) {}

  std::size_t page_size() const { return page_size_; }

  /// Creates a named file of `pages` zero pages; names are unique.
  FileId create(const std::string& name, std::size_t pages);

  std::optional<FileId> lookup(const std::string& name) const;

  std::size_t file_pages(FileId id) const;

  /// Byte-addressed access within a file.
  void read(FileId id, std::uint64_t off, std::span<std::uint8_t> dst) const;
  void write(FileId id, std::uint64_t off, std::span<const std::uint8_t> src);

  template <typename T>
  T load(FileId id, std::uint64_t off) const {
    T v{};
    read(id, off, std::span<std::uint8_t>(
                      reinterpret_cast<std::uint8_t*>(&v), sizeof v));
    return v;
  }
  template <typename T>
  void store(FileId id, std::uint64_t off, const T& v) {
    write(id, off, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(&v), sizeof v));
  }

  /// Cheap snapshot of a file's pages (COW) — used by transactions to make
  /// commit atomic and by tests to diff states.
  PageTable snapshot(FileId id) const;

  /// Atomically replaces a file's contents with `pages` (same geometry).
  void replace(FileId id, PageTable&& pages);

  std::uint64_t total_reads() const { return reads_; }
  std::uint64_t total_writes() const { return writes_; }

 private:
  const PageTable& file(FileId id) const;
  PageTable& file(FileId id);

  std::size_t page_size_;
  std::map<FileId, PageTable> files_;
  std::map<std::string, FileId> names_;
  FileId next_id_ = 1;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace mw
