#include "io/spec_console.hpp"

namespace mw {

SpeculativeConsole::SpeculativeConsole(ProcessTable& table, Teletype& tty)
    : table_(table), tty_(tty) {
  table_.subscribe([this](Pid pid, ProcStatus, ProcStatus now) {
    on_status(pid, now);
  });
}

void SpeculativeConsole::write(Pid pid, const PredicateSet& preds,
                               const std::string& line) {
  if (preds.empty()) {
    // A certain world: the side effect is immediately observable.
    tty_.print(line);
    return;
  }
  pending_[pid].push_back(line);
}

std::optional<std::string> SpeculativeConsole::read_line(Pid pid) {
  std::size_t& cursor = read_cursor_[pid];
  if (cursor < input_history_.size()) {
    ++replayed_;
    return input_history_[cursor++];
  }
  // One real read at this position; the result is buffered for subsequent
  // readers of the same data.
  auto line = tty_.read_line();
  if (!line.has_value()) return std::nullopt;
  input_history_.push_back(*line);
  ++cursor;
  return line;
}

std::size_t SpeculativeConsole::buffered_lines() const {
  std::size_t n = 0;
  for (const auto& [pid, lines] : pending_) n += lines.size();
  return n;
}

void SpeculativeConsole::flush(Pid pid) {
  auto it = pending_.find(pid);
  if (it == pending_.end()) return;
  for (const auto& line : it->second) tty_.print(line);
  pending_.erase(it);
}

void SpeculativeConsole::discard(Pid pid) {
  auto it = pending_.find(pid);
  if (it == pending_.end()) return;
  discarded_ += it->second.size();
  pending_.erase(it);
}

void SpeculativeConsole::on_status(Pid pid, ProcStatus now) {
  if (!is_terminal(now)) return;
  if (now == ProcStatus::kSynced) {
    flush(pid);
  } else {
    discard(pid);
  }
}

}  // namespace mw
