// Transactions over sink state (§2.1): "writes must be done to a temporary
// copy until the transaction commits... Reads intended for the recently
// written copy are satisfied by that copy so that the transaction is
// internally consistent, i.e., it can read what was written."
//
// Implementation: the transaction works against a COW snapshot of the file;
// commit atomically replaces the file's page map with the snapshot's
// (exactly the world-commit mechanism). Abort simply drops the snapshot.
#pragma once

#include <span>

#include "io/backing_store.hpp"

namespace mw {

class Transaction {
 public:
  /// Opens a transaction on one file. The store must outlive it. An open
  /// transaction that is destroyed without commit() aborts.
  Transaction(BackingStore& store, FileId file);

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Reads through the transaction: sees its own uncommitted writes.
  void read(std::uint64_t off, std::span<std::uint8_t> dst) const;

  /// Writes to the temporary copy; invisible outside until commit.
  void write(std::uint64_t off, std::span<const std::uint8_t> src);

  template <typename T>
  T load(std::uint64_t off) const {
    T v{};
    read(off, std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(&v),
                                      sizeof v));
    return v;
  }
  template <typename T>
  void store(std::uint64_t off, const T& v) {
    write(off, std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(&v), sizeof v));
  }

  /// Atomically publishes all writes. At most one of commit/abort.
  void commit();
  /// Like commit(), but queries the "txn.commit" fault point first: an
  /// injected fault aborts the transaction instead (all writes dropped,
  /// the store untouched) and returns false. The recovery path every
  /// caller of commit() should really be prepared for.
  bool try_commit();
  /// Discards all writes.
  void abort();

  bool open() const { return state_ == State::kOpen; }
  bool committed() const { return state_ == State::kCommitted; }

  /// Pages privately copied by this transaction so far.
  std::uint64_t pages_touched() const { return shadow_.stats().pages_copied + shadow_.stats().pages_allocated; }

 private:
  enum class State { kOpen, kCommitted, kAborted };

  BackingStore& store_;
  FileId file_;
  PageTable shadow_;
  State state_ = State::kOpen;
};

}  // namespace mw
