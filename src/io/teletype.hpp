// Teletype: the paper's canonical *source* device (§2.1) — operations on it
// cannot be retried without observable effects. Output is irrevocable;
// input consumes a scripted stream. Speculative worlds must never touch a
// Teletype directly; they go through SpeculativeConsole, which buffers
// effects until the world's assumptions resolve.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace mw {

class Teletype {
 public:
  Teletype() = default;
  explicit Teletype(std::vector<std::string> input_script)
      : input_(std::move(input_script)) {}

  /// Irrevocably emits a line.
  void print(const std::string& line) { output_.push_back(line); }

  /// Consumes and returns the next scripted input line; nullopt at EOF.
  /// Every call advances the stream — the non-idempotence that forces
  /// buffering for replicated/speculative readers.
  std::optional<std::string> read_line() {
    if (cursor_ >= input_.size()) return std::nullopt;
    ++reads_;
    return input_[cursor_++];
  }

  const std::vector<std::string>& output() const { return output_; }
  std::size_t reads_performed() const { return reads_; }

 private:
  std::vector<std::string> input_;
  std::size_t cursor_ = 0;
  std::size_t reads_ = 0;
  std::vector<std::string> output_;
};

}  // namespace mw
