#include "io/transaction.hpp"

#include "fault/fault.hpp"
#include "util/check.hpp"

namespace mw {

Transaction::Transaction(BackingStore& store, FileId file)
    : store_(store), file_(file), shadow_(store.snapshot(file)) {}

void Transaction::read(std::uint64_t off, std::span<std::uint8_t> dst) const {
  MW_CHECK(state_ == State::kOpen);
  shadow_.read(off, dst);
}

void Transaction::write(std::uint64_t off,
                        std::span<const std::uint8_t> src) {
  MW_CHECK(state_ == State::kOpen);
  shadow_.write(off, src);
}

void Transaction::commit() {
  MW_CHECK(state_ == State::kOpen);
  store_.replace(file_, std::move(shadow_));
  state_ = State::kCommitted;
}

bool Transaction::try_commit() {
  MW_CHECK(state_ == State::kOpen);
  if (MW_FAULT_POINT("txn.commit")) {
    abort();
    return false;
  }
  commit();
  return true;
}

void Transaction::abort() {
  MW_CHECK(state_ == State::kOpen);
  state_ = State::kAborted;
}

}  // namespace mw
