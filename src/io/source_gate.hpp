// SourceGate — enforcement of the §2.4.2 invariant: "While a process has
// predicates which are unsatisfied, it is restricted from causing
// observable side-effects, and thus cannot interface with sources."
//
// Wrap any source behind a gate; speculative access attempts are either
// rejected (kReject — the default, for code that should have used a
// buffering layer) or recorded as deferred intents that a commit replays
// (kDefer — a generic version of SpeculativeConsole's write path).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "pred/predicate_set.hpp"
#include "proc/process_table.hpp"
#include "util/ids.hpp"

namespace mw {

enum class GatePolicy { kReject, kDefer };

class SourceGate {
 public:
  using Action = std::function<void()>;

  SourceGate(ProcessTable& table, GatePolicy policy);

  /// Requests the side effect `act` on behalf of `pid` holding `preds`.
  /// Certain worlds execute immediately (returns true). Speculative
  /// worlds: kReject returns false and drops the action; kDefer queues it
  /// until pid's fate resolves (executed on sync, dropped otherwise).
  bool request(Pid pid, const PredicateSet& preds, Action act);

  /// Reassigns every intent deferred under `from` to `to`, preserving
  /// emission order (appended after anything already queued for `to`).
  /// The supervised-restart path: a restarted attempt runs under a fresh
  /// pid, and its predecessor's deferred source intents must follow it —
  /// call before marking the dead attempt terminal, or they are dropped
  /// with it. No-op if `from` has nothing pending.
  void transfer(Pid from, Pid to);

  std::uint64_t executed() const { return executed_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t deferred_pending() const;
  std::uint64_t dropped() const { return dropped_; }

 private:
  void on_status(Pid pid, ProcStatus now);

  ProcessTable& table_;
  GatePolicy policy_;
  std::map<Pid, std::vector<Action>> deferred_;
  std::uint64_t executed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace mw
