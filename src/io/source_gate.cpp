#include "io/source_gate.hpp"

#include "trace/trace.hpp"

namespace mw {

SourceGate::SourceGate(ProcessTable& table, GatePolicy policy)
    : table_(table), policy_(policy) {
  table_.subscribe([this](Pid pid, ProcStatus, ProcStatus now) {
    on_status(pid, now);
  });
}

bool SourceGate::request(Pid pid, const PredicateSet& preds, Action act) {
  if (preds.empty()) {
    act();
    ++executed_;
    return true;
  }
  if (policy_ == GatePolicy::kReject) {
    ++rejected_;
    MW_TRACE_EVENT(trace::EventKind::kGateReject, pid);
    return false;
  }
  std::vector<Action>& q = deferred_[pid];
  q.push_back(std::move(act));
  MW_TRACE_EVENT(trace::EventKind::kGateDefer, pid, kNoPid, q.size());
  return false;  // not yet observable
}

void SourceGate::transfer(Pid from, Pid to) {
  if (from == to) return;
  auto it = deferred_.find(from);
  if (it == deferred_.end()) return;
  std::vector<Action>& dst = deferred_[to];
  for (auto& act : it->second) dst.push_back(std::move(act));
  deferred_.erase(from);
}

std::uint64_t SourceGate::deferred_pending() const {
  std::uint64_t n = 0;
  for (const auto& [pid, acts] : deferred_) n += acts.size();
  return n;
}

void SourceGate::on_status(Pid pid, ProcStatus now) {
  if (!is_terminal(now)) return;
  auto it = deferred_.find(pid);
  if (it == deferred_.end()) return;
  if (now == ProcStatus::kSynced) {
    MW_TRACE_EVENT(trace::EventKind::kGateRelease, pid, kNoPid,
                   it->second.size());
    for (auto& act : it->second) {
      act();
      ++executed_;
    }
  } else {
    dropped_ += it->second.size();
    MW_TRACE_EVENT(trace::EventKind::kGateDrop, pid, kNoPid,
                   it->second.size());
  }
  deferred_.erase(it);
}

}  // namespace mw
