// SpeculativeConsole: Jefferson-style source buffering (§5: "idempotency of
// some source state can be forced through buffering, as was illustrated by
// Jefferson's use of a specialized buffering process called stdout").
//
// * Writes from a certain world go straight to the teletype. Writes from a
//   speculative world are buffered per process; when the process completes
//   they flush in order, and when it fails/is eliminated they are
//   discarded — "while a process has predicates which are unsatisfied, it
//   is restricted from causing observable side-effects" (§2.4.2).
// * Reads are performed against the real source at most once per input
//   position and replayed to every subsequent reader, so mutually exclusive
//   alternatives all observe the same input.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "io/teletype.hpp"
#include "pred/predicate_set.hpp"
#include "proc/process_table.hpp"
#include "util/ids.hpp"

namespace mw {

class SpeculativeConsole {
 public:
  /// Subscribes to `table` for completion events; both references must
  /// outlive the console.
  SpeculativeConsole(ProcessTable& table, Teletype& tty);

  /// Writes a line on behalf of process `pid` holding `preds`.
  void write(Pid pid, const PredicateSet& preds, const std::string& line);

  /// Reads the next input line for `pid`. The first reader at each input
  /// position performs the one real read; later readers replay the buffer.
  std::optional<std::string> read_line(Pid pid);

  /// Releases `pid`'s buffered lines to the device. The process-table
  /// subscription calls this automatically when `pid` synchronizes; runtimes
  /// that resolve assumptions without terminating the process (a split
  /// receiver whose predicates all come true — SpecRuntime's
  /// on_copy_certain hook) call it explicitly.
  void flush(Pid pid);

  /// Drops `pid`'s buffered lines (its world lost).
  void discard(Pid pid);

  /// Lines currently buffered (all speculative processes).
  std::size_t buffered_lines() const;

  /// Input positions served from the replay buffer rather than the device.
  std::uint64_t replayed_reads() const { return replayed_; }

  /// Lines discarded because their world lost.
  std::uint64_t discarded_lines() const { return discarded_; }

 private:
  void on_status(Pid pid, ProcStatus now);

  ProcessTable& table_;
  Teletype& tty_;
  std::map<Pid, std::vector<std::string>> pending_;  // per-process, in order
  std::vector<std::string> input_history_;
  std::map<Pid, std::size_t> read_cursor_;
  std::uint64_t replayed_ = 0;
  std::uint64_t discarded_ = 0;
};

}  // namespace mw
