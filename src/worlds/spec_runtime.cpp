#include "worlds/spec_runtime.hpp"

#include <algorithm>

#include "trace/trace.hpp"
#include "util/check.hpp"

namespace mw {

// --- ProcCtx ----------------------------------------------------------

AddressSpace& ProcCtx::space() { return p_.world.space(); }
Pid ProcCtx::pid() const { return p_.world.pid(); }
LogicalId ProcCtx::logical() const { return p_.lid; }
const PredicateSet& ProcCtx::predicates() const {
  return p_.world.predicates();
}
bool ProcCtx::certain() const { return p_.world.certain(); }

void ProcCtx::send(LogicalId to, Bytes data) {
  rt_.send_from(&p_, to, std::move(data));
}

void ProcCtx::send_text(LogicalId to, const std::string& text) {
  send(to, Bytes(text.begin(), text.end()));
}

void ProcCtx::after(VDuration delay, std::function<void(ProcCtx&)> fn) {
  const Pid pid = p_.world.pid();
  SpecRuntime* rt = &rt_;
  rt_.queue_.schedule_after(delay, [rt, pid, fn = std::move(fn)] {
    auto it = rt->procs_.find(pid);
    if (it == rt->procs_.end() || !it->second->alive) return;
    ProcCtx ctx(*rt, *it->second);
    fn(ctx);
  });
}

bool ProcCtx::try_sync() { return rt_.do_try_sync(p_); }
void ProcCtx::abort() { rt_.do_abort(p_); }
VTime ProcCtx::now() const { return rt_.queue_.now(); }
Rng& ProcCtx::rng() { return p_.rng; }

// --- SpecRuntime ------------------------------------------------------

SpecRuntime::SpecRuntime(SpecConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  table_.subscribe([this](Pid pid, ProcStatus, ProcStatus now) {
    if (!is_terminal(now)) return;
    on_terminal(pid, completion_of(now) == Completion::kTrue);
  });
}

SpecProcess& SpecRuntime::proc(Pid pid) {
  auto it = procs_.find(pid);
  MW_CHECK(it != procs_.end());
  return *it->second;
}

const SpecProcess& SpecRuntime::proc(Pid pid) const {
  auto it = procs_.find(pid);
  MW_CHECK(it != procs_.end());
  return *it->second;
}

SpecProcess& SpecRuntime::create_process(LogicalId lid, std::string label,
                                         World world, Handler on_message) {
  const Pid pid = world.pid();
  auto p = std::make_unique<SpecProcess>(std::move(world));
  p->lid = lid;
  p->label = std::move(label);
  p->on_message = std::move(on_message);
  p->rng = rng_.split(pid);
  SpecProcess& ref = *p;
  procs_.emplace(pid, std::move(p));
  copies_[lid].push_back(pid);
  return ref;
}

LogicalId SpecRuntime::spawn_root(std::string label, Handler on_message,
                                  std::function<void(ProcCtx&)> init) {
  const LogicalId lid = next_lid_++;
  World w(table_, cfg_.page_size, cfg_.num_pages, label);
  SpecProcess& p =
      create_process(lid, std::move(label), std::move(w), std::move(on_message));
  if (init) {
    ProcCtx ctx(*this, p);
    init(ctx);
  }
  return lid;
}

std::vector<Pid> SpecRuntime::spawn_alternatives(LogicalId parent,
                                                 std::vector<AltSpec> alts) {
  MW_CHECK(!alts.empty());
  const std::vector<Pid> parents = live_copies(parent);
  MW_CHECK(parents.size() == 1);  // speculate from a single settled copy
  SpecProcess& pp = proc(parents[0]);

  const std::uint64_t gid = next_group_++;
  Group& group = groups_[gid];
  group.parent_pid = pp.world.pid();

  // Allocate all sibling pids first: every child's predicate set mentions
  // the whole rivalry.
  std::vector<Pid> pids;
  pids.reserve(alts.size());
  for (const auto& a : alts)
    pids.push_back(table_.create(pp.world.pid(), gid, a.name));
  group.members = pids;

  // The parent is blocked while its children race (§2.2: "if it was
  // executing, it could cause state changes which would make its state
  // inconsistent after the synchronization").
  table_.set_status(pp.world.pid(), ProcStatus::kBlocked);
  MW_TRACE_SET_NOW(queue_.now());
  MW_TRACE_EVENT(trace::EventKind::kAltBlockBegin, pp.world.pid(), kNoPid,
                 gid, alts.size(), queue_.now());
  MW_TRACE_EVENT(trace::EventKind::kAltWait, pp.world.pid(), kNoPid, gid, 0,
                 queue_.now());

  PendingSpawn spawn;
  spawn.parent_pid = pp.world.pid();
  spawn.gid = gid;
  spawn.pids = pids;
  spawn.alts = std::move(alts);

  // Bounded admission: if forking this group would blow the speculation
  // budget, queue it — the pids and the rivalry's predicates exist now,
  // the page footprint only when capacity frees up (drain_admission).
  if (!fits_budget(spawn.alts.size())) {
    ++stats_.admission_deferred;
    MW_TRACE_EVENT(trace::EventKind::kSchedAdmitDefer, spawn.parent_pid,
                   kNoPid, gid, live_speculative_count(), queue_.now());
    deferred_spawns_.push_back(std::move(spawn));
    return pids;
  }
  materialize(std::move(spawn));
  return pids;
}

std::size_t SpecRuntime::live_speculative_count() const {
  std::size_t n = 0;
  for (const auto& [pid, p] : procs_)
    if (p->alive && p->alternative) ++n;
  return n;
}

bool SpecRuntime::fits_budget(std::size_t group_size) const {
  if (cfg_.max_live_copies == 0) return true;
  // A group that alone exceeds the whole budget could never be admitted by
  // waiting for copies to die; soft-cap and admit it now instead of
  // wedging it — and the strict-FIFO queue behind it — forever.
  if (group_size > cfg_.max_live_copies) return true;
  return live_speculative_count() + group_size <= cfg_.max_live_copies;
}

void SpecRuntime::materialize(PendingSpawn spawn) {
  auto pit = procs_.find(spawn.parent_pid);
  if (pit == procs_.end() || !pit->second->alive) {
    // The parent died while this group waited for admission (an outer
    // rivalry resolved against it): the children are stillborn.
    for (Pid c : spawn.pids) {
      MW_TRACE_EVENT(trace::EventKind::kAltEliminate, c, kNoPid, spawn.gid,
                     0, queue_.now());
      table_.set_status(c, ProcStatus::kEliminated);
    }
    return;
  }
  SpecProcess& pp = *pit->second;
  for (std::size_t k = 0; k < spawn.alts.size(); ++k) {
    const LogicalId lid = next_lid_++;
    MW_TRACE_EVENT(trace::EventKind::kAltSpawn, spawn.pids[k],
                   spawn.parent_pid, spawn.gid, k + 1,
                   queue_.now() + cfg_.spawn_latency *
                                      static_cast<VDuration>(k + 1));
    World child = pp.world.fork_alternative(spawn.pids[k], spawn.pids);
    SpecProcess& cp =
        create_process(lid, spawn.alts[k].name, std::move(child),
                       std::move(spawn.alts[k].on_message));
    cp.alternative = true;
    cp.group = spawn.gid;
    cp.parent_pid = spawn.parent_pid;
    table_.set_status(spawn.pids[k], ProcStatus::kRunning);
    // Serial spawn: child k's program starts after k+1 fork charges.
    const Pid cpid = spawn.pids[k];
    auto init = std::move(spawn.alts[k].init);
    queue_.schedule_after(
        cfg_.spawn_latency * static_cast<VDuration>(k + 1),
        [this, cpid, init = std::move(init)] {
          auto it = procs_.find(cpid);
          if (it == procs_.end() || !it->second->alive) return;
          if (init) {
            ProcCtx ctx(*this, *it->second);
            init(ctx);
          }
        });
  }
}

void SpecRuntime::drain_admission() {
  while (!deferred_spawns_.empty()) {
    if (!fits_budget(deferred_spawns_.front().alts.size()))
      return;  // strict FIFO: later, smaller groups do not jump the queue
    PendingSpawn spawn = std::move(deferred_spawns_.front());
    deferred_spawns_.pop_front();
    materialize(std::move(spawn));
  }
}

void SpecRuntime::send_external(LogicalId to, Bytes data) {
  send_from(nullptr, to, std::move(data));
}

void SpecRuntime::send_external_text(LogicalId to, const std::string& text) {
  send_external(to, Bytes(text.begin(), text.end()));
}

void SpecRuntime::send_from(SpecProcess* sender, LogicalId to, Bytes data) {
  Message msg;
  msg.data = std::move(data);
  msg.dest = to;
  if (sender) {
    msg.predicate = sender->world.predicates();
    msg.sender = sender->world.pid();
    msg.sender_logical = sender->lid;
  }
  ++stats_.sent;
  queue_.schedule_after(cfg_.msg_latency, [this, msg = std::move(msg)] {
    // Deliver to every copy alive at delivery time. Snapshot first: a split
    // during delivery adds a rejecting copy that must NOT see this message.
    const std::vector<Pid> targets = live_copies(msg.dest);
    for (Pid t : targets) deliver(t, msg);
  });
}

void SpecRuntime::deliver(Pid copy, Message msg) {
  auto it = procs_.find(copy);
  if (it == procs_.end() || !it->second->alive) return;
  SpecProcess& p = *it->second;

  // A blocked process (a parent waiting in alt_wait) must not act: queue
  // the message; it is re-delivered FIFO when the process resumes.
  if (table_.status(copy) == ProcStatus::kBlocked) {
    p.pending.push(std::move(msg));
    return;
  }
  ++stats_.delivered;
  // Delivery decisions (src/msg) and any split's page traffic carry the
  // event-queue's virtual time through the thread-local trace clock.
  MW_TRACE_SET_NOW(queue_.now());

  // Fold in facts that resolved while the message was in flight; a message
  // whose sending assumptions are now known false came from a dead world.
  if (!simplify_against_oracle(msg.predicate, table_)) {
    ++stats_.pruned;
    return;
  }

  DeliveryDecision d = decide_delivery(p.world.predicates(), msg);
  switch (d.action) {
    case DeliveryAction::kIgnore:
      ++stats_.ignored;
      return;
    case DeliveryAction::kAccept:
      break;
    case DeliveryAction::kSplit: {
      ++stats_.splits;
      // Splitting clones the receiver's world. With the persistent page
      // map this is O(1) in address-space size, so split cost no longer
      // scales with how much state the receiver holds (§2.4.2 receivers
      // used to pay the full §2.3 fork-latency curve here).
      // The rejecting copy continues as if the message never arrived.
      World rejecting = p.world.clone_with_predicates(
          d.reject_preds, p.label + "~reject(" +
                              std::to_string(msg.sender) + ")");
      create_process(p.lid, p.label, std::move(rejecting), p.on_message);
      // The original becomes the accepting copy.
      p.world.predicates() = d.accept_preds;
      break;
    }
  }
  ++stats_.accepted;
  if (p.on_message) {
    ProcCtx ctx(*this, p);
    p.on_message(ctx, msg);
  }
}

bool SpecRuntime::do_try_sync(SpecProcess& p) {
  MW_CHECK(p.alternative);
  if (!p.alive) return false;
  Group& g = groups_[p.group];
  MW_TRACE_SET_NOW(queue_.now());
  if (g.synced) {
    // Lost the at-most-once race: this alternative is eliminated.
    p.alive = false;
    ++stats_.eliminated_copies;
    MW_TRACE_EVENT(trace::EventKind::kAltEliminate, p.world.pid(), kNoPid,
                   p.group, 0, queue_.now());
    table_.set_status(p.world.pid(), ProcStatus::kEliminated);
    return false;
  }
  g.synced = true;
  MW_TRACE_EVENT(trace::EventKind::kAltSync, p.world.pid(), g.parent_pid,
                 p.group, 0, queue_.now());

  // The parent absorbs the child's state: page-pointer replacement.
  auto pit = procs_.find(g.parent_pid);
  if (pit != procs_.end() && pit->second->alive) {
    MW_TRACE_EVENT(trace::EventKind::kWorldCommit, g.parent_pid,
                   p.world.pid(), 0, 0, queue_.now());
    pit->second->world.space().adopt(p.world.space().fork());
    table_.set_status(g.parent_pid, ProcStatus::kRunning);
    // Drain messages that queued while the parent was blocked, in arrival
    // order, through the normal delivery path.
    const Pid parent_pid = g.parent_pid;
    queue_.schedule_after(0, [this, parent_pid] {
      auto it2 = procs_.find(parent_pid);
      if (it2 == procs_.end() || !it2->second->alive) return;
      while (auto m = it2->second->pending.pop()) {
        deliver(parent_pid, std::move(*m));
        // deliver() may block the parent again (nested speculation); stop
        // draining if so — the rest stays queued.
        if (table_.status(parent_pid) == ProcStatus::kBlocked) break;
      }
    });
  }

  p.alive = false;  // the winner's thread of control continues as the parent
  table_.set_status(p.world.pid(), ProcStatus::kSynced);
  return true;
}

void SpecRuntime::do_abort(SpecProcess& p) {
  if (!p.alive) return;
  p.alive = false;
  MW_TRACE_EVENT(trace::EventKind::kAltAbort, p.world.pid(), kNoPid, p.group,
                 0, queue_.now());
  table_.set_status(p.world.pid(), ProcStatus::kFailed);
}

void SpecRuntime::on_terminal(Pid pid, bool completed) {
  ++cascade_depth_;
  MW_CHECK(cascade_depth_ < 1000);  // cycle guard: cascades must terminate

  // Resolve complete(pid) in every live copy. Collect the doomed first —
  // eliminating them re-enters this function through the status listener.
  std::vector<Pid> doomed;
  std::vector<Pid> now_certain;
  for (auto& [qpid, qp] : procs_) {
    if (!qp->alive) continue;
    const PredicateSet::Fate fate =
        qp->world.predicates().resolve(pid, completed);
    if (fate == PredicateSet::Fate::kDoomed) {
      doomed.push_back(qpid);
    } else if (fate == PredicateSet::Fate::kSimplified &&
               qp->world.certain()) {
      now_certain.push_back(qpid);
    }
  }
  if (on_copy_certain) {
    for (Pid c : now_certain) on_copy_certain(c);
  }
  for (Pid d : doomed) {
    auto it = procs_.find(d);
    if (it == procs_.end() || !it->second->alive) continue;
    it->second->alive = false;
    ++stats_.eliminated_copies;
    MW_TRACE_EVENT(trace::EventKind::kAltEliminate, d, kNoPid,
                   it->second->group, 0, queue_.now());
    table_.set_status(d, ProcStatus::kEliminated);
  }
  --cascade_depth_;

  // Copies died — budget may have freed. Drain from a fresh event, not
  // from inside the cascade: materializing forks worlds and fires inits,
  // which must not observe a half-resolved predicate system.
  if (cascade_depth_ == 0 && !deferred_spawns_.empty())
    queue_.schedule_after(0, [this] { drain_admission(); });
}

std::vector<Pid> SpecRuntime::live_copies(LogicalId lid) const {
  std::vector<Pid> out;
  auto it = copies_.find(lid);
  if (it == copies_.end()) return out;
  for (Pid p : it->second) {
    auto pit = procs_.find(p);
    if (pit != procs_.end() && pit->second->alive) out.push_back(p);
  }
  return out;
}

std::vector<Pid> SpecRuntime::all_copies(LogicalId lid) const {
  auto it = copies_.find(lid);
  return it == copies_.end() ? std::vector<Pid>{} : it->second;
}

const World& SpecRuntime::world_of(Pid pid) const { return proc(pid).world; }
AddressSpace& SpecRuntime::space_of(Pid pid) { return proc(pid).world.space(); }
const PredicateSet& SpecRuntime::predicates_of(Pid pid) const {
  return proc(pid).world.predicates();
}
bool SpecRuntime::is_alive(Pid pid) const {
  auto it = procs_.find(pid);
  return it != procs_.end() && it->second->alive;
}

AddressSpace SpecRuntime::checkpoint_copy(Pid pid) const {
  const SpecProcess& p = proc(pid);
  MW_CHECK(p.alive);
  return p.world.space().fork();
}

void SpecRuntime::restore_copy(Pid pid, const AddressSpace& snapshot) {
  SpecProcess& p = proc(pid);
  MW_CHECK(p.alive);
  p.world.rollback(snapshot);
  ++stats_.restarted_copies;
}

std::size_t SpecRuntime::reclaim_dead_worlds() {
  // Destroying a dead copy's world drops its page references; frames whose
  // last reference dies here are salvaged by the global PagePool, so the
  // next split's COW breaks reuse warm frames instead of hitting the
  // allocator.
  std::size_t reclaimed = 0;
  for (auto it = procs_.begin(); it != procs_.end();) {
    if (it->second->alive) {
      ++it;
      continue;
    }
    const Pid pid = it->first;
    auto& pids = copies_[it->second->lid];
    pids.erase(std::remove(pids.begin(), pids.end(), pid), pids.end());
    it = procs_.erase(it);
    ++reclaimed;
  }
  return reclaimed;
}

}  // namespace mw
