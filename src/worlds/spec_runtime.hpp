// SpecRuntime: the full "Multiple Worlds" runtime (§2.4.2) — speculative
// processes that exchange predicated messages, with receivers split into
// two world copies when a message would force new assumptions, and
// event-driven resolution when speculation settles.
//
// Engineering reduction (documented in DESIGN.md): the paper splits a
// *running* process; portable C++ cannot clone a live thread stack, so
// speculative processes here are message-driven actors whose entire mutable
// state lives in their COW world pages plus a copyable control block. A
// split clones the world at a receive point — exactly the moment the paper
// performs it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/world.hpp"
#include "msg/delivery.hpp"
#include "msg/mailbox.hpp"
#include "msg/message.hpp"
#include "proc/process_table.hpp"
#include "util/des.hpp"
#include "util/rng.hpp"
#include "util/vtime.hpp"

namespace mw {

class SpecRuntime;
struct SpecProcess;

/// Execution context passed to actor handlers and init programs. Valid only
/// for the duration of the call.
class ProcCtx {
 public:
  ProcCtx(SpecRuntime& rt, SpecProcess& p) : rt_(rt), p_(p) {}

  AddressSpace& space();
  Pid pid() const;
  LogicalId logical() const;
  const PredicateSet& predicates() const;
  /// No unresolved assumptions: this copy may touch sources (§2.4.2).
  bool certain() const;

  /// Sends `data` to every live copy of `to`, stamped with this copy's
  /// current assumptions as the sending predicate.
  void send(LogicalId to, Bytes data);
  void send_text(LogicalId to, const std::string& text);

  /// Schedules a continuation on this copy after `delay` ticks; skipped if
  /// the copy has been eliminated by then.
  void after(VDuration delay, std::function<void(ProcCtx&)> fn);

  /// For speculative alternatives: attempt the at-most-once synchronization
  /// with the spawning parent. True if this alternative won — its world is
  /// committed into the parent and complete(self) becomes TRUE, cascading
  /// through every predicate in the system.
  bool try_sync();

  /// Abort this copy: complete(self) becomes FALSE.
  void abort();

  VTime now() const;
  Rng& rng();

 private:
  SpecRuntime& rt_;
  SpecProcess& p_;
};

/// One alternative of a speculative group.
struct AltSpec {
  std::string name;
  /// Runs when the alternative is spawned (it may send, write state,
  /// schedule continuations, and eventually try_sync or abort).
  std::function<void(ProcCtx&)> init;
  /// Optional message handler.
  std::function<void(ProcCtx&, const Message&)> on_message;
};

/// A world copy of a logical process.
struct SpecProcess {
  LogicalId lid = kNoLogical;
  std::string label;
  World world;
  std::function<void(ProcCtx&, const Message&)> on_message;
  bool alternative = false;
  std::uint64_t group = 0;   // alt group id (alternatives only)
  Pid parent_pid = kNoPid;   // spawning parent copy (alternatives only)
  bool alive = true;
  Rng rng{0};
  /// Messages that arrived while this copy was blocked (§2.2: a parent
  /// waiting in alt_wait must not change state); drained FIFO on unblock.
  Mailbox pending;

  SpecProcess(World w) : world(std::move(w)) {}
};

struct SpecConfig {
  std::size_t page_size = 256;
  std::size_t num_pages = 64;
  /// One-way message latency in ticks.
  VDuration msg_latency = vt_us(10);
  /// Serial per-child spawn cost charged before an alternative's init runs.
  VDuration spawn_latency = vt_us(5);
  std::uint64_t seed = 1;
  /// Speculation budget: maximum live *speculative* copies (alternative
  /// children of unresolved groups) across the runtime. 0 = unbounded.
  /// Roots and blocked parents do not count — they live for the whole run,
  /// and charging them would make a deferral permanent once the settled
  /// population alone fills the budget. A spawn_alternatives that would
  /// exceed it is *deferred* — its pids and predicates exist immediately,
  /// but the world forks and init programs wait (FIFO) until enough
  /// speculative copies die. A single group larger than the entire budget
  /// could never fit by waiting and is admitted anyway (soft cap) rather
  /// than wedging itself and the queue behind it. The parent stays blocked
  /// either way, so semantics are unchanged; only the peak page footprint
  /// is.
  std::size_t max_live_copies = 0;
};

class SpecRuntime {
 public:
  using Handler = std::function<void(ProcCtx&, const Message&)>;

  explicit SpecRuntime(SpecConfig cfg = {});

  /// Spawns a certain (assumption-free) process. `init`, if given, runs
  /// immediately.
  LogicalId spawn_root(std::string label, Handler on_message = nullptr,
                       std::function<void(ProcCtx&)> init = nullptr);

  /// Spawns mutually exclusive alternatives of `parent` (which must have
  /// exactly one live copy). Each child assumes it completes and its
  /// siblings do not, on top of the parent's assumptions; inits run at
  /// staggered spawn times. Returns the children's pids in order.
  std::vector<Pid> spawn_alternatives(LogicalId parent,
                                      std::vector<AltSpec> alts);

  /// Sends from outside the speculation (an empty sending predicate).
  void send_external(LogicalId to, Bytes data);
  void send_external_text(LogicalId to, const std::string& text);

  /// Runs the simulation until the event queue drains.
  void run() { queue_.run(); }
  void run_until(VTime t) { queue_.run_until(t); }
  VTime now() const { return queue_.now(); }

  // --- Introspection -------------------------------------------------
  std::vector<Pid> live_copies(LogicalId lid) const;
  std::vector<Pid> all_copies(LogicalId lid) const;
  const World& world_of(Pid pid) const;
  AddressSpace& space_of(Pid pid);
  const PredicateSet& predicates_of(Pid pid) const;
  bool is_alive(Pid pid) const;
  ProcessTable& processes() { return table_; }

  /// Supervised recovery hooks. checkpoint_copy captures a COW snapshot of
  /// a copy's sink state (O(1): page-map root share); restore_copy rewinds
  /// the copy to such a snapshot in place — pid, predicates, mailbox, and
  /// any deferred source intents all survive, only the pages roll back.
  /// The copy must still be alive: a restart replays a *live* computation
  /// from its checkpoint, it does not resurrect an eliminated one.
  AddressSpace checkpoint_copy(Pid pid) const;
  void restore_copy(Pid pid, const AddressSpace& snapshot);

  /// Frees the worlds of dead (aborted/eliminated) copies and returns how
  /// many were reclaimed. Opt-in: by default dead copies are retained so
  /// post-mortem introspection (world_of on a dead pid) keeps working, but
  /// a long-running system should reclaim to avoid holding their pages.
  std::size_t reclaim_dead_worlds();

  /// Invoked when a live world copy's predicate set becomes empty during
  /// resolution: its speculation resolved in its favour and it may now
  /// cause observable side effects (flush buffered source output, §2.4.2).
  std::function<void(Pid)> on_copy_certain;

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t accepted = 0;
    std::uint64_t ignored = 0;
    std::uint64_t splits = 0;
    std::uint64_t pruned = 0;             // messages from dead worlds
    std::uint64_t eliminated_copies = 0;  // doomed world copies
    std::uint64_t restarted_copies = 0;   // restore_copy rewinds
    std::uint64_t admission_deferred = 0;  // spawns held back by the budget
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class ProcCtx;

  /// A spawn_alternatives whose forks are waiting for the budget.
  struct PendingSpawn {
    Pid parent_pid = kNoPid;
    std::uint64_t gid = 0;
    std::vector<Pid> pids;
    std::vector<AltSpec> alts;
  };

  SpecProcess& proc(Pid pid);
  const SpecProcess& proc(Pid pid) const;
  SpecProcess& create_process(LogicalId lid, std::string label, World world,
                              Handler on_message);
  std::size_t live_speculative_count() const;
  bool fits_budget(std::size_t group_size) const;
  void materialize(PendingSpawn spawn);
  void drain_admission();
  void send_from(SpecProcess* sender, LogicalId to, Bytes data);
  void deliver(Pid copy, Message msg);
  void on_terminal(Pid pid, bool completed);
  bool do_try_sync(SpecProcess& p);
  void do_abort(SpecProcess& p);

  struct Group {
    Pid parent_pid = kNoPid;
    bool synced = false;
    std::vector<Pid> members;
  };

  SpecConfig cfg_;
  ProcessTable table_;
  EventQueue queue_;
  Rng rng_;
  std::map<Pid, std::unique_ptr<SpecProcess>> procs_;
  std::map<LogicalId, std::vector<Pid>> copies_;
  std::map<std::uint64_t, Group> groups_;
  std::deque<PendingSpawn> deferred_spawns_;  // FIFO admission queue
  LogicalId next_lid_ = 1;
  std::uint64_t next_group_ = 1;
  Stats stats_;
  /// Re-entrancy depth of the resolution cascade (diagnostic only).
  int cascade_depth_ = 0;
};

}  // namespace mw
