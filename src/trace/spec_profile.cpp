#include "trace/spec_profile.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace mw::trace {

namespace {

struct ChildInfo {
  std::uint64_t group = 0;
  VTime start = kNoTraceTime;
  VTime end = kNoTraceTime;
  std::uint64_t pages = 0;
  enum Fate { kPending, kSurvived, kEliminated, kAborted } fate = kPending;

  VDuration work() const {
    return (start != kNoTraceTime && end != kNoTraceTime && end > start)
               ? end - start
               : 0;
  }
};

void max_time(VTime& slot, VTime t) {
  if (t != kNoTraceTime && (slot == kNoTraceTime || t > slot)) slot = t;
}

void min_time(VTime& slot, VTime t) {
  if (t != kNoTraceTime && (slot == kNoTraceTime || t < slot)) slot = t;
}

}  // namespace

std::size_t SpecProfile::worlds_spawned() const {
  std::size_t n = 0;
  for (const RaceProfile& r : races) n += r.spawned;
  return n;
}

std::size_t SpecProfile::worlds_survived() const {
  std::size_t n = 0;
  for (const RaceProfile& r : races) n += r.survived;
  return n;
}

std::size_t SpecProfile::worlds_eliminated() const {
  std::size_t n = 0;
  for (const RaceProfile& r : races) n += r.eliminated + r.aborted;
  return n;
}

VDuration SpecProfile::work_total() const {
  VDuration n = 0;
  for (const RaceProfile& r : races) n += r.work_total;
  return n;
}

VDuration SpecProfile::work_wasted() const {
  VDuration n = 0;
  for (const RaceProfile& r : races) n += r.work_wasted;
  return n;
}

std::uint64_t SpecProfile::pages_copied_losers() const {
  std::uint64_t n = 0;
  for (const RaceProfile& r : races) n += r.pages_copied_losers;
  return n;
}

std::size_t SpecProfile::worlds_revoked() const {
  std::size_t n = 0;
  for (const RaceProfile& r : races) n += r.revoked;
  return n;
}

std::uint64_t SpecProfile::revoked_pages() const {
  std::uint64_t n = 0;
  for (const RaceProfile& r : races) n += r.revoked_pages;
  return n;
}

double SpecProfile::wasted_ratio() const {
  const VDuration total = work_total();
  return total > 0 ? static_cast<double>(work_wasted()) /
                         static_cast<double>(total)
                   : 0.0;
}

SpecProfile build_spec_profile(const std::vector<TraceEvent>& events,
                               std::uint64_t dropped) {
  SpecProfile p;
  p.events = events.size();
  p.dropped = dropped;

  std::unordered_map<std::uint64_t, std::size_t> race_index;
  std::unordered_map<Pid, ChildInfo> children;

  auto race_for = [&](std::uint64_t group) -> RaceProfile& {
    auto it = race_index.find(group);
    if (it == race_index.end()) {
      it = race_index.emplace(group, p.races.size()).first;
      p.races.emplace_back();
      p.races.back().group = group;
    }
    return p.races[it->second];
  };

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kAltBlockBegin: {
        RaceProfile& r = race_for(e.a);
        r.parent = e.pid;
        break;
      }
      case EventKind::kAltSpawn: {
        race_for(e.a).spawned++;
        children[e.pid].group = e.a;
        break;
      }
      case EventKind::kAltChildBegin: {
        ChildInfo& c = children[e.pid];
        c.group = e.a;
        c.start = e.t;
        break;
      }
      case EventKind::kAltChildEnd: {
        ChildInfo& c = children[e.pid];
        c.group = e.a;
        c.end = e.t;
        c.pages = e.b;
        max_time(race_for(e.a).quiesce, e.t);
        break;
      }
      case EventKind::kAltSync: {
        RaceProfile& r = race_for(e.a);
        r.survived++;
        min_time(r.first_win, e.t);
        max_time(r.quiesce, e.t);
        if (auto it = children.find(e.pid); it != children.end())
          it->second.fate = ChildInfo::kSurvived;
        break;
      }
      case EventKind::kAltEliminate: {
        RaceProfile& r = race_for(e.a);
        r.eliminated++;
        max_time(r.quiesce, e.t);
        if (auto it = children.find(e.pid); it != children.end())
          it->second.fate = ChildInfo::kEliminated;
        break;
      }
      case EventKind::kAltAbort: {
        RaceProfile& r = race_for(e.a);
        r.aborted++;
        max_time(r.quiesce, e.t);
        if (auto it = children.find(e.pid); it != children.end())
          it->second.fate = ChildInfo::kAborted;
        break;
      }
      case EventKind::kAltBlockEnd: {
        if (e.b != 0) race_for(e.a).timed_out = true;
        break;
      }
      case EventKind::kWorldSplit: {
        if (e.b != 0) race_for(e.b).splits++;
        break;
      }
      case EventKind::kPageCopy: {
        p.page_copies++;
        p.page_copy_bytes += e.b;
        break;
      }
      case EventKind::kMsgAccept: p.msg_accepted++; break;
      case EventKind::kMsgIgnore: p.msg_ignored++; break;
      case EventKind::kMsgSplit: p.msg_split++; break;
      case EventKind::kGateDefer: p.gate_deferred++; break;
      case EventKind::kGateRelease: p.gate_released++; break;
      case EventKind::kGateDrop: p.gate_dropped++; break;
      case EventKind::kSuperRestart:
      case EventKind::kDistFailover: p.restarts++; break;
      case EventKind::kSchedEnqueue: p.sched_enqueued++; break;
      case EventKind::kSchedSteal: p.sched_steals++; break;
      case EventKind::kSchedAdmitDefer: p.sched_admission_deferred++; break;
      case EventKind::kNetSend:
        p.net_sends++;
        p.net_send_bytes += e.a;
        break;
      case EventKind::kNetDeliver: p.net_delivered++; break;
      case EventKind::kNetRetransmit:
        p.net_retransmits++;
        p.net_backoff_total += static_cast<VDuration>(e.b);
        break;
      case EventKind::kNetTimeout:
        p.net_timeouts++;
        if (e.b != 0) p.net_deadline_expired++;
        break;
      case EventKind::kNetPeerSuspect: p.net_peer_suspects++; break;
      case EventKind::kNetPeerDead: p.net_peer_deaths++; break;
      case EventKind::kNetPartition: p.net_partition_drops++; break;
      case EventKind::kSvcRequest: p.svc_requests++; break;
      case EventKind::kSvcResponse: p.svc_ok++; break;
      case EventKind::kSvcReplay: p.svc_replays++; break;
      case EventKind::kSvcShed: p.svc_sheds++; break;
      case EventKind::kSvcHedge: p.svc_hedges++; break;
      case EventKind::kSvcFailover: p.svc_failovers++; break;
      case EventKind::kSvcBrownout:
        if (e.a != 0) p.svc_brownout_enters++;
        break;
      case EventKind::kSvcBreaker:
        if (e.b == 1) p.svc_breaker_opens++;
        break;
      case EventKind::kSvcLocalFallback: p.svc_local_fallbacks++; break;
      case EventKind::kSvcClusterEvict: p.svc_cluster_evictions++; break;
      case EventKind::kSvcClusterRejoin: p.svc_cluster_rejoins++; break;
      case EventKind::kSvcClusterHandoff: p.svc_cluster_handoffs++; break;
      case EventKind::kSvcClusterMisroute: p.svc_cluster_misroutes++; break;
      case EventKind::kPolicyWidth: p.policy_width_updates++; break;
      case EventKind::kPolicyOrder: p.policy_orders++; break;
      case EventKind::kPolicyDefer: p.policy_defers++; break;
      case EventKind::kPolicyExplore: p.policy_explores++; break;
      case EventKind::kPolicyHedge: p.policy_hedges++; break;
      case EventKind::kSchedRevoke: {
        RaceProfile& r = race_for(e.a);
        r.revoked++;
        r.revoked_pages += e.b;
        break;
      }
      default: break;
    }
  }

  // Second pass: charge each child's execution time and COW traffic to its
  // race now that every fate is known (event order within a race is not
  // guaranteed to put the fate after the child-end record).
  for (const auto& [pid, c] : children) {
    RaceProfile& r = race_for(c.group);
    r.work_total += c.work();
    r.pages_copied_total += c.pages;
    if (c.fate != ChildInfo::kSurvived) {
      r.work_wasted += c.work();
      r.pages_copied_losers += c.pages;
    }
  }
  return p;
}

std::string SpecProfile::to_string() const {
  std::ostringstream os;
  os << "SpecProfile: " << races.size() << " race(s), " << worlds_spawned()
     << " world(s) spawned, " << worlds_survived() << " survived, "
     << worlds_eliminated() << " eliminated/aborted\n";
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "  wasted-work ratio " << wasted_ratio() << " ("
     << vt_to_ms(work_wasted()) << " of " << vt_to_ms(work_total())
     << " ms burned in losing worlds)\n";
  os << "  COW traffic: " << page_copies << " page cop"
     << (page_copies == 1 ? "y" : "ies") << " (" << page_copy_bytes
     << " B), " << pages_copied_losers() << " page(s) copied by losers\n";
  if (msg_accepted + msg_ignored + msg_split > 0)
    os << "  messages: " << msg_accepted << " accepted, " << msg_ignored
       << " ignored, " << msg_split << " split\n";
  if (gate_deferred + gate_released + gate_dropped > 0)
    os << "  gate: " << gate_deferred << " deferred, " << gate_released
       << " released, " << gate_dropped << " dropped\n";
  if (restarts > 0) os << "  restarts/failovers: " << restarts << "\n";
  if (net_sends + net_retransmits + net_timeouts + net_partition_drops > 0) {
    os << "  transport: " << net_sends << " frame(s) sent (" << net_send_bytes
       << " B), " << net_delivered << " delivered, " << net_retransmits
       << " retransmit(s) (" << vt_to_ms(net_backoff_total)
       << " ms backoff), " << net_timeouts << " timeout(s)";
    if (net_deadline_expired > 0)
      os << " (" << net_deadline_expired << " deadline)";
    if (net_partition_drops > 0)
      os << ", " << net_partition_drops << " partition-dropped";
    os << "\n";
    if (net_peer_suspects + net_peer_deaths > 0)
      os << "  peer health: " << net_peer_suspects << " suspect event(s), "
         << net_peer_deaths << " death(s)\n";
  }
  if (svc_requests + svc_sheds + svc_replays > 0) {
    os << "  service: " << svc_requests << " request(s) admitted, " << svc_ok
       << " ok, " << svc_replays << " replayed, " << svc_sheds << " shed, "
       << svc_hedges << " hedge(s), " << svc_failovers << " failover(s)";
    if (svc_local_fallbacks > 0)
      os << ", " << svc_local_fallbacks << " local-fallback(s)";
    os << "\n";
    if (svc_brownout_enters + svc_breaker_opens > 0)
      os << "  service health: " << svc_brownout_enters
         << " brownout(s), " << svc_breaker_opens << " breaker open(s)\n";
    if (svc_cluster_evictions + svc_cluster_rejoins + svc_cluster_handoffs +
            svc_cluster_misroutes >
        0)
      os << "  cluster: " << svc_cluster_evictions << " eviction(s), "
         << svc_cluster_rejoins << " rejoin(s), " << svc_cluster_handoffs
         << " handoff(s), " << svc_cluster_misroutes << " misroute(s)\n";
  }
  if (policy_width_updates + policy_orders + policy_defers + policy_explores +
          policy_hedges >
      0)
    os << "  policy: " << policy_orders << " order(s), " << policy_explores
       << " explore(s), " << policy_defers << " defer(s), "
       << policy_width_updates << " width update(s), " << policy_hedges
       << " adaptive hedge(s)\n";
  if (!pool_shards.empty()) {
    PoolShardCounters sum;
    for (const PoolShardCounters& c : pool_shards) {
      sum.hits += c.hits;
      sum.misses += c.misses;
      sum.steal_refills += c.steal_refills;
      sum.overflows += c.overflows;
      sum.frames_held += c.frames_held;
    }
    os << "  page pool: " << pool_shards.size() << " shard(s), " << sum.hits
       << " hit(s), " << sum.misses << " miss(es), " << sum.steal_refills
       << " steal-refill(s), " << sum.overflows << " overflow(s), "
       << sum.frames_held << " frame(s) held\n";
    for (const PoolShardCounters& c : pool_shards) {
      if (c.hits + c.misses + c.recycled + c.dropped + c.steal_refills +
              c.overflows + c.frames_held == 0)
        continue;
      os << "    shard #" << c.shard << (c.shard == 0 ? " (global)" : "")
         << ": " << c.hits << " hit(s), " << c.misses << " miss(es), "
         << c.recycled << " recycled, " << c.dropped << " dropped, "
         << c.steal_refills << " stolen-in, " << c.overflows
         << " overflowed-in, " << c.frames_held << " held\n";
    }
  }
  if (sched_enqueued + sched_steals + sched_admission_deferred +
          worlds_revoked() > 0)
    os << "  scheduler: " << sched_enqueued << " enqueued, " << sched_steals
       << " stolen, " << worlds_revoked() << " revoked unrun ("
       << revoked_pages() << " page(s)), " << sched_admission_deferred
       << " admission-deferred\n";
  for (const RaceProfile& r : races) {
    os << "  race #" << r.group << ": " << r.spawned << " spawned, "
       << r.survived << " won, " << r.eliminated << " eliminated, "
       << r.aborted << " aborted";
    if (r.splits > 0) os << ", " << r.splits << " split(s)";
    os << "; wasted " << r.wasted_ratio();
    if (r.first_win != kNoTraceTime)
      os << "; first win @" << vt_to_ms(r.first_win) << " ms";
    if (r.quiesce != kNoTraceTime)
      os << ", quiesce @" << vt_to_ms(r.quiesce) << " ms";
    if (r.timed_out) os << " [timed out]";
    os << "\n";
  }
  if (dropped > 0)
    os << "  (" << dropped
       << " event(s) dropped by full rings — figures are lower bounds)\n";
  return os.str();
}

}  // namespace mw::trace
