#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

namespace mw::trace {

namespace {

// One thread's private ring. Owned jointly by the thread (via the
// thread_local handle below) and the registry (so collect() can read
// rings of threads that have exited). Only the owning thread writes
// head_/events_; collect() snapshots under the registry mutex while
// recording is globally disabled or racing benignly — record order is
// reconstructed from seq, and torn reads are impossible in practice
// because collect()/drain() are called from quiesced sections (bench
// teardown, test asserts). Capacities are rounded up to a power of two
// so the ring index is a mask, not a division — emit() is on the
// instrumented fast path.
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

struct Ring {
  explicit Ring(std::size_t capacity)
      : events_(round_up_pow2(capacity)),
        capacity_(events_.size()),
        mask_(events_.size() - 1) {}

  // Hands out the next slot for in-place field writes: building the
  // record on the stack and copying it in makes the compiler bounce the
  // 48 bytes through memory (a store-forwarding stall per event).
  TraceEvent& next_slot() {
    TraceEvent& slot = events_[head_ & mask_];
    ++head_;
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (head_ - t > capacity_)  // overwrote the oldest record
      tail_.store(t + 1, std::memory_order_relaxed);
    return slot;
  }

  // tail_ advances exactly once per overwritten record, so it doubles as
  // the dropped-events counter — a relaxed store by the owning thread,
  // not a fetch_add, keeps the full-ring push path RMW-free apart from
  // the seq counter.
  std::uint64_t dropped() const {
    return tail_.load(std::memory_order_relaxed);
  }

  void snapshot(std::vector<TraceEvent>& out) const {
    for (std::size_t i = tail_.load(std::memory_order_relaxed); i < head_;
         ++i)
      out.push_back(events_[i & mask_]);
  }

  void clear() {
    head_ = 0;
    tail_.store(0, std::memory_order_relaxed);
  }

  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::size_t mask_;
  std::size_t head_ = 0;  // next slot to write (monotonic)
  // Oldest live record (monotonic); atomic because dropped() and the
  // auditor read it while the owner pushes.
  std::atomic<std::size_t> tail_{0};
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  std::size_t ring_capacity = std::size_t{1} << 16;
  std::uint16_t next_tid = 0;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_seq{0};

// Per-thread state is three constant-initialized PODs, not a struct with
// a destructor: a plain pointer needs no thread_local init guard and no
// shared_ptr deref on the emit path. The pointee stays valid after thread
// exit because the registry holds a shared_ptr to every ring forever.
thread_local Ring* t_ring = nullptr;
thread_local std::uint16_t t_tid = 0;
thread_local VTime t_now = kNoTraceTime;

// Registers this thread's ring on first use. Out of line: emit() only
// pays for the registration branch, never the mutex, once attached.
Ring* attach_ring() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto ring = std::make_shared<Ring>(r.ring_capacity);
  t_ring = ring.get();
  t_tid = r.next_tid++;
  r.rings.push_back(std::move(ring));
  return t_ring;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void set_ring_capacity(std::size_t events) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.ring_capacity = events < 2 ? 2 : events;
}

void emit(EventKind kind, Pid pid, Pid other, std::uint64_t a, std::uint64_t b,
          VTime t) {
  if (!enabled()) return;
  Ring* ring = t_ring;
  if (!ring) ring = attach_ring();
  TraceEvent& e = ring->next_slot();
  e.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  e.t = (t == kNoTraceTime) ? t_now : t;
  e.a = a;
  e.b = b;
  e.pid = pid;
  e.other = other;
  e.kind = kind;
  e.tid = t_tid;
  e.pad = 0;
}

void set_now(VTime t) { t_now = t; }

VTime now() { return t_now; }

std::vector<TraceEvent> collect() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<TraceEvent> out;
  for (const auto& ring : r.rings) ring->snapshot(out);
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

std::vector<TraceEvent> drain() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<TraceEvent> out;
  for (const auto& ring : r.rings) {
    ring->snapshot(out);
    ring->clear();
  }
  g_seq.store(0, std::memory_order_relaxed);
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

std::uint64_t dropped() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t total = 0;
  for (const auto& ring : r.rings)
    total += ring->dropped();
  return total;
}

std::uint64_t emitted() { return g_seq.load(std::memory_order_relaxed); }

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings) ring->clear();
  g_seq.store(0, std::memory_order_relaxed);
}

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kAltBlockBegin: return "alt_block_begin";
    case EventKind::kAltSpawn: return "alt_spawn";
    case EventKind::kAltChildBegin: return "alt_child_begin";
    case EventKind::kAltChildEnd: return "alt_child_end";
    case EventKind::kAltSync: return "alt_sync";
    case EventKind::kAltEliminate: return "alt_eliminate";
    case EventKind::kAltAbort: return "alt_abort";
    case EventKind::kAltWait: return "alt_wait";
    case EventKind::kAltBlockEnd: return "alt_block_end";
    case EventKind::kWorldFork: return "world_fork";
    case EventKind::kWorldSplit: return "world_split";
    case EventKind::kWorldCommit: return "world_commit";
    case EventKind::kWorldRollback: return "world_rollback";
    case EventKind::kPageFork: return "page_fork";
    case EventKind::kPageAdopt: return "page_adopt";
    case EventKind::kPageAlloc: return "page_alloc";
    case EventKind::kPageCopy: return "page_copy";
    case EventKind::kMsgAccept: return "msg_accept";
    case EventKind::kMsgIgnore: return "msg_ignore";
    case EventKind::kMsgSplit: return "msg_split";
    case EventKind::kGateDefer: return "gate_defer";
    case EventKind::kGateRelease: return "gate_release";
    case EventKind::kGateDrop: return "gate_drop";
    case EventKind::kGateReject: return "gate_reject";
    case EventKind::kSuperRestart: return "super_restart";
    case EventKind::kSuperQuarantine: return "super_quarantine";
    case EventKind::kSuperCheckpoint: return "super_checkpoint";
    case EventKind::kDistFailover: return "dist_failover";
    case EventKind::kDistDemote: return "dist_demote";
    case EventKind::kSchedEnqueue: return "sched_enqueue";
    case EventKind::kSchedSteal: return "sched_steal";
    case EventKind::kSchedRevoke: return "sched_revoke";
    case EventKind::kSchedAdmitDefer: return "sched_admit_defer";
    case EventKind::kNetSend: return "net_send";
    case EventKind::kNetDeliver: return "net_deliver";
    case EventKind::kNetRetransmit: return "net_retransmit";
    case EventKind::kNetTimeout: return "net_timeout";
    case EventKind::kNetPeerSuspect: return "net_peer_suspect";
    case EventKind::kNetPeerDead: return "net_peer_dead";
    case EventKind::kNetPartition: return "net_partition";
    case EventKind::kSvcRequest: return "svc_request";
    case EventKind::kSvcResponse: return "svc_response";
    case EventKind::kSvcReplay: return "svc_replay";
    case EventKind::kSvcShed: return "svc_shed";
    case EventKind::kSvcHedge: return "svc_hedge";
    case EventKind::kSvcFailover: return "svc_failover";
    case EventKind::kSvcBrownout: return "svc_brownout";
    case EventKind::kSvcBreaker: return "svc_breaker";
    case EventKind::kSvcLocalFallback: return "svc_local_fallback";
    case EventKind::kSvcClusterEvict: return "svc_cluster_evict";
    case EventKind::kSvcClusterRejoin: return "svc_cluster_rejoin";
    case EventKind::kSvcClusterHandoff: return "svc_cluster_handoff";
    case EventKind::kSvcClusterMisroute: return "svc_cluster_misroute";
    case EventKind::kPolicyWidth: return "policy_width";
    case EventKind::kPolicyOrder: return "policy_order";
    case EventKind::kPolicyDefer: return "policy_defer";
    case EventKind::kPolicyExplore: return "policy_explore";
    case EventKind::kPolicyHedge: return "policy_hedge";
  }
  return "unknown";
}

}  // namespace mw::trace
