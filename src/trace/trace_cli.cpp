#include "trace/trace_cli.hpp"

#include <iostream>

#include "trace/chrome_trace.hpp"

namespace mw::trace {

TraceSession::TraceSession(const Cli& cli)
    : path_(cli.get("trace", "")), want_profile_(cli.has("profile")) {
  active_ = !path_.empty() || want_profile_;
  if (active_) {
    reset();
    set_enabled(true);
  }
}

TraceSession::~TraceSession() {
  if (active_ && !finished_) set_enabled(false);
}

void TraceSession::finish(std::ostream& out) {
  if (!active_ || finished_) return;
  finished_ = true;
  set_enabled(false);
  const std::uint64_t drops = dropped();
  const std::vector<TraceEvent> events = drain();
  profile_ = build_spec_profile(events, drops);
  if (profile_hook_) profile_hook_(profile_);
  if (!path_.empty()) {
    if (write_chrome_json(path_, events))
      out << "wrote " << path_ << " (" << events.size()
          << " events; open in chrome://tracing or ui.perfetto.dev)\n";
    else
      out << "trace: failed to write " << path_ << "\n";
  }
  if (want_profile_) out << profile_.to_string();
}

}  // namespace mw::trace
