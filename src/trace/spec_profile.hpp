// SpecProfile: speculation-efficiency metrics derived from the raw trace
// stream. The paper's core trade is throughput burned as wasted speculative
// work in exchange for response time; this aggregator makes the burn rate a
// number. Grouped per race (alt group id) and totalled:
//
//   * worlds spawned vs. survived (committed) vs. eliminated/aborted;
//   * wasted-work ratio — losing alternatives' execution time over all
//     alternatives' execution time (0 = no speculation overhead,
//     (k-1)/k = perfectly balanced k-way race);
//   * pages copied by losers — COW traffic thrown away at elimination;
//   * time-to-first-win vs. time-to-quiesce — how long before the block
//     had its answer vs. how long until the last loser stopped burning
//     cycles (identical in the DES backends, which eliminate losers
//     instantly; they diverge on the thread backend).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace mw::trace {

/// Per-race (per alt-group) speculation accounting.
struct RaceProfile {
  std::uint64_t group = 0;
  Pid parent = kNoPid;
  std::size_t spawned = 0;     // worlds forked for this race
  std::size_t survived = 0;    // worlds that won their sync (committed)
  std::size_t eliminated = 0;  // losers killed by a sibling's win
  std::size_t aborted = 0;     // self-aborts (guard/body/accept failure)
  std::size_t splits = 0;      // receiver splits charged to this race
  VDuration work_total = 0;    // sum of all alternatives' execution time
  VDuration work_wasted = 0;   // execution time of non-surviving worlds
  std::uint64_t pages_copied_total = 0;
  std::uint64_t pages_copied_losers = 0;
  /// Pool backend: losers revoked while still queued — their bodies never
  /// ran and they copied zero pages. Counted inside `eliminated` too.
  std::size_t revoked = 0;
  /// COW pages the revoked siblings had copied when pruned. The pruning
  /// guarantee is that this is always 0; the bench asserts it.
  std::uint64_t revoked_pages = 0;
  VTime first_win = kNoTraceTime;  // earliest kAltSync timestamp
  VTime quiesce = kNoTraceTime;    // latest child-end/eliminate timestamp
  bool timed_out = false;          // block ended with no winner

  /// Fraction of alternative execution time spent in worlds that lost.
  double wasted_ratio() const {
    return work_total > 0
               ? static_cast<double>(work_wasted) /
                     static_cast<double>(work_total)
               : 0.0;
  }
};

/// One PagePool shard's counters at profile time. The trace layer defines
/// only the carrier struct (it cannot depend on the pagestore); the pool
/// fills it via PagePool::fold_into, typically through TraceSession's
/// profile hook. hits/misses/steal_refills are attributed to the shard the
/// allocating thread was homed to, recycled/overflows to the shard the
/// frame landed in.
struct PoolShardCounters {
  std::size_t shard = 0;  // 0 = the unbound-thread global fallback shard
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t recycled = 0;
  std::uint64_t dropped = 0;
  std::uint64_t steal_refills = 0;
  std::uint64_t overflows = 0;
  std::uint64_t frames_held = 0;
};

/// Whole-run aggregation over a trace stream.
struct SpecProfile {
  std::vector<RaceProfile> races;  // in first-seen order
  std::uint64_t events = 0;        // trace records consumed
  std::uint64_t dropped = 0;       // ring drops (metrics are lower bounds)
  std::uint64_t page_copies = 0;   // all kPageCopy events
  std::uint64_t page_copy_bytes = 0;
  std::uint64_t msg_accepted = 0;
  std::uint64_t msg_ignored = 0;
  std::uint64_t msg_split = 0;
  std::uint64_t gate_deferred = 0;
  std::uint64_t gate_released = 0;
  std::uint64_t gate_dropped = 0;
  std::uint64_t restarts = 0;   // supervisor restarts + dist failovers
  // Speculation-scheduler traffic (kPool backend).
  std::uint64_t sched_enqueued = 0;
  std::uint64_t sched_steals = 0;
  std::uint64_t sched_admission_deferred = 0;
  // Transport health (Sim/Socket backends + reliable channel): how many
  // frames moved, how hard the retry discipline worked, and whether peers
  // went suspect/dead — the observable shape of a partition or a slow link.
  std::uint64_t net_sends = 0;
  std::uint64_t net_send_bytes = 0;
  std::uint64_t net_delivered = 0;
  std::uint64_t net_retransmits = 0;
  VDuration net_backoff_total = 0;   // RTO ticks paid across retransmits
  std::uint64_t net_timeouts = 0;    // transfers that gave up
  std::uint64_t net_deadline_expired = 0;  // subset: per-request deadline
  std::uint64_t net_peer_suspects = 0;
  std::uint64_t net_peer_deaths = 0;
  std::uint64_t net_partition_drops = 0;
  // Hedged-speculation service (src/service: HedgedServer).
  std::uint64_t svc_requests = 0;         // executable arrivals admitted
  std::uint64_t svc_ok = 0;               // OK responses committed
  std::uint64_t svc_replays = 0;          // duplicates answered from cache
  std::uint64_t svc_sheds = 0;            // requests refused at admission
  std::uint64_t svc_hedges = 0;           // hedge attempts dispatched
  std::uint64_t svc_failovers = 0;        // attempts re-dispatched after a
                                          //   backend went dead/broke
  std::uint64_t svc_brownout_enters = 0;  // hedging disabled under load
  std::uint64_t svc_breaker_opens = 0;    // circuit-breaker open transitions
  std::uint64_t svc_local_fallbacks = 0;  // degraded to the local kPool race
  // Cluster layer (src/service/cluster.hpp: ClusterNode).
  std::uint64_t svc_cluster_evictions = 0;  // nodes dropped from the ring
  std::uint64_t svc_cluster_rejoins = 0;    // nodes re-added after probation
  std::uint64_t svc_cluster_handoffs = 0;   // kSvcHandoff frames sent
  std::uint64_t svc_cluster_misroutes = 0;  // requests refused as non-owner
  // Adaptive speculation policy (src/core/spec_policy.hpp). All zero in
  // kStatic mode, which emits no policy events.
  std::uint64_t policy_width_updates = 0;  // admission-width moves
  std::uint64_t policy_orders = 0;         // race plans with a ranked order
  std::uint64_t policy_defers = 0;         // last-ranked picks + split vetoes
  std::uint64_t policy_explores = 0;       // floor/epsilon boosts
  std::uint64_t policy_hedges = 0;         // p95-derived hedge delays
  // Per-shard frame-pool counters (empty unless a caller folded them in;
  // see PagePool::fold_into and TraceSession::set_profile_hook).
  std::vector<PoolShardCounters> pool_shards;

  std::size_t worlds_spawned() const;
  std::size_t worlds_survived() const;
  std::size_t worlds_eliminated() const;
  VDuration work_total() const;
  VDuration work_wasted() const;
  std::uint64_t pages_copied_losers() const;
  std::size_t worlds_revoked() const;
  std::uint64_t revoked_pages() const;
  double wasted_ratio() const;

  /// Compact multi-line text summary for benches and altc_tool.
  std::string to_string() const;
};

/// Builds the profile from a trace stream (as returned by collect()).
/// `dropped` is the collector's dropped() counter at snapshot time; when
/// non-zero the derived metrics are lower bounds and to_string says so.
SpecProfile build_spec_profile(const std::vector<TraceEvent>& events,
                               std::uint64_t dropped = 0);

}  // namespace mw::trace
