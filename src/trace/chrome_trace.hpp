// Chrome-trace (Perfetto) exporter for the mw_trace event stream.
//
// Renders world lineage as nested spans: each race (alt group) becomes a
// trace "process", each world in the race a "thread" whose span covers the
// world's execution; instants mark sync/eliminate/abort fates, and flow
// arrows connect the parent's spawn to each child's span and the winning
// child's commit back to the parent. Timestamps are virtual ticks, which
// the runtime models as microseconds — exactly the unit chrome://tracing
// and ui.perfetto.dev expect. Open the written file directly in either.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace mw::trace {

/// Serialises the stream as Chrome trace-event JSON ("traceEvents" array).
std::string to_chrome_json(const std::vector<TraceEvent>& events);

/// Writes to_chrome_json(events) to `path`. Returns false on I/O failure.
bool write_chrome_json(const std::string& path,
                       const std::vector<TraceEvent>& events);

}  // namespace mw::trace
