#include "trace/chrome_trace.hpp"

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

namespace mw::trace {

namespace {

// Per-world reconstruction of one race participant.
struct WorldSpan {
  std::uint64_t group = 0;
  Pid parent = kNoPid;
  std::uint64_t alt_index = 0;  // 1-based position in the block; 0 unknown
  VTime spawn = kNoTraceTime;   // parent-side spawn timestamp
  VTime start = kNoTraceTime;
  VTime end = kNoTraceTime;
  VTime fate_t = kNoTraceTime;
  std::uint64_t pages = 0;
  const char* fate = "pending";
};

struct RaceSpan {
  Pid parent = kNoPid;
  VTime begin = kNoTraceTime;
  VTime end = kNoTraceTime;
  bool timed_out = false;
};

VTime or_zero(VTime t) { return t == kNoTraceTime ? 0 : t; }

// One JSON trace-event object. Field order matches the Chrome examples so
// diffs against reference traces stay readable.
class EventWriter {
 public:
  explicit EventWriter(std::ostringstream& os) : os_(os) {}

  void meta(const char* what, std::uint64_t pid, std::uint64_t tid,
            const std::string& name) {
    sep();
    os_ << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << name << "\"}}";
  }

  void complete(const std::string& name, std::uint64_t pid, std::uint64_t tid,
                VTime ts, VTime dur, const std::string& args_json) {
    sep();
    os_ << "{\"name\":\"" << name << "\",\"ph\":\"X\",\"ts\":" << ts
        << ",\"dur\":" << (dur < 1 ? 1 : dur) << ",\"pid\":" << pid
        << ",\"tid\":" << tid;
    if (!args_json.empty()) os_ << ",\"args\":{" << args_json << "}";
    os_ << "}";
  }

  void instant(const std::string& name, std::uint64_t pid, std::uint64_t tid,
               VTime ts) {
    sep();
    os_ << "{\"name\":\"" << name << "\",\"ph\":\"i\",\"ts\":" << ts
        << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"s\":\"t\"}";
  }

  void flow(char phase, std::uint64_t id, std::uint64_t pid, std::uint64_t tid,
            VTime ts) {
    sep();
    os_ << "{\"name\":\"lineage\",\"cat\":\"world\",\"ph\":\"" << phase
        << "\",\"id\":" << id << ",\"ts\":" << ts << ",\"pid\":" << pid
        << ",\"tid\":" << tid;
    if (phase == 'f') os_ << ",\"bp\":\"e\"";
    os_ << "}";
  }

 private:
  void sep() {
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << "  ";
  }

  std::ostringstream& os_;
  bool first_ = true;
};

}  // namespace

std::string to_chrome_json(const std::vector<TraceEvent>& events) {
  // Pass 1: reconstruct races and world spans from the flat stream.
  std::map<std::uint64_t, RaceSpan> races;       // group -> block span
  std::map<Pid, WorldSpan> worlds;               // child pid -> span
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kAltBlockBegin: {
        RaceSpan& r = races[e.a];
        r.parent = e.pid;
        r.begin = e.t;
        break;
      }
      case EventKind::kAltBlockEnd: {
        RaceSpan& r = races[e.a];
        r.end = e.t;
        r.timed_out = e.b != 0;
        break;
      }
      case EventKind::kAltSpawn: {
        WorldSpan& w = worlds[e.pid];
        w.group = e.a;
        w.parent = e.other;
        w.alt_index = e.b;
        w.spawn = e.t;
        break;
      }
      case EventKind::kAltChildBegin: {
        WorldSpan& w = worlds[e.pid];
        w.group = e.a;
        w.start = e.t;
        break;
      }
      case EventKind::kAltChildEnd: {
        WorldSpan& w = worlds[e.pid];
        w.end = e.t;
        w.pages = e.b;
        break;
      }
      case EventKind::kAltSync: {
        WorldSpan& w = worlds[e.pid];
        w.fate = "won";
        w.fate_t = e.t;
        break;
      }
      case EventKind::kAltEliminate: {
        WorldSpan& w = worlds[e.pid];
        w.fate = "eliminated";
        w.fate_t = e.t;
        break;
      }
      case EventKind::kAltAbort: {
        WorldSpan& w = worlds[e.pid];
        w.fate = "aborted";
        w.fate_t = e.t;
        break;
      }
      default: break;
    }
  }

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  EventWriter w(os);

  // Trace-process 0 carries runtime-wide instants (gate, super, dist).
  w.meta("process_name", 0, 0, "runtime");
  w.meta("thread_name", 0, 0, "events");

  for (const auto& [group, race] : races) {
    const std::uint64_t tpid = group + 1;  // trace pid 0 is the runtime
    w.meta("process_name", tpid, 0,
           "race #" + std::to_string(group) + " (parent p" +
               std::to_string(race.parent) + ")");
    w.meta("thread_name", tpid, race.parent,
           "parent p" + std::to_string(race.parent));
    const VTime rb = or_zero(race.begin);
    const VTime re = race.end == kNoTraceTime ? rb : race.end;
    w.complete("alt block #" + std::to_string(group), tpid, race.parent, rb,
               re - rb,
               std::string("\"timed_out\":") +
                   (race.timed_out ? "true" : "false"));
  }

  for (const auto& [pid, world] : worlds) {
    const std::uint64_t tpid = world.group + 1;
    std::string label = "world p" + std::to_string(pid);
    if (world.alt_index > 0)
      label += " (alt " + std::to_string(world.alt_index) + ")";
    w.meta("thread_name", tpid, pid, label);

    const VTime start =
        world.start != kNoTraceTime ? world.start : or_zero(world.spawn);
    VTime end = world.end;
    if (end == kNoTraceTime) end = world.fate_t;
    if (end == kNoTraceTime) end = start;
    std::string args = "\"fate\":\"" + std::string(world.fate) +
                       "\",\"pages_copied\":" + std::to_string(world.pages);
    w.complete(world.alt_index > 0
                   ? "alt " + std::to_string(world.alt_index)
                   : "world",
               tpid, pid, start, end - start, args);
    if (world.fate_t != kNoTraceTime)
      w.instant(world.fate, tpid, pid, world.fate_t);

    // Flow arrows: parent spawn -> child span start; winner's sync ->
    // parent block end (the commit edge).
    if (world.parent != kNoPid) {
      w.flow('s', pid, tpid, world.parent, or_zero(world.spawn));
      w.flow('f', pid, tpid, pid, start);
    }
    if (std::string(world.fate) == "won") {
      auto rit = races.find(world.group);
      if (rit != races.end() && rit->second.end != kNoTraceTime) {
        const std::uint64_t commit_id = (std::uint64_t{1} << 32) | pid;
        w.flow('s', commit_id, tpid, pid, or_zero(world.fate_t));
        w.flow('f', commit_id, tpid, rit->second.parent, rit->second.end);
      }
    }
  }

  // Runtime-wide instants that aren't part of a reconstructed race span.
  for (const TraceEvent& e : events) {
    if (e.t == kNoTraceTime) continue;
    switch (e.kind) {
      case EventKind::kGateDefer:
      case EventKind::kGateRelease:
      case EventKind::kGateDrop:
      case EventKind::kGateReject:
      case EventKind::kSuperRestart:
      case EventKind::kSuperQuarantine:
      case EventKind::kSuperCheckpoint:
      case EventKind::kDistFailover:
      case EventKind::kDistDemote:
      case EventKind::kWorldRollback:
      case EventKind::kNetRetransmit:
      case EventKind::kNetTimeout:
      case EventKind::kNetPeerSuspect:
      case EventKind::kNetPeerDead:
      case EventKind::kNetPartition:
        w.instant(std::string(kind_name(e.kind)) + " p" +
                      std::to_string(e.pid),
                  0, 0, e.t);
        break;
      default: break;
    }
  }

  os << "\n]}\n";
  return os.str();
}

bool write_chrome_json(const std::string& path,
                       const std::vector<TraceEvent>& events) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_json(events);
  return static_cast<bool>(out);
}

}  // namespace mw::trace
