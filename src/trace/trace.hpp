// mw_trace: the runtime observability layer — a lock-free, thread-local
// ring-buffer event collector instrumenting the full world lifecycle
// (spawn / split / commit / eliminate, page COW traffic, predicated
// delivery decisions, gate deferral, restart/failover).
//
// Design constraints, in order:
//   1. Near-zero cost when off. Every instrumentation site is the
//      MW_TRACE_EVENT macro: one relaxed atomic load when tracing is
//      compiled in but disabled; nothing at all when compiled out
//      (cmake -DMW_TRACE=OFF).
//   2. No cross-thread contention when on. Each emitting thread owns a
//      private fixed-size ring; the only shared write is one relaxed
//      fetch_add allocating the global sequence number that makes the
//      merged stream totally ordered.
//   3. Fixed-size binary records. No strings, no allocation on the emit
//      path after the ring exists; a full ring drops its *oldest* record
//      and counts the drop — the collector never blocks the runtime.
//
// The raw stream feeds three consumers (see the sibling headers):
// SpecProfile (per-race speculation-efficiency metrics), the Chrome-trace
// exporter (world lineage as nested spans for chrome://tracing /
// ui.perfetto.dev), and the RuntimeAuditor's trace cross-check.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"
#include "util/vtime.hpp"

namespace mw::trace {

/// Everything the runtime reports. Values are part of the on-disk schema
/// (docs/OBSERVABILITY.md): append new kinds, never renumber.
enum class EventKind : std::uint16_t {
  // Alternative-block lifecycle (src/core backends + src/worlds races).
  kAltBlockBegin = 1,   // pid=parent, a=group, b=alternatives spawned
  kAltSpawn = 2,        // pid=child, other=parent, a=group, b=alt index (1-based)
  kAltChildBegin = 3,   // pid=child, a=group — child starts executing
  kAltChildEnd = 4,     // pid=child, a=group, b=pages copied in its world
  kAltSync = 5,         // pid=winner, other=parent, a=group — at-most-once win
  kAltEliminate = 6,    // pid=loser, a=group
  kAltAbort = 7,        // pid=child, a=group — guard/body/accept failure
  kAltWait = 8,         // pid=parent, a=group — parent blocks in alt_wait
  kAltBlockEnd = 9,     // pid=parent, a=group, b=AltFailure (0 = won)
  // World lifecycle (src/core/world, src/worlds).
  kWorldFork = 16,      // pid=child, other=parent — fork_alternative
  kWorldSplit = 17,     // pid=new (rejecting) copy, other=split world, b=group
  kWorldCommit = 18,    // pid=parent, other=child — page-pointer replacement
  kWorldRollback = 19,  // pid=world — rewind to checkpoint snapshot
  // Page traffic (src/pagestore).
  kPageFork = 32,       // a=resident pages at fork
  kPageAdopt = 33,      // a=resident pages adopted
  kPageAlloc = 34,      // a=page index — zero-fill-on-demand
  kPageCopy = 35,       // a=page index, b=bytes — one COW break
  // Predicated delivery (src/msg).
  kMsgAccept = 48,      // pid=sender, a=receiver predicate count
  kMsgIgnore = 49,      // pid=sender, a=receiver predicate count
  kMsgSplit = 50,       // pid=sender, a=receiver predicate count
  // Source gate (src/io).
  kGateDefer = 64,      // pid=speculative requester, a=pending after defer
  kGateRelease = 65,    // pid=synced world, a=intents executed
  kGateDrop = 66,       // pid=dead world, a=intents dropped
  kGateReject = 67,     // pid=speculative requester (kReject policy)
  // Supervision & distribution (src/super, src/dist).
  kSuperRestart = 80,     // pid=new attempt, other=dead attempt, a=attempt #
  kSuperQuarantine = 81,  // pid=final attempt, a=restarts burned
  kSuperCheckpoint = 82,  // pid=attempt, a=resident pages, b=1 if delta
  kDistFailover = 83,     // a=child index, b=bytes re-dispatched
  kDistDemote = 84,       // a=child index — remote child demoted to Failed
  // Speculation scheduler (src/core/spec_scheduler, the kPool backend).
  kSchedEnqueue = 96,     // pid=task, other=parent, a=group, b=alt index
  kSchedSteal = 97,       // pid=task, a=group, b=taking worker
                          //   (kSchedExternalHelper: an external helper
                          //   thread; kSchedDetDriver: the deterministic
                          //   driver's thief coin)
  kSchedRevoke = 98,      // pid=task, a=group, b=pages copied (0: pruned
                          //   before it ever ran)
  kSchedAdmitDefer = 99,  // pid=requester, a=group, b=live worlds at defer
  // Transport layer (src/dist: SimTransport / SocketTransport and the
  // reliable channel riding on them).
  kNetSend = 112,        // a=bytes, b=destination node
  kNetDeliver = 113,     // a=bytes, b=source node
  kNetRetransmit = 114,  // a=attempt # (1-based retry), b=RTO paid (ticks)
  kNetTimeout = 115,     // a=attempts burned, b=0 retries exhausted /
                         //   1 per-request deadline expired
  kNetPeerSuspect = 116, // a=peer node — heartbeats overdue
  kNetPeerDead = 117,    // a=peer node — declared dead, failover eligible
  kNetPartition = 118,   // a=from node, b=to node — frame blocked by a
                         //   partition (LinkModel pair or "net.partition")
  // Hedged-speculation service (src/service: HedgedServer and friends).
  kSvcRequest = 128,       // a=client node, b=request seq — executable arrival
  kSvcResponse = 129,      // a=client node, b=seq — OK response committed
  kSvcReplay = 130,        // a=client node, b=seq — duplicate replayed from
                           //   the session cache (no re-execution)
  kSvcShed = 131,          // a=client node, b=admission queue depth at shed
  kSvcHedge = 132,         // a=ticket, b=backend node the hedge went to
  kSvcFailover = 133,      // a=ticket, b=backend node taking over
  kSvcBrownout = 134,      // a=1 enter / 0 exit, b=defer-rate (permille)
  kSvcBreaker = 135,       // a=backend node, b=new state (0 closed, 1 open,
                           //   2 half-open)
  kSvcLocalFallback = 136, // a=ticket — degraded to the local kPool race

  // Hedged-service cluster layer (src/service/cluster.hpp).
  kSvcClusterEvict = 137,    // a=node evicted from the ring, b=epoch after
  kSvcClusterRejoin = 138,   // a=node re-added after probation, b=epoch after
  kSvcClusterHandoff = 139,  // a=peer node, b=sessions carried (send side)
  kSvcClusterMisroute = 140, // a=client, b=owner per the local ring — a
                             //   request this node refused because it does
                             //   not own the session

  // Adaptive speculation policy (src/core/spec_policy.hpp). Emitted only in
  // kAdaptive mode, so static-mode traces stay bit-for-bit unchanged.
  kPolicyWidth = 141,   // a=effective admission width (worlds), b=budget —
                        //   emitted when the width controller moves
  kPolicyOrder = 142,   // a=group, b=top-ranked position (0-based)
  kPolicyDefer = 143,   // a=group, b=last-ranked ("deferred") position; for
                        //   a vetoed or-parallel split, b=fanout refused
  kPolicyExplore = 144, // a=group, b=explored position (floor or epsilon)
  kPolicyHedge = 145,   // a=ticket, b=p95-derived hedge delay (ticks) — the
                        //   cold-start static fallback emits nothing
};

/// Sentinel for "the emitter had no clock in scope"; the event still
/// carries its global sequence number, which is the authoritative order.
inline constexpr VTime kNoTraceTime = -1;

/// One fixed-size binary record. 48 bytes; the whole ring is one flat
/// allocation, so drop-oldest is a modulo store, never a shift.
struct TraceEvent {
  std::uint64_t seq = 0;   // global total order (allocation order)
  VTime t = kNoTraceTime;  // virtual ticks; kNoTraceTime if unknown
  std::uint64_t a = 0;     // kind-specific payload (see EventKind)
  std::uint64_t b = 0;     // kind-specific payload
  Pid pid = kNoPid;        // primary process/world
  Pid other = kNoPid;      // secondary process/world (parent, child, ...)
  EventKind kind{};
  std::uint16_t tid = 0;   // small per-thread id of the emitting thread
  std::uint32_t pad = 0;
};
static_assert(sizeof(TraceEvent) == 48, "records are fixed-size binary");

/// True iff events would be recorded right now. One relaxed atomic load —
/// this is the entire cost of a disabled instrumentation site.
bool enabled();

/// Master switch. Enabling starts recording into per-thread rings;
/// disabling stops recording but keeps buffered events for collect().
void set_enabled(bool on);

/// Ring capacity (events per emitting thread) applied to rings created
/// *after* the call; rounded up to a power of two (minimum 2) so the
/// ring index is a mask. Default 1 << 16. Call before set_enabled(true).
void set_ring_capacity(std::size_t events);

/// Emits one event, stamped with the calling thread's trace clock (see
/// set_now) unless `t` is given explicitly. Callable even when disabled
/// (it is then a no-op) — but prefer the MW_TRACE_EVENT macro, which
/// compiles out entirely under -DMW_TRACE=OFF.
void emit(EventKind kind, Pid pid = kNoPid, Pid other = kNoPid,
          std::uint64_t a = 0, std::uint64_t b = 0, VTime t = kNoTraceTime);

/// Sets the calling thread's trace clock: the timestamp attached to
/// subsequent emits that do not pass an explicit time. The DES-driven
/// layers (SpecRuntime, Supervisor) call this as their virtual clock
/// advances; wall-clock backends leave it unset.
void set_now(VTime t);
VTime now();

/// Snapshot of every ring, merged and sorted by seq. Does not clear.
std::vector<TraceEvent> collect();

/// collect() + clear all rings and the dropped counter.
std::vector<TraceEvent> drain();

/// Events overwritten because some ring was full (drop-oldest), plus
/// events discarded because a thread's ring could not be registered.
std::uint64_t dropped();

/// Total events ever emitted (recorded + dropped) since the last drain().
std::uint64_t emitted();

/// Clears all rings and counters; tracing enablement is unchanged.
void reset();

/// RAII enable/disable — benches and tests bracket a region with this.
class Scope {
 public:
  explicit Scope(bool on = true) : prev_(enabled()) { set_enabled(on); }
  ~Scope() { set_enabled(prev_); }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  bool prev_;
};

/// Human-readable kind name ("alt_sync", "page_copy", ...).
const char* kind_name(EventKind k);

}  // namespace mw::trace

// The instrumentation-site macro. Compiled out under -DMW_TRACE=OFF
// (cmake option MW_TRACE, which defines MW_TRACE_DISABLED); otherwise a
// relaxed load guards the call into the collector.
#if defined(MW_TRACE_DISABLED)
#define MW_TRACE_EVENT(...) \
  do {                      \
  } while (0)
#define MW_TRACE_SET_NOW(t) \
  do {                      \
  } while (0)
#else
#define MW_TRACE_EVENT(...)                            \
  do {                                                 \
    if (::mw::trace::enabled()) {                      \
      ::mw::trace::emit(__VA_ARGS__);                  \
    }                                                  \
  } while (0)
#define MW_TRACE_SET_NOW(t)                            \
  do {                                                 \
    if (::mw::trace::enabled()) {                      \
      ::mw::trace::set_now(t);                         \
    }                                                  \
  } while (0)
#endif
