// TraceSession: the 3-line wiring that gives any bench or example the
// standard observability flags:
//
//   --trace=<file>   enable tracing, export Chrome-trace JSON on finish
//   --profile        enable tracing, print the SpecProfile summary
//
//   TraceSession trace(cli);
//   ...run the workload...
//   trace.finish(std::cout);
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <utility>

#include "trace/spec_profile.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"

namespace mw::trace {

class TraceSession {
 public:
  /// Reads --trace / --profile from `cli` and enables collection if either
  /// is present. Tracing state is restored by finish() (or the destructor).
  explicit TraceSession(const Cli& cli);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return active_; }

  /// Drains the collected stream; writes the Chrome-trace file if --trace
  /// was given (logging the path to `out`) and prints the SpecProfile
  /// summary if --profile was given. Safe to call once; no-op when neither
  /// flag was passed.
  void finish(std::ostream& out);

  /// The profile built by finish() (empty before, or without --profile).
  const SpecProfile& profile() const { return profile_; }

  /// Runs after finish() builds the profile from the event stream but
  /// before it prints — the seam for folding in state the stream doesn't
  /// carry (e.g. PagePool::fold_into for per-shard pool counters, which
  /// live in the pagestore layer the trace library cannot link against).
  void set_profile_hook(std::function<void(SpecProfile&)> hook) {
    profile_hook_ = std::move(hook);
  }

 private:
  std::string path_;
  bool want_profile_ = false;
  bool active_ = false;
  bool finished_ = false;
  SpecProfile profile_;
  std::function<void(SpecProfile&)> profile_hook_;
};

}  // namespace mw::trace
