#include "msg/delivery.hpp"

#include "trace/trace.hpp"
#include "util/check.hpp"

namespace {

// The timestamp comes from the calling layer's trace clock (set_now) —
// delivery itself has no clock in scope.
void trace_decision(mw::DeliveryAction action, const mw::Message& msg,
                    const mw::PredicateSet& receiver) {
  using mw::trace::EventKind;
  EventKind kind = EventKind::kMsgAccept;
  switch (action) {
    case mw::DeliveryAction::kAccept: kind = EventKind::kMsgAccept; break;
    case mw::DeliveryAction::kIgnore: kind = EventKind::kMsgIgnore; break;
    case mw::DeliveryAction::kSplit: kind = EventKind::kMsgSplit; break;
  }
  MW_TRACE_EVENT(kind, msg.sender, mw::kNoPid, receiver.size());
#if defined(MW_TRACE_DISABLED)
  (void)kind;
  (void)msg;
  (void)receiver;
#endif
}

}  // namespace

namespace mw {

DeliveryDecision decide_delivery(const PredicateSet& receiver,
                                 const Message& msg) {
  DeliveryDecision d;

  // Short-circuit on the receiver's existing opinion of the sender.
  if (msg.sender != kNoPid) {
    if (receiver.assumes_completes(msg.sender)) {
      // complete(sender) implies every assumption the sender holds.
      d.action = DeliveryAction::kAccept;
      d.accept_preds = receiver;
      trace_decision(d.action, msg, receiver);
      return d;
    }
    if (receiver.assumes_fails(msg.sender)) {
      // A message from a world this receiver already rejects.
      d.action = DeliveryAction::kIgnore;
      trace_decision(d.action, msg, receiver);
      return d;
    }
  }

  switch (receiver.relation_to(msg.predicate)) {
    case PredRelation::kImplied:
      d.action = DeliveryAction::kAccept;
      d.accept_preds = receiver;
      trace_decision(d.action, msg, receiver);
      return d;
    case PredRelation::kConflict:
      d.action = DeliveryAction::kIgnore;
      trace_decision(d.action, msg, receiver);
      return d;
    case PredRelation::kExtension:
      break;
  }

  // Extension: split the receiver. An anonymous sender cannot be
  // predicated on, so its extra assumptions cannot be speculated about.
  MW_CHECK(msg.sender != kNoPid);
  d.action = DeliveryAction::kSplit;
  d.accept_preds = receiver;
  d.reject_preds = receiver;
  // Both must succeed: the short-circuit above guarantees the receiver has
  // no opinion about the sender yet.
  MW_CHECK(d.accept_preds.assume_completes(msg.sender));
  MW_CHECK(d.reject_preds.assume_fails(msg.sender));
  trace_decision(d.action, msg, receiver);
  return d;
}

bool simplify_against_oracle(PredicateSet& preds, const ProcessTable& table) {
  // Collect first: resolve() mutates the lists we iterate.
  std::vector<std::pair<Pid, bool>> facts;
  for (Pid p : preds.must_complete()) {
    const Completion c = table.exists(p) ? table.complete(p)
                                         : Completion::kIndeterminate;
    if (c != Completion::kIndeterminate)
      facts.emplace_back(p, c == Completion::kTrue);
  }
  for (Pid p : preds.cant_complete()) {
    const Completion c = table.exists(p) ? table.complete(p)
                                         : Completion::kIndeterminate;
    if (c != Completion::kIndeterminate)
      facts.emplace_back(p, c == Completion::kTrue);
  }
  for (auto [p, completed] : facts) {
    if (preds.resolve(p, completed) == PredicateSet::Fate::kDoomed)
      return false;
  }
  return true;
}

}  // namespace mw
