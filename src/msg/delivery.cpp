#include "msg/delivery.hpp"

#include "util/check.hpp"

namespace mw {

DeliveryDecision decide_delivery(const PredicateSet& receiver,
                                 const Message& msg) {
  DeliveryDecision d;

  // Short-circuit on the receiver's existing opinion of the sender.
  if (msg.sender != kNoPid) {
    if (receiver.assumes_completes(msg.sender)) {
      // complete(sender) implies every assumption the sender holds.
      d.action = DeliveryAction::kAccept;
      d.accept_preds = receiver;
      return d;
    }
    if (receiver.assumes_fails(msg.sender)) {
      // A message from a world this receiver already rejects.
      d.action = DeliveryAction::kIgnore;
      return d;
    }
  }

  switch (receiver.relation_to(msg.predicate)) {
    case PredRelation::kImplied:
      d.action = DeliveryAction::kAccept;
      d.accept_preds = receiver;
      return d;
    case PredRelation::kConflict:
      d.action = DeliveryAction::kIgnore;
      return d;
    case PredRelation::kExtension:
      break;
  }

  // Extension: split the receiver. An anonymous sender cannot be
  // predicated on, so its extra assumptions cannot be speculated about.
  MW_CHECK(msg.sender != kNoPid);
  d.action = DeliveryAction::kSplit;
  d.accept_preds = receiver;
  d.reject_preds = receiver;
  // Both must succeed: the short-circuit above guarantees the receiver has
  // no opinion about the sender yet.
  MW_CHECK(d.accept_preds.assume_completes(msg.sender));
  MW_CHECK(d.reject_preds.assume_fails(msg.sender));
  return d;
}

bool simplify_against_oracle(PredicateSet& preds, const ProcessTable& table) {
  // Collect first: resolve() mutates the lists we iterate.
  std::vector<std::pair<Pid, bool>> facts;
  for (Pid p : preds.must_complete()) {
    const Completion c = table.exists(p) ? table.complete(p)
                                         : Completion::kIndeterminate;
    if (c != Completion::kIndeterminate)
      facts.emplace_back(p, c == Completion::kTrue);
  }
  for (Pid p : preds.cant_complete()) {
    const Completion c = table.exists(p) ? table.complete(p)
                                         : Completion::kIndeterminate;
    if (c != Completion::kIndeterminate)
      facts.emplace_back(p, c == Completion::kTrue);
  }
  for (auto [p, completed] : facts) {
    if (preds.resolve(p, completed) == PredicateSet::Fate::kDoomed)
      return false;
  }
  return true;
}

}  // namespace mw
