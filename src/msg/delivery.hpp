// Delivery decision logic (§2.4.2): when a receiving process accepts a
// message, its predicates R are checked against the message's predicates S.
//
//   * R already implies S          -> accept immediately;
//   * R conflicts with S           -> the message is ignored;
//   * R must assume more           -> the receiver is split: one copy
//     assumes complete(sender) — which implies all of the sender's
//     assumptions, since the sender can only complete if they held — and
//     the other assumes ¬complete(sender). Negating complete(sender)
//     rather than all of S avoids "implying that two mutually exclusive
//     processes must complete".
#pragma once

#include "msg/message.hpp"
#include "pred/predicate_set.hpp"
#include "proc/process_table.hpp"

namespace mw {

enum class DeliveryAction { kAccept, kIgnore, kSplit };

struct DeliveryDecision {
  DeliveryAction action = DeliveryAction::kIgnore;
  /// For kAccept: the receiver's (possibly unchanged) predicates.
  /// For kSplit: the accepting copy's predicates (R + complete(sender)).
  PredicateSet accept_preds;
  /// For kSplit: the rejecting copy's predicates (R + ¬complete(sender)).
  PredicateSet reject_preds;
};

/// Classifies `msg` against a receiver holding predicates `receiver`.
/// The receiver's own opinion of the *sender process* short-circuits the
/// list comparison: believing complete(sender) transitively implies all of
/// the sender's assumptions, and believing ¬complete(sender) makes any of
/// its messages phantoms from a dead world.
DeliveryDecision decide_delivery(const PredicateSet& receiver,
                                 const Message& msg);

/// Folds resolved facts into a predicate set: for every pid with a known
/// completion status, satisfied assumptions are removed. Returns false if
/// some assumption is now known false — the holder (a message in flight, or
/// a world copy) is doomed and should be dropped/eliminated.
bool simplify_against_oracle(PredicateSet& preds, const ProcessTable& table);

}  // namespace mw
