// The paper's three-part message (§2.4.1): a sending predicate
// (encapsulating the assumptions under which the sender transmitted), the
// data, and control information.
#pragma once

#include <cstdint>

#include "pred/predicate_set.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace mw {

/// Identity of a *logical* process: the addressable entity. When a receiver
/// is split into multiple world copies, every copy shares the logical id
/// (messages reach them all) while each copy keeps its own Pid.
using LogicalId = std::uint32_t;
inline constexpr LogicalId kNoLogical = 0;

struct Message {
  // 1. Sending predicate.
  PredicateSet predicate;
  // 2. Data.
  Bytes data;
  // 3. Control information.
  Pid sender = kNoPid;           // world copy that sent it
  LogicalId sender_logical = kNoLogical;
  LogicalId dest = kNoLogical;
  std::uint64_t seq = 0;         // FIFO sequencing, assigned by the router

  std::string text() const { return std::string(data.begin(), data.end()); }

  static Message of_text(const std::string& s) {
    Message m;
    m.data.assign(s.begin(), s.end());
    return m;
  }
};

}  // namespace mw
