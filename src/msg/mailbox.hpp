// Reliable FIFO mailbox (§2.1: IPC "behaves reliably (no lost or duplicated
// messages) and FIFO (no out of order messages)").
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "msg/message.hpp"

namespace mw {

class Mailbox {
 public:
  /// Enqueues; stamps the per-mailbox FIFO sequence number.
  void push(Message msg) {
    msg.seq = next_seq_++;
    queue_.push_back(std::move(msg));
  }

  /// Dequeues the oldest message, if any.
  std::optional<Message> pop() {
    if (queue_.empty()) return std::nullopt;
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  /// Drops queued messages whose sending assumptions are now known false
  /// (their origin world lost); returns how many were dropped. The
  /// remaining messages keep their relative order.
  template <typename OracleFn>  // bool(PredicateSet&) -> still viable
  std::size_t prune(OracleFn&& viable) {
    std::size_t dropped = 0;
    std::deque<Message> kept;
    for (auto& m : queue_) {
      if (viable(m.predicate)) {
        kept.push_back(std::move(m));
      } else {
        ++dropped;
      }
    }
    queue_ = std::move(kept);
    return dropped;
  }

 private:
  std::deque<Message> queue_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mw
