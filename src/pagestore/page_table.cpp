#include "pagestore/page_table.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "pagestore/page_pool.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace mw {

PageTable::PageTable(std::size_t page_size, std::size_t num_pages)
    : page_size_(page_size), map_(num_pages) {
  MW_CHECK(page_size > 0);
}

const Page* PageTable::peek(std::size_t i) const { return map_.peek(i); }

void PageTable::materialize_slot(PageRef& ref, std::size_t i) {
  // Zero-fill-on-demand allocation, preferring a recycled frame.
  bool pool_hit = false;
  ref = PagePool::global().acquire_zeroed(page_size_, &pool_hit);
  ++stats_.pages_allocated;
  map_.note_resident(i);
  ++(pool_hit ? stats_.pool_hits : stats_.pool_misses);
  MW_TRACE_EVENT(trace::EventKind::kPageAlloc, kNoPid, kNoPid, i);
}

void PageTable::cow_break_slot(PageRef& ref, std::size_t i) {
  // COW break: the page is inherited or shared with a sibling world.
  // (slot_for_write path-copied any shared leaf first, so a page shared
  // through structural sharing is guaranteed to show use_count > 1 here.)
  bool pool_hit = false;
  ref = PagePool::global().acquire_copy(*ref, &pool_hit);
  ++stats_.pages_copied;
  stats_.bytes_copied += page_size_;
  ++(pool_hit ? stats_.pool_hits : stats_.pool_misses);
  MW_TRACE_EVENT(trace::EventKind::kPageCopy, kNoPid, kNoPid, i, page_size_);
}

void PageTable::read(std::uint64_t off, std::span<std::uint8_t> dst) const {
  MW_CHECK(off + dst.size() <= size_bytes());
  auto* self = const_cast<PageTable*>(this);  // stats only
  ++self->stats_.page_reads;
  std::size_t done = 0;
  while (done < dst.size()) {
    const std::size_t page = (off + done) / page_size_;
    const std::size_t in_page = (off + done) % page_size_;
    const std::size_t n = std::min(dst.size() - done, page_size_ - in_page);
    if (const Page* p = map_.peek(page)) {
      std::memcpy(dst.data() + done, p->data() + in_page, n);
    } else {
      std::memset(dst.data() + done, 0, n);
    }
    done += n;
  }
}

void PageTable::write(std::uint64_t off, std::span<const std::uint8_t> src) {
  MW_CHECK(off + src.size() <= size_bytes());
  std::size_t done = 0;
  while (done < src.size()) {
    const std::size_t page = (off + done) / page_size_;
    const std::size_t in_page = (off + done) % page_size_;
    const std::size_t n = std::min(src.size() - done, page_size_ - in_page);
    std::memcpy(write_page(page) + in_page, src.data() + done, n);
    done += n;
  }
}

PageTable PageTable::fork() const {
  // Structural sharing: the child references the same radix-tree root, so
  // this is O(1) in address-space size (the paper's §2.3 curve goes flat).
  PageTable child(*this);
  child.stats_.reset();
  // Everything the child inherited predates its epoch: nothing is
  // "written since fork" until the child itself writes.
  child.epoch_ = child.gen_ = gen_;
  MW_TRACE_EVENT(trace::EventKind::kPageFork, kNoPid, kNoPid,
                 map_.resident());
  return child;
}

void PageTable::adopt(PageTable&& child) {
  MW_CHECK(child.page_size_ == page_size_);
  MW_CHECK(child.num_pages() == num_pages());
  map_ = std::move(child.map_);  // atomic in effect: a single root swap
  // The commit absorbs the child's accounting so τ(overhead) attribution
  // (setup + run-time copying + completion) survives the swap. merge() runs
  // exactly once per adopt; nested trees therefore count each level once.
  stats_.merge(child.stats_);
  // The child's tags may exceed our generation; advancing to the max keeps
  // every adopted tag ≤ epoch_, i.e. the write-fraction clock restarts.
  gen_ = std::max(gen_, child.gen_);
  epoch_ = gen_;
  MW_TRACE_EVENT(trace::EventKind::kPageAdopt, kNoPid, kNoPid,
                 map_.resident());
}

PageMap::RangeDelta PageTable::extract_segment(const PageTable& child,
                                               std::size_t page_lo,
                                               std::size_t page_hi) const {
  MW_CHECK(child.page_size_ == page_size_);
  return map_.extract_delta(child.map_, page_lo, page_hi);
}

std::size_t PageTable::apply_segment(const PageMap::RangeDelta& delta,
                                     const CowStats& child_stats) {
  const std::size_t installed = delta.index.size();
  map_.apply_delta(delta);
  stats_.merge(child_stats);
  // Installed tags came from the child's write clock, which started at our
  // generation when the child forked; advancing past the largest installed
  // tag keeps every adopted tag <= epoch_, restarting the write-fraction
  // clock exactly as a full adopt does.
  for (std::uint64_t t : delta.tag) gen_ = std::max(gen_, t);
  epoch_ = gen_;
  MW_TRACE_EVENT(trace::EventKind::kPageAdopt, kNoPid, kNoPid,
                 map_.resident(), installed);
  return installed;
}

std::size_t PageTable::adopt_segment(PageTable&& child, std::size_t page_lo,
                                     std::size_t page_hi) {
  const PageMap::RangeDelta delta =
      extract_segment(child, page_lo, page_hi);
  return apply_segment(delta, child.stats_);
}

PageTable::AdoptBatchStats PageTable::adopt_segments(
    std::vector<SegmentAdoptOp> ops) {
  AdoptBatchStats batch;
  if (ops.empty()) return batch;
  for (const SegmentAdoptOp& op : ops) {
    MW_CHECK(op.child != nullptr);
    MW_CHECK(op.child->page_size_ == page_size_);
    MW_CHECK(op.child->num_pages() == num_pages());
    MW_CHECK(op.page_lo <= op.page_hi && op.page_hi <= num_pages());
  }

  // Segment-ownership check, part 1: declared ranges pairwise disjoint.
  std::vector<std::size_t> order(ops.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ops[a].page_lo < ops[b].page_lo;
  });
  bool overlap = false;
  for (std::size_t k = 0; k + 1 < order.size(); ++k)
    if (ops[order[k]].page_hi > ops[order[k + 1]].page_lo) overlap = true;

  std::vector<PageMap::RangeDelta> deltas(ops.size());
  bool confined = !overlap;
  if (confined) {
    // Parallel extraction: each child's write set is read off the shared
    // trees concurrently. Single-child batches skip the thread spawn.
    if (ops.size() > 1) {
      batch.parallel = true;
      std::vector<std::thread> extractors;
      extractors.reserve(ops.size() - 1);
      for (std::size_t i = 1; i < ops.size(); ++i)
        extractors.emplace_back([this, &ops, &deltas, i] {
          deltas[i] = extract_segment(*ops[i].child, ops[i].page_lo,
                                      ops[i].page_hi);
        });
      deltas[0] = extract_segment(*ops[0].child, ops[0].page_lo,
                                  ops[0].page_hi);
      for (std::thread& t : extractors) t.join();
    } else {
      deltas[0] = extract_segment(*ops[0].child, ops[0].page_lo,
                                  ops[0].page_hi);
    }
    for (const PageMap::RangeDelta& d : deltas) {
      batch.out_of_range += d.out_of_range;
      if (!d.confined()) confined = false;
    }
  }

  if (confined) {
    // Disjoint and fully owned: splices commute, apply in any order.
    for (std::size_t i = 0; i < ops.size(); ++i)
      batch.pages_spliced += apply_segment(deltas[i], ops[i].child->stats_);
  } else {
    // Segment-ownership check failed (overlapping declarations, or a child
    // wrote outside its segment): fall back to the serialized semantics —
    // one child at a time in submission order, each extracted against the
    // parent as updated by its predecessors, last writer winning.
    batch.fell_back = true;
    batch.parallel = false;
    batch.out_of_range = 0;
    for (const SegmentAdoptOp& op : ops) {
      const PageMap::RangeDelta d =
          extract_segment(*op.child, 0, num_pages());
      batch.out_of_range += d.out_of_range;  // always 0 for the full range
      batch.pages_spliced += apply_segment(d, op.child->stats_);
    }
  }
  batch.children = ops.size();
  return batch;
}

std::size_t PageTable::resident_pages() const { return map_.resident(); }

std::size_t PageTable::shared_pages_with(const PageTable& other) const {
  return map_.shared_with(other.map_);
}

std::vector<std::size_t> PageTable::diff(const PageTable& other) const {
  return map_.diff(other.map_);
}

void PageTable::collect_pages(std::unordered_set<const Page*>& out) const {
  map_.collect_pages(out);
}

double PageTable::write_fraction() const {
  const std::size_t resident = map_.resident();
  if (resident == 0) return 0.0;
  return static_cast<double>(map_.count_written_since(epoch_)) /
         static_cast<double>(resident);
}

}  // namespace mw
