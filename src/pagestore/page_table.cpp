#include "pagestore/page_table.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace mw {

PageTable::PageTable(std::size_t page_size, std::size_t num_pages)
    : page_size_(page_size), slots_(num_pages), touched_(num_pages, false) {
  MW_CHECK(page_size > 0);
}

const Page* PageTable::peek(std::size_t i) const {
  MW_CHECK(i < slots_.size());
  return slots_[i].get();
}

std::uint8_t* PageTable::write_page(std::size_t i) {
  MW_CHECK(i < slots_.size());
  PageRef& slot = slots_[i];
  if (!slot) {
    // Zero-fill-on-demand allocation.
    slot = make_page(page_size_);
    ++stats_.pages_allocated;
  } else if (slot.use_count() > 1) {
    // COW break: the page is inherited or shared with a sibling world.
    slot = std::make_shared<Page>(*slot);
    ++stats_.pages_copied;
    stats_.bytes_copied += page_size_;
  }
  touched_[i] = true;
  ++stats_.page_writes;
  return slot->mutable_data();
}

void PageTable::read(std::uint64_t off, std::span<std::uint8_t> dst) const {
  MW_CHECK(off + dst.size() <= size_bytes());
  auto* self = const_cast<PageTable*>(this);  // stats only
  ++self->stats_.page_reads;
  std::size_t done = 0;
  while (done < dst.size()) {
    const std::size_t page = (off + done) / page_size_;
    const std::size_t in_page = (off + done) % page_size_;
    const std::size_t n = std::min(dst.size() - done, page_size_ - in_page);
    if (const Page* p = slots_[page].get()) {
      std::memcpy(dst.data() + done, p->data() + in_page, n);
    } else {
      std::memset(dst.data() + done, 0, n);
    }
    done += n;
  }
}

void PageTable::write(std::uint64_t off, std::span<const std::uint8_t> src) {
  MW_CHECK(off + src.size() <= size_bytes());
  std::size_t done = 0;
  while (done < src.size()) {
    const std::size_t page = (off + done) / page_size_;
    const std::size_t in_page = (off + done) % page_size_;
    const std::size_t n = std::min(src.size() - done, page_size_ - in_page);
    std::memcpy(write_page(page) + in_page, src.data() + done, n);
    done += n;
  }
}

PageTable PageTable::fork() const {
  PageTable child(page_size_, slots_.size());
  child.slots_ = slots_;  // O(pages) reference copies, zero data movement
  return child;
}

void PageTable::adopt(PageTable&& child) {
  MW_CHECK(child.page_size_ == page_size_);
  MW_CHECK(child.slots_.size() == slots_.size());
  slots_ = std::move(child.slots_);
  // The commit absorbs the child's accounting so τ(overhead) attribution
  // (setup + run-time copying + completion) survives the swap.
  stats_.pages_allocated += child.stats_.pages_allocated;
  stats_.pages_copied += child.stats_.pages_copied;
  stats_.bytes_copied += child.stats_.bytes_copied;
  stats_.page_writes += child.stats_.page_writes;
  stats_.page_reads += child.stats_.page_reads;
  std::fill(touched_.begin(), touched_.end(), false);
}

std::size_t PageTable::resident_pages() const {
  std::size_t n = 0;
  for (const auto& s : slots_)
    if (s) ++n;
  return n;
}

std::size_t PageTable::shared_pages_with(const PageTable& other) const {
  MW_CHECK(other.slots_.size() == slots_.size());
  std::size_t n = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i] && slots_[i] == other.slots_[i]) ++n;
  return n;
}

std::vector<std::size_t> PageTable::diff(const PageTable& other) const {
  MW_CHECK(other.slots_.size() == slots_.size());
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i] != other.slots_[i]) out.push_back(i);
  return out;
}

void PageTable::collect_pages(std::unordered_set<const Page*>& out) const {
  for (const PageRef& ref : slots_)
    if (ref) out.insert(ref.get());
}

double PageTable::write_fraction() const {
  const std::size_t resident = resident_pages();
  if (resident == 0) return 0.0;
  std::size_t written = 0;
  for (bool t : touched_)
    if (t) ++written;
  return static_cast<double>(written) / static_cast<double>(resident);
}

}  // namespace mw
