#include "pagestore/page_map.hpp"

#include "util/check.hpp"

namespace mw {

// A node is either an inner node (children populated) or a leaf (pages and
// tags populated); which one is fixed by its level in the tree. Shared nodes
// are immutable: slot_for_write clones any node whose use_count exceeds 1
// before descending through it.
struct PageMap::Node {
  explicit Node(bool is_leaf) {
    if (is_leaf) {
      pages.resize(kFanout);
      tags.assign(kFanout, 0);
    } else {
      children.resize(kFanout);
    }
  }
  Node(const Node&) = default;

  bool leaf() const { return children.empty(); }

  std::size_t resident = 0;  // resident pages in this whole subtree
  std::vector<NodeRef> children;       // inner nodes only
  std::vector<PageRef> pages;          // leaves only
  std::vector<std::uint64_t> tags;     // leaves only, parallel to pages
};

PageMap::PageMap(std::size_t num_pages) : num_pages_(num_pages), depth_(1) {
  // Smallest depth whose capacity covers the address space; an empty map is
  // just a null root, so construction is O(1) no matter the size.
  std::size_t capacity = kFanout;
  while (capacity < num_pages_) {
    capacity <<= kFanoutBits;
    ++depth_;
  }
}

PageMap::PageMap(const PageMap& o)
    : num_pages_(o.num_pages_), depth_(o.depth_), root_(o.root_) {
  // The copy shares every node with `o`: neither side may keep a cached
  // exclusively-owned leaf.
  o.cached_pages_.store(nullptr, std::memory_order_relaxed);
}

PageMap::PageMap(PageMap&& o) noexcept
    : num_pages_(o.num_pages_),
      depth_(o.depth_),
      root_(std::move(o.root_)),
      cached_pages_(o.cached_pages_.load(std::memory_order_relaxed)),
      cached_tags_(o.cached_tags_),
      cached_prefix_(o.cached_prefix_) {
  // Ownership transferred wholesale: the cache stays valid here, but the
  // moved-from map must never serve it again.
  o.cached_pages_.store(nullptr, std::memory_order_relaxed);
}

PageMap& PageMap::operator=(const PageMap& o) {
  num_pages_ = o.num_pages_;
  depth_ = o.depth_;
  root_ = o.root_;
  cached_pages_.store(nullptr, std::memory_order_relaxed);
  o.cached_pages_.store(nullptr, std::memory_order_relaxed);
  return *this;
}

PageMap& PageMap::operator=(PageMap&& o) noexcept {
  num_pages_ = o.num_pages_;
  depth_ = o.depth_;
  root_ = std::move(o.root_);
  cached_pages_.store(o.cached_pages_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  cached_tags_ = o.cached_tags_;
  cached_prefix_ = o.cached_prefix_;
  o.cached_pages_.store(nullptr, std::memory_order_relaxed);
  return *this;
}

std::size_t PageMap::child_index(std::size_t i, int level) const {
  const int shift = (depth_ - 1 - level) * static_cast<int>(kFanoutBits);
  return (i >> shift) & (kFanout - 1);
}

const Page* PageMap::peek(std::size_t i) const {
  MW_CHECK(i < num_pages_);
  const Node* n = root_.get();
  for (int level = 0; n && level + 1 < depth_; ++level)
    n = n->children[child_index(i, level)].get();
  if (!n) return nullptr;
  return n->pages[child_index(i, depth_ - 1)].get();
}

PageMap::Slot PageMap::slot_for_write_slow(std::size_t i) {
  MW_CHECK(i < num_pages_);
  const std::size_t prefix = i >> kFanoutBits;
  NodeRef* link = &root_;
  for (int level = 0;; ++level) {
    const bool at_leaf = (level + 1 == depth_);
    if (!*link) {
      *link = std::make_shared<Node>(at_leaf);
    } else if (link->use_count() > 1) {
      // Path copy: this node is shared with a forked sibling/ancestor map.
      // Cloning copies kFanout child/page references but no page data.
      *link = std::make_shared<Node>(**link);
    }
    Node& n = **link;
    const std::size_t idx = child_index(i, level);
    if (at_leaf) {
      // The walk just certified exclusive ownership of the whole path;
      // remember the leaf's slot arrays so locality-friendly writers take
      // the inline fast path on the next write.
      cached_prefix_ = prefix;
      cached_tags_ = n.tags.data();
      cached_pages_.store(n.pages.data(), std::memory_order_relaxed);
      return Slot{&n.pages[idx], &n.tags[idx]};
    }
    link = &n.children[idx];
  }
}

void PageMap::note_resident(std::size_t i) {
  MW_CHECK(i < num_pages_);
  Node* n = root_.get();
  for (int level = 0;; ++level) {
    MW_CHECK(n != nullptr);
    ++n->resident;
    if (level + 1 == depth_) return;
    n = n->children[child_index(i, level)].get();
  }
}

std::size_t PageMap::resident() const { return root_ ? root_->resident : 0; }

std::size_t PageMap::shared_rec(const Node* a, const Node* b) {
  if (!a || !b) return 0;
  if (a == b) return a->resident;  // whole subtree shared: prune
  if (a->leaf()) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kFanout; ++i)
      if (a->pages[i] && a->pages[i] == b->pages[i]) ++n;
    return n;
  }
  std::size_t n = 0;
  for (std::size_t i = 0; i < kFanout; ++i)
    n += shared_rec(a->children[i].get(), b->children[i].get());
  return n;
}

std::size_t PageMap::shared_with(const PageMap& other) const {
  MW_CHECK(other.num_pages_ == num_pages_);
  return shared_rec(root_.get(), other.root_.get());
}

void PageMap::diff_rec(const Node* a, const Node* b, std::size_t base,
                       int level, std::vector<std::size_t>& out) const {
  if (a == b) return;  // includes both-null: identical, prune
  if (!a && b && b->resident == 0) return;
  if (!b && a && a->resident == 0) return;
  if (level + 1 == depth_) {
    for (std::size_t i = 0; i < kFanout; ++i) {
      const Page* pa = a ? a->pages[i].get() : nullptr;
      const Page* pb = b ? b->pages[i].get() : nullptr;
      const std::size_t idx = base + i;
      if (idx < num_pages_ && pa != pb) out.push_back(idx);
    }
    return;
  }
  const std::size_t span = std::size_t{1}
                           << (static_cast<std::size_t>(depth_ - 1 - level) *
                               kFanoutBits);
  for (std::size_t i = 0; i < kFanout; ++i)
    diff_rec(a ? a->children[i].get() : nullptr,
             b ? b->children[i].get() : nullptr, base + i * span, level + 1,
             out);
}

std::vector<std::size_t> PageMap::diff(const PageMap& other) const {
  MW_CHECK(other.num_pages_ == num_pages_);
  std::vector<std::size_t> out;
  diff_rec(root_.get(), other.root_.get(), 0, 0, out);
  return out;
}

void PageMap::collect_rec(const Node* n,
                          std::unordered_set<const Page*>& out) {
  if (!n) return;
  if (n->leaf()) {
    for (const PageRef& p : n->pages)
      if (p) out.insert(p.get());
    return;
  }
  for (const NodeRef& c : n->children) collect_rec(c.get(), out);
}

void PageMap::collect_pages(std::unordered_set<const Page*>& out) const {
  collect_rec(root_.get(), out);
}

std::size_t PageMap::count_tags_rec(const Node* n, std::uint64_t epoch) {
  if (!n || n->resident == 0) return 0;
  if (n->leaf()) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < kFanout; ++i)
      if (n->pages[i] && n->tags[i] > epoch) ++count;
    return count;
  }
  std::size_t count = 0;
  for (const NodeRef& c : n->children) count += count_tags_rec(c.get(), epoch);
  return count;
}

std::size_t PageMap::count_written_since(std::uint64_t epoch) const {
  return count_tags_rec(root_.get(), epoch);
}

// Counts slots where the child references a different, non-null page —
// i.e. genuine child writes — under this subtree. Identical subtrees are
// pruned wholesale, like diff_rec.
std::size_t PageMap::count_child_diff_rec(const Node* base, const Node* child,
                                          std::size_t sub_base,
                                          int level) const {
  if (base == child) return 0;
  if (!child || child->resident == 0) return 0;  // child has no pages here
  if (level + 1 == depth_) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kFanout; ++i) {
      if (sub_base + i >= num_pages_) break;
      const Page* pc = child->pages[i].get();
      const Page* pb = base ? base->pages[i].get() : nullptr;
      if (pc != nullptr && pc != pb) ++n;
    }
    return n;
  }
  std::size_t n = 0;
  const std::size_t span = std::size_t{1}
                           << (static_cast<std::size_t>(depth_ - 1 - level) *
                               kFanoutBits);
  for (std::size_t i = 0; i < kFanout; ++i)
    n += count_child_diff_rec(base ? base->children[i].get() : nullptr,
                              child->children[i].get(), sub_base + i * span,
                              level + 1);
  return n;
}

void PageMap::extract_rec(const Node* base, const Node* child,
                          std::size_t sub_base, int level, std::size_t lo,
                          std::size_t hi, RangeDelta& out) const {
  if (base == child) return;  // identical subtree (or both absent): no writes
  if (!child || child->resident == 0) return;
  const std::size_t span =
      level + 1 == depth_
          ? kFanout
          : std::size_t{1} << (static_cast<std::size_t>(depth_ - level) *
                               kFanoutBits);
  if (sub_base >= hi || sub_base + span <= lo) {
    // Entirely outside the declared range: count escaped writes only.
    out.out_of_range += count_child_diff_rec(base, child, sub_base, level);
    return;
  }
  if (level + 1 == depth_) {
    for (std::size_t i = 0; i < kFanout; ++i) {
      const std::size_t idx = sub_base + i;
      if (idx >= num_pages_) break;
      const Page* pc = child->pages[i].get();
      const Page* pb = base ? base->pages[i].get() : nullptr;
      if (pc == nullptr || pc == pb) continue;
      if (idx < lo || idx >= hi) {
        ++out.out_of_range;
        continue;
      }
      out.index.push_back(idx);
      out.page.push_back(child->pages[i]);
      out.tag.push_back(child->tags[i]);
    }
    return;
  }
  const std::size_t child_span = span >> kFanoutBits;
  for (std::size_t i = 0; i < kFanout; ++i)
    extract_rec(base ? base->children[i].get() : nullptr,
                child->children[i].get(), sub_base + i * child_span, level + 1,
                lo, hi, out);
}

PageMap::RangeDelta PageMap::extract_delta(const PageMap& child,
                                           std::size_t lo,
                                           std::size_t hi) const {
  MW_CHECK(child.num_pages_ == num_pages_);
  MW_CHECK(lo <= hi && hi <= num_pages_);
  RangeDelta out;
  out.lo = lo;
  out.hi = hi;
  extract_rec(root_.get(), child.root_.get(), 0, 0, lo, hi, out);
  return out;
}

std::size_t PageMap::apply_delta(const RangeDelta& d) {
  std::size_t became_resident = 0;
  for (std::size_t k = 0; k < d.index.size(); ++k) {
    const std::size_t idx = d.index[k];
    MW_CHECK(idx < num_pages_);
    Slot slot = slot_for_write(idx);
    const bool was_resident = (*slot.page != nullptr);
    *slot.page = d.page[k];
    *slot.tag = d.tag[k];
    if (!was_resident) {
      note_resident(idx);
      ++became_resident;
    }
  }
  return became_resident;
}

}  // namespace mw
