// Fixed-size page: the unit of sink state (§2.1). "All sink state can be
// represented in this fashion" — the entire memory hierarchy is buried under
// the page abstraction, so worlds share, copy and commit state purely in
// terms of pages.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace mw {

/// A page is a fixed-size byte block. Pages are *immutable while shared*:
/// the owning PageTable may mutate a page only when it holds the sole
/// reference; otherwise it must copy first (copy-on-write). That discipline
/// is enforced by PageTable, not by this type.
///
/// Every live Page is counted in a process-wide ledger so the runtime
/// auditor can prove that eliminated worlds released their pages (a leaked
/// ref would pin memory for the lifetime of the speculation tree). The
/// ledger counts *objects*, not copies of their contents, so every special
/// member below is written out explicitly: construction (from any source)
/// increments, destruction decrements, and assignment — which neither
/// creates nor destroys a Page — leaves the count alone.
class Page {
 public:
  explicit Page(std::size_t size) : data_(size, 0) { ++live_; }

  /// Adopts an existing buffer (the PagePool recycling path). The buffer's
  /// contents are taken as-is; callers zero or overwrite as needed.
  explicit Page(std::vector<std::uint8_t> buf) : data_(std::move(buf)) {
    ++live_;
  }

  Page(const Page& other) : data_(other.data_) { ++live_; }
  Page(Page&& other) noexcept : data_(std::move(other.data_)) { ++live_; }
  Page& operator=(const Page& other) {
    data_ = other.data_;
    return *this;
  }
  Page& operator=(Page&& other) noexcept {
    data_ = std::move(other.data_);
    return *this;
  }
  ~Page() { --live_; }

  std::size_t size() const { return data_.size(); }
  const std::uint8_t* data() const { return data_.data(); }
  std::uint8_t* mutable_data() { return data_.data(); }

  /// Steals the underlying buffer (leaves this page empty). Used by the
  /// PagePool deleter to salvage the frame of a dying page; the Page itself
  /// stays in the ledger until it is actually destroyed.
  std::vector<std::uint8_t> steal_buffer() { return std::move(data_); }

  /// Pages currently alive in this process.
  static std::int64_t live_instances() {
    return live_.load(std::memory_order_relaxed);
  }

 private:
  static inline std::atomic<std::int64_t> live_{0};
  std::vector<std::uint8_t> data_;
};

using PageRef = std::shared_ptr<Page>;

inline PageRef make_page(std::size_t size) {
  return std::make_shared<Page>(size);
}

}  // namespace mw
