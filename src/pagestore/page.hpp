// Fixed-size page: the unit of sink state (§2.1). "All sink state can be
// represented in this fashion" — the entire memory hierarchy is buried under
// the page abstraction, so worlds share, copy and commit state purely in
// terms of pages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mw {

/// A page is a fixed-size byte block. Pages are *immutable while shared*:
/// the owning PageTable may mutate a page only when it holds the sole
/// reference; otherwise it must copy first (copy-on-write). That discipline
/// is enforced by PageTable, not by this type.
class Page {
 public:
  explicit Page(std::size_t size) : data_(size, 0) {}
  Page(const Page& other) = default;

  std::size_t size() const { return data_.size(); }
  const std::uint8_t* data() const { return data_.data(); }
  std::uint8_t* mutable_data() { return data_.data(); }

 private:
  std::vector<std::uint8_t> data_;
};

using PageRef = std::shared_ptr<Page>;

inline PageRef make_page(std::size_t size) {
  return std::make_shared<Page>(size);
}

}  // namespace mw
