// Fixed-size page: the unit of sink state (§2.1). "All sink state can be
// represented in this fashion" — the entire memory hierarchy is buried under
// the page abstraction, so worlds share, copy and commit state purely in
// terms of pages.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "pagestore/shard.hpp"

namespace mw {

/// The process-wide live-Page ledger, sharded to keep page churn from many
/// scheduler workers off a single contended cacheline. Each thread bumps
/// the counter of its bound shard (PageShard; unbound threads share slot
/// 0), and total() merges on read. A page destroyed on a different thread
/// than the one that created it leaves one shard counter positive and
/// another negative — individual shard counters are *deltas*, only the sum
/// is meaningful, and the sum stays exact: every construction adds +1 to
/// exactly one shard and every destruction -1 to exactly one shard.
class PageLedger {
 public:
  static constexpr std::size_t kShards = 16;

  static void add(std::int64_t d) {
    counter(PageShard::current()).fetch_add(d, std::memory_order_relaxed);
  }

  /// Live Page instances process-wide (merge-on-read over the shards).
  /// Exact whenever the ledger is quiescent; the same guarantee the old
  /// single atomic gave the RuntimeAuditor's leak arithmetic.
  static std::int64_t total() {
    std::int64_t sum = 0;
    for (std::size_t s = 0; s < kShards; ++s)
      sum += counters_[s].v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Counter {
    std::atomic<std::int64_t> v{0};
  };

  static std::atomic<std::int64_t>& counter(std::size_t shard) {
    const std::size_t slot =
        shard == PageShard::kUnbound ? 0 : 1 + shard % (kShards - 1);
    return counters_[slot].v;
  }

  // Defined out of class: an in-class inline definition would need the
  // nested Counter's default member initializer before the enclosing
  // class is complete.
  static Counter counters_[kShards];
};

inline PageLedger::Counter PageLedger::counters_[PageLedger::kShards]{};

/// A page is a fixed-size byte block. Pages are *immutable while shared*:
/// the owning PageTable may mutate a page only when it holds the sole
/// reference; otherwise it must copy first (copy-on-write). That discipline
/// is enforced by PageTable, not by this type.
///
/// Every live Page is counted in a process-wide ledger (PageLedger, above)
/// so the runtime auditor can prove that eliminated worlds released their
/// pages (a leaked ref would pin memory for the lifetime of the
/// speculation tree). The ledger counts *objects*, not copies of their
/// contents, so every special member below is written out explicitly:
/// construction (from any source) increments, destruction decrements, and
/// assignment — which neither creates nor destroys a Page — leaves the
/// count alone.
class Page {
 public:
  explicit Page(std::size_t size) : data_(size, 0) { PageLedger::add(1); }

  /// Adopts an existing buffer (the PagePool recycling path). The buffer's
  /// contents are taken as-is; callers zero or overwrite as needed.
  explicit Page(std::vector<std::uint8_t> buf) : data_(std::move(buf)) {
    PageLedger::add(1);
  }

  Page(const Page& other) : data_(other.data_) { PageLedger::add(1); }
  Page(Page&& other) noexcept : data_(std::move(other.data_)) {
    PageLedger::add(1);
  }
  Page& operator=(const Page& other) {
    data_ = other.data_;
    return *this;
  }
  Page& operator=(Page&& other) noexcept {
    data_ = std::move(other.data_);
    return *this;
  }
  ~Page() { PageLedger::add(-1); }

  std::size_t size() const { return data_.size(); }
  const std::uint8_t* data() const { return data_.data(); }
  std::uint8_t* mutable_data() { return data_.data(); }

  /// Steals the underlying buffer (leaves this page empty). Used by the
  /// PagePool deleter to salvage the frame of a dying page; the Page itself
  /// stays in the ledger until it is actually destroyed.
  std::vector<std::uint8_t> steal_buffer() { return std::move(data_); }

  /// Pages currently alive in this process (sharded ledger, merge-on-read).
  static std::int64_t live_instances() { return PageLedger::total(); }

 private:
  std::vector<std::uint8_t> data_;
};

using PageRef = std::shared_ptr<Page>;

inline PageRef make_page(std::size_t size) {
  return std::make_shared<Page>(size);
}

}  // namespace mw
