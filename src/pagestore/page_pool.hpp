// PagePool: a process-wide page-frame recycling allocator.
//
// Worlds churn pages at a ferocious rate: every COW break allocates a frame
// and every eliminated world drops its private frames. Without recycling,
// each break pays the system allocator (plus a zero-fill for demand pages),
// and each elimination gives the frames straight back — a malloc/free storm
// proportional to speculation activity. The pool intercepts the free side:
// when the last reference to a pooled Page dies, its buffer (the *frame*)
// is salvaged into a per-size free list instead of being returned to the
// allocator, and the next allocation of that size reuses the warm frame.
//
// The Page live-instance ledger stays exact: a recycled frame is a bare
// std::vector<uint8_t>, not a Page — the dying Page is destroyed (and
// un-counted) normally, so the runtime auditor's leak arithmetic needs no
// pool-awareness to stay correct. frames_held() is exposed purely as a
// diagnostic.
//
// Thread safety: all operations take an internal mutex; deleters may run on
// whatever thread drops the last reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "pagestore/page.hpp"

namespace mw {

class PagePool {
 public:
  /// The process-wide pool used by every PageTable.
  static PagePool& global();

  /// A zero-filled page of `size` bytes. `*was_hit` reports whether a
  /// recycled frame was reused (true) or the system allocator was hit.
  PageRef acquire_zeroed(std::size_t size, bool* was_hit);

  /// A page holding a copy of `src`'s bytes (the COW-break path).
  PageRef acquire_copy(const Page& src, bool* was_hit);

  /// Frames currently cached, and their total size in bytes.
  std::size_t frames_held() const;
  std::size_t bytes_held() const;

  /// Max frames retained per size class; extra frames are released to the
  /// system allocator on recycle.
  void set_capacity_per_class(std::size_t n);
  std::size_t capacity_per_class() const;

  /// Drops every cached frame; returns how many were released.
  std::size_t clear();

  struct PoolStats {
    std::uint64_t hits = 0;      // allocations served from the free lists
    std::uint64_t misses = 0;    // allocations that hit the system allocator
    std::uint64_t recycled = 0;  // frames salvaged from dying pages
    std::uint64_t dropped = 0;   // frames released because a class was full
  };
  PoolStats stats() const;
  void reset_stats();

 private:
  PagePool() = default;

  /// Deleter hook: salvage `p`'s frame, then destroy it.
  void recycle(Page* p);

  std::vector<std::uint8_t> take_frame(std::size_t size, bool* was_hit);
  PageRef wrap(Page* p);

  mutable std::mutex mu_;
  std::unordered_map<std::size_t, std::vector<std::vector<std::uint8_t>>>
      free_;
  std::size_t cap_per_class_ = 1024;
  PoolStats stats_;
};

}  // namespace mw
