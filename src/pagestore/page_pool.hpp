// PagePool: a sharded page-frame recycling allocator.
//
// Worlds churn pages at a ferocious rate: every COW break allocates a frame
// and every eliminated world drops its private frames. Without recycling,
// each break pays the system allocator (plus a zero-fill for demand pages),
// and each elimination gives the frames straight back — a malloc/free storm
// proportional to speculation activity. The pool intercepts the free side:
// when the last reference to a pooled Page dies, its buffer (the *frame*)
// is salvaged into a per-size free list instead of being returned to the
// allocator, and the next allocation of that size reuses the warm frame.
//
// At one worker the free lists are cheap; at 16–64 scheduler workers a
// single pool mutex is exactly the shared-heap contention the or-parallel
// literature warns about, so the lists are *sharded*. Scheduler workers
// bind a thread-local shard id (PageShard), and each shard has its own
// mutex, free lists and counters; unbound threads use shard 0, the locked
// *global* shard, which behaves like the pre-shard pool. Shards cooperate
// rather than fragment the cache:
//
//   * steal refill — a shard whose free list misses pulls a small batch of
//     frames from the first sibling that has them before falling through
//     to the system allocator (work-stealing, allocation side);
//   * overflow    — a recycle that finds its home shard's class full parks
//     the frame in a sibling with room before dropping it (work-stealing,
//     free side).
//
// Per-shard stats merge on read: stats() sums the shards, shard_stats(s)
// exposes one shard for balance diagnostics.
//
// The Page live-instance ledger stays exact: a recycled frame is a bare
// std::vector<uint8_t>, not a Page — the dying Page is destroyed (and
// un-counted) normally, so the runtime auditor's leak arithmetic needs no
// pool-awareness to stay correct. frames_held() is exposed purely as a
// diagnostic.
//
// Thread safety: each shard takes its own internal mutex and at most one
// shard lock is ever held at a time; deleters may run on whatever thread
// drops the last reference, and recycle into the pool instance that
// allocated the frame (never blindly into the global pool).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "pagestore/page.hpp"

namespace mw::trace {
struct SpecProfile;
}  // namespace mw::trace

namespace mw {

class PagePool {
 public:
  /// A pool with `worker_shards` per-worker shards plus the locked global
  /// shard that unbound threads use. 0 = one worker shard per hardware
  /// thread (minimum 2 when the hardware count is unknown).
  explicit PagePool(std::size_t worker_shards = 0);

  /// The process-wide pool used by every PageTable.
  static PagePool& global();

  /// A zero-filled page of `size` bytes. `*was_hit` reports whether a
  /// recycled frame was reused (true) or the system allocator was hit.
  PageRef acquire_zeroed(std::size_t size, bool* was_hit);

  /// A page holding a copy of `src`'s bytes (the COW-break path).
  PageRef acquire_copy(const Page& src, bool* was_hit);

  /// Shards in this pool, including the global fallback shard (index 0).
  std::size_t shard_count() const { return shards_.size(); }

  /// Frames currently cached, and their total size in bytes (all shards).
  std::size_t frames_held() const;
  std::size_t bytes_held() const;

  /// Frames cached in one shard — the shard-balance diagnostic.
  std::size_t shard_frames_held(std::size_t shard) const;

  /// Max frames retained per size class *per shard*; extra frames overflow
  /// to a sibling shard and are released to the system allocator only when
  /// every shard's class is full.
  void set_capacity_per_class(std::size_t n);
  std::size_t capacity_per_class() const;

  /// Drops every cached frame in every shard; returns how many.
  std::size_t clear();

  struct PoolStats {
    std::uint64_t hits = 0;      // allocations served from the free lists
    std::uint64_t misses = 0;    // allocations that hit the system allocator
    std::uint64_t recycled = 0;  // frames salvaged from dying pages
    std::uint64_t dropped = 0;   // frames released: every shard's class full
    std::uint64_t steal_refills = 0;  // frames imported from a sibling shard
                                      // when the home free list missed
    std::uint64_t overflows = 0;      // frames parked in a sibling shard
                                      // because the home class was full

    /// Folds another shard's counters into this one (merge-on-read).
    void merge(const PoolStats& o) {
      hits += o.hits;
      misses += o.misses;
      recycled += o.recycled;
      dropped += o.dropped;
      steal_refills += o.steal_refills;
      overflows += o.overflows;
    }
  };

  /// Counters merged across every shard.
  PoolStats stats() const;
  /// One shard's counters. Attribution: hits/misses/steal_refills belong
  /// to the shard the requesting thread was homed to; recycled/overflows
  /// to the shard the frame landed in; dropped to the recycler's home.
  PoolStats shard_stats(std::size_t shard) const;
  void reset_stats();

  /// Appends one PoolShardCounters entry per shard to `profile.pool_shards`
  /// so bench/CLI SpecProfile summaries show the shard balance.
  void fold_into(trace::SpecProfile& profile) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::size_t, std::vector<std::vector<std::uint8_t>>>
        free;
    std::size_t frames = 0;  // cached frame count (all classes)
    std::size_t bytes = 0;   // cached byte count
    PoolStats stats;
  };

  /// The calling thread's shard: its PageShard binding folded into this
  /// pool's shard range, or the locked global shard 0 when unbound.
  std::size_t home_shard() const;

  /// Deleter hook: salvage `p`'s frame, then destroy it.
  void recycle(Page* p);

  std::vector<std::uint8_t> take_frame(std::size_t size, bool* was_hit);
  PageRef wrap(Page* p);

  std::vector<std::unique_ptr<Shard>> shards_;  // [0] = global fallback
  std::atomic<std::size_t> cap_per_class_{1024};
};

}  // namespace mw
