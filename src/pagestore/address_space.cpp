#include "pagestore/address_space.hpp"

namespace mw {

Segment AddressSpace::alloc_segment(const std::string& name,
                                    std::uint64_t bytes) {
  MW_CHECK(!find_segment(name).has_value());
  const std::uint64_t ps = page_size();
  const std::uint64_t rounded = (bytes + ps - 1) / ps * ps;
  MW_CHECK(next_free_ + rounded <= size_bytes());
  segments_.push_back(Segment{name, next_free_, rounded});
  next_free_ += rounded;
  return segments_.back();
}

std::optional<Segment> AddressSpace::find_segment(
    const std::string& name) const {
  for (const auto& s : segments_)
    if (s.name == name) return s;
  return std::nullopt;
}

void AddressSpace::set_segments(std::vector<Segment> segs,
                                std::uint64_t watermark) {
  MW_CHECK(watermark <= size_bytes());
  segments_ = std::move(segs);
  next_free_ = watermark;
}

AddressSpace AddressSpace::fork() const {
  // O(1) in address-space size: the page table fork is a radix-tree root
  // share; only the (small) segment directory is copied eagerly.
  AddressSpace child(page_size(), table_.num_pages());
  child.table_ = table_.fork();
  child.segments_ = segments_;
  child.next_free_ = next_free_;
  return child;
}

void AddressSpace::adopt(AddressSpace&& child) {
  table_.adopt(std::move(child.table_));
  segments_ = std::move(child.segments_);
  next_free_ = child.next_free_;
}

std::pair<std::size_t, std::size_t> AddressSpace::page_range(
    const Segment& seg) const {
  const std::uint64_t ps = page_size();
  MW_CHECK(seg.base % ps == 0 && seg.size % ps == 0);
  MW_CHECK(seg.base + seg.size <= size_bytes());
  return {static_cast<std::size_t>(seg.base / ps),
          static_cast<std::size_t>((seg.base + seg.size) / ps)};
}

std::size_t AddressSpace::adopt_segment(AddressSpace&& child,
                                        const Segment& seg) {
  const auto [lo, hi] = page_range(seg);
  return table_.adopt_segment(std::move(child.table_), lo, hi);
}

PageTable::AdoptBatchStats AddressSpace::adopt_parallel(
    const std::vector<SegmentCommit>& commits) {
  std::vector<PageTable::SegmentAdoptOp> ops;
  ops.reserve(commits.size());
  for (const SegmentCommit& c : commits) {
    MW_CHECK(c.child != nullptr);
    const auto [lo, hi] = page_range(c.segment);
    ops.push_back({&c.child->table_, lo, hi});
  }
  return table_.adopt_segments(std::move(ops));
}

}  // namespace mw
