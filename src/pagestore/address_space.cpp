#include "pagestore/address_space.hpp"

namespace mw {

Segment AddressSpace::alloc_segment(const std::string& name,
                                    std::uint64_t bytes) {
  MW_CHECK(!find_segment(name).has_value());
  const std::uint64_t ps = page_size();
  const std::uint64_t rounded = (bytes + ps - 1) / ps * ps;
  MW_CHECK(next_free_ + rounded <= size_bytes());
  segments_.push_back(Segment{name, next_free_, rounded});
  next_free_ += rounded;
  return segments_.back();
}

std::optional<Segment> AddressSpace::find_segment(
    const std::string& name) const {
  for (const auto& s : segments_)
    if (s.name == name) return s;
  return std::nullopt;
}

void AddressSpace::set_segments(std::vector<Segment> segs,
                                std::uint64_t watermark) {
  MW_CHECK(watermark <= size_bytes());
  segments_ = std::move(segs);
  next_free_ = watermark;
}

AddressSpace AddressSpace::fork() const {
  // O(1) in address-space size: the page table fork is a radix-tree root
  // share; only the (small) segment directory is copied eagerly.
  AddressSpace child(page_size(), table_.num_pages());
  child.table_ = table_.fork();
  child.segments_ = segments_;
  child.next_free_ = next_free_;
  return child;
}

void AddressSpace::adopt(AddressSpace&& child) {
  table_.adopt(std::move(child.table_));
  segments_ = std::move(child.segments_);
  next_free_ = child.next_free_;
}

}  // namespace mw
