#include "pagestore/page_pool.hpp"

#include <algorithm>
#include <cstring>

#include "pagestore/shard.hpp"
#include "trace/spec_profile.hpp"
#include "util/threading.hpp"

namespace mw {

namespace {

// Frames pulled in one steal refill: one to satisfy the miss, the rest
// deposited in the home shard so a busy worker stops missing after the
// first steal instead of paying a sibling lock per allocation.
constexpr std::size_t kRefillBatch = 8;

}  // namespace

PagePool::PagePool(std::size_t worker_shards) {
  if (worker_shards == 0) worker_shards = hw_threads();
  shards_.reserve(worker_shards + 1);
  for (std::size_t s = 0; s < worker_shards + 1; ++s)
    shards_.push_back(std::make_unique<Shard>());
}

PagePool& PagePool::global() {
  static PagePool pool;
  return pool;
}

std::size_t PagePool::home_shard() const {
  const std::size_t id = PageShard::current();
  if (id == PageShard::kUnbound || shards_.size() == 1) return 0;
  return 1 + id % (shards_.size() - 1);
}

std::vector<std::uint8_t> PagePool::take_frame(std::size_t size,
                                               bool* was_hit) {
  const std::size_t home = home_shard();
  {
    Shard& h = *shards_[home];
    std::lock_guard<std::mutex> lock(h.mu);
    auto it = h.free.find(size);
    if (it != h.free.end() && !it->second.empty()) {
      std::vector<std::uint8_t> frame = std::move(it->second.back());
      it->second.pop_back();
      --h.frames;
      h.bytes -= size;
      ++h.stats.hits;
      if (was_hit) *was_hit = true;
      return frame;
    }
  }

  // Steal refill: take a small batch from the first sibling that has the
  // class, keep one frame, park the rest at home. At most one shard lock
  // is held at a time (home was released above), so shards never deadlock.
  std::vector<std::vector<std::uint8_t>> batch;
  for (std::size_t v = 0; v < shards_.size() && batch.empty(); ++v) {
    if (v == home) continue;
    Shard& victim = *shards_[v];
    std::lock_guard<std::mutex> lock(victim.mu);
    auto it = victim.free.find(size);
    if (it == victim.free.end() || it->second.empty()) continue;
    const std::size_t take = std::min(kRefillBatch, it->second.size());
    for (std::size_t k = 0; k < take; ++k) {
      batch.push_back(std::move(it->second.back()));
      it->second.pop_back();
    }
    victim.frames -= take;
    victim.bytes -= take * size;
  }
  if (!batch.empty()) {
    std::vector<std::uint8_t> frame = std::move(batch.back());
    batch.pop_back();
    Shard& h = *shards_[home];
    std::lock_guard<std::mutex> lock(h.mu);
    ++h.stats.hits;
    h.stats.steal_refills += batch.size() + 1;
    if (!batch.empty()) {
      auto& cls = h.free[size];
      h.frames += batch.size();
      h.bytes += batch.size() * size;
      for (auto& f : batch) cls.push_back(std::move(f));
    }
    if (was_hit) *was_hit = true;
    return frame;
  }

  {
    Shard& h = *shards_[home];
    std::lock_guard<std::mutex> lock(h.mu);
    ++h.stats.misses;
  }
  if (was_hit) *was_hit = false;
  return std::vector<std::uint8_t>(size);
}

PageRef PagePool::wrap(Page* p) {
  // The custom deleter routes the frame back to the pool instance that
  // allocated it when the last world referencing this page lets go — a
  // non-global pool (or a future NUMA pool) must recycle into itself, not
  // into whatever the global pool happens to be.
  return PageRef(p, [this](Page* page) { recycle(page); });
}

PageRef PagePool::acquire_zeroed(std::size_t size, bool* was_hit) {
  bool hit = false;
  std::vector<std::uint8_t> frame = take_frame(size, &hit);
  if (hit) std::memset(frame.data(), 0, frame.size());
  if (was_hit) *was_hit = hit;
  return wrap(new Page(std::move(frame)));
}

PageRef PagePool::acquire_copy(const Page& src, bool* was_hit) {
  bool hit = false;
  std::vector<std::uint8_t> frame = take_frame(src.size(), &hit);
  std::memcpy(frame.data(), src.data(), src.size());
  if (was_hit) *was_hit = hit;
  return wrap(new Page(std::move(frame)));
}

void PagePool::recycle(Page* p) {
  std::vector<std::uint8_t> frame = p->steal_buffer();
  delete p;  // the ledger decrements here, before the frame is cached
  if (frame.empty()) return;
  const std::size_t size = frame.size();
  const std::size_t cap = cap_per_class_.load(std::memory_order_relaxed);
  const std::size_t home = home_shard();
  {
    Shard& h = *shards_[home];
    std::lock_guard<std::mutex> lock(h.mu);
    auto& cls = h.free[size];
    if (cls.size() < cap) {
      cls.push_back(std::move(frame));
      ++h.frames;
      h.bytes += size;
      ++h.stats.recycled;
      return;
    }
  }
  // Overflow: the home class is full — park the frame in the first sibling
  // with room so a shard running hot does not bleed warm frames back to
  // the system allocator while its neighbours sit under capacity.
  for (std::size_t v = 0; v < shards_.size(); ++v) {
    if (v == home) continue;
    Shard& s = *shards_[v];
    std::lock_guard<std::mutex> lock(s.mu);
    auto& cls = s.free[size];
    if (cls.size() >= cap) continue;
    cls.push_back(std::move(frame));
    ++s.frames;
    s.bytes += size;
    ++s.stats.recycled;
    ++s.stats.overflows;
    return;
  }
  Shard& h = *shards_[home];
  std::lock_guard<std::mutex> lock(h.mu);
  ++h.stats.dropped;
}

std::size_t PagePool::frames_held() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->frames;
  }
  return n;
}

std::size_t PagePool::bytes_held() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->bytes;
  }
  return n;
}

std::size_t PagePool::shard_frames_held(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.frames;
}

void PagePool::set_capacity_per_class(std::size_t n) {
  cap_per_class_.store(n, std::memory_order_relaxed);
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto& [size, frames] : s.free) {
      while (frames.size() > n) {
        frames.pop_back();
        --s.frames;
        s.bytes -= size;
      }
    }
  }
}

std::size_t PagePool::capacity_per_class() const {
  return cap_per_class_.load(std::memory_order_relaxed);
}

std::size_t PagePool::clear() {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.frames;
    s.free.clear();
    s.frames = 0;
    s.bytes = 0;
  }
  return n;
}

PagePool::PoolStats PagePool::stats() const {
  PoolStats merged;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    merged.merge(s->stats);
  }
  return merged;
}

PagePool::PoolStats PagePool::shard_stats(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.stats;
}

void PagePool::reset_stats() {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->stats = PoolStats{};
  }
}

void PagePool::fold_into(trace::SpecProfile& profile) const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    trace::PoolShardCounters c;
    c.shard = i;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      c.hits = s.stats.hits;
      c.misses = s.stats.misses;
      c.recycled = s.stats.recycled;
      c.dropped = s.stats.dropped;
      c.steal_refills = s.stats.steal_refills;
      c.overflows = s.stats.overflows;
      c.frames_held = s.frames;
    }
    profile.pool_shards.push_back(c);
  }
}

}  // namespace mw
