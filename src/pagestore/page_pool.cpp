#include "pagestore/page_pool.hpp"

#include <algorithm>
#include <cstring>

namespace mw {

PagePool& PagePool::global() {
  static PagePool pool;
  return pool;
}

std::vector<std::uint8_t> PagePool::take_frame(std::size_t size,
                                               bool* was_hit) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = free_.find(size);
    if (it != free_.end() && !it->second.empty()) {
      std::vector<std::uint8_t> frame = std::move(it->second.back());
      it->second.pop_back();
      ++stats_.hits;
      if (was_hit) *was_hit = true;
      return frame;
    }
    ++stats_.misses;
  }
  if (was_hit) *was_hit = false;
  return std::vector<std::uint8_t>(size);
}

PageRef PagePool::wrap(Page* p) {
  // The custom deleter routes the frame back here when the last world
  // referencing this page lets go.
  return PageRef(p, [](Page* page) { PagePool::global().recycle(page); });
}

PageRef PagePool::acquire_zeroed(std::size_t size, bool* was_hit) {
  bool hit = false;
  std::vector<std::uint8_t> frame = take_frame(size, &hit);
  if (hit) std::memset(frame.data(), 0, frame.size());
  if (was_hit) *was_hit = hit;
  return wrap(new Page(std::move(frame)));
}

PageRef PagePool::acquire_copy(const Page& src, bool* was_hit) {
  bool hit = false;
  std::vector<std::uint8_t> frame = take_frame(src.size(), &hit);
  std::memcpy(frame.data(), src.data(), src.size());
  if (was_hit) *was_hit = hit;
  return wrap(new Page(std::move(frame)));
}

void PagePool::recycle(Page* p) {
  std::vector<std::uint8_t> frame = p->steal_buffer();
  delete p;  // the ledger decrements here, before the frame is cached
  if (frame.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto& cls = free_[frame.size()];
  if (cls.size() < cap_per_class_) {
    cls.push_back(std::move(frame));
    ++stats_.recycled;
  } else {
    ++stats_.dropped;
  }
}

std::size_t PagePool::frames_held() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [size, frames] : free_) n += frames.size();
  return n;
}

std::size_t PagePool::bytes_held() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [size, frames] : free_) n += size * frames.size();
  return n;
}

void PagePool::set_capacity_per_class(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  cap_per_class_ = n;
  for (auto& [size, frames] : free_)
    if (frames.size() > n) frames.resize(n);
}

std::size_t PagePool::capacity_per_class() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cap_per_class_;
}

std::size_t PagePool::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (auto& [size, frames] : free_) n += frames.size();
  free_.clear();
  return n;
}

PagePool::PoolStats PagePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PagePool::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = PoolStats{};
}

}  // namespace mw
