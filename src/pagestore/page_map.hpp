// PageMap: a persistent (path-copy-on-write) radix tree of page references.
//
// The flat page table made fork O(pages): the child copied the whole slot
// vector, which is exactly the linear fork-latency growth the paper measures
// in §2.3. The PageMap instead stores the slots in an N-ary radix tree
// (fanout 64) whose nodes are themselves reference-counted and immutable
// while shared — the same COW discipline the Page layer applies to data,
// lifted one level up to the *map*. Consequences:
//
//   * fork    — copy the root pointer: O(1) regardless of address-space size;
//   * adopt   — swap the root pointer: O(1);
//   * write   — path-copy the ≤ depth shared nodes on the route to the leaf
//               (depth = ceil(log64 num_pages) ≤ 3 for 2^18 pages), then
//               mutate in place: O(1) amortised, O(depth·fanout) worst case;
//   * diff / shared_pages_with — prune entire subtrees the moment the two
//               maps reference the same node: O(divergence), not O(pages).
//
// Write-fraction bookkeeping rides in per-leaf *generation tags*: every slot
// remembers the owning table's write-generation at its last write, and the
// table compares tags against the generation it recorded at the last
// fork/adopt. Because a write always path-copies shared nodes first, tag
// updates are private to the writing map — a forked sibling keeps seeing the
// old tags through its own root.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "pagestore/page.hpp"

namespace mw {

class PageMap {
 public:
  static constexpr std::size_t kFanoutBits = 6;
  static constexpr std::size_t kFanout = std::size_t{1} << kFanoutBits;

  explicit PageMap(std::size_t num_pages);

  // Copying a PageMap shares the whole tree structurally (root refcount
  // bump): this *is* the O(1) fork. The special members are hand-written
  // only to manage the write cache: copying introduces sharing, so both
  // sides drop their cached leaf; moving transfers it.
  PageMap(const PageMap& o);
  PageMap(PageMap&& o) noexcept;
  PageMap& operator=(const PageMap& o);
  PageMap& operator=(PageMap&& o) noexcept;

  std::size_t num_pages() const { return num_pages_; }
  int depth() const { return depth_; }

  /// Read-only page lookup; nullptr means the zero page. O(depth).
  const Page* peek(std::size_t i) const;

  /// Mutable access to slot `i`'s page reference and generation tag, after
  /// path-copying every node on the route that is shared with another map.
  /// If the caller materialises a page into a previously-empty slot it must
  /// follow up with note_resident(i).
  struct Slot {
    PageRef* page;
    std::uint64_t* tag;
  };
  Slot slot_for_write(std::size_t i);  // inline fast path, defined below

  /// Records that slot `i` just went empty→resident, bumping the subtree
  /// resident counters along its (uniquely-owned, post-slot_for_write) path.
  void note_resident(std::size_t i);

  /// Resident pages in the whole map. O(1) — maintained per subtree.
  std::size_t resident() const;

  /// Pages physically shared with `other` (same Page object in the same
  /// slot). Identical subtrees are counted wholesale without descending.
  std::size_t shared_with(const PageMap& other) const;

  /// Ascending indices whose slots reference different pages. Identical
  /// subtrees are skipped wholesale.
  std::vector<std::size_t> diff(const PageMap& other) const;

  /// Inserts every distinct resident Page into `out` (auditor reachability).
  void collect_pages(std::unordered_set<const Page*>& out) const;

  /// Resident pages whose generation tag exceeds `epoch`.
  std::size_t count_written_since(std::uint64_t epoch) const;

  /// A child's write set against this map, confined to a page range: the
  /// extraction half of a segment commit (parallel commits run one
  /// extraction per child concurrently, then splice serially).
  struct RangeDelta {
    std::size_t lo = 0, hi = 0;      // [lo, hi): the range extracted
    std::vector<std::size_t> index;  // ascending page indices to install
    std::vector<PageRef> page;       // parallel array: the child's pages
    std::vector<std::uint64_t> tag;  // parallel array: generation tags
    /// Child pages that differ from the base *outside* [lo, hi) — writes
    /// that escaped the child's declared segment. Non-zero means the
    /// delta must not be spliced next to siblings without serializing.
    std::size_t out_of_range = 0;
    bool confined() const { return out_of_range == 0; }
  };

  /// Extracts the slots where `child` holds a different (non-null) page
  /// than this map, collecting those inside [lo, hi) and counting those
  /// outside. Pure read on both trees — safe to run concurrently with
  /// other extract_delta calls on the same base map, which is exactly how
  /// disjoint segment commits parallelize. Slots where the child has no
  /// page but the base does are ignored: a fork can never *remove* a
  /// page, so such a diff means the base advanced after the fork and the
  /// base's page must survive.
  RangeDelta extract_delta(const PageMap& child, std::size_t lo,
                           std::size_t hi) const;

  /// Splices a delta into this map (path-copying shared nodes). Serial:
  /// requires the same exclusive access as any other write. Returns the
  /// number of slots that went empty -> resident.
  std::size_t apply_delta(const RangeDelta& d);

 private:
  struct Node;
  using NodeRef = std::shared_ptr<Node>;

  std::size_t child_index(std::size_t i, int level) const;
  Slot slot_for_write_slow(std::size_t i);
  void extract_rec(const Node* base, const Node* child, std::size_t sub_base,
                   int level, std::size_t lo, std::size_t hi,
                   RangeDelta& out) const;
  std::size_t count_child_diff_rec(const Node* base, const Node* child,
                                   std::size_t sub_base, int level) const;
  static std::size_t shared_rec(const Node* a, const Node* b);
  void diff_rec(const Node* a, const Node* b, std::size_t base, int level,
                std::vector<std::size_t>& out) const;
  static void collect_rec(const Node* n, std::unordered_set<const Page*>& out);
  static std::size_t count_tags_rec(const Node* n, std::uint64_t epoch);

  std::size_t num_pages_;
  int depth_;  // levels in the tree, ≥ 1; leaves sit at level depth_-1
  NodeRef root_;

  // Write cache: the slot arrays of the leaf most recently reached by a
  // full slot_for_write walk (stable for the leaf's lifetime — leaves never
  // resize). A cache entry certifies that every node on the path to that
  // leaf was exclusively owned at walk time — and exclusive ownership can
  // only be lost by copying this PageMap, which invalidates the cache on
  // both sides. Repeated writes with leaf locality therefore skip the walk
  // and the per-node use-count checks entirely (the hot-loop case: a world
  // mutating its own resident pages). The guard pointer is atomic so that
  // two concurrent fork() calls on the same map (const, legal, both of
  // which null the source cache) don't race; writes still require
  // exclusive access to the map, as they always did.
  mutable std::atomic<PageRef*> cached_pages_{nullptr};
  mutable std::uint64_t* cached_tags_ = nullptr;
  mutable std::size_t cached_prefix_ = 0;  // page index >> kFanoutBits
};

inline PageMap::Slot PageMap::slot_for_write(std::size_t i) {
  const std::size_t prefix = i >> kFanoutBits;
  PageRef* pages = cached_pages_.load(std::memory_order_relaxed);
  if (pages != nullptr && prefix == cached_prefix_ && i < num_pages_) {
    const std::size_t idx = i & (kFanout - 1);
    return Slot{pages + idx, cached_tags_ + idx};
  }
  return slot_for_write_slow(i);
}

}  // namespace mw
