#include "pagestore/heap.hpp"

namespace mw {

WorldHeap::WorldHeap(AddressSpace& space, const std::string& segment,
                     bool format)
    : space_(space) {
  auto seg = space.find_segment(segment);
  MW_CHECK(seg.has_value());
  base_ = seg->base;
  limit_ = seg->base + seg->size;
  if (format) {
    set_header(HeapHeader{kMagic, base_ + sizeof(HeapHeader), 0});
  } else {
    MW_CHECK(header().magic == kMagic);
  }
}

WorldHeap::HeapHeader WorldHeap::header() const {
  return space_.load<HeapHeader>(base_);
}

void WorldHeap::set_header(const HeapHeader& h) { space_.store(base_, h); }

WorldHeap::BlockHeader WorldHeap::block_at(std::uint64_t off) const {
  return space_.load<BlockHeader>(off);
}

void WorldHeap::set_block(std::uint64_t off, const BlockHeader& b) {
  space_.store(off, b);
}

std::uint64_t WorldHeap::alloc(std::uint64_t bytes) {
  MW_CHECK(bytes > 0);
  // Round payloads to 8 bytes so headers stay aligned.
  bytes = (bytes + 7) & ~7ull;

  HeapHeader h = header();
  // First fit over the free list; exact-or-larger blocks are reused whole
  // (no splitting — blocks in this library are small and uniform enough
  // that splitting buys little and costs page writes).
  std::uint64_t prev = 0;
  for (std::uint64_t cur = h.free_head; cur != 0;) {
    BlockHeader b = block_at(cur);
    if (b.size >= bytes) {
      if (prev == 0) {
        h.free_head = b.next;
        set_header(h);
      } else {
        BlockHeader pb = block_at(prev);
        pb.next = b.next;
        set_block(prev, pb);
      }
      b.next = kAllocatedMark;
      set_block(cur, b);
      return cur + sizeof(BlockHeader);
    }
    prev = cur;
    cur = b.next;
  }

  // Extend the break.
  const std::uint64_t block = h.brk;
  const std::uint64_t new_brk = block + sizeof(BlockHeader) + bytes;
  MW_CHECK(new_brk <= limit_);
  h.brk = new_brk;
  set_header(h);
  set_block(block, BlockHeader{bytes, kAllocatedMark});
  return block + sizeof(BlockHeader);
}

void WorldHeap::free(std::uint64_t offset) {
  const std::uint64_t block = offset - sizeof(BlockHeader);
  BlockHeader b = block_at(block);
  MW_CHECK(b.next == kAllocatedMark);
  HeapHeader h = header();
  b.next = h.free_head;
  set_block(block, b);
  h.free_head = block;
  set_header(h);
}

std::uint64_t WorldHeap::live_blocks() const {
  const HeapHeader h = header();
  std::uint64_t live = 0;
  for (std::uint64_t cur = base_ + sizeof(HeapHeader); cur < h.brk;) {
    const BlockHeader b = block_at(cur);
    if (b.next == kAllocatedMark) ++live;
    cur += sizeof(BlockHeader) + b.size;
  }
  return live;
}

std::uint64_t WorldHeap::live_bytes() const {
  const HeapHeader h = header();
  std::uint64_t live = 0;
  for (std::uint64_t cur = base_ + sizeof(HeapHeader); cur < h.brk;) {
    const BlockHeader b = block_at(cur);
    if (b.next == kAllocatedMark) live += b.size;
    cur += sizeof(BlockHeader) + b.size;
  }
  return live;
}

}  // namespace mw
