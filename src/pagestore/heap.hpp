// WorldHeap: a first-fit free-list allocator whose entire state — free-list
// head, break pointer, and block headers — lives *inside* the paged address
// space. Because the allocator keeps no native-memory state, a world fork
// (COW page-table copy) forks the heap for free, and committing the winning
// child's pages commits its allocations; sibling worlds can allocate
// divergently without interfering. This is the property §2.3 needs: "updated
// and newly-written pages are predicated by virtue of their residence in a
// per-process descriptor table".
#pragma once

#include <cstdint>

#include "pagestore/address_space.hpp"

namespace mw {

class WorldHeap {
 public:
  /// Binds to (and formats, if `format`) the segment named `segment` of
  /// `space`. Re-binding with format=false attaches to an existing heap —
  /// used after a fork, where the heap state arrives via the pages.
  WorldHeap(AddressSpace& space, const std::string& segment, bool format);

  /// Allocates `bytes` (> 0); returns the byte offset of the block within
  /// the address space. Aborts when the segment is exhausted.
  std::uint64_t alloc(std::uint64_t bytes);

  /// Frees a block previously returned by alloc on *some* world line of
  /// this heap (the block header travels with the pages).
  void free(std::uint64_t offset);

  /// Number of live (allocated, unfreed) blocks — walks the heap.
  std::uint64_t live_blocks() const;

  /// Total bytes handed out to live blocks.
  std::uint64_t live_bytes() const;

 private:
  // Heap layout, all stored in pages:
  //   [base]                 HeapHeader
  //   [base+sizeof(Header)]  blocks: BlockHeader followed by payload
  struct HeapHeader {
    std::uint64_t magic;
    std::uint64_t brk;        // offset of first never-used byte (abs offset)
    std::uint64_t free_head;  // abs offset of first free block, 0 = none
  };
  struct BlockHeader {
    std::uint64_t size;  // payload bytes
    std::uint64_t next;  // on free list: next free block (0 = end);
                         // allocated: kAllocatedMark
  };
  static constexpr std::uint64_t kMagic = 0x4d574845'41503031ull;
  static constexpr std::uint64_t kAllocatedMark = ~0ull;

  HeapHeader header() const;
  void set_header(const HeapHeader& h);
  BlockHeader block_at(std::uint64_t off) const;
  void set_block(std::uint64_t off, const BlockHeader& b);

  AddressSpace& space_;
  std::uint64_t base_ = 0;
  std::uint64_t limit_ = 0;
};

}  // namespace mw
