// PageShard: thread-local shard binding for the pagestore hot paths.
//
// The PagePool's free lists and the Page live-instance ledger are sharded
// so that scheduler workers allocating, COW-breaking and recycling frames
// in parallel do not serialize on one process-wide mutex / cacheline.
// Which shard a thread uses is decided here: long-lived worker threads
// (SpecScheduler workers, bench drivers) bind themselves to a small
// integer id at startup, and every pagestore consumer folds that id into
// its own shard range. Threads that never bind — tests, main threads,
// short-lived helpers — fall back to the locked *global* shard, which
// behaves exactly like the pre-shard single-mutex pool.
//
// The binding is advisory: any id is valid, correctness never depends on
// it, and two threads bound to the same id merely share a shard (and its
// lock). Unbinding restores the global-shard fallback.
#pragma once

#include <cstddef>

namespace mw {

class PageShard {
 public:
  static constexpr std::size_t kUnbound = static_cast<std::size_t>(-1);

  /// Binds the calling thread to shard `id`. Rebinding is allowed; the
  /// SpecScheduler binds each worker to its worker index.
  static void bind(std::size_t id) { bound_ = id; }

  /// Restores the global-shard fallback for the calling thread.
  static void unbind() { bound_ = kUnbound; }

  /// The calling thread's bound shard id, or kUnbound.
  static std::size_t current() { return bound_; }

 private:
  static thread_local std::size_t bound_;
};

}  // namespace mw
