#include "pagestore/shard.hpp"

namespace mw {

thread_local std::size_t PageShard::bound_ = PageShard::kUnbound;

}  // namespace mw
