// Copy-on-write page table with parent inheritance (§2.3).
//
// The paper measures fork latency growing linearly with address-space size
// because a fork copies the table of page references. This implementation
// removes that cost: the slots live in a persistent radix tree (PageMap),
// so fork() is a root-pointer copy, adopt() a root swap, and only writes
// pay — a bounded path copy (≤ tree depth nodes) on first touch, then the
// usual one-page COW break. Fork, receiver splits and commits are therefore
// O(1) in address-space size; see DESIGN.md "Persistent page maps".
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "pagestore/page.hpp"
#include "pagestore/page_map.hpp"

namespace mw {

/// Accounting for the COW machinery; feeds the paper's τ(overhead)
/// decomposition and the write-fraction measurements (§3.4).
struct CowStats {
  std::uint64_t pages_allocated = 0;  // zero-fill-on-demand allocations
  std::uint64_t pages_copied = 0;     // COW breaks (private copies made)
  std::uint64_t bytes_copied = 0;     // data actually copied for COW breaks
  std::uint64_t page_writes = 0;      // write operations (not distinct pages)
  std::uint64_t page_reads = 0;
  std::uint64_t pool_hits = 0;    // frames recycled from the PagePool
  std::uint64_t pool_misses = 0;  // frames that hit the system allocator

  /// Absorbs a child's accounting into this one (used exactly once per
  /// adopt so nested speculation trees never double-count).
  void merge(const CowStats& o) {
    pages_allocated += o.pages_allocated;
    pages_copied += o.pages_copied;
    bytes_copied += o.bytes_copied;
    page_writes += o.page_writes;
    page_reads += o.page_reads;
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
  }

  void reset() { *this = CowStats{}; }
};

class PageTable {
 public:
  /// An address space of `num_pages` pages of `page_size` bytes, initially
  /// entirely absent (reads see zeros; first write allocates).
  PageTable(std::size_t page_size, std::size_t num_pages);

  std::size_t page_size() const { return page_size_; }
  std::size_t num_pages() const { return map_.num_pages(); }
  std::size_t size_bytes() const { return page_size_ * num_pages(); }

  /// Read-only view of page `i`; nullptr means the zero page.
  const Page* peek(std::size_t i) const;

  /// Writable pointer to page `i`, allocating or COW-copying as needed.
  /// Inline so the exclusively-owned-page fast path (cached leaf, no
  /// allocation, no COW break) compiles down to a few loads per write.
  std::uint8_t* write_page(std::size_t i) {
    PageMap::Slot slot = map_.slot_for_write(i);
    PageRef& ref = *slot.page;
    if (!ref) {
      materialize_slot(ref, i);
    } else if (ref.use_count() > 1) {
      cow_break_slot(ref, i);
    }
    *slot.tag = ++gen_;
    ++stats_.page_writes;
    return ref->mutable_data();
  }

  /// Reads `dst.size()` bytes at byte offset `off`; absent pages read as 0.
  void read(std::uint64_t off, std::span<std::uint8_t> dst) const;

  /// Writes `src` at byte offset `off`, breaking sharing where needed.
  void write(std::uint64_t off, std::span<const std::uint8_t> src);

  /// COW fork: child shares every page with this table. O(1) — the child
  /// takes a reference to the same radix-tree root.
  PageTable fork() const;

  /// The paper's commit: "the parent process absorbs the state changes made
  /// by its child by atomically replacing its page pointer with that of the
  /// child". O(1) root swap; stats are merged exactly once.
  void adopt(PageTable&& child);

  // --- Segment commits (sharded pagestore / parallel commit path) -------
  //
  // A full adopt() replaces the whole map, so two children can never both
  // commit into one parent. Segment commits merge instead: each child owns
  // a disjoint page range, and the commit splices only the slots the child
  // actually changed. The expensive half — walking the child's tree for
  // its write set — is a pure read on both maps, so disjoint children
  // extract concurrently; the splice is a serial pass of pointer installs.

  /// Phase 1: the child's write set for [page_lo, page_hi) against this
  /// table. Read-only on both tables; safe to call concurrently for
  /// several children of the same parent (one call per committing worker).
  PageMap::RangeDelta extract_segment(const PageTable& child,
                                      std::size_t page_lo,
                                      std::size_t page_hi) const;

  /// Phase 2: splices a previously extracted delta and absorbs the
  /// child's accounting (merge exactly once per child, like adopt). Serial
  /// — requires the same exclusive access as any write. Returns the number
  /// of pages installed.
  std::size_t apply_segment(const PageMap::RangeDelta& delta,
                            const CowStats& child_stats);

  /// One child, one segment: extract + apply, plus the write-fraction
  /// clock restart a full adopt performs.
  std::size_t adopt_segment(PageTable&& child, std::size_t page_lo,
                            std::size_t page_hi);

  /// One committing child of a batch segment commit.
  struct SegmentAdoptOp {
    PageTable* child = nullptr;
    std::size_t page_lo = 0;
    std::size_t page_hi = 0;  // exclusive
  };

  struct AdoptBatchStats {
    std::size_t children = 0;        // children committed
    std::size_t pages_spliced = 0;   // slots installed across all children
    std::size_t out_of_range = 0;    // child writes outside declared ranges
    bool parallel = false;           // extraction ran on worker threads
    bool fell_back = false;          // overlap/escape forced the serial path
  };

  /// Commits every child in `ops` into this table. When the declared
  /// ranges are pairwise disjoint and every child's writes stayed inside
  /// its range, the extractions run in parallel (one thread per child for
  /// multi-child batches) and the splices commute; otherwise the whole
  /// batch falls back to today's serialized semantics — children adopted
  /// one at a time in vector order, last writer winning where they
  /// overlap. Children are consumed either way (their tables are left
  /// valid but their accounting has been absorbed).
  AdoptBatchStats adopt_segments(std::vector<SegmentAdoptOp> ops);

  /// Number of resident (allocated) pages. O(1).
  std::size_t resident_pages() const;

  /// Number of pages physically shared with `other` (same Page object).
  /// Shared subtrees are counted wholesale, so the cost scales with the
  /// divergence between the two maps, not the address-space size.
  std::size_t shared_pages_with(const PageTable& other) const;

  /// Page indices where this table and `other` reference different pages.
  std::vector<std::size_t> diff(const PageTable& other) const;

  /// Inserts the distinct resident Page objects this table references into
  /// `out` — the reachability set for the runtime auditor's leak check.
  void collect_pages(std::unordered_set<const Page*>& out) const;

  /// Fraction of resident pages privately copied/written since the last
  /// fork: the paper's "write fraction" (observed 0.2–0.5 in [18]).
  /// Tracked via per-leaf generation tags: a page counts as written when
  /// its tag exceeds the generation recorded at the last fork/adopt.
  double write_fraction() const;

  const CowStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  /// Zero-fill-on-demand allocation into an empty slot (cold path).
  void materialize_slot(PageRef& ref, std::size_t i);
  /// Private copy of a page inherited from / shared with another world.
  void cow_break_slot(PageRef& ref, std::size_t i);

  std::size_t page_size_;
  PageMap map_;
  std::uint64_t gen_ = 0;    // bumped on every write through this table
  std::uint64_t epoch_ = 0;  // generation at the last fork/adopt
  CowStats stats_;
};

}  // namespace mw
