// Copy-on-write page table with parent inheritance (§2.3).
//
// A fork copies only the table of page references (O(pages) pointer copies,
// no data movement) — this is exactly why the paper's measured fork latency
// grows with address-space size while staying far below a full copy. The
// first write to an inherited page breaks sharing by copying that one page.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "pagestore/page.hpp"

namespace mw {

/// Accounting for the COW machinery; feeds the paper's τ(overhead)
/// decomposition and the write-fraction measurements (§3.4).
struct CowStats {
  std::uint64_t pages_allocated = 0;  // zero-fill-on-demand allocations
  std::uint64_t pages_copied = 0;     // COW breaks (private copies made)
  std::uint64_t bytes_copied = 0;     // data actually copied for COW breaks
  std::uint64_t page_writes = 0;      // write operations (not distinct pages)
  std::uint64_t page_reads = 0;

  void reset() { *this = CowStats{}; }
};

class PageTable {
 public:
  /// An address space of `num_pages` pages of `page_size` bytes, initially
  /// entirely absent (reads see zeros; first write allocates).
  PageTable(std::size_t page_size, std::size_t num_pages);

  std::size_t page_size() const { return page_size_; }
  std::size_t num_pages() const { return slots_.size(); }
  std::size_t size_bytes() const { return page_size_ * slots_.size(); }

  /// Read-only view of page `i`; nullptr means the zero page.
  const Page* peek(std::size_t i) const;

  /// Writable pointer to page `i`, allocating or COW-copying as needed.
  std::uint8_t* write_page(std::size_t i);

  /// Reads `dst.size()` bytes at byte offset `off`; absent pages read as 0.
  void read(std::uint64_t off, std::span<std::uint8_t> dst) const;

  /// Writes `src` at byte offset `off`, breaking sharing where needed.
  void write(std::uint64_t off, std::span<const std::uint8_t> src);

  /// COW fork: child shares every page with this table.
  PageTable fork() const;

  /// The paper's commit: "the parent process absorbs the state changes made
  /// by its child by atomically replacing its page pointer with that of the
  /// child". Steals the child's slots; stats are merged.
  void adopt(PageTable&& child);

  /// Number of resident (allocated) pages.
  std::size_t resident_pages() const;

  /// Number of pages physically shared with `other` (same Page object).
  std::size_t shared_pages_with(const PageTable& other) const;

  /// Page indices where this table and `other` reference different pages.
  std::vector<std::size_t> diff(const PageTable& other) const;

  /// Inserts the distinct resident Page objects this table references into
  /// `out` — the reachability set for the runtime auditor's leak check.
  void collect_pages(std::unordered_set<const Page*>& out) const;

  /// Fraction of resident pages privately copied/written since the last
  /// fork: the paper's "write fraction" (observed 0.2–0.5 in [18]).
  double write_fraction() const;

  const CowStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  std::size_t page_size_;
  std::vector<PageRef> slots_;
  std::vector<bool> touched_;  // pages written since last fork/adopt
  CowStats stats_;
};

}  // namespace mw
