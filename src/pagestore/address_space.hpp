// A world's sink state: a paged address space with typed accessors and
// named segments. "Files are named sets of pages" (§2.1) — segments give
// worlds MULTICS-style single-level-store naming over the page table.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "pagestore/page_table.hpp"
#include "util/check.hpp"

namespace mw {

struct Segment {
  std::string name;
  std::uint64_t base = 0;  // byte offset, page aligned
  std::uint64_t size = 0;  // bytes reserved (page-size multiple)
};

class AddressSpace {
 public:
  AddressSpace(std::size_t page_size, std::size_t num_pages)
      : table_(page_size, num_pages) {}

  std::size_t page_size() const { return table_.page_size(); }
  std::size_t size_bytes() const { return table_.size_bytes(); }

  void read(std::uint64_t off, std::span<std::uint8_t> dst) const {
    table_.read(off, dst);
  }
  void write(std::uint64_t off, std::span<const std::uint8_t> src) {
    table_.write(off, src);
  }

  template <typename T>
  T load(std::uint64_t off) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    table_.read(off, std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(&v),
                                             sizeof v));
    return v;
  }

  template <typename T>
  void store(std::uint64_t off, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    table_.write(off, std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(&v), sizeof v));
  }

  /// Reserves a page-aligned named segment; aborts if the space is full.
  /// Segment names must be unique within the address space. Returned by
  /// value: a reference into the directory would dangle as soon as the
  /// next allocation grows it.
  Segment alloc_segment(const std::string& name, std::uint64_t bytes);

  /// Looks a segment up by name.
  std::optional<Segment> find_segment(const std::string& name) const;

  /// The whole segment directory, in allocation order.
  const std::vector<Segment>& segments() const { return segments_; }

  /// First byte not yet claimed by a segment (the allocation watermark).
  std::uint64_t segment_watermark() const { return next_free_; }

  /// Replaces the segment directory wholesale — the checkpoint bootstrap
  /// path, which must restore naming state alongside the pages. `watermark`
  /// must not exceed the space size; entries are taken as-is.
  void set_segments(std::vector<Segment> segs, std::uint64_t watermark);

  /// COW fork: the child inherits pages *and* the segment directory.
  /// O(1) in address-space size (persistent page-map root share).
  AddressSpace fork() const;

  /// Commit a child's state into this space (page-map root replacement,
  /// O(1) in address-space size).
  void adopt(AddressSpace&& child);

  /// Segment-scoped commit: splices only the pages the child wrote inside
  /// `seg` (a segment of *this* space — byte range converted to page
  /// range). Writes outside the segment are dropped with serialized
  /// semantics handled by the caller via adopt_parallel; this single-child
  /// form splices unconditionally within the range. Returns pages spliced.
  std::size_t adopt_segment(AddressSpace&& child, const Segment& seg);

  /// One child of a parallel commit batch: the child plus the segment of
  /// this space it claims to own.
  struct SegmentCommit {
    AddressSpace* child = nullptr;
    Segment segment;
  };

  /// Commits several children at once, each confined to its declared
  /// segment. Extraction (the expensive diff walk) runs concurrently when
  /// segments are disjoint and every child stayed inside its own; any
  /// overlap or escape falls the whole batch back to serialized adopts in
  /// vector order (last writer wins). Segment directories of the children
  /// are ignored — the parent keeps its own naming.
  PageTable::AdoptBatchStats adopt_parallel(
      const std::vector<SegmentCommit>& commits);

  /// Converts a byte-addressed segment of this space to its page range
  /// [first, last) — the unit the segment-commit machinery works in.
  std::pair<std::size_t, std::size_t> page_range(const Segment& seg) const;

  const PageTable& table() const { return table_; }
  PageTable& table() { return table_; }

 private:
  PageTable table_;
  std::vector<Segment> segments_;
  std::uint64_t next_free_ = 0;
};

}  // namespace mw
