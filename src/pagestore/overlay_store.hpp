// OverlayStore — a *value-based* virtual-copy mechanism, after Wilson's
// "Alternate Universes" (§5): each world is an overlay of object-granular
// updates chaining to its parent, instead of a page map.
//
// The paper's comparison: "Wilson's approach is value-based (and so might
// be incorporated in a language in order to exploit fine-grained
// parallelism) while our scheme is page-based and hence suitable for
// larger-grained parallelism; [page-based] trades a higher startup cost
// against cheaper referencing from that point on."
//
// This implementation exists to make that trade measurable
// (bench/ablation_page_vs_value): overlay forks are O(1), but every read
// walks the overlay chain; page-table forks are O(pages), but reads are a
// direct page access.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "util/check.hpp"

namespace mw {

/// A world of key -> 64-bit-value objects. Forking is O(1): the child
/// starts an empty overlay whose reads fall through to the parent chain.
class OverlayStore {
 public:
  /// A root world.
  OverlayStore() : node_(std::make_shared<Node>()) {}

  /// O(1) fork: shares everything with the parent by reference.
  OverlayStore fork() const {
    auto child = std::make_shared<Node>();
    child->parent = node_;
    return OverlayStore(std::move(child));
  }

  /// Writes into this world's overlay (never touches ancestors).
  void store(std::uint64_t key, std::int64_t value) {
    node_->data[key] = value;
  }

  /// Reads through the overlay chain; 0 for never-written keys (matching
  /// the page store's zero-fill semantics). Cost grows with chain depth.
  std::int64_t load(std::uint64_t key) const {
    for (const Node* n = node_.get(); n != nullptr; n = n->parent.get()) {
      auto it = n->data.find(key);
      if (it != n->data.end()) return it->second;
    }
    return 0;
  }

  /// The commit: the parent adopts this child's view. Rather than merging
  /// maps upward (which would break siblings sharing the ancestor), the
  /// committed world simply *becomes* the parent's new state — the same
  /// pointer-swap idea as the page table's adopt().
  void adopt(OverlayStore&& child) { node_ = std::move(child.node_); }

  /// Depth of the overlay chain (1 = root). Long-lived speculation lines
  /// grow this, and with it, read cost — value-based speculation's
  /// referencing tax.
  std::size_t chain_depth() const {
    std::size_t d = 0;
    for (const Node* n = node_.get(); n != nullptr; n = n->parent.get()) ++d;
    return d;
  }

  /// Entries in this world's own overlay (not ancestors).
  std::size_t own_entries() const { return node_->data.size(); }

  /// Collapses the chain into a single flat map — the compaction a
  /// production value-based system must periodically run.
  void flatten() {
    auto flat = std::make_shared<Node>();
    // Walk root-to-leaf so newer entries overwrite older ones.
    std::vector<const Node*> chain;
    for (const Node* n = node_.get(); n != nullptr; n = n->parent.get())
      chain.push_back(n);
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      for (const auto& [k, v] : (*it)->data) flat->data[k] = v;
    }
    node_ = std::move(flat);
  }

 private:
  struct Node {
    std::shared_ptr<Node> parent;
    std::map<std::uint64_t, std::int64_t> data;
  };

  explicit OverlayStore(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  std::shared_ptr<Node> node_;
};

}  // namespace mw
