#include "util/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string_view>

namespace mw {

namespace {

// Strict full-string parses: the entire value must be consumed and in
// range, else nullopt. strtoll/strtod's lenient prefix parsing is exactly
// what we are defending against.
std::optional<std::int64_t> parse_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno == ERANGE || end != s.c_str() + s.size() || !std::isfinite(v))
    return std::nullopt;
  return v;
}

}  // namespace

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) == 0) {
      arg.remove_prefix(2);
      auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        flags_[std::string(arg)] = "true";
      } else {
        flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

bool Cli::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t def) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  return parse_int(it->second).value_or(def);
}

double Cli::get_double(const std::string& key, double def) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  return parse_double(it->second).value_or(def);
}

bool Cli::get_bool(const std::string& key, bool def) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

VDuration Cli::get_duration(const std::string& key, VDuration def) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  return parse_duration(it->second).value_or(def);
}

std::optional<VDuration> parse_duration(const std::string& text) {
  std::string_view s(text);
  // Longest suffix first: "us" must win over "s".
  std::int64_t scale = 1;
  if (s.size() >= 2 && s.substr(s.size() - 2) == "us") {
    s.remove_suffix(2);
  } else if (s.size() >= 2 && s.substr(s.size() - 2) == "ms") {
    scale = 1000;
    s.remove_suffix(2);
  } else if (!s.empty() && s.back() == 's') {
    scale = 1'000'000;
    s.remove_suffix(1);
  }
  const auto number = parse_double(std::string(s));
  if (!number || *number < 0) return std::nullopt;  // durations are ticks >= 0
  const double ticks = *number * static_cast<double>(scale);
  if (ticks > static_cast<double>(kVTimeMax)) return std::nullopt;  // overflow
  return static_cast<VDuration>(ticks);
}

}  // namespace mw
