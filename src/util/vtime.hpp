// Virtual time for the deterministic schedulers and the network simulator.
//
// The paper's metric is wall-clock execution time. On a single-core host we
// reproduce the *shape* of its results with discrete-event simulation: work
// is accounted in integer ticks (1 tick = 1 microsecond of modeled time) so
// that schedules are exactly reproducible and comparisons are exact.
#pragma once

#include <cstdint>
#include <limits>

namespace mw {

/// A point in simulated time, in ticks (modeled microseconds).
using VTime = std::int64_t;
/// A span of simulated time, in ticks.
using VDuration = std::int64_t;

inline constexpr VTime kVTimeMax = std::numeric_limits<VTime>::max();

/// Convenience constructors so call sites read like units.
constexpr VDuration vt_us(std::int64_t n) { return n; }
constexpr VDuration vt_ms(std::int64_t n) { return n * 1000; }
constexpr VDuration vt_sec(std::int64_t n) { return n * 1000 * 1000; }

/// Render ticks as fractional seconds for report output.
constexpr double vt_to_sec(VDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double vt_to_ms(VDuration d) { return static_cast<double>(d) / 1e3; }

}  // namespace mw
