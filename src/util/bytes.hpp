// Byte-buffer serialization used by the message layer and the checkpoint
// machinery. Encoding is explicit little-endian so checkpoints and message
// payloads are host-independent.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

namespace mw {

using Bytes = std::vector<std::uint8_t>;

/// Append-only encoder.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);
  void put_bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed string.
  void put_string(const std::string& s);

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Cursor-based decoder; `ok()` turns false on any out-of-bounds read and
/// subsequent reads return zero values, so callers can validate once at the
/// end instead of checking every field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  std::string get_string();
  Bytes get_blob(std::size_t n);

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool take(std::size_t n, const std::uint8_t** out);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace mw
