// Aligned-column table printer. The benchmark harnesses use this to emit
// tables in the same row/column form the paper reports (e.g. Table I:
// procs/max/min/avg/fails/par).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mw {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header row.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::int64_t v);

  /// Renders with right-aligned columns, a header underline, and a title.
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mw
