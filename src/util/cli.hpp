// Minimal command-line flag parsing for the bench/example binaries.
// Accepts --key=value and --flag forms; positional arguments are collected.
// Numeric getters are strict: a value that is not entirely a valid number
// (garbage, trailing junk, overflow) yields the default rather than a
// silently truncated parse — a mistyped --rate=1e999 or --work=12x must
// not turn into a plausible-looking run.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/vtime.hpp"

namespace mw {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;
  /// Duration with an optional unit suffix: "500us", "500ms", "2s", or
  /// fractional "1.5ms"; a bare number is ticks (µs). Negative, overflowed,
  /// or malformed values yield `def`.
  VDuration get_duration(const std::string& key, VDuration def) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// The suffix parser behind Cli::get_duration, exposed for tests and for
/// parsing duration-shaped config values outside argv.
std::optional<VDuration> parse_duration(const std::string& text);

}  // namespace mw
