// Minimal command-line flag parsing for the bench/example binaries.
// Accepts --key=value and --flag forms; positional arguments are collected.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mw {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace mw
