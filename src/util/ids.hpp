// Process identifiers. "Each process in a multiprocessing system has a
// unique identifier" (§2.4.1); predicates are lists of these, which is the
// paper's key representation choice — processes change *status* far less
// often than they touch objects, so predicating on pids beats predicating
// on data.
#pragma once

#include <cstdint>

namespace mw {

using Pid = std::uint32_t;

/// Reserved: never a live process.
inline constexpr Pid kNoPid = 0;

}  // namespace mw
