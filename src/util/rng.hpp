// Deterministic random number generation.
//
// Every stochastic component in the library (workload generators, the
// rootfinder's starting-angle choice, fault injection, the network
// simulator's jitter) draws from an explicitly-seeded Xoshiro256** stream so
// that experiments replay bit-identically. Never use std::random_device or
// a global generator.
#pragma once

#include <cstdint>
#include <vector>

namespace mw {

/// SplitMix64: used to expand a single 64-bit seed into Xoshiro state.
/// (Sebastiano Vigna's public-domain construction.)
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality 64-bit PRNG with a 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it composes with <random>
/// distributions, though the helpers below are preferred for determinism
/// across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform in [0, bound). Uses rejection sampling: unbiased.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi);

  /// True with probability p.
  bool next_bool(double p);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double next_gaussian();

  /// Exponential with the given mean.
  double next_exponential(double mean);

  /// A derived, statistically independent stream; `salt` distinguishes
  /// siblings derived from the same parent.
  Rng split(std::uint64_t salt);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace mw
