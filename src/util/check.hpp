// Lightweight invariant checking. MW_CHECK is always on (these guard
// correctness-critical invariants in the speculation runtime, where silent
// corruption would invalidate every experiment); MW_DCHECK compiles away in
// release builds and is for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mw {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "MW_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace mw

#define MW_CHECK(expr) \
  ((expr) ? (void)0 : ::mw::check_failed(#expr, __FILE__, __LINE__))

#ifdef NDEBUG
#define MW_DCHECK(expr) ((void)0)
#else
#define MW_DCHECK(expr) MW_CHECK(expr)
#endif
