#include "util/threading.hpp"

#include "util/check.hpp"

namespace mw {

ThreadPool::ThreadPool(std::size_t workers) {
  MW_CHECK(workers > 0);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    MW_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace mw
