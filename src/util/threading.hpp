// Threading primitives for the wall-clock execution backend: a fixed-size
// thread pool and a cooperative cancellation token.
//
// Per the paper's model (§2.2), losing alternatives are *eliminated*;
// portable C++ cannot kill a thread asynchronously, so elimination is
// cooperative: alternative bodies observe a CancelToken at instrumented
// checkpoints and unwind.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mw {

/// std::thread::hardware_concurrency with a floor: the standard permits 0
/// ("unknown"), which would make worker sweeps and bench --check bounds
/// degenerate in constrained containers — fall back to 2 so "per hardware
/// thread" sizing always means at least a pair of workers.
inline std::size_t hw_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 2 : static_cast<std::size_t>(n);
}

/// Cooperative cancellation flag shared between a parent and one
/// alternative. Thread-safe; `request()` is idempotent.
class CancelToken {
 public:
  void request() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Thrown by alternative bodies when they observe cancellation; the runtime
/// catches it at the alternative boundary and records the alternative as
/// eliminated.
struct CancelledError {};

/// Fixed-size FIFO thread pool. Tasks must not throw (wrap user code before
/// submitting). Destruction drains: waits for queued work to finish.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

  std::size_t worker_count() const { return threads_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace mw
