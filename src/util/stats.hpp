// Streaming and batch statistics used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace mw {

/// Welford streaming accumulator: numerically stable mean/variance plus
/// min/max, O(1) memory.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample vector, including order statistics.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes a Summary; copies and sorts internally, input left untouched.
Summary summarize(const std::vector<double>& samples);

/// Linear-interpolated percentile of a *sorted* sample, q in [0,1].
double percentile_sorted(const std::vector<double>& sorted, double q);

}  // namespace mw
