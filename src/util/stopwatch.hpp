// Wall-clock stopwatch for the real-time backends and the §3.4 overhead
// benchmarks (which measure actual POSIX fork/COW behaviour).
#pragma once

#include <chrono>

namespace mw {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_sec() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_sec() * 1e3; }
  double elapsed_us() const { return elapsed_sec() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mw
