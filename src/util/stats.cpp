#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mw {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return min_; }

double RunningStats::max() const { return max_; }

double percentile_sorted(const std::vector<double>& sorted, double q) {
  MW_CHECK(!sorted.empty());
  MW_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (double x : sorted) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.median = percentile_sorted(sorted, 0.5);
  s.p90 = percentile_sorted(sorted, 0.9);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

}  // namespace mw
