// Minimal discrete-event simulation core: a time-ordered event queue with a
// deterministic tie-break (FIFO by insertion sequence). Used by the network
// simulator and the Multiple Worlds actor runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/check.hpp"
#include "util/vtime.hpp"

namespace mw {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `fn` at absolute time `at` (must not be in the past).
  void schedule_at(VTime at, Handler fn) {
    MW_CHECK(at >= now_);
    heap_.push(Event{at, seq_++, std::move(fn)});
  }

  /// Schedules `fn` after `delay` ticks.
  void schedule_after(VDuration delay, Handler fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  VTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Runs the next event; returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.at;
    ev.fn();
    return true;
  }

  /// Runs until the queue drains (handlers may schedule more events).
  void run() {
    while (step()) {
    }
  }

  /// Runs until the queue drains or simulated time reaches `deadline`.
  /// Events at exactly `deadline` still run.
  void run_until(VTime deadline) {
    while (!heap_.empty() && heap_.top().at <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

 private:
  struct Event {
    VTime at;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t seq_ = 0;
  VTime now_ = 0;
};

}  // namespace mw
