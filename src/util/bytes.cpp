#include "util/bytes.hpp"

namespace mw {

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(bits);
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::put_string(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool ByteReader::take(std::size_t n, const std::uint8_t** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::get_u8() {
  const std::uint8_t* p;
  if (!take(1, &p)) return 0;
  return *p;
}

std::uint32_t ByteReader::get_u32() {
  const std::uint8_t* p;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::get_u64() {
  const std::uint8_t* p;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double ByteReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteReader::get_string() {
  const std::uint32_t n = get_u32();
  const std::uint8_t* p;
  if (!take(n, &p)) return {};
  return std::string(reinterpret_cast<const char*>(p), n);
}

Bytes ByteReader::get_blob(std::size_t n) {
  const std::uint8_t* p;
  if (!take(n, &p)) return {};
  return Bytes(p, p + n);
}

}  // namespace mw
