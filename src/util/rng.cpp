#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace mw {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MW_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of bound that fits.
  const std::uint64_t limit = ~0ull - (~0ull % bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  MW_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double_in(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_gaussian() {
  // Box–Muller; recompute both uniforms each call so the stream position is
  // call-count-deterministic.
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::next_exponential(double mean) {
  MW_CHECK(mean > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::split(std::uint64_t salt) {
  return Rng(next_u64() ^ (salt * 0x9e3779b97f4a7c15ull));
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = next_below(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace mw
