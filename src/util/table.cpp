#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace mw {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MW_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  MW_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::num(std::int64_t v) { return std::to_string(v); }

void TablePrinter::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  if (!title.empty()) os << title << "\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      // Right-align numeric-looking content; that is every cell here.
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

}  // namespace mw
