#include "fault/fault.hpp"

#include <atomic>

#include "util/check.hpp"

namespace mw {

namespace {

std::uint64_t fnv1a(std::string_view s, std::uint64_t h = 0xcbf29ce484222325ull) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t v, std::uint64_t h) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::atomic<FaultInjector*> g_ambient{nullptr};

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kFailAlternative:
      return "fail-alternative";
    case FaultKind::kCrashException:
      return "crash-exception";
    case FaultKind::kHang:
      return "hang";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDropMessage:
      return "drop-message";
    case FaultKind::kDuplicateMessage:
      return "duplicate-message";
    case FaultKind::kNodeCrash:
      return "node-crash";
  }
  return "?";
}

FaultSpec FaultSpec::always(FaultKind k) {
  FaultSpec s;
  s.kind = k;
  return s;
}

FaultSpec FaultSpec::every_nth(FaultKind k, std::uint64_t n,
                               std::uint64_t offset) {
  MW_CHECK(n >= 1);
  FaultSpec s;
  s.kind = k;
  s.when = When::kEveryNth;
  s.nth = n;
  s.offset = offset;
  return s;
}

FaultSpec FaultSpec::once(FaultKind k, std::uint64_t hit) {
  FaultSpec s = always(k);
  s.offset = hit;
  s.max_fires = 1;
  return s;
}

FaultSpec FaultSpec::with_probability(FaultKind k, double p) {
  MW_CHECK(p >= 0.0 && p <= 1.0);
  FaultSpec s;
  s.kind = k;
  s.when = When::kProbability;
  s.probability = p;
  return s;
}

FaultSpec& FaultSpec::between(VTime begin, VTime end) {
  window_begin = begin;
  window_end = end;
  return *this;
}

FaultSpec& FaultSpec::limit(std::uint64_t fires) {
  max_fires = fires;
  return *this;
}

FaultSpec& FaultSpec::delayed(VDuration d) {
  delay = d;
  return *this;
}

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {}

void FaultInjector::arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lk(mu_);
  Point p;
  p.spec = spec;
  // The stream depends only on (root seed, point name): the schedule is
  // invariant under arm order and unrelated points' activity.
  p.rng = Rng(seed_).split(fnv1a(point));
  points_[point] = std::move(p);
}

void FaultInjector::disarm(const std::string& point) {
  std::lock_guard<std::mutex> lk(mu_);
  points_.erase(point);
}

FaultAction FaultInjector::query(std::string_view point, VTime now) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return {};
  Point& p = it->second;
  const std::uint64_t hit = p.hits++;
  const FaultSpec& s = p.spec;
  if (s.kind == FaultKind::kNone) return {};
  if (p.fires >= s.max_fires) return {};
  if (now < s.window_begin || now >= s.window_end) return {};
  bool fire = false;
  switch (s.when) {
    case FaultSpec::When::kAlways:
      fire = hit >= s.offset;
      break;
    case FaultSpec::When::kEveryNth:
      fire = hit >= s.offset && (hit - s.offset) % s.nth == 0;
      break;
    case FaultSpec::When::kProbability:
      fire = p.rng.next_bool(s.probability);
      break;
  }
  if (!fire) return {};
  ++p.fires;
  log_.push_back(FiredFault{std::string(point), hit, s.kind, now});
  return FaultAction{s.kind, s.delay};
}

std::uint64_t FaultInjector::hits(std::string_view point) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fires(std::string_view point) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::uint64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lk(mu_);
  return log_.size();
}

std::vector<FiredFault> FaultInjector::log() const {
  std::lock_guard<std::mutex> lk(mu_);
  return log_;
}

std::uint64_t FaultInjector::schedule_digest() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const FiredFault& f : log_) {
    h = fnv1a(f.point, h);
    h = fnv1a_u64(f.hit, h);
    h = fnv1a_u64(static_cast<std::uint64_t>(f.kind), h);
    h = fnv1a_u64(static_cast<std::uint64_t>(f.at), h);
  }
  return h;
}

std::string FaultInjector::log_string() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "seed=" + std::to_string(seed_) + " fires=" +
                    std::to_string(log_.size());
  for (const FiredFault& f : log_) {
    out += "\n  " + f.point + "#" + std::to_string(f.hit) + " " +
           to_string(f.kind) + " @" + std::to_string(f.at);
  }
  return out;
}

FaultInjector* fault_injector() {
  return g_ambient.load(std::memory_order_acquire);
}

FaultScope::FaultScope(FaultInjector& injector)
    : prev_(g_ambient.exchange(&injector, std::memory_order_acq_rel)) {}

FaultScope::~FaultScope() { g_ambient.store(prev_, std::memory_order_release); }

FaultAction fault_point(std::string_view name, VTime now) {
  FaultInjector* inj = fault_injector();
  return inj ? inj->query(name, now) : FaultAction{};
}

}  // namespace mw
