// Deterministic fault injection (the framework behind §4.1's premise that
// "failure is the (n+1)-th alternative"): a seeded FaultInjector holds a
// set of *named fault points* — places in the library that ask "should a
// fault happen here?" — each armed with a trigger policy (always, every
// n-th hit, per-hit probability, virtual-time window, fire limit) and a
// fault kind (fail the alternative, crash it with an exception, hang it,
// delay it, drop/duplicate a message, crash a node).
//
// Everything is derived from one root seed: each point draws from its own
// Rng stream split off by the point-name hash, so the fault schedule for a
// given (seed, workload) pair replays bit-identically regardless of arm
// order — failing runs are reproduced by re-running the seed.
//
// Code under test declares points with MW_FAULT_POINT("name") (or
// AltContext::fault_point inside alternative bodies). When no injector is
// installed the query is a single atomic load — production paths stay
// effectively free.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"
#include "util/vtime.hpp"

namespace mw {

enum class FaultKind {
  kNone,
  kFailAlternative,   // the alternative aborts (guard/computation failure)
  kCrashException,    // an exception escapes the alternative's body
  kHang,              // the alternative never finishes on its own
  kDelay,             // extra latency/work of `delay` ticks
  kDropMessage,       // the network loses a message
  kDuplicateMessage,  // the network delivers a message twice
  kNodeCrash,         // a remote node dies mid-protocol
};

const char* to_string(FaultKind k);

/// What a fired fault point tells the call site to do. kNone = no fault.
struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  VDuration delay = 0;  // meaningful for kDelay
  explicit operator bool() const { return kind != FaultKind::kNone; }
};

/// Thrown for FaultKind::kCrashException. Deliberately *not* derived from
/// std::exception: it exercises the catch-everything hardening at
/// alternative boundaries, the way a foreign exception type would.
struct InjectedCrash {
  std::string point;
};

/// A fault kind plus the policy deciding which hits of the point fire.
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;

  enum class When { kAlways, kEveryNth, kProbability };
  When when = When::kAlways;
  std::uint64_t nth = 1;       // kEveryNth period
  std::uint64_t offset = 0;    // hits before this index never fire
  double probability = 0.0;    // kProbability, drawn from the point's stream
  VTime window_begin = 0;      // fires only while now ∈ [begin, end)
  VTime window_end = kVTimeMax;
  std::uint64_t max_fires = ~0ull;
  VDuration delay = 0;         // payload for kDelay

  static FaultSpec always(FaultKind k);
  /// Fires on hits offset, offset+n, offset+2n, ...
  static FaultSpec every_nth(FaultKind k, std::uint64_t n,
                             std::uint64_t offset = 0);
  /// Fires exactly once, on hit number `hit` (0-based).
  static FaultSpec once(FaultKind k, std::uint64_t hit = 0);
  /// Each hit fires independently with probability p (deterministic: drawn
  /// from the point's seed-derived stream).
  static FaultSpec with_probability(FaultKind k, double p);

  FaultSpec& between(VTime begin, VTime end);
  FaultSpec& limit(std::uint64_t fires);
  FaultSpec& delayed(VDuration d);
};

/// One entry of the injector's replayable fault schedule.
struct FiredFault {
  std::string point;
  std::uint64_t hit = 0;  // which invocation of the point fired
  FaultKind kind = FaultKind::kNone;
  VTime at = 0;           // the `now` passed to query()
};

/// Seeded registry of armed fault points. Thread-safe: the thread backend
/// queries points from concurrent alternative bodies.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0);

  /// Arms (or re-arms, resetting counters) a named point.
  void arm(const std::string& point, FaultSpec spec);
  void disarm(const std::string& point);

  /// Called by fault-point sites. `now` feeds the time-window policy: the
  /// event-queue clock at network points, the alternative's accounted work
  /// at body points. Unarmed points return kNone.
  FaultAction query(std::string_view point, VTime now = 0);

  std::uint64_t hits(std::string_view point) const;
  std::uint64_t fires(std::string_view point) const;
  std::uint64_t total_fires() const;

  /// The complete fired-fault schedule, in firing order.
  std::vector<FiredFault> log() const;

  /// The schedule rendered as one printable block ("seed=… fires=…" plus
  /// one line per fired fault) — what a failing fault-matrix test prints
  /// so the run can be replayed from its seed.
  std::string log_string() const;

  /// FNV-1a digest of the schedule: two runs injected identically iff their
  /// digests match. The replay handle for failing seeds.
  std::uint64_t schedule_digest() const;

  std::uint64_t seed() const { return seed_; }

 private:
  struct Point {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    Rng rng{0};
  };
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::mutex mu_;
  std::uint64_t seed_;
  std::unordered_map<std::string, Point, StringHash, std::equal_to<>> points_;
  std::vector<FiredFault> log_;
};

/// The ambient injector consulted by MW_FAULT_POINT, or nullptr (the
/// default: all faults disabled). Process-global, not thread-local, so
/// fault points inside worker threads of the thread backend see it.
FaultInjector* fault_injector();

/// RAII installation of an ambient injector; restores the previous one.
class FaultScope {
 public:
  explicit FaultScope(FaultInjector& injector);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultInjector* prev_;
};

/// Queries the ambient injector; kNone when none is installed.
FaultAction fault_point(std::string_view name, VTime now = 0);

/// Declares a named fault point at the call site; the optional second
/// argument is the clock fed to time-window triggers.
#define MW_FAULT_POINT(...) ::mw::fault_point(__VA_ARGS__)

}  // namespace mw
