#include "model/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace mw {

double performance_improvement(double r_mu, double r_o) {
  MW_CHECK(r_o >= 0.0);
  return r_mu / (1.0 + r_o);
}

double tau_mean(std::span<const double> times) {
  MW_CHECK(!times.empty());
  double sum = 0.0;
  for (double t : times) sum += t;
  return sum / static_cast<double>(times.size());
}

double tau_best(std::span<const double> times) {
  MW_CHECK(!times.empty());
  return *std::min_element(times.begin(), times.end());
}

double dispersion_ratio(std::span<const double> times) {
  const double best = tau_best(times);
  MW_CHECK(best > 0.0);
  return tau_mean(times) / best;
}

double overhead_ratio(double overhead, std::span<const double> times) {
  const double best = tau_best(times);
  MW_CHECK(best > 0.0);
  MW_CHECK(overhead >= 0.0);
  return overhead / best;
}

double measured_pi(std::span<const double> times, double overhead) {
  return tau_mean(times) / (tau_best(times) + overhead);
}

bool parallel_wins(std::span<const double> times, double overhead) {
  return measured_pi(times, overhead) > 1.0;
}

bool superlinear(std::span<const double> times, double overhead) {
  return measured_pi(times, overhead) > static_cast<double>(times.size());
}

std::vector<SeriesPoint> figure3_series(double r_o, double lo, double hi,
                                        int points) {
  MW_CHECK(points >= 2);
  std::vector<SeriesPoint> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / (points - 1);
    out.push_back({x, performance_improvement(x, r_o)});
  }
  return out;
}

std::vector<SeriesPoint> figure4_series(double r_mu, double lo, double hi,
                                        int points) {
  MW_CHECK(points >= 2);
  MW_CHECK(lo > 0.0 && hi > lo);
  std::vector<SeriesPoint> out;
  out.reserve(static_cast<std::size_t>(points));
  const double log_lo = std::log(lo), log_hi = std::log(hi);
  for (int i = 0; i < points; ++i) {
    const double x = std::exp(
        log_lo + (log_hi - log_lo) * static_cast<double>(i) / (points - 1));
    out.push_back({x, performance_improvement(r_mu, x)});
  }
  return out;
}

DomainStats domain_analysis(const std::vector<std::vector<double>>& times,
                            const std::vector<double>& overheads) {
  MW_CHECK(!times.empty());
  MW_CHECK(times.size() == overheads.size());
  DomainStats s;
  s.min_pi = std::numeric_limits<double>::infinity();
  s.max_pi = -std::numeric_limits<double>::infinity();
  std::size_t improved = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double pi = measured_pi(times[i], overheads[i]);
    s.mean_pi += pi;
    s.mean_r_mu += dispersion_ratio(times[i]);
    s.min_pi = std::min(s.min_pi, pi);
    s.max_pi = std::max(s.max_pi, pi);
    if (pi > 1.0) ++improved;
  }
  const auto n = static_cast<double>(times.size());
  s.mean_pi /= n;
  s.mean_r_mu /= n;
  s.fraction_improved = static_cast<double>(improved) / n;
  return s;
}

}  // namespace mw
