// The paper's performance analysis (§3.2–3.3).
//
// Given alternatives C_1..C_N with execution times τ(C_i, x) on input x:
//   τ(C_mean, x) = Σ τ(C_i, x) / N      — Scheme B, random selection;
//   τ(C_best, x) = min_i τ(C_i, x)      — Scheme C picks this, plus overhead.
//
// Parallel execution wins iff τ(C_best) + τ(overhead) < τ(C_mean), and the
// performance improvement is
//
//   PI = τ(C_mean) / (τ(C_best) + τ(overhead)) = [1/(1+R_o)] · R_μ
//
// where R_μ = τ(C_mean)/τ(C_best) captures dispersion and
// R_o = τ(overhead)/τ(C_best) captures overhead. Figures 3 and 4 plot PI
// against each ratio with the other held fixed.
#pragma once

#include <span>
#include <vector>

namespace mw {

/// PI as a function of the two ratios: the paper's re-expression
/// PI = R_μ / (1 + R_o).
double performance_improvement(double r_mu, double r_o);

/// τ(C_mean, x): arithmetic mean — the expected cost of choosing an
/// alternative uniformly at random (Scheme B).
double tau_mean(std::span<const double> times);

/// τ(C_best, x): the fastest alternative on this input.
double tau_best(std::span<const double> times);

/// R_μ for a set of alternative times.
double dispersion_ratio(std::span<const double> times);

/// R_o given measured overhead.
double overhead_ratio(double overhead, std::span<const double> times);

/// PI computed from first principles: mean / (best + overhead).
double measured_pi(std::span<const double> times, double overhead);

/// Parallel execution wins iff PI > 1.
bool parallel_wins(std::span<const double> times, double overhead);

/// The §3.3 superlinearity observation: N processors running N serial
/// algorithms beat an N-fold speedup of one algorithm when PI > N —
/// possible with sufficient variance and small enough overhead.
bool superlinear(std::span<const double> times, double overhead);

struct SeriesPoint {
  double x = 0.0;   // the swept ratio
  double pi = 0.0;  // resulting performance improvement
};

/// Figure 3: PI as a function of R_μ ∈ [lo, hi] with R_o fixed (paper uses
/// R_o = 0.5, R_μ ∈ [0, 5]). A straight line of slope 1/(1+R_o).
std::vector<SeriesPoint> figure3_series(double r_o = 0.5, double lo = 0.0,
                                        double hi = 5.0, int points = 26);

/// Figure 4: PI as a function of R_o, log-spaced over [lo, hi], with R_μ
/// fixed (paper uses R_μ = e, R_o ∈ [0.01, 1], log-log axes).
std::vector<SeriesPoint> figure4_series(double r_mu = 2.718281828459045,
                                        double lo = 0.01, double hi = 1.0,
                                        int points = 25);

/// Domain-level analysis (end of §3.3): evaluate PI across a whole input
/// domain. `times[i]` holds the alternatives' times on input i;
/// `overheads[i]` the block overhead on that input. "The best case is where
/// at each input where one or more algorithms perform badly, they have at
/// least [a] counterpart which performs well."
struct DomainStats {
  double mean_pi = 0.0;      // average PI over the domain
  double min_pi = 0.0;
  double max_pi = 0.0;
  double fraction_improved = 0.0;  // inputs with PI > 1
  double mean_r_mu = 0.0;
};
DomainStats domain_analysis(const std::vector<std::vector<double>>& times,
                            const std::vector<double>& overheads);

}  // namespace mw
