#include "dist/transport.hpp"

#include "fault/fault.hpp"
#include "trace/trace.hpp"

namespace mw {

const char* to_string(PeerState s) {
  switch (s) {
    case PeerState::kAlive: return "alive";
    case PeerState::kSuspect: return "suspect";
    case PeerState::kDead: return "dead";
  }
  return "?";
}

void PeerHealth::watch(NodeId peer, VTime now) {
  peers_[peer] = Entry{now, PeerState::kAlive};
}

void PeerHealth::forget(NodeId peer) { peers_.erase(peer); }

void PeerHealth::heard_from(NodeId peer, VTime now) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;  // only watched peers are tracked
  if (now > it->second.last_heard) it->second.last_heard = now;
}

PeerState PeerHealth::state(NodeId peer, VTime now) const {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return PeerState::kDead;  // unwatched = unknown
  const VDuration silence = now - it->second.last_heard;
  if (silence >= config_.dead_after) return PeerState::kDead;
  if (silence >= config_.suspect_after) return PeerState::kSuspect;
  return PeerState::kAlive;
}

std::vector<PeerHealth::Transition> PeerHealth::check(VTime now) {
  std::vector<Transition> out;
  for (auto& [peer, entry] : peers_) {
    const PeerState s = state(peer, now);
    if (s == entry.reported) continue;
    entry.reported = s;
    out.push_back(Transition{peer, s});
    if (s == PeerState::kSuspect) {
      MW_TRACE_EVENT(trace::EventKind::kNetPeerSuspect, kNoPid, kNoPid, peer,
                     0, now);
    } else if (s == PeerState::kDead) {
      MW_TRACE_EVENT(trace::EventKind::kNetPeerDead, kNoPid, kNoPid, peer, 0,
                     now);
    }
  }
  return out;
}

std::vector<NodeId> PeerHealth::watched() const {
  std::vector<NodeId> out;
  out.reserve(peers_.size());
  for (const auto& [peer, entry] : peers_) out.push_back(peer);
  return out;
}

FrameFaults query_frame_faults(NodeId from, NodeId to, VTime now,
                               const LinkModel* link) {
  FrameFaults f;
  if ((link && link->blocks(from, to)) ||
      MW_FAULT_POINT("net.partition", now)) {
    f.partitioned = true;
    return f;
  }
  if (MW_FAULT_POINT("net.drop", now)) f.drop = true;
  if (MW_FAULT_POINT("net.dup", now)) f.duplicate = true;
  if (const FaultAction d = MW_FAULT_POINT("net.delay", now)) f.delay = d.delay;
  return f;
}

}  // namespace mw
