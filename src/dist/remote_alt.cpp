#include "dist/remote_alt.hpp"

#include "util/check.hpp"

namespace mw {

DistributedRaceResult distributed_race(const RemoteForker& forker,
                                       const AddressSpace& parent_image,
                                       const std::vector<RemoteAltSpec>& specs,
                                       bool on_demand,
                                       double touch_fraction) {
  DistributedRaceResult out;
  if (specs.empty()) return out;

  // The reply is a small result message over the same link.
  const LinkModel link;  // forker's link is private; replies use defaults
  const VDuration reply = link.transfer_time(256);

  VDuration spawn_clock = 0;
  VDuration best = kVTimeMax;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RforkResult r = on_demand
                              ? forker.on_demand(parent_image, touch_fraction)
                              : forker.full_copy(parent_image);
    // Serial spawn: the parent must finish shipping child i before child
    // i+1 (checkpoint creation is parent CPU work). The child starts when
    // its own transfer completes.
    spawn_clock += r.checkpoint_cost;
    const VDuration child_start =
        spawn_clock + (r.total_elapsed - r.checkpoint_cost);
    out.bytes_shipped += r.bytes_shipped;
    if (!specs[i].success) continue;
    const VDuration finish = child_start + specs[i].duration + reply;
    if (finish < best) {
      best = finish;
      out.winner = i;
      out.failed = false;
    }
  }
  out.spawn_total = spawn_clock;
  out.elapsed = out.failed ? kVTimeMax : best;
  return out;
}

VDuration local_race(std::size_t processors, VDuration local_fork_cost,
                     const std::vector<RemoteAltSpec>& specs) {
  MW_CHECK(processors > 0);
  std::vector<VirtualTask> tasks;
  tasks.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    tasks.push_back(VirtualTask{
        static_cast<Pid>(i + 1),
        local_fork_cost * static_cast<VDuration>(i + 1),  // serial forks
        specs[i].duration, specs[i].success});
  }
  const ScheduleOutcome sched = ps_schedule(processors, tasks);
  return sched.winner_index.has_value() ? sched.winner_finish : kVTimeMax;
}

}  // namespace mw
