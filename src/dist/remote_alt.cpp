#include "dist/remote_alt.hpp"

#include "fault/fault.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace mw {

DistributedRaceResult distributed_race(const RemoteForker& forker,
                                       const AddressSpace& parent_image,
                                       const std::vector<RemoteAltSpec>& specs,
                                       bool on_demand,
                                       double touch_fraction) {
  DistributedRaceResult out;
  if (specs.empty()) return out;

  // The reply is a small result message over the same link.
  const LinkModel link;  // forker's link is private; replies use defaults
  const VDuration reply = link.transfer_time(256);

  VDuration spawn_clock = 0;
  VDuration best = kVTimeMax;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RforkResult r = on_demand
                              ? forker.on_demand(parent_image, touch_fraction)
                              : forker.full_copy(parent_image);
    // Serial spawn: the parent must finish shipping child i before child
    // i+1 (checkpoint creation is parent CPU work). The child starts when
    // its own transfer completes.
    spawn_clock += r.checkpoint_cost;
    const VDuration child_start =
        spawn_clock + (r.total_elapsed - r.checkpoint_cost);
    out.bytes_shipped += r.bytes_shipped;
    if (!specs[i].success) continue;
    const VDuration finish = child_start + specs[i].duration + reply;
    if (finish < best) {
      best = finish;
      out.winner = i;
      out.failed = false;
    }
  }
  out.spawn_total = spawn_clock;
  out.elapsed = out.failed ? kVTimeMax : best;
  return out;
}

DistributedRaceResult distributed_race(const RemoteForker& forker,
                                       const AddressSpace& parent_image,
                                       const std::vector<RemoteAltSpec>& specs,
                                       const DistRaceOptions& opts) {
  DistributedRaceResult out;
  if (specs.empty()) return out;

  const LinkModel& link = forker.link();
  const bool lossy = link.loss_probability > 0.0 || link.jitter > 0;
  Rng root(opts.seed);

  // Failover accounting (checkpoint_interval > 0): the sizes of the images
  // children periodically ship to the file server. A delta serializes the
  // header plus `checkpoint_pages` page records; the base image is the
  // child's initial full checkpoint, which the server already holds.
  const bool failover_on = opts.checkpoint_interval > 0;
  std::size_t full_bytes = 0, delta_bytes = 0;
  VDuration ship_overhead = 0;  // child-side cost of producing+shipping one
  if (failover_on) {
    const CheckpointImage probe = take_checkpoint(parent_image, Registers{});
    const std::size_t page_rec = parent_image.page_size() + 8;
    full_bytes = probe.size_bytes();
    delta_bytes = full_bytes - probe.resident_pages * page_rec +
                  opts.checkpoint_pages * page_rec;
    ship_overhead =
        forker.cost().checkpoint_per_page *
            static_cast<VDuration>(opts.checkpoint_pages) +
        link.transfer_time(delta_bytes);
  }

  VDuration spawn_clock = 0;
  VDuration best = kVTimeMax;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Rng child_rng = root.split(i + 1);
    RforkResult r;
    if (opts.on_demand) {
      r = forker.on_demand(parent_image, opts.touch_fraction);
    } else if (lossy) {
      r = forker.full_copy_unreliable(parent_image, child_rng, opts.retry);
    } else {
      r = forker.full_copy(parent_image);
    }
    bool crash_pending = static_cast<bool>(MW_FAULT_POINT("remote.node_crash"));
    if (crash_pending && !failover_on) r.ok = false;

    spawn_clock += r.checkpoint_cost;
    const VDuration child_start =
        spawn_clock + (r.total_elapsed - r.checkpoint_cost);
    out.bytes_shipped += r.bytes_shipped;
    out.retransmissions += r.retransmissions;

    // Supervised child run: while a crash is pending, the node dies partway
    // through the remaining work; if checkpoints were shipped ahead, the
    // parent re-dispatches the newest chain to a surviving node and only the
    // tail since the last image is redone.
    VDuration remaining = specs[i].duration;
    VDuration resume_at = child_start;
    bool alive = r.ok;
    std::size_t used_failovers = 0;
    while (alive && crash_pending) {
      // Where in the remaining run the node dies (deterministic per seed).
      const VDuration crash_after = static_cast<VDuration>(
          child_rng.next_double() * static_cast<double>(remaining));
      const std::size_t shipped = static_cast<std::size_t>(
          crash_after / opts.checkpoint_interval);
      const VDuration preserved =
          static_cast<VDuration>(shipped) * opts.checkpoint_interval;
      out.bytes_shipped += shipped * delta_bytes;
      const VTime crash_at = resume_at + crash_after +
                             static_cast<VDuration>(shipped) * ship_overhead;
      if (specs.size() < 2 || used_failovers >= opts.max_failovers) {
        alive = false;  // no surviving node / budget spent: demote
        break;
      }
      ++used_failovers;
      ++out.restarts;
      // The replacement node pulls the chain (base + shipped deltas) from
      // the file server; detection costs one retry timeout.
      const std::size_t chain_bytes = full_bytes + shipped * delta_bytes;
      VDuration redispatch;
      if (lossy) {
        const ReliableTransfer t =
            reliable_transfer(link, chain_bytes, child_rng, opts.retry);
        out.retransmissions += t.attempts - 1;
        if (!t.ok) {
          alive = false;  // the chain never reached the replacement node
          break;
        }
        redispatch = t.elapsed;
      } else {
        redispatch = link.transfer_time(chain_bytes);
      }
      ++out.failovers;
      MW_TRACE_EVENT(trace::EventKind::kDistFailover, kNoPid, kNoPid, i,
                     chain_bytes, crash_at);
      out.work_preserved += preserved;
      out.work_preserved_bytes += chain_bytes;
      out.bytes_shipped += chain_bytes;
      const std::size_t chain_pages =
          r.pages_shipped + shipped * opts.checkpoint_pages;
      const VDuration restore =
          forker.cost().restore_base +
          forker.cost().restore_per_page * static_cast<VDuration>(chain_pages);
      remaining -= preserved;
      resume_at = crash_at + opts.retry.rto_for(0) + redispatch + restore;
      crash_pending =
          static_cast<bool>(MW_FAULT_POINT("remote.node_crash", crash_at));
    }
    if (!alive) {
      // Demoted to Failed: the parent learns the node is unreachable and
      // stops waiting on it — it cannot win, and it cannot hang the block.
      ++out.remotes_failed;
      MW_TRACE_EVENT(trace::EventKind::kDistDemote, kNoPid, kNoPid, i);
      continue;
    }
    // Steady-state checkpoint shipping over the rest of the run.
    VDuration ckpt_drag = 0;
    if (failover_on) {
      const std::size_t shipped_rest = static_cast<std::size_t>(
          remaining / opts.checkpoint_interval);
      ckpt_drag = static_cast<VDuration>(shipped_rest) * ship_overhead;
      out.bytes_shipped += shipped_rest * delta_bytes;
    }
    if (!specs[i].success) continue;

    VDuration reply = link.transfer_time(256);
    if (lossy) {
      const ReliableTransfer t =
          reliable_transfer(link, 256, child_rng, opts.retry);
      out.retransmissions += t.attempts - 1;
      if (!t.ok) {
        ++out.remotes_failed;  // its result can never reach the parent
        MW_TRACE_EVENT(trace::EventKind::kDistDemote, kNoPid, kNoPid, i);
        continue;
      }
      reply = t.elapsed;
    }
    const VDuration finish = resume_at + remaining + ckpt_drag + reply;
    if (finish < best) {
      best = finish;
      out.winner = i;
      out.failed = false;
    }
  }
  out.spawn_total = spawn_clock;
  out.elapsed = out.failed ? kVTimeMax : best;

  if (out.failed && opts.local_fallback) {
    // Every remote was demoted or failed: degrade to the local timeshared
    // race, charging the time already sunk into the remote attempts.
    std::vector<VirtualTask> tasks;
    tasks.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      tasks.push_back(VirtualTask{
          static_cast<Pid>(i + 1),
          opts.local_fork_cost * static_cast<VDuration>(i + 1),
          specs[i].duration, specs[i].success});
    }
    const ScheduleOutcome sched = ps_schedule(opts.local_processors, tasks);
    if (sched.winner_index.has_value()) {
      out.failed = false;
      out.used_local_fallback = true;
      out.winner = *sched.winner_index;
      out.elapsed = spawn_clock + sched.winner_finish;
    }
  }
  return out;
}

VDuration local_race(std::size_t processors, VDuration local_fork_cost,
                     const std::vector<RemoteAltSpec>& specs) {
  MW_CHECK(processors > 0);
  std::vector<VirtualTask> tasks;
  tasks.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    tasks.push_back(VirtualTask{
        static_cast<Pid>(i + 1),
        local_fork_cost * static_cast<VDuration>(i + 1),  // serial forks
        specs[i].duration, specs[i].success});
  }
  const ScheduleOutcome sched = ps_schedule(processors, tasks);
  return sched.winner_index.has_value() ? sched.winner_finish : kVTimeMax;
}

}  // namespace mw
