#include "dist/remote_alt.hpp"

#include "fault/fault.hpp"
#include "util/check.hpp"

namespace mw {

DistributedRaceResult distributed_race(const RemoteForker& forker,
                                       const AddressSpace& parent_image,
                                       const std::vector<RemoteAltSpec>& specs,
                                       bool on_demand,
                                       double touch_fraction) {
  DistributedRaceResult out;
  if (specs.empty()) return out;

  // The reply is a small result message over the same link.
  const LinkModel link;  // forker's link is private; replies use defaults
  const VDuration reply = link.transfer_time(256);

  VDuration spawn_clock = 0;
  VDuration best = kVTimeMax;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RforkResult r = on_demand
                              ? forker.on_demand(parent_image, touch_fraction)
                              : forker.full_copy(parent_image);
    // Serial spawn: the parent must finish shipping child i before child
    // i+1 (checkpoint creation is parent CPU work). The child starts when
    // its own transfer completes.
    spawn_clock += r.checkpoint_cost;
    const VDuration child_start =
        spawn_clock + (r.total_elapsed - r.checkpoint_cost);
    out.bytes_shipped += r.bytes_shipped;
    if (!specs[i].success) continue;
    const VDuration finish = child_start + specs[i].duration + reply;
    if (finish < best) {
      best = finish;
      out.winner = i;
      out.failed = false;
    }
  }
  out.spawn_total = spawn_clock;
  out.elapsed = out.failed ? kVTimeMax : best;
  return out;
}

DistributedRaceResult distributed_race(const RemoteForker& forker,
                                       const AddressSpace& parent_image,
                                       const std::vector<RemoteAltSpec>& specs,
                                       const DistRaceOptions& opts) {
  DistributedRaceResult out;
  if (specs.empty()) return out;

  const LinkModel& link = forker.link();
  const bool lossy = link.loss_probability > 0.0 || link.jitter > 0;
  Rng root(opts.seed);

  VDuration spawn_clock = 0;
  VDuration best = kVTimeMax;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Rng child_rng = root.split(i + 1);
    RforkResult r;
    if (opts.on_demand) {
      r = forker.on_demand(parent_image, opts.touch_fraction);
    } else if (lossy) {
      r = forker.full_copy_unreliable(parent_image, child_rng, opts.retry);
    } else {
      r = forker.full_copy(parent_image);
    }
    if (MW_FAULT_POINT("remote.node_crash")) r.ok = false;

    spawn_clock += r.checkpoint_cost;
    const VDuration child_start =
        spawn_clock + (r.total_elapsed - r.checkpoint_cost);
    out.bytes_shipped += r.bytes_shipped;
    out.retransmissions += r.retransmissions;
    if (!r.ok) {
      // Demoted to Failed: the parent learns the node is unreachable and
      // stops waiting on it — it cannot win, and it cannot hang the block.
      ++out.remotes_failed;
      continue;
    }
    if (!specs[i].success) continue;

    VDuration reply = link.transfer_time(256);
    if (lossy) {
      const ReliableTransfer t =
          reliable_transfer(link, 256, child_rng, opts.retry);
      out.retransmissions += t.attempts - 1;
      if (!t.ok) {
        ++out.remotes_failed;  // its result can never reach the parent
        continue;
      }
      reply = t.elapsed;
    }
    const VDuration finish = child_start + specs[i].duration + reply;
    if (finish < best) {
      best = finish;
      out.winner = i;
      out.failed = false;
    }
  }
  out.spawn_total = spawn_clock;
  out.elapsed = out.failed ? kVTimeMax : best;

  if (out.failed && opts.local_fallback) {
    // Every remote was demoted or failed: degrade to the local timeshared
    // race, charging the time already sunk into the remote attempts.
    std::vector<VirtualTask> tasks;
    tasks.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      tasks.push_back(VirtualTask{
          static_cast<Pid>(i + 1),
          opts.local_fork_cost * static_cast<VDuration>(i + 1),
          specs[i].duration, specs[i].success});
    }
    const ScheduleOutcome sched = ps_schedule(opts.local_processors, tasks);
    if (sched.winner_index.has_value()) {
      out.failed = false;
      out.used_local_fallback = true;
      out.winner = *sched.winner_index;
      out.elapsed = spawn_clock + sched.winner_finish;
    }
  }
  return out;
}

VDuration local_race(std::size_t processors, VDuration local_fork_cost,
                     const std::vector<RemoteAltSpec>& specs) {
  MW_CHECK(processors > 0);
  std::vector<VirtualTask> tasks;
  tasks.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    tasks.push_back(VirtualTask{
        static_cast<Pid>(i + 1),
        local_fork_cost * static_cast<VDuration>(i + 1),  // serial forks
        specs[i].duration, specs[i].success});
  }
  const ScheduleOutcome sched = ps_schedule(processors, tasks);
  return sched.winner_index.has_value() ? sched.winner_finish : kVTimeMax;
}

}  // namespace mw
