#include "dist/checkpoint.hpp"

#include <cstring>
#include <vector>

namespace mw {

namespace {

constexpr std::uint64_t kImageMagic = 0x4d57434b'50543032ull;  // "MWCKPT02"
constexpr std::uint64_t kKindFull = 0;
constexpr std::uint64_t kKindDelta = 1;
/// Bytes before the checksummed region: magic + the checksum field itself.
constexpr std::size_t kChecksumOffset = 8;
constexpr std::size_t kPayloadOffset = 16;

std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t payload_checksum(const Bytes& blob) {
  return fnv1a(std::span<const std::uint8_t>(blob.data() + kPayloadOffset,
                                             blob.size() - kPayloadOffset));
}

void put_u64_at(Bytes& blob, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    blob[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
}

void put_header_tail(ByteWriter& w, const AddressSpace& space,
                     const Registers& regs) {
  w.put_u64(regs.pc);
  w.put_u64(regs.sp);
  for (std::uint64_t g : regs.gp) w.put_u64(g);
  // Segment directory: naming state is part of the process image too.
  w.put_u64(space.segments().size());
  for (const Segment& s : space.segments()) {
    w.put_string(s.name);
    w.put_u64(s.base);
    w.put_u64(s.size);
  }
  w.put_u64(space.segment_watermark());
}

void put_page(ByteWriter& w, const AddressSpace& space, std::size_t i) {
  const PageTable& table = space.table();
  w.put_u64(i);
  const Page* p = table.peek(i);
  if (p) {
    w.put_bytes(std::span<const std::uint8_t>(p->data(), p->size()));
  } else {
    // A slot that diverged back to absent serializes as an explicit zero
    // page: restoring it must overwrite whatever the base image held.
    const std::vector<std::uint8_t> zeros(table.page_size(), 0);
    w.put_bytes(std::span<const std::uint8_t>(zeros.data(), zeros.size()));
  }
}

CheckpointImage seal(ByteWriter&& w, const CheckpointImage& meta) {
  CheckpointImage img = meta;
  img.blob = w.take();
  img.checksum = payload_checksum(img.blob);
  put_u64_at(img.blob, kChecksumOffset, img.checksum);
  return img;
}

/// Everything parsed out of one image's header (pages not yet consumed).
struct ParsedHeader {
  std::uint64_t kind = 0;
  std::uint64_t page_size = 0;
  std::uint64_t num_pages = 0;
  std::uint64_t base_checksum = 0;
  std::uint64_t checksum = 0;
  Registers regs;
  std::vector<Segment> segments;
  std::uint64_t watermark = 0;
};

bool read_header(ByteReader& r, const CheckpointImage& image,
                 ParsedHeader& h) {
  if (image.blob.size() < kPayloadOffset) return false;
  if (r.get_u64() != kImageMagic) return false;
  h.checksum = r.get_u64();
  if (h.checksum != payload_checksum(image.blob)) return false;
  h.kind = r.get_u64();
  if (h.kind != kKindFull && h.kind != kKindDelta) return false;
  h.page_size = r.get_u64();
  h.num_pages = r.get_u64();
  h.base_checksum = r.get_u64();
  if (!r.ok() || h.page_size == 0 || h.num_pages == 0) return false;

  h.regs.pc = r.get_u64();
  h.regs.sp = r.get_u64();
  for (auto& g : h.regs.gp) g = r.get_u64();
  h.regs.ret = Registers::kRestored;

  const std::uint64_t space_bytes = h.page_size * h.num_pages;
  const std::uint64_t nsegs = r.get_u64();
  if (!r.ok() || nsegs > h.num_pages) return false;
  h.segments.reserve(nsegs);
  for (std::uint64_t k = 0; k < nsegs; ++k) {
    Segment s;
    s.name = r.get_string();
    s.base = r.get_u64();
    s.size = r.get_u64();
    if (!r.ok() || s.base > space_bytes || s.size > space_bytes - s.base)
      return false;
    h.segments.push_back(std::move(s));
  }
  h.watermark = r.get_u64();
  return r.ok() && h.watermark <= space_bytes;
}

/// Applies the page records onto `space`, enforcing strictly ascending
/// in-bounds indices — duplicate or out-of-order records are forgeries
/// (take_checkpoint never emits them), not a last-write-wins ambiguity.
bool apply_pages(ByteReader& r, AddressSpace& space,
                 const ParsedHeader& h) {
  const std::uint64_t count = r.get_u64();
  if (!r.ok() || count > h.num_pages) return false;
  std::vector<std::uint8_t> buf(h.page_size);
  bool first = true;
  std::uint64_t prev = 0;
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::uint64_t idx = r.get_u64();
    Bytes data = r.get_blob(h.page_size);
    if (!r.ok() || idx >= h.num_pages) return false;
    if (!first && idx <= prev) return false;  // duplicate or out of order
    first = false;
    prev = idx;
    std::memcpy(buf.data(), data.data(), h.page_size);
    space.write(idx * h.page_size, buf);
  }
  return r.ok() && r.at_end();
}

}  // namespace

CheckpointImage take_checkpoint(const AddressSpace& space,
                                const Registers& regs) {
  const PageTable& table = space.table();
  ByteWriter w;
  w.put_u64(kImageMagic);
  w.put_u64(0);  // checksum, sealed below
  w.put_u64(kKindFull);
  w.put_u64(table.page_size());
  w.put_u64(table.num_pages());
  w.put_u64(0);  // base_checksum: full images stand alone
  put_header_tail(w, space, regs);

  // Data segments: resident pages only, in ascending order.
  std::uint64_t resident = 0;
  for (std::size_t i = 0; i < table.num_pages(); ++i)
    if (table.peek(i)) ++resident;
  w.put_u64(resident);
  for (std::size_t i = 0; i < table.num_pages(); ++i)
    if (table.peek(i)) put_page(w, space, i);

  CheckpointImage meta;
  meta.resident_pages = resident;
  meta.page_size = table.page_size();
  meta.total_pages = table.num_pages();
  return seal(std::move(w), meta);
}

CheckpointImage take_delta_checkpoint(const AddressSpace& space,
                                      const Registers& regs,
                                      const AddressSpace& base_space,
                                      const CheckpointImage& base) {
  const PageTable& table = space.table();
  ByteWriter w;
  w.put_u64(kImageMagic);
  w.put_u64(0);  // checksum, sealed below
  w.put_u64(kKindDelta);
  w.put_u64(table.page_size());
  w.put_u64(table.num_pages());
  w.put_u64(base.checksum);
  put_header_tail(w, space, regs);

  // Only the divergence from the base snapshot ships: the PageMap diff
  // prunes shared subtrees, so this is O(write set), not O(resident set).
  const std::vector<std::size_t> changed =
      table.diff(base_space.table());  // ascending by construction
  w.put_u64(changed.size());
  for (std::size_t i : changed) put_page(w, space, i);

  CheckpointImage meta;
  meta.resident_pages = changed.size();
  meta.page_size = table.page_size();
  meta.total_pages = table.num_pages();
  meta.delta = true;
  meta.base_checksum = base.checksum;
  return seal(std::move(w), meta);
}

RestoreResult restore_checkpoint(const CheckpointImage& image) {
  const CheckpointImage* one[] = {&image};
  return restore_chain(std::span<const CheckpointImage* const>(one));
}

RestoreResult restore_chain(std::span<const CheckpointImage* const> chain) {
  RestoreResult out{AddressSpace(1, 1), Registers{}, false};
  if (chain.empty()) return out;

  // Validate headers and the chain linkage before touching any pages.
  std::vector<ParsedHeader> headers(chain.size());
  std::vector<ByteReader> readers;
  readers.reserve(chain.size());
  for (std::size_t k = 0; k < chain.size(); ++k) {
    readers.emplace_back(chain[k]->blob);
    if (!read_header(readers[k], *chain[k], headers[k])) return out;
    const ParsedHeader& h = headers[k];
    if (k == 0) {
      if (h.kind != kKindFull) return out;  // a delta cannot stand alone
    } else {
      if (h.kind != kKindDelta) return out;
      if (h.base_checksum != headers[k - 1].checksum) return out;
      if (h.page_size != headers[0].page_size ||
          h.num_pages != headers[0].num_pages)
        return out;
    }
  }

  AddressSpace space(headers[0].page_size, headers[0].num_pages);
  for (std::size_t k = 0; k < chain.size(); ++k)
    if (!apply_pages(readers[k], space, headers[k])) return out;

  const ParsedHeader& newest = headers.back();
  space.set_segments(newest.segments, newest.watermark);
  out.space = std::move(space);
  out.regs = newest.regs;
  out.ok = true;
  return out;
}

RestoreResult restore_chain(const std::vector<CheckpointImage>& chain) {
  std::vector<const CheckpointImage*> ptrs;
  ptrs.reserve(chain.size());
  for (const CheckpointImage& img : chain) ptrs.push_back(&img);
  return restore_chain(std::span<const CheckpointImage* const>(ptrs));
}

bool parse_checkpoint_blob(Bytes blob, CheckpointImage& out) {
  CheckpointImage img;
  img.blob = std::move(blob);
  ByteReader r(img.blob);
  ParsedHeader h;
  if (!read_header(r, img, h)) return false;
  // Page records are not replayed here (restore does that); only the
  // record *count* is needed to rebuild resident_pages.
  const std::uint64_t count = r.get_u64();
  if (!r.ok() || count > h.num_pages) return false;
  img.resident_pages = count;
  img.page_size = h.page_size;
  img.total_pages = h.num_pages;
  img.delta = h.kind == kKindDelta;
  img.checksum = h.checksum;
  img.base_checksum = h.base_checksum;
  out = std::move(img);
  return true;
}

void reseal_checkpoint(CheckpointImage& image) {
  if (image.blob.size() < kPayloadOffset) return;
  image.checksum = payload_checksum(image.blob);
  put_u64_at(image.blob, kChecksumOffset, image.checksum);
}

}  // namespace mw
