#include "dist/checkpoint.hpp"

#include <cstring>

namespace mw {

namespace {
constexpr std::uint64_t kImageMagic = 0x4d57434b'50543031ull;  // "MWCKPT01"
}

CheckpointImage take_checkpoint(const AddressSpace& space,
                                const Registers& regs) {
  const PageTable& table = space.table();
  ByteWriter w;
  w.put_u64(kImageMagic);
  w.put_u64(table.page_size());
  w.put_u64(table.num_pages());
  // Register file ("the bootstrapping routine restores the registers").
  w.put_u64(regs.pc);
  w.put_u64(regs.sp);
  for (std::uint64_t g : regs.gp) w.put_u64(g);

  // Data segments: resident pages only.
  std::uint64_t resident = 0;
  for (std::size_t i = 0; i < table.num_pages(); ++i)
    if (table.peek(i)) ++resident;
  w.put_u64(resident);
  for (std::size_t i = 0; i < table.num_pages(); ++i) {
    const Page* p = table.peek(i);
    if (!p) continue;
    w.put_u64(i);
    w.put_bytes(std::span<const std::uint8_t>(p->data(), p->size()));
  }

  CheckpointImage img;
  img.blob = w.take();
  img.resident_pages = resident;
  img.page_size = table.page_size();
  img.total_pages = table.num_pages();
  return img;
}

RestoreResult restore_checkpoint(const CheckpointImage& image) {
  ByteReader r(image.blob);
  RestoreResult out{AddressSpace(1, 1), Registers{}, false};
  if (r.get_u64() != kImageMagic) return out;
  const std::uint64_t page_size = r.get_u64();
  const std::uint64_t num_pages = r.get_u64();
  if (!r.ok() || page_size == 0 || num_pages == 0) return out;

  Registers regs;
  regs.pc = r.get_u64();
  regs.sp = r.get_u64();
  for (auto& g : regs.gp) g = r.get_u64();
  regs.ret = Registers::kRestored;

  AddressSpace space(page_size, num_pages);
  const std::uint64_t resident = r.get_u64();
  std::vector<std::uint8_t> buf(page_size);
  for (std::uint64_t k = 0; k < resident; ++k) {
    const std::uint64_t idx = r.get_u64();
    Bytes data = r.get_blob(page_size);
    if (!r.ok() || idx >= num_pages) return out;
    std::memcpy(buf.data(), data.data(), page_size);
    space.write(idx * page_size, buf);
  }
  if (!r.ok() || !r.at_end()) return out;

  out.space = std::move(space);
  out.regs = regs;
  out.ok = true;
  return out;
}

}  // namespace mw
