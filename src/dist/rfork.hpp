// Remote fork over the simulated network, after Smith & Ioannidis [19].
//
// Two strategies:
//  * full_copy — the paper's implementation: take a checkpoint (the major
//    cost, done without OS modification), ship it through the network file
//    system, restore remotely. Calibrated so a 70 KB process takes a bit
//    under a second of simulated time, ≈1.3 s through the NFS-based
//    remote-execution protocol — the §3.4 numbers.
//  * on_demand — the "more sophisticated migration schemes using on-demand
//    state management" the paper cites [23]: ship only the control block
//    and page map; pages fault over the network on first remote touch.
//    Start latency is tiny; run-time cost depends on the touched fraction
//    (locality makes this small for real programs).
#pragma once

#include <cstddef>

#include "dist/checkpoint.hpp"
#include "dist/net_sim.hpp"
#include "dist/reliable.hpp"
#include "pagestore/address_space.hpp"
#include "util/rng.hpp"
#include "util/vtime.hpp"

namespace mw {

/// Host-side processing costs, distinct from network costs.
struct DistCost {
  // Checkpoint creation ("the major cost"): dump every resident page to an
  // executable file.
  VDuration checkpoint_base = vt_ms(100);
  VDuration checkpoint_per_page = vt_ms(35);  // 4K pages
  // Bootstrapping a restored image.
  VDuration restore_base = vt_ms(50);
  VDuration restore_per_page = vt_ms(5);
  // Servicing one remote page fault (request + handler, excluding network).
  VDuration remote_fault_service = vt_ms(2);
};

struct RforkResult {
  /// Simulated time until the remote child is running.
  VDuration start_elapsed = 0;
  /// start_elapsed plus the expected run-time page-fetch cost (on-demand
  /// only; equals start_elapsed for full copy).
  VDuration total_elapsed = 0;
  std::size_t bytes_shipped = 0;
  std::size_t pages_shipped = 0;
  VDuration checkpoint_cost = 0;
  VDuration transfer_cost = 0;
  VDuration restore_cost = 0;
  VDuration fault_cost = 0;
  /// Unreliable path only: false when a protocol message exhausted its
  /// retries or the remote node crashed — the rfork did not complete, and
  /// the elapsed fields count the time *wasted* learning that.
  bool ok = true;
  std::size_t retransmissions = 0;
};

class RemoteForker {
 public:
  RemoteForker(LinkModel link, DistCost cost) : link_(link), cost_(cost) {}

  /// Checkpoint/ship/restore through the NFS-style protocol: the image is
  /// written to the file server, a small exec request goes to the remote
  /// host, which reads the image back from the server and restores it.
  RforkResult full_copy(const AddressSpace& src) const;

  /// On-demand migration: ship the control block + page map now; fetch
  /// `touch_fraction` of the resident pages across the network as the
  /// remote child references them.
  RforkResult on_demand(const AddressSpace& src, double touch_fraction) const;

  /// full_copy over an unreliable link: every protocol message goes through
  /// the ack/retransmit protocol (loss drawn from `rng` per the link's
  /// loss_probability). A message whose retries exhaust — or a fired
  /// MW_FAULT_POINT("rfork.transfer") of kind kNodeCrash /
  /// kFailAlternative — marks the result failed instead of hanging.
  RforkResult full_copy_unreliable(const AddressSpace& src, Rng& rng,
                                   const RetryPolicy& policy = {}) const;

  const LinkModel& link() const { return link_; }
  const DistCost& cost() const { return cost_; }

 private:
  LinkModel link_;
  DistCost cost_;
};

}  // namespace mw
