// Deterministic network simulator for the distributed case (§3.1: "in the
// distributed case we must actually copy state for a remote child...
// latency will still restrain distributed performance").
//
// The link model is calibrated to the paper's era: ~10 Mb/s Ethernet
// (≈1 MB/s effective), millisecond-scale latency, per-message protocol
// processing cost. On top of the reliable base it models an *unreliable*
// network — loss, duplication, jitter — either statistically (seeded
// probabilities on the link) or surgically (armed fault points "net.send").
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/des.hpp"
#include "util/rng.hpp"
#include "util/vtime.hpp"

namespace mw {

using NodeId = std::uint32_t;

struct LinkModel {
  VDuration latency = vt_ms(5);            // one-way propagation + switching
  double bandwidth_bytes_per_sec = 1.0e6;  // ≈10 Mb/s effective
  VDuration per_message_overhead = vt_ms(2);  // protocol processing per msg

  // Unreliable-network knobs; all off by default (a perfect link).
  double loss_probability = 0.0;       // per message
  double duplicate_probability = 0.0;  // per delivered message
  VDuration jitter = 0;                // uniform extra delay in [0, jitter]

  /// Partitioned (directed) links: a message whose (from, to) pair is
  /// blocked is swallowed before any loss/duplication/jitter draw, so
  /// arming or healing a partition never perturbs the seeded fault
  /// schedule of the surviving links. Symmetric partitions block both
  /// directions; blocking one direction models the asymmetric case (A can
  /// reach B but B's replies vanish — the split-brain the health tracker
  /// must survive).
  std::vector<std::pair<NodeId, NodeId>> blocked;

  /// Blocks from -> to only (asymmetric partition).
  void block(NodeId from, NodeId to);
  void unblock(NodeId from, NodeId to);
  /// Blocks both directions between a and b (symmetric partition).
  void partition(NodeId a, NodeId b);
  void heal(NodeId a, NodeId b);
  void heal_all() { blocked.clear(); }
  bool blocks(NodeId from, NodeId to) const;

  /// One-way time to move `bytes` as a single message. Serialization is
  /// rounded to the nearest tick (truncation would bill fractional-
  /// microsecond messages as free).
  VDuration transfer_time(std::size_t bytes) const {
    const double serialization =
        static_cast<double>(bytes) / bandwidth_bytes_per_sec * 1e6;
    return latency + per_message_overhead +
           static_cast<VDuration>(std::llround(serialization));
  }
};

/// Point-to-point message delivery on top of an EventQueue. On a perfect
/// link, messages on the same (from, to) pair stay FIFO because transfer
/// time is deterministic and the queue breaks ties by insertion order; with
/// jitter, reordering is possible (that is the point — the reliable layer
/// above must cope).
///
/// Loss/duplication/jitter decisions are drawn from a seeded stream in a
/// fixed per-send order, so a given (seed, send sequence) replays exactly.
/// The fault point "net.send" (queried with the queue clock) can force a
/// drop (kDropMessage/kNodeCrash), a duplicate (kDuplicateMessage), or an
/// extra delay (kDelay) on specific messages. The transport-level points
/// "net.drop" / "net.dup" / "net.delay" / "net.partition" apply here too,
/// so a fault matrix written against the socket backend injects the same
/// schedule into the simulated one. Partition checks (the link's blocked
/// pairs, then "net.partition") run before any stochastic draw: healing a
/// partition never shifts the loss/jitter stream of other links.
class NetSim {
 public:
  NetSim(EventQueue& queue, LinkModel link, std::uint64_t seed = 0)
      : queue_(queue), link_(link), rng_(Rng(seed).split(0x6e657473696dull)) {}

  const LinkModel& link() const { return link_; }
  /// Mutable access for partition control mid-run (SimTransport's
  /// set_link_blocked); the stochastic knobs should not be retuned after
  /// traffic starts if replayability matters.
  LinkModel& mutable_link() { return link_; }
  EventQueue& queue() { return queue_; }

  /// Schedules `on_delivered` after the link-model transfer time — zero,
  /// one, or two times depending on loss/duplication.
  void send(NodeId from, NodeId to, std::size_t bytes,
            std::function<void()> on_delivered);

  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_; }
  std::uint64_t messages_dropped() const { return dropped_; }
  std::uint64_t messages_duplicated() const { return duplicated_; }
  /// Messages swallowed by a partition (blocked link or "net.partition");
  /// not counted in messages_dropped.
  std::uint64_t messages_partitioned() const { return partitioned_; }
  /// Deliveries actually scheduled (includes duplicate copies).
  std::uint64_t messages_delivered() const { return delivered_; }

 private:
  EventQueue& queue_;
  LinkModel link_;
  Rng rng_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t partitioned_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace mw
