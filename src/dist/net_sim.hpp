// Deterministic network simulator for the distributed case (§3.1: "in the
// distributed case we must actually copy state for a remote child...
// latency will still restrain distributed performance").
//
// The link model is calibrated to the paper's era: ~10 Mb/s Ethernet
// (≈1 MB/s effective), millisecond-scale latency, per-message protocol
// processing cost.
#pragma once

#include <cstdint>
#include <functional>

#include "util/des.hpp"
#include "util/vtime.hpp"

namespace mw {

using NodeId = std::uint32_t;

struct LinkModel {
  VDuration latency = vt_ms(5);            // one-way propagation + switching
  double bandwidth_bytes_per_sec = 1.0e6;  // ≈10 Mb/s effective
  VDuration per_message_overhead = vt_ms(2);  // protocol processing per msg

  /// One-way time to move `bytes` as a single message.
  VDuration transfer_time(std::size_t bytes) const {
    const double serialization =
        static_cast<double>(bytes) / bandwidth_bytes_per_sec * 1e6;
    return latency + per_message_overhead +
           static_cast<VDuration>(serialization);
  }
};

/// Point-to-point message delivery on top of an EventQueue. Messages on the
/// same (from, to) pair stay FIFO because transfer time is deterministic
/// and the queue breaks ties by insertion order.
class NetSim {
 public:
  NetSim(EventQueue& queue, LinkModel link) : queue_(queue), link_(link) {}

  const LinkModel& link() const { return link_; }

  /// Schedules `on_delivered` after the link-model transfer time.
  void send(NodeId from, NodeId to, std::size_t bytes,
            std::function<void()> on_delivered);

  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_; }

 private:
  EventQueue& queue_;
  LinkModel link_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace mw
