// Reliable transmission over the unreliable link: a positive-ack /
// retransmit protocol with capped exponential backoff, in two forms.
//
//  * ReliableChannel — event-driven, on NetSim's queue: every data message
//    is acked by the receiver; the sender retransmits on RTO expiry up to
//    max_attempts, doubling (capped) the RTO each time; the receiver
//    deduplicates by transfer id, so the application sees exactly-once
//    delivery as long as any attempt survives. When every attempt dies the
//    sender reports failure instead of hanging — the graceful-degradation
//    hook remote alternatives need.
//
//  * reliable_transfer — the closed-form deterministic equivalent for the
//    analytic rfork/remote_alt paths (which compute times directly from the
//    link model rather than through an event queue): per-attempt loss draws
//    from a caller-supplied Rng stream, accumulating RTO waits for lost
//    rounds and data+ack time for the surviving one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "dist/net_sim.hpp"
#include "util/rng.hpp"
#include "util/vtime.hpp"

namespace mw {

struct RetryPolicy {
  std::size_t max_attempts = 5;
  VDuration rto_initial = vt_ms(30);
  double backoff = 2.0;       // RTO multiplier per retry
  VDuration rto_cap = vt_ms(240);
  std::size_t ack_bytes = 32;
  /// Jitter fraction: each attempt's effective RTO is scaled by a factor
  /// drawn uniformly from [1, 1 + jitter) out of the caller's seeded
  /// stream, decorrelating retry storms across peers. 0 = no jitter (the
  /// deterministic schedule the analytic paths rely on). The jittered RTO
  /// is NOT re-capped: the cap bounds the base schedule, jitter rides on
  /// top of it.
  double jitter = 0.0;
  /// Per-request deadline: a request still unresolved this long after it
  /// was issued fails at its next timer check even if retry attempts
  /// remain. 0 = no deadline (the retry budget alone bounds the wait).
  VDuration deadline = 0;

  /// RTO for attempt k (0-based): min(cap, initial * backoff^k).
  VDuration rto_for(std::size_t attempt) const;
  /// rto_for(attempt) scaled by a seeded jitter draw (one draw per call,
  /// even when jitter == 0, so arming jitter never shifts the rest of the
  /// caller's stream).
  VDuration rto_jittered(std::size_t attempt, Rng& rng) const;
  /// Worst-case sender-side wait: the sum of every attempt's base RTO.
  VDuration exhausted_budget() const;
};

class ReliableChannel {
 public:
  struct Stats {
    std::uint64_t sends = 0;           // logical transfers initiated
    std::uint64_t retransmissions = 0;  // extra data-message attempts
    std::uint64_t acks_sent = 0;
    std::uint64_t failures = 0;        // transfers whose retries exhausted
    std::uint64_t duplicates_suppressed = 0;  // receiver-side dedup hits
    /// Retry-discipline health (PR 6): every RTO expiry that found the
    /// transfer unacked, the backoff actually paid waiting through those
    /// expiries, and requests killed by their deadline rather than by
    /// attempt exhaustion. TransportChannel reuses this struct, so the
    /// counters mean the same thing on the simulated and socket backends.
    std::uint64_t timeouts = 0;          // RTO expiries on unacked transfers
    VDuration backoff_total = 0;         // summed RTO ticks those cost
    std::uint64_t deadline_failures = 0; // subset of failures: deadline hit
    std::uint64_t frames_sent = 0;       // raw frames (data + ack + beat)
    std::uint64_t heartbeats_sent = 0;
  };

  explicit ReliableChannel(NetSim& net, RetryPolicy policy = {})
      : net_(net), policy_(policy) {}

  /// Sends `bytes` from->to. `on_delivered` runs exactly once, when the
  /// payload first reaches the receiver; `on_failed` runs (at most once)
  /// if every attempt's ack fails to arrive before its RTO — note the
  /// payload may still have been delivered in that case (the acks died):
  /// the sender cannot tell, which is precisely the two-generals residue
  /// the caller must tolerate.
  void send(NodeId from, NodeId to, std::size_t bytes,
            std::function<void()> on_delivered,
            std::function<void()> on_failed = nullptr);

  const Stats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  struct Transfer {
    bool delivered = false;  // receiver side: payload seen
    bool acked = false;      // sender side: ack seen
    bool dead = false;       // sender side: gave up
  };

  void attempt(std::shared_ptr<Transfer> t, NodeId from, NodeId to,
               std::size_t bytes, std::size_t k,
               std::shared_ptr<std::function<void()>> on_delivered,
               std::shared_ptr<std::function<void()>> on_failed);

  NetSim& net_;
  RetryPolicy policy_;
  Stats stats_;
};

/// Outcome of one analytic send-until-acked exchange.
struct ReliableTransfer {
  VDuration elapsed = 0;     // sender-observed time to ack (or to give up)
  std::size_t attempts = 0;  // data messages sent
  bool ok = false;           // an attempt's data AND ack both survived
};

/// Deterministic closed-form model of one reliable exchange of `bytes` over
/// `link`: each attempt draws data-leg and ack-leg loss from `rng`; a lost
/// round costs that attempt's RTO, the surviving round costs data + ack
/// transfer time (plus jitter draws when the link has jitter).
ReliableTransfer reliable_transfer(const LinkModel& link, std::size_t bytes,
                                   Rng& rng, const RetryPolicy& policy = {});

}  // namespace mw
