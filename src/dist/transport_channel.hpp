// TransportChannel: exactly-once(ish) payload delivery over any Transport
// backend — the retry/backoff/deadline discipline of ReliableChannel,
// rebuilt on the Transport seam so the identical channel code runs on the
// deterministic simulator and on real UDP sockets.
//
// Protocol (all little-endian, riding inside one transport frame):
//
//   kData  u8=1 | xfer u64 | frag u32 | count u32 | total u32 | bytes...
//   kAck   u8=2 | xfer u64 | bitmap u64        (frags the receiver holds)
//   kBeat  u8=3                                 (heartbeat, no body)
//
// A logical message is split into at most 64 fragments (one ack-bitmap
// word); each RTO expiry retransmits only the fragments the last ack said
// were missing. The receiver reassembles, delivers exactly once, and keeps
// a completed-transfer set per sender so duplicate fragments re-ack but
// never redeliver. Deadlines, capped exponential backoff, and seeded RTO
// jitter all come from RetryPolicy; the counters land in the same
// ReliableChannel::Stats struct the simulator channel reports, so
// mw_trace/SpecProfile read both backends with one vocabulary.
//
// Heartbeats: enable_heartbeats() makes the channel beat every watched
// peer on PeerHealthConfig::heartbeat_interval and run the PeerHealth
// check; a peer that crosses dead_after silence fires on_peer_dead —
// the failover trigger. Any frame (data, ack, beat) counts as life.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "dist/reliable.hpp"  // RetryPolicy, ReliableChannel::Stats
#include "dist/transport.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mw {

class TransportChannel : public TransportReceiver {
 public:
  using Stats = ReliableChannel::Stats;
  using Handler = std::function<void(NodeId from, const Bytes& payload)>;
  using PeerCallback = std::function<void(NodeId peer, PeerState state)>;

  /// Binds itself to `self` on `transport`. `seed` feeds the RTO-jitter
  /// stream (split per channel so two nodes' jitters decorrelate).
  TransportChannel(Transport& transport, NodeId self, RetryPolicy policy = {},
                   PeerHealthConfig health = {}, std::uint64_t seed = 0);
  ~TransportChannel() override;

  TransportChannel(const TransportChannel&) = delete;
  TransportChannel& operator=(const TransportChannel&) = delete;

  NodeId self() const { return self_; }
  Transport& transport() { return transport_; }

  /// Delivered exactly once per completed inbound transfer, in completion
  /// order. Payload reference is valid only during the call.
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Reliable send of an arbitrary payload (fragmented up to 64 frames).
  /// `on_delivered` fires when every fragment is acked; `on_failed` when
  /// the retry budget or the policy deadline is exhausted first — the
  /// two-generals residue applies: a failed send may still have been
  /// delivered (the acks died). Returns false only if the payload exceeds
  /// max_message_bytes() or the channel is closed.
  bool send(NodeId to, Bytes payload, std::function<void()> on_delivered = {},
            std::function<void()> on_failed = {});

  /// Largest payload send() accepts: 64 fragments of (frame - header).
  std::size_t max_message_bytes() const;

  /// Starts watching `peer` and (if heartbeats are enabled) beating it.
  void watch_peer(NodeId peer);
  void forget_peer(NodeId peer);
  /// Arms the periodic beat + health check; `on_transition` fires on every
  /// state change (suspect, dead, recovered). Idempotent.
  void enable_heartbeats(PeerCallback on_transition = {});

  PeerHealth& health() { return health_; }
  const Stats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }
  /// Transfers still awaiting their final ack.
  std::size_t inflight() const { return outbound_.size(); }

  /// Cancels every timer and unbinds from the transport. Pending sends
  /// neither succeed nor fail after this. Idempotent.
  void close();

  void on_message(NodeId from, std::span<const std::uint8_t> payload) override;

 private:
  struct Outbound {
    NodeId to = 0;
    std::uint64_t xfer = 0;
    std::vector<Bytes> frames;   // pre-encoded kData frames, one per frag
    std::uint64_t acked = 0;     // bitmap
    std::uint64_t want = 0;      // bitmap of all fragments
    std::size_t attempt = 0;     // 0-based; attempt 0 is the initial send
    VTime issued_at = 0;
    TimerId rto_timer = kNoTimer;
    std::function<void()> on_delivered;
    std::function<void()> on_failed;
  };

  struct Inbound {
    std::uint32_t count = 0;
    std::uint32_t total = 0;
    std::uint64_t have = 0;  // bitmap
    std::vector<Bytes> frags;
  };

  void transmit_missing(Outbound& t);
  void arm_rto(std::uint64_t xfer);
  void on_rto(std::uint64_t xfer);
  void fail_transfer(std::uint64_t xfer, bool deadline_hit);
  void send_ack(NodeId to, std::uint64_t xfer, std::uint64_t bitmap);
  void handle_data(NodeId from, ByteReader& r);
  void handle_ack(NodeId from, ByteReader& r);
  void heartbeat_tick();

  Transport& transport_;
  NodeId self_;
  RetryPolicy policy_;
  PeerHealth health_;
  Rng rng_;
  Handler handler_;
  PeerCallback on_transition_;
  bool closed_ = false;
  bool beating_ = false;
  TimerId beat_timer_ = kNoTimer;

  std::uint64_t next_xfer_ = 1;
  std::map<std::uint64_t, Outbound> outbound_;
  std::map<std::pair<NodeId, std::uint64_t>, Inbound> inbound_;
  std::map<NodeId, std::set<std::uint64_t>> completed_;  // dedup memory
  Stats stats_;
};

}  // namespace mw
