// Process checkpoint/restart, after Smith & Ioannidis [19]: "the state of
// the process was dumped into a file in such a way that the file is
// executable; a bootstrapping routine restores the registers and data
// segments and returns control to the caller of the checkpoint routine when
// this file is executed. A return value is used to distinguish between
// return of control in the checkpoint and in the calling process."
//
// Image format (MWCKPT02) — self-describing and self-validating:
//
//   magic           u64   "MWCKPT02"
//   checksum        u64   FNV-1a over every byte after this field
//   kind            u64   0 = full image, 1 = delta image
//   page_size       u64
//   num_pages       u64
//   base_checksum   u64   delta: checksum of the image this delta extends
//   registers       pc, sp, gp[0..7]
//   segment dir     count, then (name, base, size) each; watermark
//   page_count      u64
//   pages           (index u64, data[page_size]) — strictly ascending
//
// A *delta* image (PR 3) serializes only the pages whose references diverged
// from the snapshot taken at the previous checkpoint — O(write set), found
// through the persistent PageMap's subtree-pruning diff — and names its
// predecessor by checksum, so a chain {full, Δ1, Δ2, ...} can only restore
// in the order it was taken. restore rejects any image whose checksum does
// not re-verify or whose page indices are duplicated or out of order: a
// bit-flip or a forged record must surface as ok == false, never as a
// silently wrong address space.
#pragma once

#include <cstdint>
#include <span>

#include "pagestore/address_space.hpp"
#include "util/bytes.hpp"

namespace mw {

/// The modeled register file saved alongside the data segments.
struct Registers {
  std::uint64_t pc = 0;
  std::uint64_t sp = 0;
  /// The fork-style discriminator: kInCaller after taking a checkpoint,
  /// kRestored when control returns via the bootstrapping routine.
  std::uint64_t ret = 0;
  std::uint64_t gp[8] = {};

  static constexpr std::uint64_t kInCaller = 0;
  static constexpr std::uint64_t kRestored = 1;
};

/// A self-describing executable image: header, registers, then the
/// resident pages (index + contents). Non-resident (zero) pages are not
/// stored — a full checkpoint's size tracks the *resident* set, which is
/// why the paper's 70 KB process ships 70 KB, not its full address space;
/// a delta checkpoint's size tracks the *write* set since its base.
struct CheckpointImage {
  Bytes blob;
  std::size_t resident_pages = 0;  // pages serialized in this image
  std::size_t page_size = 0;
  std::size_t total_pages = 0;
  bool delta = false;
  /// Content checksum (also embedded in the blob): the identity other
  /// images chain on, and the replay handle in failure output.
  std::uint64_t checksum = 0;
  /// Delta images: checksum of the image this delta applies on top of.
  std::uint64_t base_checksum = 0;

  std::size_t size_bytes() const { return blob.size(); }
};

/// Dumps `space` + `regs` as a full image; the caller sees
/// regs.ret == kInCaller.
CheckpointImage take_checkpoint(const AddressSpace& space,
                                const Registers& regs);

/// Dumps only the pages of `space` that diverged from `base_space` — the
/// COW snapshot captured when `base` was taken. Registers and the segment
/// directory are always serialized in full (they are tiny). The image
/// chains on `base` by checksum; restoring it requires the whole chain.
CheckpointImage take_delta_checkpoint(const AddressSpace& space,
                                      const Registers& regs,
                                      const AddressSpace& base_space,
                                      const CheckpointImage& base);

struct RestoreResult {
  AddressSpace space;
  Registers regs;  // regs.ret == Registers::kRestored
  bool ok = false;
};

/// The bootstrapping routine: reconstructs the address space and register
/// file from a *full* image. Returns ok=false on a corrupt, truncated, or
/// malformed image — and on a delta image, which cannot stand alone.
RestoreResult restore_checkpoint(const CheckpointImage& image);

/// Chain restore: `chain[0]` must be a full image; each subsequent element
/// must be a delta whose base_checksum names its predecessor's checksum.
/// Pages apply in order (later images win); registers and segments come
/// from the newest image. Any corrupt/misordered/mischained element fails
/// the whole restore.
RestoreResult restore_chain(std::span<const CheckpointImage* const> chain);
RestoreResult restore_chain(const std::vector<CheckpointImage>& chain);

/// Reconstructs a CheckpointImage (metadata included) from a raw blob — the
/// receive side of checkpoint shipping: only the bytes cross the wire, and
/// every metadata field is re-derived from the validated header. Returns
/// false (leaving `out` untouched) if the blob fails the same checks
/// restore would apply to its header, so a corrupt shipment is rejected at
/// ingest, before it can enter a chain.
bool parse_checkpoint_blob(Bytes blob, CheckpointImage& out);

/// Recomputes and re-embeds the blob checksum after the caller edited the
/// blob. Test/tooling support: forging a *consistently sealed* image with
/// malformed contents (duplicate page index, bad segment) is how the
/// rejection paths beyond the checksum are exercised.
void reseal_checkpoint(CheckpointImage& image);

}  // namespace mw
