// Process checkpoint/restart, after Smith & Ioannidis [19]: "the state of
// the process was dumped into a file in such a way that the file is
// executable; a bootstrapping routine restores the registers and data
// segments and returns control to the caller of the checkpoint routine when
// this file is executed. A return value is used to distinguish between
// return of control in the checkpoint and in the calling process."
#pragma once

#include <cstdint>

#include "pagestore/address_space.hpp"
#include "util/bytes.hpp"

namespace mw {

/// The modeled register file saved alongside the data segments.
struct Registers {
  std::uint64_t pc = 0;
  std::uint64_t sp = 0;
  /// The fork-style discriminator: kInCaller after taking a checkpoint,
  /// kRestored when control returns via the bootstrapping routine.
  std::uint64_t ret = 0;
  std::uint64_t gp[8] = {};

  static constexpr std::uint64_t kInCaller = 0;
  static constexpr std::uint64_t kRestored = 1;
};

/// A self-describing executable image: header, registers, then the
/// resident pages (index + contents). Non-resident (zero) pages are not
/// stored — checkpoint size tracks the *resident* set, which is why the
/// paper's 70 KB process ships 70 KB, not its full address space.
struct CheckpointImage {
  Bytes blob;
  std::size_t resident_pages = 0;
  std::size_t page_size = 0;
  std::size_t total_pages = 0;

  std::size_t size_bytes() const { return blob.size(); }
};

/// Dumps `space` + `regs`; the caller sees regs.ret == kInCaller.
CheckpointImage take_checkpoint(const AddressSpace& space,
                                const Registers& regs);

struct RestoreResult {
  AddressSpace space;
  Registers regs;  // regs.ret == Registers::kRestored
  bool ok = false;
};

/// The bootstrapping routine: reconstructs the address space and register
/// file from an image. Returns ok=false on a corrupt image.
RestoreResult restore_checkpoint(const CheckpointImage& image);

}  // namespace mw
