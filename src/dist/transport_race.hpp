// The distributed alternative race, rebuilt as an executable protocol on
// the Transport seam (§3.1, §4.1). Where remote_alt.hpp computes the
// race's *schedule* in closed form from the link model, this module
// actually runs it: a RaceCoordinator rforks work to RaceWorkers by
// shipping full checkpoint images over a TransportChannel; workers execute
// the alternative in timer-driven slices, shipping a delta checkpoint of
// their write set every few slices; the coordinator keeps each
// alternative's chain and, when heartbeats declare a worker dead, restores
// the newest chain, re-seals it as a fresh full image, and re-dispatches
// it to a standby — or, with no standby left (total partition), degrades
// gracefully by finishing the alternative locally from the same chain.
//
// Because everything is messages and Transport timers — no sleeps, no
// threads — the identical coordinator/worker code runs in-process on
// SimTransport (deterministic, seeded) and across real processes on
// SocketTransport (where a dead worker is a SIGKILLed pid).
//
// Message protocol (payloads inside TransportChannel transfers):
//
//   kJoin     u8=1                                   worker -> coordinator
//   kFork     u8=2 | alt u64 | steps u64 | per_ckpt u64 | image blob
//   kCkpt     u8=3 | alt u64 | step u64 | image blob  worker -> coordinator
//   kResult   u8=4 | alt u64 | final u64 | acc u64 | start u64
//   kShutdown u8=5                                   coordinator -> worker
//
// The workload is a deterministic recurrence over checkpointed memory
// (segment "race": step counter, accumulator; segment "scratch": per-step
// writes that give the delta images a real write set), so a failover is
// *provable*: the replacement's kResult carries the step it resumed from
// (start > 0 iff shipped checkpoints preserved work) and the accumulator
// must still equal race_reference(steps) — state carried through kill,
// ship, and restore with no recomputation from zero.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dist/checkpoint.hpp"
#include "dist/transport_channel.hpp"

namespace mw {

/// The recurrence every alternative computes: acc' = acc * K + step.
/// Closed over [0, steps); the coordinator checks results against this.
std::uint64_t race_reference(std::uint64_t steps);

struct RaceConfig {
  RetryPolicy retry;
  PeerHealthConfig health;
  std::uint64_t seed = 1;
  std::uint64_t steps_per_checkpoint = 64;  // slice size = shipping cadence
  /// Delay between a worker's step slices — the knob that makes room for
  /// kills and partitions to land mid-run. Virtual ticks on sim, real
  /// microseconds on sockets.
  VDuration slice_delay = vt_ms(1);
  std::size_t page_size = 256;
  std::size_t num_pages = 64;
  std::size_t max_failovers = 4;  // per alternative
};

struct RaceAltOutcome {
  bool completed = false;
  std::uint64_t final_step = 0;
  std::uint64_t accumulator = 0;
  /// The step the finishing executor resumed from: 0 for an undisturbed
  /// run, > 0 when a failover restored shipped work.
  std::uint64_t start_step = 0;
  std::size_t failovers = 0;
  bool finished_locally = false;  // graceful degradation path
  bool accumulator_ok = false;    // matches race_reference(steps)
};

struct RaceOutcome {
  bool all_completed = false;
  std::size_t winner = 0;  // index of the first alternative to finish
  std::vector<RaceAltOutcome> alts;
  std::size_t checkpoints_received = 0;
  std::size_t bytes_shipped = 0;  // fork + checkpoint image bytes
  std::size_t failovers = 0;
  bool used_local_fallback = false;
};

/// One worker endpoint: joins a coordinator, executes kFork'd alternatives
/// in timer slices, ships deltas, reports results. Drive the owning
/// transport's run()/run_until(); done() turns true on kShutdown or when
/// the coordinator goes heartbeat-dead (an orphaned worker must exit, not
/// spin forever).
class RaceWorker {
 public:
  RaceWorker(Transport& transport, NodeId self, NodeId coordinator,
             RaceConfig config = {});

  NodeId self() const { return self_; }
  bool done() const { return done_; }
  TransportChannel& channel() { return channel_; }

  /// Simulated process death for in-process (sim) tests: the worker goes
  /// silent immediately — no more slices, beats, acks, or shipments — the
  /// same observable behavior a SIGKILLed process has.
  void kill();

 private:
  struct Task {
    std::uint64_t alt = 0;
    std::uint64_t steps = 0;
    std::uint64_t per_ckpt = 0;
    std::uint64_t start_step = 0;
    AddressSpace space{1, 1};
    AddressSpace snapshot{1, 1};  // COW base of the last shipped image
    CheckpointImage last_shipped;
    std::uint64_t race_base = 0;
    std::uint64_t scratch_base = 0;
    std::uint64_t scratch_size = 0;
  };

  void on_payload(NodeId from, const Bytes& payload);
  void start_task(const Bytes& payload);
  void run_slice(std::uint64_t alt);
  void ship_delta(Task& t);
  void finish_task(Task& t);

  Transport& transport_;
  NodeId self_;
  NodeId coordinator_;
  RaceConfig config_;
  TransportChannel channel_;
  std::map<std::uint64_t, Task> tasks_;
  bool done_ = false;
};

/// The parent side: collects joins, dispatches alternatives, tracks
/// checkpoint chains, and turns heartbeat deaths into failovers. Drive the
/// owning transport until done().
class RaceCoordinator {
 public:
  RaceCoordinator(Transport& transport, NodeId self, RaceConfig config = {});

  NodeId self() const { return self_; }
  TransportChannel& channel() { return channel_; }

  std::size_t joined() const { return workers_.size(); }
  /// Joined worker nodes in join order (assignment order for start()).
  const std::vector<NodeId>& workers() const { return workers_; }
  /// Images held for `alt` (1 = just the dispatched full image); tests use
  /// this to kill a worker only after deltas have actually shipped.
  std::size_t chain_length(std::uint64_t alt) const;
  /// Dispatches `steps[i]` to the i-th joined worker (the rest stand by).
  /// Requires at least steps.size() joined workers.
  void start(const std::vector<std::uint64_t>& steps);
  bool done() const { return done_; }
  /// Valid once done(): per-alternative outcomes + shipping totals.
  const RaceOutcome& outcome() const { return outcome_; }

 private:
  struct Alt {
    std::uint64_t steps = 0;
    std::optional<NodeId> assigned;
    std::vector<CheckpointImage> chain;  // full, then deltas, in order
    RaceAltOutcome result;
  };

  void on_payload(NodeId from, const Bytes& payload);
  void on_peer_transition(NodeId peer, PeerState state);
  void dispatch(std::uint64_t alt, NodeId worker,
                const CheckpointImage& image);
  CheckpointImage make_initial_image(std::uint64_t steps);
  void fail_over(std::uint64_t alt);
  void finish_locally(std::uint64_t alt, RestoreResult restored);
  void maybe_finish();

  Transport& transport_;
  NodeId self_;
  RaceConfig config_;
  TransportChannel channel_;
  std::vector<NodeId> workers_;  // join order; standbys are the tail
  std::map<std::uint64_t, Alt> alts_;
  bool started_ = false;
  bool done_ = false;
  RaceOutcome outcome_;
};

}  // namespace mw
