#include "dist/net_sim.hpp"

namespace mw {

void NetSim::send(NodeId from, NodeId to, std::size_t bytes,
                  std::function<void()> on_delivered) {
  (void)from;
  (void)to;
  ++messages_;
  bytes_ += bytes;
  queue_.schedule_after(link_.transfer_time(bytes), std::move(on_delivered));
}

}  // namespace mw
