#include "dist/net_sim.hpp"

#include "fault/fault.hpp"

namespace mw {

void NetSim::send(NodeId from, NodeId to, std::size_t bytes,
                  std::function<void()> on_delivered) {
  (void)from;
  (void)to;
  ++messages_;
  bytes_ += bytes;

  // Statistical faults from the link model, surgical ones from the "net.send"
  // fault point. Draw order is fixed (loss, duplication, jitter per copy) so
  // the schedule replays from the seed.
  bool drop = link_.loss_probability > 0.0 &&
              rng_.next_bool(link_.loss_probability);
  bool duplicate = link_.duplicate_probability > 0.0 &&
                   rng_.next_bool(link_.duplicate_probability);
  VDuration extra = 0;
  const FaultAction fault = MW_FAULT_POINT("net.send", queue_.now());
  switch (fault.kind) {
    case FaultKind::kDropMessage:
    case FaultKind::kNodeCrash:
      drop = true;
      break;
    case FaultKind::kDuplicateMessage:
      duplicate = true;
      break;
    case FaultKind::kDelay:
      extra = fault.delay;
      break;
    default:
      break;
  }

  if (drop) {
    ++dropped_;
    return;
  }

  const VDuration base = link_.transfer_time(bytes) + extra;
  const std::size_t copies = duplicate ? 2 : 1;
  if (duplicate) ++duplicated_;
  for (std::size_t c = 0; c < copies; ++c) {
    const VDuration jitter =
        link_.jitter > 0
            ? static_cast<VDuration>(rng_.next_below(
                  static_cast<std::uint64_t>(link_.jitter) + 1))
            : 0;
    ++delivered_;
    queue_.schedule_after(base + jitter,
                          c + 1 == copies ? std::move(on_delivered)
                                          : on_delivered);
  }
}

}  // namespace mw
