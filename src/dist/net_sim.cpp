#include "dist/net_sim.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "trace/trace.hpp"

namespace mw {

void LinkModel::block(NodeId from, NodeId to) {
  if (!blocks(from, to)) blocked.emplace_back(from, to);
}

void LinkModel::unblock(NodeId from, NodeId to) {
  blocked.erase(std::remove(blocked.begin(), blocked.end(),
                            std::make_pair(from, to)),
                blocked.end());
}

void LinkModel::partition(NodeId a, NodeId b) {
  block(a, b);
  block(b, a);
}

void LinkModel::heal(NodeId a, NodeId b) {
  unblock(a, b);
  unblock(b, a);
}

bool LinkModel::blocks(NodeId from, NodeId to) const {
  return std::find(blocked.begin(), blocked.end(),
                   std::make_pair(from, to)) != blocked.end();
}

void NetSim::send(NodeId from, NodeId to, std::size_t bytes,
                  std::function<void()> on_delivered) {
  ++messages_;
  bytes_ += bytes;

  // Partition first, before any stochastic draw: a healed partition must
  // leave the seeded loss/jitter schedule of every other link untouched.
  if (link_.blocks(from, to) ||
      MW_FAULT_POINT("net.partition", queue_.now())) {
    ++partitioned_;
    MW_TRACE_EVENT(trace::EventKind::kNetPartition, kNoPid, kNoPid, from, to,
                   queue_.now());
    return;
  }

  // Statistical faults from the link model, surgical ones from the "net.send"
  // fault point. Draw order is fixed (loss, duplication, jitter per copy) so
  // the schedule replays from the seed.
  bool drop = link_.loss_probability > 0.0 &&
              rng_.next_bool(link_.loss_probability);
  bool duplicate = link_.duplicate_probability > 0.0 &&
                   rng_.next_bool(link_.duplicate_probability);
  VDuration extra = 0;
  const FaultAction fault = MW_FAULT_POINT("net.send", queue_.now());
  switch (fault.kind) {
    case FaultKind::kDropMessage:
    case FaultKind::kNodeCrash:
      drop = true;
      break;
    case FaultKind::kDuplicateMessage:
      duplicate = true;
      break;
    case FaultKind::kDelay:
      extra = fault.delay;
      break;
    default:
      break;
  }
  // The transport-level points, shared with the socket backend. Each is a
  // separate seeded stream, so arming one never perturbs the others.
  if (MW_FAULT_POINT("net.drop", queue_.now())) drop = true;
  if (MW_FAULT_POINT("net.dup", queue_.now())) duplicate = true;
  if (const FaultAction d = MW_FAULT_POINT("net.delay", queue_.now()))
    extra += d.delay;

  if (drop) {
    ++dropped_;
    return;
  }

  const VDuration base = link_.transfer_time(bytes) + extra;
  const std::size_t copies = duplicate ? 2 : 1;
  if (duplicate) ++duplicated_;
  for (std::size_t c = 0; c < copies; ++c) {
    const VDuration jitter =
        link_.jitter > 0
            ? static_cast<VDuration>(rng_.next_below(
                  static_cast<std::uint64_t>(link_.jitter) + 1))
            : 0;
    ++delivered_;
    queue_.schedule_after(base + jitter,
                          c + 1 == copies ? std::move(on_delivered)
                                          : on_delivered);
  }
}

}  // namespace mw
