// SocketTransport: the real-network Transport backend — UDP datagrams on
// loopback/LAN with an epoll-driven, single-threaded event loop.
//
// Framing: every datagram is one length-prefixed frame
//
//   magic  u32  "MWTP"
//   len    u32  payload bytes (validated against the datagram size)
//   from   u64  sender NodeId
//   to     u64  destination NodeId
//   seq    u64  per-(sender, destination) sequence number
//
// A datagram that fails any framing check is counted corrupt and dropped —
// a truncated or foreign packet must never reach a receiver. Per-peer
// sequence numbers make reordering and duplication observable (stats), but
// this layer deliberately does NOT retransmit, dedup, or order: UDP's
// failure modes are surfaced to TransportChannel, the same reliability
// discipline the simulated backend uses.
//
// Ports are always ephemeral: the constructor binds 127.0.0.1:0 and the
// chosen port is read back with port(), then handed to peers (add_peer) or
// learned automatically from the `from` field of valid inbound frames —
// the EADDRINUSE-proof discipline parallel test runners need.
//
// Fault injection: the send path consults the same seeded fault points as
// the simulated backend — "net.partition" (and blocked link pairs), then
// "net.drop" / "net.dup" / "net.delay" — so one fault matrix drives both
// backends. Receive-side partition checks let a process partition *itself*
// from a peer it cannot reach into.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "dist/transport.hpp"
#include "util/bytes.hpp"

struct sockaddr_in;

namespace mw {

class SocketTransport : public Transport {
 public:
  /// Binds a UDP socket on 127.0.0.1 with an ephemeral port. `self` is the
  /// node this process hosts by default (bind() can add more).
  explicit SocketTransport(NodeId self);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  NodeId self() const { return self_; }
  /// The kernel-chosen port — pass this to peers; never hardcode one.
  std::uint16_t port() const { return port_; }
  /// Registers where `node` lives (loopback). Inbound frames refresh the
  /// mapping automatically, so only the bootstrap direction needs this.
  void add_peer(NodeId node, std::uint16_t port);
  bool knows_peer(NodeId node) const;

  void bind(NodeId node, TransportReceiver& receiver) override;
  void unbind(NodeId node) override;
  bool send(NodeId from, NodeId to,
            std::span<const std::uint8_t> payload) override;
  TimerId schedule(VDuration delay, std::function<void()> fn) override;
  void cancel(TimerId id) override;
  VTime now() const override;
  void run() override;
  void run_until(VTime deadline) override;
  bool poll() override;
  void close() override;
  void set_link_blocked(NodeId from, NodeId to, bool blocked) override;
  const TransportStats& stats() const override { return stats_; }
  bool simulated() const override { return false; }
  std::size_t max_payload() const override;

 private:
  struct Timer {
    VTime at = 0;
    TimerId id = 0;
    bool operator>(const Timer& o) const {
      return at != o.at ? at > o.at : id > o.id;
    }
  };

  bool send_frame(NodeId to, const Bytes& frame);
  /// Drains the socket; returns frames dispatched.
  std::size_t drain_socket();
  /// Fires every timer due at `now`; returns how many ran.
  std::size_t fire_due_timers();
  void dispatch(const std::uint8_t* data, std::size_t len);

  NodeId self_;
  int fd_ = -1;
  int epoll_fd_ = -1;
  std::uint16_t port_ = 0;
  VTime epoch_ = 0;  // CLOCK_MONOTONIC µs at construction
  bool closed_ = false;

  std::map<NodeId, TransportReceiver*> receivers_;
  std::map<NodeId, std::uint32_t> peer_ip_;    // network-order IPv4
  std::map<NodeId, std::uint16_t> peer_port_;  // host order
  std::map<NodeId, std::uint64_t> tx_seq_;     // per-destination
  std::map<NodeId, std::uint64_t> rx_seq_;     // per-sender, highest seen
  LinkModel links_;  // only the blocked pairs are meaningful here

  TimerId next_timer_ = 1;
  std::map<TimerId, std::function<void()>> timer_fns_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>>
      timer_heap_;

  TransportStats stats_;
  Bytes rx_buf_;
};

}  // namespace mw
