#include "dist/sim_transport.hpp"

#include "trace/trace.hpp"

namespace mw {

void SimTransport::bind(NodeId node, TransportReceiver& receiver) {
  receivers_[node] = &receiver;
}

void SimTransport::unbind(NodeId node) { receivers_.erase(node); }

bool SimTransport::send(NodeId from, NodeId to,
                        std::span<const std::uint8_t> payload) {
  if (closed_ || payload.size() > max_payload_) {
    ++stats_.send_errors;
    return false;
  }
  MW_TRACE_EVENT(trace::EventKind::kNetSend, kNoPid, kNoPid, payload.size(),
                 to, now());
  // The payload rides the NetSim delivery callback; NetSim itself keeps
  // modeling message *sizes* (its transfer-time input) and draws every
  // fault decision exactly as it always has.
  auto data = std::make_shared<Bytes>(payload.begin(), payload.end());
  net_.send(from, to, payload.size(), [this, from, to, data] {
    if (closed_) return;
    auto it = receivers_.find(to);
    if (it == receivers_.end()) {
      ++stats_.messages_unroutable;
      return;
    }
    ++stats_.messages_delivered;
    stats_.bytes_delivered += data->size();
    MW_TRACE_EVENT(trace::EventKind::kNetDeliver, kNoPid, kNoPid,
                   data->size(), from, now());
    it->second->on_message(
        from, std::span<const std::uint8_t>(data->data(), data->size()));
  });
  return true;
}

TimerId SimTransport::schedule(VDuration delay, std::function<void()> fn) {
  const TimerId id = next_timer_++;
  auto alive = std::make_shared<bool>(true);
  live_timers_[id] = alive;
  net_.queue().schedule_after(
      delay, [this, id, alive, fn = std::move(fn)] {
        live_timers_.erase(id);
        if (*alive && !closed_) fn();
      });
  return id;
}

void SimTransport::cancel(TimerId id) {
  auto it = live_timers_.find(id);
  if (it == live_timers_.end()) return;
  *it->second = false;
  live_timers_.erase(it);
}

void SimTransport::run() { net_.queue().run(); }

void SimTransport::run_until(VTime deadline) {
  net_.queue().run_until(deadline);
}

bool SimTransport::poll() { return net_.queue().step(); }

void SimTransport::set_link_blocked(NodeId from, NodeId to, bool blocked) {
  if (blocked) {
    net_.mutable_link().block(from, to);
  } else {
    net_.mutable_link().unblock(from, to);
  }
}

const TransportStats& SimTransport::stats() const {
  // The NetSim keeps the authoritative per-message accounting; mirror it
  // into the backend-independent struct on read.
  stats_.messages_sent = net_.messages_sent();
  stats_.bytes_sent = net_.bytes_sent();
  stats_.messages_dropped = net_.messages_dropped();
  stats_.messages_partitioned = net_.messages_partitioned();
  stats_.messages_duplicated = net_.messages_duplicated();
  return stats_;
}

}  // namespace mw
