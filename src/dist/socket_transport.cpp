#include "dist/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

#include "trace/trace.hpp"
#include "util/check.hpp"

namespace mw {

namespace {

constexpr std::uint32_t kFrameMagic = 0x4d575450u;  // "MWTP"
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8;
constexpr std::size_t kMaxDatagram = kMaxFrameBytes + kHeaderBytes;

VTime monotonic_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<VTime>(ts.tv_sec) * 1'000'000 +
         static_cast<VTime>(ts.tv_nsec) / 1'000;
}

}  // namespace

SocketTransport::SocketTransport(NodeId self) : self_(self) {
  epoch_ = monotonic_us();
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  MW_CHECK(fd_ >= 0);

  // Checkpoint chains arrive in bursts; a default-sized receive buffer
  // would shed them on loopback and force the channel into retransmits.
  int rcvbuf = 4 * 1024 * 1024;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  int sndbuf = 4 * 1024 * 1024;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof sndbuf);

  // Ephemeral port, always: binding a fixed port is how parallel ctest
  // runs earn EADDRINUSE flakes. The kernel picks; peers are told.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  MW_CHECK(::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0);
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  MW_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  MW_CHECK(epoll_fd_ >= 0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd_;
  MW_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd_, &ev) == 0);

  rx_buf_.resize(kMaxDatagram + 1);  // +1 detects over-size datagrams
}

SocketTransport::~SocketTransport() { close(); }

void SocketTransport::close() {
  if (closed_) return;
  closed_ = true;
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (fd_ >= 0) ::close(fd_);
  epoll_fd_ = -1;
  fd_ = -1;
}

std::size_t SocketTransport::max_payload() const { return kMaxFrameBytes; }

VTime SocketTransport::now() const { return monotonic_us() - epoch_; }

void SocketTransport::add_peer(NodeId node, std::uint16_t port) {
  peer_ip_[node] = htonl(INADDR_LOOPBACK);
  peer_port_[node] = port;
}

bool SocketTransport::knows_peer(NodeId node) const {
  return peer_port_.count(node) != 0;
}

void SocketTransport::bind(NodeId node, TransportReceiver& receiver) {
  receivers_[node] = &receiver;
}

void SocketTransport::unbind(NodeId node) { receivers_.erase(node); }

void SocketTransport::set_link_blocked(NodeId from, NodeId to, bool blocked) {
  if (blocked) {
    links_.block(from, to);
  } else {
    links_.unblock(from, to);
  }
}

bool SocketTransport::send_frame(NodeId to, const Bytes& frame) {
  auto ip = peer_ip_.find(to);
  auto pp = peer_port_.find(to);
  if (ip == peer_ip_.end() || pp == peer_port_.end()) {
    // Self-delivery without an explicit peer entry: loop through the
    // socket anyway so faults and framing treat it like any other frame.
    if (receivers_.count(to) == 0) {
      ++stats_.messages_unroutable;
      return false;
    }
    add_peer(to, port_);
    ip = peer_ip_.find(to);
    pp = peer_port_.find(to);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ip->second;
  addr.sin_port = htons(pp->second);
  const ssize_t n =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (n != static_cast<ssize_t>(frame.size())) {
    ++stats_.send_errors;
    return false;
  }
  return true;
}

bool SocketTransport::send(NodeId from, NodeId to,
                           std::span<const std::uint8_t> payload) {
  if (closed_ || payload.size() > max_payload()) {
    ++stats_.send_errors;
    return false;
  }

  const FrameFaults f = query_frame_faults(from, to, now(), &links_);
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  MW_TRACE_EVENT(trace::EventKind::kNetSend, kNoPid, kNoPid, payload.size(),
                 to, now());
  if (f.partitioned) {
    ++stats_.messages_partitioned;
    MW_TRACE_EVENT(trace::EventKind::kNetPartition, kNoPid, kNoPid, from, to,
                   now());
    return true;
  }
  if (f.drop) {
    ++stats_.messages_dropped;
    return true;
  }

  ByteWriter w;
  w.put_u32(kFrameMagic);
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  w.put_u64(from);
  w.put_u64(to);
  w.put_u64(tx_seq_[to]++);
  w.put_bytes(payload);
  Bytes frame = w.take();

  const std::size_t copies = f.duplicate ? 2 : 1;
  if (f.duplicate) ++stats_.messages_duplicated;
  bool ok = true;
  for (std::size_t c = 0; c < copies; ++c) {
    if (f.delay > 0) {
      ++stats_.messages_delayed;
      schedule(f.delay, [this, to, frame] {
        if (!closed_) send_frame(to, frame);
      });
    } else {
      ok = send_frame(to, frame) && ok;
    }
  }
  return ok;
}

void SocketTransport::dispatch(const std::uint8_t* data, std::size_t len) {
  ByteReader r(std::span<const std::uint8_t>(data, len));
  const std::uint32_t magic = r.get_u32();
  const std::uint32_t plen = r.get_u32();
  const NodeId from = static_cast<NodeId>(r.get_u64());
  const NodeId to = static_cast<NodeId>(r.get_u64());
  const std::uint64_t seq = r.get_u64();
  if (!r.ok() || magic != kFrameMagic || r.remaining() != plen) {
    ++stats_.messages_corrupt;  // truncated, foreign, or length-forged
    return;
  }

  // Receive-side partition: how a process cuts itself off from a peer in
  // another process (the send side of that peer can't be reached into).
  if (links_.blocks(from, to)) {
    ++stats_.messages_partitioned;
    MW_TRACE_EVENT(trace::EventKind::kNetPartition, kNoPid, kNoPid, from, to,
                   now());
    return;
  }

  // Per-peer sequence accounting: duplicates and reordering are normal
  // UDP behavior — observable, not corrected, at this layer.
  auto [it, fresh] = rx_seq_.try_emplace(from, seq);
  if (!fresh) {
    if (seq <= it->second) {
      ++stats_.messages_out_of_order;
    } else {
      it->second = seq;
    }
  }

  auto rcv = receivers_.find(to);
  if (rcv == receivers_.end()) {
    ++stats_.messages_unroutable;
    return;
  }
  ++stats_.messages_delivered;
  stats_.bytes_delivered += plen;
  MW_TRACE_EVENT(trace::EventKind::kNetDeliver, kNoPid, kNoPid, plen, from,
                 now());
  rcv->second->on_message(
      from, std::span<const std::uint8_t>(data + (len - plen), plen));
}

std::size_t SocketTransport::drain_socket() {
  std::size_t dispatched = 0;
  while (!closed_) {
    sockaddr_in src{};
    socklen_t srclen = sizeof src;
    const ssize_t n =
        ::recvfrom(fd_, rx_buf_.data(), rx_buf_.size(), 0,
                   reinterpret_cast<sockaddr*>(&src), &srclen);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    if (n < static_cast<ssize_t>(kHeaderBytes) ||
        n > static_cast<ssize_t>(kMaxDatagram)) {
      ++stats_.messages_corrupt;
      continue;
    }
    // Learn/refresh the sender's address from the frame header before
    // dispatching, so replies route even on first contact. Parse just the
    // `from` field here; dispatch() re-validates everything.
    ByteReader peek(std::span<const std::uint8_t>(
        rx_buf_.data(), static_cast<std::size_t>(n)));
    const std::uint32_t magic = peek.get_u32();
    peek.get_u32();
    const NodeId from = static_cast<NodeId>(peek.get_u64());
    if (magic == kFrameMagic && from != self_) {
      peer_ip_[from] = src.sin_addr.s_addr;
      peer_port_[from] = ntohs(src.sin_port);
    }
    dispatch(rx_buf_.data(), static_cast<std::size_t>(n));
    ++dispatched;
  }
  return dispatched;
}

std::size_t SocketTransport::fire_due_timers() {
  std::size_t fired = 0;
  while (!closed_ && !timer_heap_.empty() && timer_heap_.top().at <= now()) {
    const Timer t = timer_heap_.top();
    timer_heap_.pop();
    auto it = timer_fns_.find(t.id);
    if (it == timer_fns_.end()) continue;  // cancelled
    auto fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();
    ++fired;
  }
  return fired;
}

TimerId SocketTransport::schedule(VDuration delay, std::function<void()> fn) {
  const TimerId id = next_timer_++;
  timer_fns_[id] = std::move(fn);
  timer_heap_.push(Timer{now() + std::max<VDuration>(delay, 0), id});
  return id;
}

void SocketTransport::cancel(TimerId id) { timer_fns_.erase(id); }

bool SocketTransport::poll() {
  if (closed_) return false;
  const std::size_t n = drain_socket() + fire_due_timers();
  return n > 0;
}

void SocketTransport::run_until(VTime deadline) {
  while (!closed_) {
    fire_due_timers();
    if (closed_) break;
    const VTime t = now();
    if (t >= deadline) break;
    VTime next = deadline;
    // Skip over cancelled heap entries so they don't truncate the wait.
    while (!timer_heap_.empty() &&
           timer_fns_.count(timer_heap_.top().id) == 0) {
      timer_heap_.pop();
    }
    if (!timer_heap_.empty() && timer_heap_.top().at < next) {
      next = timer_heap_.top().at;
    }
    const VDuration wait = next > t ? next - t : 0;
    const int timeout_ms =
        static_cast<int>(std::min<VDuration>((wait + 999) / 1000, 1000));
    epoll_event ev{};
    const int nready = ::epoll_wait(epoll_fd_, &ev, 1, timeout_ms);
    if (nready < 0 && errno != EINTR) break;
    if (nready > 0) drain_socket();
  }
  if (!closed_) fire_due_timers();
}

void SocketTransport::run() {
  // Without pending timers there is nothing to wait for deterministically;
  // callers that want pure arrival-driven service use run_until slices.
  while (!closed_ && !timer_fns_.empty()) {
    while (!timer_heap_.empty() &&
           timer_fns_.count(timer_heap_.top().id) == 0) {
      timer_heap_.pop();
    }
    if (timer_heap_.empty()) break;
    run_until(timer_heap_.top().at);
  }
}

}  // namespace mw
