// Distributed execution of alternatives (§3.1, §4.1): ship each
// alternative to its own node with rfork, race them at full speed, return
// the winner's result over the network.
//
// The trade the paper analyzes: "In the distributed case we must actually
// copy state for a remote child... Even if the interprocessor bandwidth
// increases, latency will still restrain distributed performance." Against
// that, a local machine with few processors timeshares: every extra
// alternative slows the others down. This module computes both schedules
// so benches can locate the crossover.
#pragma once

#include <vector>

#include "dist/rfork.hpp"
#include "proc/vsched.hpp"

namespace mw {

struct RemoteAltSpec {
  VDuration duration = 0;  // the alternative's own computation time
  bool success = false;
};

struct DistributedRaceResult {
  bool failed = true;
  std::size_t winner = 0;       // index into the specs
  VDuration elapsed = 0;        // parent-observed time to the winner's reply
  VDuration spawn_total = 0;    // serial rfork cost paid by the parent
  std::size_t bytes_shipped = 0;
};

/// Races `specs` with one remote node per alternative. The parent performs
/// the rforks serially (checkpoint creation is parent work); each remote
/// child then runs at full speed; the winner's reply is one small message.
DistributedRaceResult distributed_race(const RemoteForker& forker,
                                       const AddressSpace& parent_image,
                                       const std::vector<RemoteAltSpec>& specs,
                                       bool on_demand = false,
                                       double touch_fraction = 0.3);

/// The same race run locally on `processors` CPUs under timesharing
/// (processor sharing) with the given per-fork cost; returns the winner's
/// finish time, kVTimeMax on total failure.
VDuration local_race(std::size_t processors, VDuration local_fork_cost,
                     const std::vector<RemoteAltSpec>& specs);

}  // namespace mw
