// Distributed execution of alternatives (§3.1, §4.1): ship each
// alternative to its own node with rfork, race them at full speed, return
// the winner's result over the network.
//
// The trade the paper analyzes: "In the distributed case we must actually
// copy state for a remote child... Even if the interprocessor bandwidth
// increases, latency will still restrain distributed performance." Against
// that, a local machine with few processors timeshares: every extra
// alternative slows the others down. This module computes both schedules
// so benches can locate the crossover.
#pragma once

#include <vector>

#include "dist/rfork.hpp"
#include "proc/vsched.hpp"

namespace mw {

struct RemoteAltSpec {
  VDuration duration = 0;  // the alternative's own computation time
  bool success = false;
};

struct DistributedRaceResult {
  bool failed = true;
  std::size_t winner = 0;       // index into the specs
  VDuration elapsed = 0;        // parent-observed time to the winner's reply
  VDuration spawn_total = 0;    // serial rfork cost paid by the parent
  std::size_t bytes_shipped = 0;
  /// Unreliable-race extras (zero on the reliable overload).
  std::size_t remotes_failed = 0;   // rforks/replies demoted to Failed
  std::size_t retransmissions = 0;
  bool used_local_fallback = false;
  /// Supervised-recovery extras (all zero unless opts.checkpoint_interval
  /// is set). A restart is an attempt to resume a crashed child from its
  /// newest shipped checkpoint chain; a failover is a restart whose
  /// re-dispatch actually reached a surviving node.
  std::size_t restarts = 0;
  std::size_t failovers = 0;
  /// Computation time salvaged by failovers (work the replacement node did
  /// NOT have to redo because checkpoints had been shipped ahead).
  VDuration work_preserved = 0;
  /// Checkpoint-chain bytes the failovers restored from.
  std::size_t work_preserved_bytes = 0;
};

/// Knobs for the unreliable-network race. Loss/duplication/jitter come from
/// the forker's LinkModel; `seed` drives the per-child loss streams.
struct DistRaceOptions {
  bool on_demand = false;
  double touch_fraction = 0.3;
  std::uint64_t seed = 1;
  RetryPolicy retry;
  /// Graceful degradation: when *every* remote alternative is demoted
  /// (rfork retries exhausted, node crash, or failed reply), re-run the
  /// race locally under timesharing instead of failing outright.
  bool local_fallback = true;
  std::size_t local_processors = 2;
  VDuration local_fork_cost = vt_ms(12);

  /// Remote failover (PR 3). When nonzero, every remote child ships an
  /// incremental checkpoint of its write set back to the file server each
  /// `checkpoint_interval` of its own run time; a node crash mid-run
  /// ("remote.node_crash") is then recovered by re-dispatching the child's
  /// newest shipped chain to a surviving node instead of demoting it, so
  /// only the work since the last shipped image is redone. 0 preserves the
  /// pre-failover behavior: a node crash demotes the child outright.
  VDuration checkpoint_interval = 0;
  /// Pages in each delta image (the child's steady-state write set).
  std::size_t checkpoint_pages = 4;
  /// Re-dispatch budget per child; crashes beyond it demote the child
  /// (which may still leave the race to the local fallback).
  std::size_t max_failovers = 1;
};

/// Races `specs` with one remote node per alternative. The parent performs
/// the rforks serially (checkpoint creation is parent work); each remote
/// child then runs at full speed; the winner's reply is one small message.
DistributedRaceResult distributed_race(const RemoteForker& forker,
                                       const AddressSpace& parent_image,
                                       const std::vector<RemoteAltSpec>& specs,
                                       bool on_demand = false,
                                       double touch_fraction = 0.3);

/// The unreliable-network race: rforks go through the ack/retransmit
/// protocol; a remote whose rfork or reply cannot be completed is demoted
/// to Failed (it can neither win nor hang the block) rather than wedging
/// the race; fault points "rfork.transfer" and "remote.node_crash" apply.
/// If every remote is demoted and opts.local_fallback is set, the race is
/// re-run locally (the time already wasted on the remote attempts is
/// charged to the result).
DistributedRaceResult distributed_race(const RemoteForker& forker,
                                       const AddressSpace& parent_image,
                                       const std::vector<RemoteAltSpec>& specs,
                                       const DistRaceOptions& opts);

/// The same race run locally on `processors` CPUs under timesharing
/// (processor sharing) with the given per-fork cost; returns the winner's
/// finish time, kVTimeMax on total failure.
VDuration local_race(std::size_t processors, VDuration local_fork_cost,
                     const std::vector<RemoteAltSpec>& specs);

}  // namespace mw
