#include "dist/transport_channel.hpp"

#include <algorithm>

#include "trace/trace.hpp"
#include "util/check.hpp"

namespace mw {

namespace {

constexpr std::uint8_t kData = 1;
constexpr std::uint8_t kAck = 2;
constexpr std::uint8_t kBeat = 3;

// type + xfer + frag + count + total
constexpr std::size_t kDataHeader = 1 + 8 + 4 + 4 + 4;
constexpr std::size_t kMaxFragments = 64;  // one ack-bitmap word

}  // namespace

TransportChannel::TransportChannel(Transport& transport, NodeId self,
                                   RetryPolicy policy,
                                   PeerHealthConfig health, std::uint64_t seed)
    : transport_(transport),
      self_(self),
      policy_(policy),
      health_(health),
      rng_(Rng(seed).split(self)) {
  transport_.bind(self_, *this);
}

TransportChannel::~TransportChannel() { close(); }

void TransportChannel::close() {
  if (closed_) return;
  closed_ = true;
  for (auto& [xfer, t] : outbound_) {
    if (t.rto_timer != kNoTimer) transport_.cancel(t.rto_timer);
  }
  outbound_.clear();
  if (beat_timer_ != kNoTimer) transport_.cancel(beat_timer_);
  beat_timer_ = kNoTimer;
  transport_.unbind(self_);
}

std::size_t TransportChannel::max_message_bytes() const {
  return kMaxFragments * (transport_.max_payload() - kDataHeader);
}

bool TransportChannel::send(NodeId to, Bytes payload,
                            std::function<void()> on_delivered,
                            std::function<void()> on_failed) {
  if (closed_ || payload.size() > max_message_bytes()) return false;

  const std::size_t frag_bytes = transport_.max_payload() - kDataHeader;
  const std::uint32_t count = static_cast<std::uint32_t>(
      payload.empty() ? 1 : (payload.size() + frag_bytes - 1) / frag_bytes);

  Outbound t;
  t.to = to;
  t.xfer = next_xfer_++;
  t.issued_at = transport_.now();
  t.on_delivered = std::move(on_delivered);
  t.on_failed = std::move(on_failed);
  t.want = count == kMaxFragments ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << count) - 1;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * frag_bytes;
    const std::size_t n = std::min(frag_bytes, payload.size() - off);
    ByteWriter w;
    w.put_u8(kData);
    w.put_u64(t.xfer);
    w.put_u32(i);
    w.put_u32(count);
    w.put_u32(static_cast<std::uint32_t>(payload.size()));
    w.put_bytes(std::span<const std::uint8_t>(payload.data() + off, n));
    t.frames.push_back(w.take());
  }

  ++stats_.sends;
  const std::uint64_t xfer = t.xfer;
  auto [it, fresh] = outbound_.emplace(xfer, std::move(t));
  MW_CHECK(fresh);
  transmit_missing(it->second);
  arm_rto(xfer);
  return true;
}

void TransportChannel::transmit_missing(Outbound& t) {
  for (std::size_t i = 0; i < t.frames.size(); ++i) {
    if (t.acked & (std::uint64_t{1} << i)) continue;
    ++stats_.frames_sent;
    if (t.attempt > 0) ++stats_.retransmissions;
    transport_.send(self_, t.to,
                    std::span<const std::uint8_t>(t.frames[i].data(),
                                                  t.frames[i].size()));
  }
}

void TransportChannel::arm_rto(std::uint64_t xfer) {
  auto it = outbound_.find(xfer);
  if (it == outbound_.end()) return;
  const VDuration rto = policy_.rto_jittered(it->second.attempt, rng_);
  it->second.rto_timer =
      transport_.schedule(rto, [this, xfer] { on_rto(xfer); });
}

void TransportChannel::on_rto(std::uint64_t xfer) {
  auto it = outbound_.find(xfer);
  if (it == outbound_.end()) return;
  Outbound& t = it->second;
  t.rto_timer = kNoTimer;

  // The expiry itself is a timeout event regardless of what happens next,
  // and the RTO just waited through is backoff actually paid.
  ++stats_.timeouts;
  stats_.backoff_total += policy_.rto_for(t.attempt);

  if (policy_.deadline > 0 &&
      transport_.now() - t.issued_at >= policy_.deadline) {
    fail_transfer(xfer, /*deadline_hit=*/true);
    return;
  }
  if (t.attempt + 1 >= policy_.max_attempts) {
    fail_transfer(xfer, /*deadline_hit=*/false);
    return;
  }
  ++t.attempt;
  MW_TRACE_EVENT(trace::EventKind::kNetRetransmit, kNoPid, kNoPid, t.attempt,
                 static_cast<std::uint64_t>(policy_.rto_for(t.attempt)),
                 transport_.now());
  transmit_missing(t);
  arm_rto(xfer);
}

void TransportChannel::fail_transfer(std::uint64_t xfer, bool deadline_hit) {
  auto it = outbound_.find(xfer);
  if (it == outbound_.end()) return;
  ++stats_.failures;
  if (deadline_hit) ++stats_.deadline_failures;
  MW_TRACE_EVENT(trace::EventKind::kNetTimeout, kNoPid, kNoPid,
                 it->second.attempt + 1, deadline_hit ? 1 : 0,
                 transport_.now());
  auto on_failed = std::move(it->second.on_failed);
  outbound_.erase(it);
  if (on_failed) on_failed();
}

void TransportChannel::send_ack(NodeId to, std::uint64_t xfer,
                                std::uint64_t bitmap) {
  ByteWriter w;
  w.put_u8(kAck);
  w.put_u64(xfer);
  w.put_u64(bitmap);
  ++stats_.acks_sent;
  ++stats_.frames_sent;
  const Bytes frame = w.take();
  transport_.send(self_, to,
                  std::span<const std::uint8_t>(frame.data(), frame.size()));
}

void TransportChannel::handle_data(NodeId from, ByteReader& r) {
  const std::uint64_t xfer = r.get_u64();
  const std::uint32_t frag = r.get_u32();
  const std::uint32_t count = r.get_u32();
  const std::uint32_t total = r.get_u32();
  if (!r.ok() || count == 0 || count > kMaxFragments || frag >= count) return;

  auto done = completed_.find(from);
  if (done != completed_.end() && done->second.count(xfer)) {
    // Already delivered: the ack must have died. Re-ack, never redeliver.
    ++stats_.duplicates_suppressed;
    send_ack(from, xfer,
             count == kMaxFragments ? ~std::uint64_t{0}
                                    : (std::uint64_t{1} << count) - 1);
    return;
  }

  auto [it, fresh] = inbound_.try_emplace({from, xfer});
  Inbound& in = it->second;
  if (fresh) {
    in.count = count;
    in.total = total;
    in.frags.resize(count);
  } else if (in.count != count || in.total != total) {
    return;  // inconsistent with the transfer's first fragment: forged
  }
  const std::uint64_t bit = std::uint64_t{1} << frag;
  if (!(in.have & bit)) {
    in.have |= bit;
    in.frags[frag] = Bytes(r.get_blob(r.remaining()));
  } else {
    ++stats_.duplicates_suppressed;
  }
  send_ack(from, xfer, in.have);

  const std::uint64_t want = count == kMaxFragments
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << count) - 1;
  if (in.have != want) return;

  Bytes payload;
  payload.reserve(in.total);
  for (auto& f : in.frags) payload.insert(payload.end(), f.begin(), f.end());
  inbound_.erase(it);
  completed_[from].insert(xfer);
  if (payload.size() != total) return;  // length forged across fragments
  if (handler_) handler_(from, payload);
}

void TransportChannel::handle_ack(NodeId from, ByteReader& r) {
  const std::uint64_t xfer = r.get_u64();
  const std::uint64_t bitmap = r.get_u64();
  if (!r.ok()) return;
  auto it = outbound_.find(xfer);
  if (it == outbound_.end() || it->second.to != from) return;
  Outbound& t = it->second;
  t.acked |= bitmap & t.want;
  if (t.acked != t.want) return;
  if (t.rto_timer != kNoTimer) transport_.cancel(t.rto_timer);
  auto on_delivered = std::move(t.on_delivered);
  outbound_.erase(it);
  if (on_delivered) on_delivered();
}

void TransportChannel::on_message(NodeId from,
                                  std::span<const std::uint8_t> payload) {
  if (closed_) return;
  health_.heard_from(from, transport_.now());
  ByteReader r(payload);
  switch (r.get_u8()) {
    case kData:
      handle_data(from, r);
      break;
    case kAck:
      handle_ack(from, r);
      break;
    case kBeat:
      break;  // heard_from above is the entire effect
    default:
      break;  // unknown type: tolerate (forward compatibility)
  }
}

void TransportChannel::watch_peer(NodeId peer) {
  health_.watch(peer, transport_.now());
}

void TransportChannel::forget_peer(NodeId peer) { health_.forget(peer); }

void TransportChannel::enable_heartbeats(PeerCallback on_transition) {
  if (on_transition) on_transition_ = std::move(on_transition);
  if (beating_ || closed_) return;
  beating_ = true;
  beat_timer_ = transport_.schedule(health_.config().heartbeat_interval,
                                    [this] { heartbeat_tick(); });
}

void TransportChannel::heartbeat_tick() {
  if (closed_) return;
  ByteWriter w;
  w.put_u8(kBeat);
  const Bytes beat = w.take();
  for (NodeId peer : health_.watched()) {
    // Beating a dead peer is deliberate: if a partition heals, the beat's
    // arrival resurrects us on *their* side and their reply on ours.
    ++stats_.heartbeats_sent;
    ++stats_.frames_sent;
    transport_.send(self_, peer,
                    std::span<const std::uint8_t>(beat.data(), beat.size()));
  }
  for (const auto& tr : health_.check(transport_.now())) {
    if (on_transition_) on_transition_(tr.peer, tr.state);
  }
  beat_timer_ = transport_.schedule(health_.config().heartbeat_interval,
                                    [this] { heartbeat_tick(); });
}

}  // namespace mw
