// Pluggable transport: the seam between the distributed layer and the
// network it runs on, modeled on oscar's TransportReceiver / Simulated
// split. Everything above this interface — the reliable channel, rfork
// shipping, checkpoint deltas, failover — is written once against
// `Transport` and runs unchanged on either backend:
//
//  * SimTransport (sim_transport.hpp) — the deterministic event-queue
//    backend, wrapping the existing NetSim link model byte-for-byte. Kept
//    for the fault-matrix suites: a seed replays one exact schedule.
//  * SocketTransport (socket_transport.hpp) — UDP datagrams over a real
//    socket with an epoll-driven event loop. Kept for multi-process races:
//    a kill -9 is a real kill.
//
// The contract is deliberately unreliable datagrams plus timers: loss,
// duplication, reordering, and partitions are the *interface*, not an
// accident of one backend. Reliability is a layer above (TransportChannel),
// so the retry/backoff/deadline discipline is identical on both backends
// and a fault matrix written once covers them both.
//
// Threading: a Transport is single-threaded by construction. All sends,
// timer callbacks, and deliveries happen on the thread driving run() /
// run_until() / poll(). Cross-process concurrency (the interesting kind)
// comes from separate processes owning separate transports.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "dist/net_sim.hpp"  // NodeId, LinkModel
#include "util/vtime.hpp"

namespace mw {

/// Default frame ceiling, aligned with the socket backend's UDP datagram
/// budget so TransportChannel fragments identically on both backends.
inline constexpr std::size_t kMaxFrameBytes = 56 * 1024;

/// Delivery counters every backend maintains. Sim keeps the authoritative
/// loss/duplication accounting inside its NetSim too; these are the
/// backend-independent subset the benches and tests compare across
/// backends.
struct TransportStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t messages_dropped = 0;      // lost (stochastic or injected)
  std::uint64_t messages_partitioned = 0;  // blocked by a partition
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_delayed = 0;      // "net.delay" hits
  std::uint64_t messages_corrupt = 0;      // framing rejects (socket)
  std::uint64_t messages_unroutable = 0;   // no bound receiver / no address
  std::uint64_t messages_out_of_order = 0; // per-peer seq went backwards
  std::uint64_t send_errors = 0;           // syscall failures (socket)
};

/// A bound endpoint: gets every payload addressed to its node. Payload
/// spans are only valid for the duration of the call — copy to keep.
class TransportReceiver {
 public:
  virtual ~TransportReceiver() = default;
  virtual void on_message(NodeId from,
                          std::span<const std::uint8_t> payload) = 0;
};

using TimerId = std::uint64_t;
inline constexpr TimerId kNoTimer = 0;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers `receiver` as `node`'s endpoint. One receiver per node;
  /// re-binding replaces. The receiver must outlive the binding.
  virtual void bind(NodeId node, TransportReceiver& receiver) = 0;
  virtual void unbind(NodeId node) = 0;

  /// Fire-and-forget datagram. Returns false only when the send could not
  /// even be attempted (transport closed, payload over max_payload(), no
  /// route) — a `true` promises nothing about delivery.
  virtual bool send(NodeId from, NodeId to,
                    std::span<const std::uint8_t> payload) = 0;

  /// One-shot timer `delay` ticks from now (virtual ticks on sim, real
  /// microseconds on sockets). Returns a handle for cancel(); fired and
  /// cancelled timers are both safe to cancel again.
  virtual TimerId schedule(VDuration delay, std::function<void()> fn) = 0;
  virtual void cancel(TimerId id) = 0;

  /// The backend's clock: the event-queue clock (sim) or a monotonic
  /// microsecond clock starting near 0 at construction (socket).
  virtual VTime now() const = 0;

  /// Drives deliveries and timers until no work is pending (sim: queue
  /// drained; socket: no outstanding timers — arrivals need run_until).
  virtual void run() = 0;
  /// Drives until the clock reaches `deadline` or the transport closes.
  virtual void run_until(VTime deadline) = 0;
  /// One step of work if any is due; returns whether anything ran.
  virtual bool poll() = 0;

  /// Stops delivering; further sends return false. Idempotent.
  virtual void close() = 0;

  /// Partition control, symmetric with LinkModel::block: while blocked,
  /// frames from -> to are swallowed (counted in messages_partitioned).
  /// The socket backend interprets pairs involving nodes it hosts; others
  /// are recorded but moot.
  virtual void set_link_blocked(NodeId from, NodeId to, bool blocked) = 0;

  virtual const TransportStats& stats() const = 0;
  virtual bool simulated() const = 0;
  /// Largest payload one send() may carry (frames are not fragmented at
  /// this layer; TransportChannel fragments above it).
  virtual std::size_t max_payload() const = 0;
};

/// Heartbeat-driven peer liveness, shared by both backends. The channel
/// feeds every frame arrival into heard_from(); a periodic check() walks
/// the table and reports transitions. Suspect peers get grace (a slow peer
/// is not a dead peer — demoting on first silence would turn every GC
/// pause into a failover); dead peers are failover-eligible.
enum class PeerState { kAlive, kSuspect, kDead };

const char* to_string(PeerState s);

struct PeerHealthConfig {
  VDuration heartbeat_interval = vt_ms(25);  // how often we emit beats
  VDuration suspect_after = vt_ms(100);      // silence before kSuspect
  VDuration dead_after = vt_ms(300);         // silence before kDead
};

class PeerHealth {
 public:
  explicit PeerHealth(PeerHealthConfig config = {}) : config_(config) {}

  /// Starts tracking `peer` as alive as of `now`.
  void watch(NodeId peer, VTime now);
  void forget(NodeId peer);

  /// Any frame from the peer counts as life — data and acks included, so
  /// a chatty peer never pays heartbeat overhead. A dead peer heard from
  /// again is resurrected (partitions heal).
  void heard_from(NodeId peer, VTime now);

  PeerState state(NodeId peer, VTime now) const;

  struct Transition {
    NodeId peer = 0;
    PeerState state = PeerState::kAlive;
  };
  /// Re-evaluates every watched peer at `now`; returns the transitions
  /// since the last check (suspect, dead, or back to alive) and emits
  /// kNetPeerSuspect / kNetPeerDead trace events for the bad ones.
  std::vector<Transition> check(VTime now);

  const PeerHealthConfig& config() const { return config_; }
  std::vector<NodeId> watched() const;

 private:
  PeerHealthConfig config_;
  struct Entry {
    VTime last_heard = 0;
    PeerState reported = PeerState::kAlive;
  };
  std::map<NodeId, Entry> peers_;  // ordered: deterministic iteration
};

/// The shared send-side fault decision both backends apply per frame, in
/// this order: partition (blocked link pair, then the "net.partition"
/// point), then "net.drop", "net.dup", "net.delay". Partition wins
/// outright; drop beats dup; delay stacks onto a duplicated send. All four
/// points draw from their own seeded streams, so a matrix arms any subset
/// without perturbing the others.
struct FrameFaults {
  bool partitioned = false;
  bool drop = false;
  bool duplicate = false;
  VDuration delay = 0;
};
FrameFaults query_frame_faults(NodeId from, NodeId to, VTime now,
                               const LinkModel* link);

}  // namespace mw
