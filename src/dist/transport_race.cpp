#include "dist/transport_race.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mw {

namespace {

constexpr std::uint8_t kJoin = 1;
constexpr std::uint8_t kFork = 2;
constexpr std::uint8_t kCkpt = 3;
constexpr std::uint8_t kResult = 4;
constexpr std::uint8_t kShutdown = 5;

// Knuth's MMIX multiplier: cheap, and every step changes every bit of the
// accumulator, so a restore that silently lost state cannot pass the
// reference check by luck.
constexpr std::uint64_t kStepMultiplier = 6364136223846793005ull;

constexpr std::uint64_t kStepOffset = 0;  // within segment "race"
constexpr std::uint64_t kAccOffset = 8;
constexpr std::uint64_t kScratchPages = 8;

std::uint64_t step_once(std::uint64_t acc, std::uint64_t step) {
  return acc * kStepMultiplier + step;
}

Bytes encode_join() {
  ByteWriter w;
  w.put_u8(kJoin);
  return w.take();
}

Bytes encode_shutdown() {
  ByteWriter w;
  w.put_u8(kShutdown);
  return w.take();
}

}  // namespace

std::uint64_t race_reference(std::uint64_t steps) {
  std::uint64_t acc = 0;
  for (std::uint64_t s = 0; s < steps; ++s) acc = step_once(acc, s);
  return acc;
}

// ---------------------------------------------------------------- worker --

RaceWorker::RaceWorker(Transport& transport, NodeId self, NodeId coordinator,
                       RaceConfig config)
    : transport_(transport),
      self_(self),
      coordinator_(coordinator),
      config_(config),
      channel_(transport, self, config.retry, config.health, config.seed) {
  channel_.set_handler(
      [this](NodeId from, const Bytes& payload) { on_payload(from, payload); });
  channel_.watch_peer(coordinator_);
  channel_.enable_heartbeats([this](NodeId peer, PeerState state) {
    // An orphaned worker must exit, not spin: a dead coordinator means
    // nobody will ever collect a result or send kShutdown.
    if (peer == coordinator_ && state == PeerState::kDead) done_ = true;
  });
  channel_.send(coordinator_, encode_join());
}

void RaceWorker::kill() {
  done_ = true;
  channel_.close();
  tasks_.clear();
}

void RaceWorker::on_payload(NodeId from, const Bytes& payload) {
  if (from != coordinator_ || done_) return;
  ByteReader r(std::span<const std::uint8_t>(payload.data(), payload.size()));
  switch (r.get_u8()) {
    case kFork:
      start_task(payload);
      break;
    case kShutdown:
      done_ = true;
      break;
    default:
      break;
  }
}

void RaceWorker::start_task(const Bytes& payload) {
  ByteReader r(std::span<const std::uint8_t>(payload.data(), payload.size()));
  r.get_u8();  // kFork
  const std::uint64_t alt = r.get_u64();
  const std::uint64_t steps = r.get_u64();
  const std::uint64_t per_ckpt = r.get_u64();
  CheckpointImage image;
  if (!r.ok() || !parse_checkpoint_blob(r.get_blob(r.remaining()), image))
    return;
  RestoreResult restored = restore_checkpoint(image);
  if (!restored.ok) return;
  const auto race = restored.space.find_segment("race");
  const auto scratch = restored.space.find_segment("scratch");
  if (!race || !scratch) return;

  Task t;
  t.alt = alt;
  t.steps = steps;
  t.per_ckpt = std::max<std::uint64_t>(per_ckpt, 1);
  t.race_base = race->base;
  t.scratch_base = scratch->base;
  t.scratch_size = scratch->size;
  t.start_step = restored.space.load<std::uint64_t>(race->base + kStepOffset);
  t.space = std::move(restored.space);
  t.snapshot = t.space.fork();  // the COW base the first delta diffs against
  t.last_shipped = std::move(image);
  tasks_.insert_or_assign(alt, std::move(t));
  transport_.schedule(config_.slice_delay,
                      [this, alt] { run_slice(alt); });
}

void RaceWorker::run_slice(std::uint64_t alt) {
  if (done_) return;
  auto it = tasks_.find(alt);
  if (it == tasks_.end()) return;
  Task& t = it->second;

  std::uint64_t step = t.space.load<std::uint64_t>(t.race_base + kStepOffset);
  std::uint64_t acc = t.space.load<std::uint64_t>(t.race_base + kAccOffset);
  const std::uint64_t until = std::min(t.steps, step + t.per_ckpt);
  const std::uint64_t slots = t.scratch_size / 8;
  for (; step < until; ++step) {
    acc = step_once(acc, step);
    // The scratch writes are the task's working set: they are what gives
    // each delta image real pages to ship.
    t.space.store<std::uint64_t>(t.scratch_base + (step % slots) * 8, acc);
  }
  t.space.store<std::uint64_t>(t.race_base + kStepOffset, step);
  t.space.store<std::uint64_t>(t.race_base + kAccOffset, acc);

  if (step >= t.steps) {
    finish_task(t);
    tasks_.erase(it);
    return;
  }
  ship_delta(t);
  transport_.schedule(config_.slice_delay, [this, alt] { run_slice(alt); });
}

void RaceWorker::ship_delta(Task& t) {
  Registers regs;
  regs.pc = t.space.load<std::uint64_t>(t.race_base + kStepOffset);
  regs.gp[0] = t.alt;
  CheckpointImage delta =
      take_delta_checkpoint(t.space, regs, t.snapshot, t.last_shipped);
  ByteWriter w;
  w.put_u8(kCkpt);
  w.put_u64(t.alt);
  w.put_u64(regs.pc);
  w.put_bytes(std::span<const std::uint8_t>(delta.blob.data(),
                                            delta.blob.size()));
  channel_.send(coordinator_, w.take());
  t.snapshot = t.space.fork();
  t.last_shipped = std::move(delta);
}

void RaceWorker::finish_task(Task& t) {
  ByteWriter w;
  w.put_u8(kResult);
  w.put_u64(t.alt);
  w.put_u64(t.space.load<std::uint64_t>(t.race_base + kStepOffset));
  w.put_u64(t.space.load<std::uint64_t>(t.race_base + kAccOffset));
  w.put_u64(t.start_step);
  channel_.send(coordinator_, w.take());
}

// ----------------------------------------------------------- coordinator --

RaceCoordinator::RaceCoordinator(Transport& transport, NodeId self,
                                 RaceConfig config)
    : transport_(transport),
      self_(self),
      config_(config),
      channel_(transport, self, config.retry, config.health,
               config.seed ^ 0x636f6f7264ull) {
  channel_.set_handler(
      [this](NodeId from, const Bytes& payload) { on_payload(from, payload); });
  channel_.enable_heartbeats([this](NodeId peer, PeerState state) {
    on_peer_transition(peer, state);
  });
}

std::size_t RaceCoordinator::chain_length(std::uint64_t alt) const {
  auto it = alts_.find(alt);
  return it == alts_.end() ? 0 : it->second.chain.size();
}

CheckpointImage RaceCoordinator::make_initial_image(std::uint64_t steps) {
  AddressSpace space(config_.page_size, config_.num_pages);
  const Segment race = space.alloc_segment("race", config_.page_size);
  const Segment scratch = space.alloc_segment(
      "scratch", kScratchPages * config_.page_size);
  space.store<std::uint64_t>(race.base + kStepOffset, 0);
  space.store<std::uint64_t>(race.base + kAccOffset, 0);
  // Touch the scratch segment so its pages are resident in the full image
  // and every later delta diffs against real content.
  space.store<std::uint64_t>(scratch.base, steps);
  Registers regs;
  return take_checkpoint(space, regs);
}

void RaceCoordinator::start(const std::vector<std::uint64_t>& steps) {
  MW_CHECK(!started_);
  MW_CHECK(steps.size() <= workers_.size());
  started_ = true;
  outcome_.alts.resize(steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    Alt alt;
    alt.steps = steps[i];
    auto [it, fresh] = alts_.emplace(i, std::move(alt));
    MW_CHECK(fresh);
    dispatch(i, workers_[i], make_initial_image(steps[i]));
  }
}

void RaceCoordinator::dispatch(std::uint64_t alt, NodeId worker,
                               const CheckpointImage& image) {
  Alt& a = alts_.at(alt);
  a.assigned = worker;
  a.chain.clear();
  a.chain.push_back(image);
  ByteWriter w;
  w.put_u8(kFork);
  w.put_u64(alt);
  w.put_u64(a.steps);
  w.put_u64(config_.steps_per_checkpoint);
  w.put_bytes(std::span<const std::uint8_t>(image.blob.data(),
                                            image.blob.size()));
  const Bytes payload = w.take();
  outcome_.bytes_shipped += payload.size();
  const std::uint64_t alt_id = alt;
  channel_.send(worker, payload, /*on_delivered=*/{},
                /*on_failed=*/[this, alt_id] {
                  // Retries exhausted before the worker even had the work:
                  // treat it like a death and move the alt elsewhere.
                  fail_over(alt_id);
                });
}

void RaceCoordinator::on_payload(NodeId from, const Bytes& payload) {
  ByteReader r(std::span<const std::uint8_t>(payload.data(), payload.size()));
  switch (r.get_u8()) {
    case kJoin: {
      if (std::find(workers_.begin(), workers_.end(), from) ==
          workers_.end()) {
        workers_.push_back(from);
        channel_.watch_peer(from);
      }
      break;
    }
    case kCkpt: {
      const std::uint64_t alt = r.get_u64();
      r.get_u64();  // step, informational
      CheckpointImage image;
      if (!r.ok() || !parse_checkpoint_blob(r.get_blob(r.remaining()), image))
        break;
      auto it = alts_.find(alt);
      if (it == alts_.end() || it->second.result.completed) break;
      Alt& a = it->second;
      // Only a delta that chains on our newest image extends the chain; a
      // stale shipment from a superseded worker dangles and is dropped.
      if (!image.delta || a.chain.empty() ||
          image.base_checksum != a.chain.back().checksum)
        break;
      ++outcome_.checkpoints_received;
      outcome_.bytes_shipped += image.blob.size();
      a.chain.push_back(std::move(image));
      break;
    }
    case kResult: {
      const std::uint64_t alt = r.get_u64();
      const std::uint64_t final_step = r.get_u64();
      const std::uint64_t acc = r.get_u64();
      const std::uint64_t start = r.get_u64();
      if (!r.ok()) break;
      auto it = alts_.find(alt);
      if (it == alts_.end() || it->second.result.completed) break;
      // A result from a superseded worker is still a correct result (the
      // race does not care who crossed the line) — accept either.
      RaceAltOutcome& res = it->second.result;
      res.completed = true;
      res.final_step = final_step;
      res.accumulator = acc;
      res.start_step = start;
      res.accumulator_ok = acc == race_reference(it->second.steps);
      maybe_finish();
      break;
    }
    default:
      break;
  }
}

void RaceCoordinator::on_peer_transition(NodeId peer, PeerState state) {
  if (state != PeerState::kDead) return;
  for (auto& [alt, a] : alts_) {
    if (!a.result.completed && a.assigned == peer) fail_over(alt);
  }
}

void RaceCoordinator::fail_over(std::uint64_t alt) {
  auto it = alts_.find(alt);
  if (it == alts_.end() || it->second.result.completed) return;
  Alt& a = it->second;
  a.assigned.reset();

  RestoreResult restored = restore_chain(a.chain);
  if (!restored.ok) {
    // A chain that cannot restore is unrecoverable state loss; the alt
    // reports incomplete rather than silently restarting from zero.
    a.result.completed = true;
    a.result.accumulator_ok = false;
    maybe_finish();
    return;
  }

  ++a.result.failovers;
  ++outcome_.failovers;
  if (a.result.failovers > config_.max_failovers) {
    finish_locally(alt, std::move(restored));
    return;
  }

  // A standby: joined, unassigned, and not known-dead.
  const VTime now = transport_.now();
  for (NodeId w : workers_) {
    const bool busy =
        std::any_of(alts_.begin(), alts_.end(), [&](const auto& kv) {
          return kv.second.assigned == w && !kv.second.result.completed;
        });
    if (busy || channel_.health().state(w, now) == PeerState::kDead) continue;
    // Re-seal the restored state as a fresh full image: the standby gets
    // one blob, and the new chain roots at the point of death, not at 0.
    Registers regs = restored.regs;
    dispatch(alt, w, take_checkpoint(restored.space, regs));
    return;
  }
  // Fully partitioned from every worker: graceful degradation — finish
  // this alternative locally from the shipped chain.
  finish_locally(alt, std::move(restored));
}

void RaceCoordinator::finish_locally(std::uint64_t alt,
                                     RestoreResult restored) {
  Alt& a = alts_.at(alt);
  const auto race = restored.space.find_segment("race");
  const auto scratch = restored.space.find_segment("scratch");
  if (!race || !scratch) {
    a.result.completed = true;
    a.result.accumulator_ok = false;
    maybe_finish();
    return;
  }
  std::uint64_t step =
      restored.space.load<std::uint64_t>(race->base + kStepOffset);
  std::uint64_t acc =
      restored.space.load<std::uint64_t>(race->base + kAccOffset);
  a.result.start_step = step;
  for (; step < a.steps; ++step) acc = step_once(acc, step);

  a.result.completed = true;
  a.result.final_step = step;
  a.result.accumulator = acc;
  a.result.finished_locally = true;
  a.result.accumulator_ok = acc == race_reference(a.steps);
  outcome_.used_local_fallback = true;
  maybe_finish();
}

void RaceCoordinator::maybe_finish() {
  if (done_ || !started_) return;
  for (const auto& [alt, a] : alts_) {
    if (!a.result.completed) return;
  }
  done_ = true;
  for (std::size_t i = 0; i < outcome_.alts.size(); ++i) {
    outcome_.alts[i] = alts_.at(i).result;
  }
  outcome_.all_completed =
      std::all_of(outcome_.alts.begin(), outcome_.alts.end(),
                  [](const RaceAltOutcome& r) { return r.accumulator_ok; });
  // "Winner" = lowest alt index among the completed (arrival order is not
  // recorded per-message; index order is deterministic on both backends).
  outcome_.winner = 0;
  const Bytes bye = encode_shutdown();
  for (NodeId w : workers_) channel_.send(w, bye);
}

}  // namespace mw
