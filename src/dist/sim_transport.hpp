// SimTransport: the deterministic Transport backend, wrapping the existing
// NetSim/LinkModel stack byte-for-byte. Every stochastic decision (loss,
// duplication, jitter) is drawn by the embedded NetSim in the same per-send
// order as before the Transport layer existed, so a (seed, send-sequence)
// pair replays the exact schedule the pre-transport dist tests pinned down.
// All nodes of a simulated cluster live on one SimTransport, sharing one
// EventQueue — the multiple-worlds DES substrate is the network.
#pragma once

#include <map>
#include <memory>

#include "dist/transport.hpp"
#include "util/bytes.hpp"

namespace mw {

class SimTransport : public Transport {
 public:
  SimTransport(EventQueue& queue, LinkModel link, std::uint64_t seed = 0,
               std::size_t max_payload = kMaxFrameBytes)
      : net_(queue, std::move(link), seed), max_payload_(max_payload) {}

  // The embedded simulator: legacy stats, and the seeded stream the
  // determinism contract is defined against.
  NetSim& net() { return net_; }
  const NetSim& net() const { return net_; }

  void bind(NodeId node, TransportReceiver& receiver) override;
  void unbind(NodeId node) override;
  bool send(NodeId from, NodeId to,
            std::span<const std::uint8_t> payload) override;
  TimerId schedule(VDuration delay, std::function<void()> fn) override;
  void cancel(TimerId id) override;
  VTime now() const override { return net_.queue().now(); }
  void run() override;
  void run_until(VTime deadline) override;
  bool poll() override;
  void close() override { closed_ = true; }
  void set_link_blocked(NodeId from, NodeId to, bool blocked) override;
  const TransportStats& stats() const override;
  bool simulated() const override { return true; }
  std::size_t max_payload() const override { return max_payload_; }

 private:
  mutable NetSim net_;  // queue access in now() is const from outside
  std::size_t max_payload_;
  bool closed_ = false;
  std::map<NodeId, TransportReceiver*> receivers_;
  TimerId next_timer_ = 1;
  std::map<TimerId, std::shared_ptr<bool>> live_timers_;
  mutable TransportStats stats_;
};

}  // namespace mw
