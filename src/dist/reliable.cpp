#include "dist/reliable.hpp"

#include <algorithm>
#include <cmath>

#include "trace/trace.hpp"
#include "util/check.hpp"

namespace mw {

VDuration RetryPolicy::rto_for(std::size_t attempt) const {
  double rto = static_cast<double>(rto_initial) *
               std::pow(backoff, static_cast<double>(attempt));
  rto = std::min(rto, static_cast<double>(rto_cap));
  return static_cast<VDuration>(std::llround(rto));
}

VDuration RetryPolicy::rto_jittered(std::size_t attempt, Rng& rng) const {
  // Always draw: a policy toggling jitter on must not shift the caller's
  // stream for every draw after this one.
  const double scale = 1.0 + rng.next_double() * std::max(jitter, 0.0);
  return static_cast<VDuration>(
      std::llround(static_cast<double>(rto_for(attempt)) * scale));
}

VDuration RetryPolicy::exhausted_budget() const {
  VDuration total = 0;
  for (std::size_t k = 0; k < max_attempts; ++k) total += rto_for(k);
  return total;
}

void ReliableChannel::send(NodeId from, NodeId to, std::size_t bytes,
                           std::function<void()> on_delivered,
                           std::function<void()> on_failed) {
  MW_CHECK(policy_.max_attempts >= 1);
  ++stats_.sends;
  auto t = std::make_shared<Transfer>();
  attempt(t, from, to, bytes, 0,
          std::make_shared<std::function<void()>>(std::move(on_delivered)),
          std::make_shared<std::function<void()>>(std::move(on_failed)));
}

void ReliableChannel::attempt(
    std::shared_ptr<Transfer> t, NodeId from, NodeId to, std::size_t bytes,
    std::size_t k, std::shared_ptr<std::function<void()>> on_delivered,
    std::shared_ptr<std::function<void()>> on_failed) {
  if (k > 0) ++stats_.retransmissions;
  ++stats_.frames_sent;

  // Data leg. The arrival handler also runs for duplicate copies the link
  // materializes on its own — the dedup below covers both sources.
  net_.send(from, to, bytes, [this, t, from, to, on_delivered] {
    if (!t->delivered) {
      t->delivered = true;
      if (*on_delivered) (*on_delivered)();
    } else {
      ++stats_.duplicates_suppressed;
    }
    // (Re-)ack every copy that arrives: a lost ack must not strand the
    // sender if a retransmitted data message gets through.
    ++stats_.acks_sent;
    ++stats_.frames_sent;
    net_.send(to, from, policy_.ack_bytes, [t] { t->acked = true; });
  });

  // RTO timer for this attempt.
  const VDuration rto = policy_.rto_for(k);
  net_.queue().schedule_after(
      rto, [this, t, from, to, bytes, k, rto, on_delivered, on_failed] {
        if (t->acked || t->dead) return;
        // The transfer is still unacked at RTO expiry: a timeout, whose
        // wait we just paid as backoff.
        ++stats_.timeouts;
        stats_.backoff_total += rto;
        if (k + 1 >= policy_.max_attempts) {
          t->dead = true;
          ++stats_.failures;
          MW_TRACE_EVENT(trace::EventKind::kNetTimeout, kNoPid, kNoPid, k + 1,
                         0, net_.queue().now());
          if (*on_failed) (*on_failed)();
          return;
        }
        MW_TRACE_EVENT(trace::EventKind::kNetRetransmit, kNoPid, kNoPid,
                       k + 1, static_cast<std::uint64_t>(rto),
                       net_.queue().now());
        attempt(t, from, to, bytes, k + 1, on_delivered, on_failed);
      });
}

ReliableTransfer reliable_transfer(const LinkModel& link, std::size_t bytes,
                                   Rng& rng, const RetryPolicy& policy) {
  MW_CHECK(policy.max_attempts >= 1);
  ReliableTransfer t;
  const auto jitter_draw = [&]() -> VDuration {
    return link.jitter > 0
               ? static_cast<VDuration>(rng.next_below(
                     static_cast<std::uint64_t>(link.jitter) + 1))
               : 0;
  };
  for (std::size_t k = 0; k < policy.max_attempts; ++k) {
    ++t.attempts;
    const bool data_lost = link.loss_probability > 0.0 &&
                           rng.next_bool(link.loss_probability);
    const bool ack_lost = link.loss_probability > 0.0 &&
                          rng.next_bool(link.loss_probability);
    if (data_lost || ack_lost) {
      t.elapsed += policy.rto_for(k);
      continue;
    }
    t.elapsed += link.transfer_time(bytes) + jitter_draw() +
                 link.transfer_time(policy.ack_bytes) + jitter_draw();
    t.ok = true;
    return t;
  }
  return t;  // retries exhausted: t.ok == false
}

}  // namespace mw
