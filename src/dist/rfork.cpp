#include "dist/rfork.hpp"

#include <cmath>

#include "fault/fault.hpp"
#include "util/check.hpp"

namespace mw {

RforkResult RemoteForker::full_copy(const AddressSpace& src) const {
  RforkResult r;
  const CheckpointImage img = take_checkpoint(src, Registers{});
  r.pages_shipped = img.resident_pages;
  r.bytes_shipped = img.size_bytes();

  const auto pages = static_cast<VDuration>(img.resident_pages);
  r.checkpoint_cost = cost_.checkpoint_base + cost_.checkpoint_per_page * pages;
  // NFS protocol: image to the file server, exec request to the remote
  // host, image from the file server to the remote host.
  r.transfer_cost = link_.transfer_time(img.size_bytes())   // write to NFS
                    + link_.transfer_time(128)              // exec request
                    + link_.transfer_time(img.size_bytes());  // remote read
  r.restore_cost = cost_.restore_base + cost_.restore_per_page * pages;

  r.start_elapsed = r.checkpoint_cost + r.transfer_cost + r.restore_cost;
  r.total_elapsed = r.start_elapsed;
  return r;
}

RforkResult RemoteForker::full_copy_unreliable(const AddressSpace& src,
                                               Rng& rng,
                                               const RetryPolicy& policy) const {
  RforkResult r;
  const CheckpointImage img = take_checkpoint(src, Registers{});
  r.pages_shipped = img.resident_pages;
  r.bytes_shipped = img.size_bytes();

  const auto pages = static_cast<VDuration>(img.resident_pages);
  r.checkpoint_cost = cost_.checkpoint_base + cost_.checkpoint_per_page * pages;

  // A crashed remote node fails the rfork after the sender has burned its
  // full retry budget discovering the silence.
  const FaultAction fault = MW_FAULT_POINT("rfork.transfer");
  if (fault.kind == FaultKind::kNodeCrash ||
      fault.kind == FaultKind::kFailAlternative) {
    r.ok = false;
    r.transfer_cost = policy.exhausted_budget();
    r.start_elapsed = r.checkpoint_cost + r.transfer_cost;
    r.total_elapsed = r.start_elapsed;
    return r;
  }

  // The same three NFS-protocol messages as full_copy, each sent reliably.
  const std::size_t legs[3] = {img.size_bytes(), 128, img.size_bytes()};
  for (std::size_t bytes : legs) {
    const ReliableTransfer t = reliable_transfer(link_, bytes, rng, policy);
    r.transfer_cost += t.elapsed;
    r.retransmissions += t.attempts - 1;
    if (!t.ok) {
      r.ok = false;
      r.start_elapsed = r.checkpoint_cost + r.transfer_cost;
      r.total_elapsed = r.start_elapsed;
      return r;
    }
  }
  r.restore_cost = cost_.restore_base + cost_.restore_per_page * pages;
  r.start_elapsed = r.checkpoint_cost + r.transfer_cost + r.restore_cost;
  r.total_elapsed = r.start_elapsed;
  return r;
}

RforkResult RemoteForker::on_demand(const AddressSpace& src,
                                    double touch_fraction) const {
  MW_CHECK(touch_fraction >= 0.0 && touch_fraction <= 1.0);
  RforkResult r;
  const PageTable& table = src.table();
  std::size_t resident = table.resident_pages();

  // Ship only the control block and the page map.
  const std::size_t map_bytes = 256 + table.num_pages() * 8;
  r.bytes_shipped = map_bytes;
  r.transfer_cost = link_.transfer_time(map_bytes) + link_.transfer_time(128);
  r.restore_cost = cost_.restore_base;
  r.start_elapsed = r.transfer_cost + r.restore_cost;

  // Expected run-time faulting: each touched page is one request/response
  // round trip plus a page-sized transfer plus service time.
  const auto touched = static_cast<std::size_t>(
      std::llround(touch_fraction * static_cast<double>(resident)));
  r.pages_shipped = touched;
  const VDuration per_fault = link_.transfer_time(64)  // request
                              + link_.transfer_time(table.page_size())
                              + cost_.remote_fault_service;
  r.fault_cost = per_fault * static_cast<VDuration>(touched);
  r.bytes_shipped += touched * table.page_size();
  r.total_elapsed = r.start_elapsed + r.fault_cost;
  return r;
}

}  // namespace mw
