// The wall-clock thread backend for alternative blocks: one OS thread per
// alternative, at-most-once synchronization by CAS, cooperative
// elimination. On a multi-core host this delivers real response-time wins;
// semantics are identical to the virtual backend.
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace mw {

namespace internal {

AltOutcome run_alternatives_thread(Runtime& rt, World& parent,
                                   const std::vector<Alternative>& alts,
                                   const AltOptions& opts) {
  const std::size_t n = alts.size();
  AltOutcome out;
  out.alts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.alts[i].index = i + 1;
    out.alts[i].name = alts[i].name;
  }
  if (n == 0) {
    out.failed = true;
    out.failure = AltFailure::kNoAlternatives;
    return out;
  }

  const std::uint64_t group = rt.next_alt_group();
  ProcessTable& table = rt.processes();
  Stopwatch block_clock;

  std::vector<std::size_t> spawned;
  for (std::size_t i = 0; i < n; ++i) {
    if ((opts.guard_phases & kGuardPreSpawn) && alts[i].guard &&
        !alts[i].guard(parent)) {
      continue;
    }
    spawned.push_back(i);
    out.alts[i].spawned = true;
  }
  if (spawned.empty()) {
    out.failed = true;
    out.failure = AltFailure::kAllFailed;
    return out;
  }
  const std::size_t m = spawned.size();

  // Spawn: fork the worlds up front (serial, charged as setup), then start
  // one thread per alternative; the OS plays the role of the processors.
  std::vector<Pid> sibling_pids;
  sibling_pids.reserve(m);
  for (std::size_t i : spawned)
    sibling_pids.push_back(table.create(parent.pid(), group, alts[i].name));

  MW_TRACE_EVENT(trace::EventKind::kAltBlockBegin, parent.pid(), kNoPid,
                 group, m, 0);
  Stopwatch setup_clock;
  std::vector<World> worlds;
  worlds.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    MW_TRACE_EVENT(trace::EventKind::kAltSpawn, sibling_pids[k], parent.pid(),
                   group, spawned[k] + 1,
                   static_cast<VTime>(block_clock.elapsed_us()));
    worlds.push_back(parent.fork_alternative(sibling_pids[k], sibling_pids));
    table.set_status(sibling_pids[k], ProcStatus::kRunning);
  }
  out.overhead.setup = static_cast<VDuration>(setup_clock.elapsed_us());

  enum class End { kPending, kSynced, kAborted, kCancelled };
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    // CAS arbiter for the at-most-once sync (§2.2.1). The parent never
    // reads this directly; it waits for `synced`, which the winning thread
    // publishes under the mutex *after* its results are in place.
    std::atomic<int> race{-1};
    int synced = -1;
    std::size_t done = 0;
  } shared;

  std::vector<CancelToken> cancels(m);
  std::vector<Bytes> results(m);
  std::vector<End> ends(m, End::kPending);

  std::vector<std::thread> threads;
  threads.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    threads.emplace_back([&, k] {
      const std::size_t i = spawned[k];
      const Alternative& alt = alts[i];
      World& child = worlds[k];
      AltContext ctx(child, i + 1, rt.rng_for(group, i + 1), &cancels[k],
                     /*virtual_mode=*/false);
      MW_TRACE_EVENT(trace::EventKind::kAltChildBegin, sibling_pids[k],
                     kNoPid, group, 0,
                     static_cast<VTime>(block_clock.elapsed_us()));
      End end = End::kAborted;
      try {
        bool success = true;
        if ((opts.guard_phases & kGuardInChild) && alt.guard &&
            !alt.guard(child)) {
          success = false;
        } else {
          alt.body(ctx);
        }
        if (success && (opts.guard_phases & kGuardAtSync) && alt.guard &&
            !alt.guard(child)) {
          success = false;
        }
        if (success && alt.accept && !alt.accept(child)) success = false;
        if (success) {
          int expected = -1;
          end = shared.race.compare_exchange_strong(expected,
                                                    static_cast<int>(k))
                    ? End::kSynced
                    : End::kCancelled;  // lost the race: eliminated
        }
      } catch (const CancelledError&) {
        end = End::kCancelled;
      } catch (const AltFailed&) {
        end = End::kAborted;
      } catch (const AltHung&) {
        // Only reachable if hang() degrades (no cancel token); treat as a
        // plain abort so the block can still decide.
        end = End::kAborted;
      } catch (const std::exception&) {
        end = End::kAborted;
      } catch (...) {
        // Foreign exceptions (e.g. an injected crash) terminate the child
        // as Failed instead of calling std::terminate on the whole block.
        end = End::kAborted;
      }
      results[k] = ctx.result();
      MW_TRACE_EVENT(trace::EventKind::kAltChildEnd, sibling_pids[k], kNoPid,
                     group, child.space().table().stats().pages_copied,
                     static_cast<VTime>(block_clock.elapsed_us()));
      if (end == End::kSynced)
        MW_TRACE_EVENT(trace::EventKind::kAltSync, sibling_pids[k],
                       parent.pid(), group, 0,
                       static_cast<VTime>(block_clock.elapsed_us()));
      {
        std::lock_guard<std::mutex> lk(shared.mu);
        ends[k] = end;
        if (end == End::kSynced) shared.synced = static_cast<int>(k);
        ++shared.done;
      }
      shared.cv.notify_all();
    });
  }

  // alt_wait in the parent: blocked until a child synchronizes, every child
  // ends, or the timeout elapses.
  MW_TRACE_EVENT(trace::EventKind::kAltWait, parent.pid(), kNoPid, group, 0,
                 static_cast<VTime>(block_clock.elapsed_us()));
  int wk = -1;
  bool all_done = false;
  {
    std::unique_lock<std::mutex> lk(shared.mu);
    auto decided = [&] { return shared.synced >= 0 || shared.done == m; };
    if (opts.timeout == kVTimeMax) {
      shared.cv.wait(lk, decided);
    } else {
      shared.cv.wait_for(lk, std::chrono::microseconds(opts.timeout),
                         decided);
    }
    wk = shared.synced;
    all_done = shared.done == m;
  }

  if (wk < 0 && !all_done) {
    // Timeout. Cancel everyone and wait out the stragglers; if a child
    // synchronized while the timeout fired, the at-most-once sync stands
    // and it is honoured as the winner.
    for (auto& c : cancels) c.request();
    for (auto& t : threads) t.join();
    threads.clear();
    std::lock_guard<std::mutex> lk(shared.mu);
    wk = shared.synced;
    if (wk < 0) {
      out.failed = true;
      out.failure = AltFailure::kTimeout;
    }
  }

  if (wk >= 0) {
    // Eliminate the losing siblings (cooperative: they unwind at their next
    // checkpoint). Asynchronous elimination resumes the parent immediately;
    // synchronous waits for their termination first (§2.2.1).
    Stopwatch elim_clock;
    for (std::size_t k = 0; k < m; ++k)
      if (static_cast<int>(k) != wk) cancels[k].request();
    if (opts.elimination == Elimination::kSynchronous) {
      std::unique_lock<std::mutex> lk(shared.mu);
      shared.cv.wait(lk, [&] { return shared.done == m; });
    }
    out.overhead.elimination = static_cast<VDuration>(elim_clock.elapsed_us());

    const auto wku = static_cast<std::size_t>(wk);
    const std::size_t wi = spawned[wku];
    out.winner = wi;
    out.winner_name = alts[wi].name;
    out.alts[wi].pages_copied = worlds[wku].space().table().stats().pages_copied;

    Stopwatch commit_clock;
    table.set_status(sibling_pids[wku], ProcStatus::kSynced);
    out.result = std::move(results[wku]);
    parent.commit_from(std::move(worlds[wku]));
    out.overhead.commit = static_cast<VDuration>(commit_clock.elapsed_us());
    out.elapsed = static_cast<VDuration>(block_clock.elapsed_us());
  } else if (all_done) {
    out.failed = true;
    out.failure = AltFailure::kAllFailed;
    out.elapsed = static_cast<VDuration>(block_clock.elapsed_us());
  } else {
    out.elapsed = static_cast<VDuration>(block_clock.elapsed_us());
  }

  // Join everything before the worlds vector goes out of scope. Under
  // asynchronous elimination the response time was already recorded; this
  // join is the throughput cost the paper accepts.
  for (auto& t : threads) t.join();

  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t i = spawned[k];
    AltReport& rep = out.alts[i];
    rep.pid = sibling_pids[k];
    rep.ran = true;
    if (static_cast<int>(k) != wk)
      rep.pages_copied = worlds[k].space().table().stats().pages_copied;
    rep.success = static_cast<int>(k) == wk;
    switch (ends[k]) {
      case End::kSynced:
        break;  // already kSynced (or eliminated, if it raced a timeout)
      case End::kAborted:
        table.set_status(sibling_pids[k], ProcStatus::kFailed);
        MW_TRACE_EVENT(trace::EventKind::kAltAbort, sibling_pids[k], kNoPid,
                       group, 0,
                       static_cast<VTime>(block_clock.elapsed_us()));
        break;
      case End::kPending:
      case End::kCancelled:
        table.set_status(sibling_pids[k], ProcStatus::kEliminated);
        MW_TRACE_EVENT(trace::EventKind::kAltEliminate, sibling_pids[k],
                       kNoPid, group, 0,
                       static_cast<VTime>(block_clock.elapsed_us()));
        break;
    }
  }
  MW_TRACE_EVENT(trace::EventKind::kAltBlockEnd, parent.pid(), kNoPid, group,
                 static_cast<std::uint64_t>(out.failure),
                 static_cast<VTime>(block_clock.elapsed_us()));
  return out;
}

}  // namespace internal

}  // namespace mw
