// The wall-clock thread backend for alternative blocks: one OS thread per
// alternative, at-most-once synchronization by CAS, cooperative
// elimination. On a multi-core host this delivers real response-time wins;
// semantics are identical to the virtual backend.
//
// Elimination is cooperative, so a loser that never observes its cancel
// token (a hang with no checkpoint) used to wedge the block forever in the
// final join. The block now *reaps* with a bounded join: losers get
// opts.reap_deadline microseconds to acknowledge cancellation, then are
// detached as stragglers (AltReport::straggler). Everything a detached
// thread can still touch lives in a heap-allocated Block shared with each
// thread — the block call can return while a straggler unwinds.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace mw {

namespace internal {

namespace {

enum class End { kPending, kSynced, kAborted, kCancelled };

// Everything an alternative thread reads or writes after spawn. Heap
// allocated and shared (parent + one ref per thread) so a detached
// straggler never touches the parent's dead stack frame — it owns copies
// of the alternatives themselves (callers pass temporaries), the forked
// worlds, and pre-derived RNG streams; nothing of Runtime or the parent
// World is reachable from a child thread.
struct Block {
  explicit Block(std::size_t m)
      : cancels(m), results(m), ends(m, End::kPending) {}

  std::vector<Alternative> alts;       // the spawned subset, copied
  std::vector<std::size_t> alt_index;  // original 0-based index per entry
  std::vector<Pid> pids;
  std::vector<World> worlds;
  std::vector<Rng> rngs;
  std::vector<CancelToken> cancels;
  std::vector<Bytes> results;

  unsigned guard_phases = 0;
  Pid parent_pid = kNoPid;
  std::uint64_t group = 0;
  Stopwatch clock;

  std::mutex mu;
  std::condition_variable cv;
  // CAS arbiter for the at-most-once sync (§2.2.1). The parent never
  // reads this directly; it waits for `synced`, which the winning thread
  // publishes under the mutex *after* its results are in place.
  std::atomic<int> race{-1};
  int synced = -1;
  std::size_t done = 0;
  std::vector<End> ends;  // ends[k] != kPending <=> thread k published
};

void run_alternative(const std::shared_ptr<Block>& blk, std::size_t k) {
  const Alternative& alt = blk->alts[k];
  World& child = blk->worlds[k];
  AltContext ctx(child, blk->alt_index[k] + 1, blk->rngs[k],
                 &blk->cancels[k], /*virtual_mode=*/false);
  MW_TRACE_EVENT(trace::EventKind::kAltChildBegin, blk->pids[k], kNoPid,
                 blk->group, 0,
                 static_cast<VTime>(blk->clock.elapsed_us()));
  End end = End::kAborted;
  try {
    bool success = true;
    if ((blk->guard_phases & kGuardInChild) && alt.guard &&
        !alt.guard(child)) {
      success = false;
    } else {
      alt.body(ctx);
    }
    if (success && (blk->guard_phases & kGuardAtSync) && alt.guard &&
        !alt.guard(child)) {
      success = false;
    }
    if (success && alt.accept && !alt.accept(child)) success = false;
    if (success) {
      int expected = -1;
      end = blk->race.compare_exchange_strong(expected, static_cast<int>(k))
                ? End::kSynced
                : End::kCancelled;  // lost the race: eliminated
    }
  } catch (const CancelledError&) {
    end = End::kCancelled;
  } catch (const AltFailed&) {
    end = End::kAborted;
  } catch (const AltHung&) {
    // Only reachable if hang() degrades (no cancel token); treat as a
    // plain abort so the block can still decide.
    end = End::kAborted;
  } catch (const std::exception&) {
    end = End::kAborted;
  } catch (...) {
    // Foreign exceptions (e.g. an injected crash) terminate the child
    // as Failed instead of calling std::terminate on the whole block.
    end = End::kAborted;
  }
  blk->results[k] = ctx.result();
  MW_TRACE_EVENT(trace::EventKind::kAltChildEnd, blk->pids[k], kNoPid,
                 blk->group, child.space().table().stats().pages_copied,
                 static_cast<VTime>(blk->clock.elapsed_us()));
  if (end == End::kSynced)
    MW_TRACE_EVENT(trace::EventKind::kAltSync, blk->pids[k], blk->parent_pid,
                   blk->group, 0,
                   static_cast<VTime>(blk->clock.elapsed_us()));
  {
    std::lock_guard<std::mutex> lk(blk->mu);
    blk->ends[k] = end;
    if (end == End::kSynced) blk->synced = static_cast<int>(k);
    ++blk->done;
  }
  blk->cv.notify_all();
}

}  // namespace

AltOutcome run_alternatives_thread(Runtime& rt, World& parent,
                                   const std::vector<Alternative>& alts,
                                   const AltOptions& opts) {
  const std::size_t n = alts.size();
  AltOutcome out;
  out.alts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.alts[i].index = i + 1;
    out.alts[i].name = alts[i].name;
  }
  if (n == 0) {
    out.failed = true;
    out.failure = AltFailure::kNoAlternatives;
    return out;
  }

  const std::uint64_t group = rt.next_alt_group();
  ProcessTable& table = rt.processes();

  std::vector<std::size_t> spawned;
  for (std::size_t i = 0; i < n; ++i) {
    if ((opts.guard_phases & kGuardPreSpawn) && alts[i].guard &&
        !alts[i].guard(parent)) {
      continue;
    }
    spawned.push_back(i);
    out.alts[i].spawned = true;
  }
  if (spawned.empty()) {
    out.failed = true;
    out.failure = AltFailure::kAllFailed;
    return out;
  }
  const std::size_t m = spawned.size();

  auto blk = std::make_shared<Block>(m);
  blk->alt_index = spawned;
  blk->guard_phases = opts.guard_phases;
  blk->parent_pid = parent.pid();
  blk->group = group;
  blk->alts.reserve(m);
  blk->rngs.reserve(m);
  for (std::size_t i : spawned) {
    blk->alts.push_back(alts[i]);
    blk->rngs.push_back(rt.rng_for(group, i + 1));
    blk->pids.push_back(table.create(parent.pid(), group, alts[i].name));
  }

  // Spawn: fork the worlds up front (serial, charged as setup), then start
  // one thread per alternative; the OS plays the role of the processors.
  MW_TRACE_EVENT(trace::EventKind::kAltBlockBegin, parent.pid(), kNoPid,
                 group, m, 0);
  Stopwatch setup_clock;
  blk->worlds.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    MW_TRACE_EVENT(trace::EventKind::kAltSpawn, blk->pids[k], parent.pid(),
                   group, spawned[k] + 1,
                   static_cast<VTime>(blk->clock.elapsed_us()));
    blk->worlds.push_back(parent.fork_alternative(blk->pids[k], blk->pids));
    table.set_status(blk->pids[k], ProcStatus::kRunning);
  }
  out.overhead.setup = static_cast<VDuration>(setup_clock.elapsed_us());

  std::vector<std::thread> threads;
  threads.reserve(m);
  for (std::size_t k = 0; k < m; ++k)
    threads.emplace_back([blk, k] { run_alternative(blk, k); });

  // Bounded join: wait for every thread to publish its end, up to the reap
  // deadline; whoever has published joins instantly, whoever has not is
  // detached as a straggler (it holds its own reference to blk).
  std::vector<bool> straggler(m, false);
  auto reap = [&] {
    bool outstanding = false;
    for (auto& t : threads) outstanding = outstanding || t.joinable();
    if (!outstanding) return;  // already reaped (e.g. the timeout path)
    {
      std::unique_lock<std::mutex> lk(blk->mu);
      auto all_done = [&] { return blk->done == m; };
      if (opts.reap_deadline == kVTimeMax) {
        blk->cv.wait(lk, all_done);
      } else {
        blk->cv.wait_for(lk,
                         std::chrono::microseconds(opts.reap_deadline),
                         all_done);
      }
    }
    for (std::size_t k = 0; k < m; ++k) {
      if (!threads[k].joinable()) continue;
      bool published;
      {
        std::lock_guard<std::mutex> lk(blk->mu);
        published = blk->ends[k] != End::kPending;
      }
      if (published) {
        threads[k].join();
      } else {
        threads[k].detach();
        straggler[k] = true;
      }
    }
  };

  // alt_wait in the parent: blocked until a child synchronizes, every child
  // ends, or the timeout elapses.
  MW_TRACE_EVENT(trace::EventKind::kAltWait, parent.pid(), kNoPid, group, 0,
                 static_cast<VTime>(blk->clock.elapsed_us()));
  int wk = -1;
  bool all_done = false;
  {
    std::unique_lock<std::mutex> lk(blk->mu);
    auto decided = [&] { return blk->synced >= 0 || blk->done == m; };
    if (opts.timeout == kVTimeMax) {
      blk->cv.wait(lk, decided);
    } else {
      blk->cv.wait_for(lk, std::chrono::microseconds(opts.timeout), decided);
    }
    wk = blk->synced;
    all_done = blk->done == m;
  }

  if (wk < 0 && !all_done) {
    // Timeout. Cancel everyone and reap; if a child synchronized while the
    // timeout fired, the at-most-once sync stands and it is honoured.
    for (auto& c : blk->cancels) c.request();
    reap();
    std::lock_guard<std::mutex> lk(blk->mu);
    wk = blk->synced;
    if (wk < 0) {
      out.failed = true;
      out.failure = AltFailure::kTimeout;
    }
  }

  if (wk >= 0) {
    // Eliminate the losing siblings (cooperative: they unwind at their next
    // checkpoint). Asynchronous elimination resumes the parent immediately;
    // synchronous waits for their termination first (§2.2.1) — bounded by
    // the reap deadline, so a wedged loser cannot hold the parent hostage.
    Stopwatch elim_clock;
    for (std::size_t k = 0; k < m; ++k)
      if (static_cast<int>(k) != wk) blk->cancels[k].request();
    if (opts.elimination == Elimination::kSynchronous) {
      std::unique_lock<std::mutex> lk(blk->mu);
      auto drained = [&] { return blk->done == m; };
      if (opts.reap_deadline == kVTimeMax) {
        blk->cv.wait(lk, drained);
      } else {
        blk->cv.wait_for(lk,
                         std::chrono::microseconds(opts.reap_deadline),
                         drained);
      }
    }
    out.overhead.elimination = static_cast<VDuration>(elim_clock.elapsed_us());

    const auto wku = static_cast<std::size_t>(wk);
    const std::size_t wi = spawned[wku];
    out.winner = wi;
    out.winner_name = alts[wi].name;
    out.alts[wi].pages_copied =
        blk->worlds[wku].space().table().stats().pages_copied;

    Stopwatch commit_clock;
    table.set_status(blk->pids[wku], ProcStatus::kSynced);
    out.result = std::move(blk->results[wku]);
    parent.commit_from(std::move(blk->worlds[wku]));
    out.overhead.commit = static_cast<VDuration>(commit_clock.elapsed_us());
    out.elapsed = static_cast<VDuration>(blk->clock.elapsed_us());
  } else if (all_done) {
    out.failed = true;
    out.failure = AltFailure::kAllFailed;
    out.elapsed = static_cast<VDuration>(blk->clock.elapsed_us());
  } else {
    out.elapsed = static_cast<VDuration>(blk->clock.elapsed_us());
  }

  // Reap whatever is still out. Under asynchronous elimination the response
  // time was already recorded; this bounded join is the throughput cost the
  // paper accepts, now capped at reap_deadline per block.
  reap();

  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t i = spawned[k];
    AltReport& rep = out.alts[i];
    rep.pid = blk->pids[k];
    rep.ran = true;
    rep.straggler = straggler[k];
    // A straggler's world is still being written by its detached thread;
    // its page counters are not sampled (left 0).
    if (static_cast<int>(k) != wk && !straggler[k])
      rep.pages_copied = blk->worlds[k].space().table().stats().pages_copied;
    rep.success = static_cast<int>(k) == wk;
    End end;
    {
      std::lock_guard<std::mutex> lk(blk->mu);
      end = blk->ends[k];
    }
    switch (end) {
      case End::kSynced:
        break;  // already kSynced (or eliminated, if it raced a timeout)
      case End::kAborted:
        table.set_status(blk->pids[k], ProcStatus::kFailed);
        MW_TRACE_EVENT(trace::EventKind::kAltAbort, blk->pids[k], kNoPid,
                       group, 0,
                       static_cast<VTime>(blk->clock.elapsed_us()));
        break;
      case End::kPending:
      case End::kCancelled:
        table.set_status(blk->pids[k], ProcStatus::kEliminated);
        MW_TRACE_EVENT(trace::EventKind::kAltEliminate, blk->pids[k],
                       kNoPid, group, 0,
                       static_cast<VTime>(blk->clock.elapsed_us()));
        break;
    }
  }
  MW_TRACE_EVENT(trace::EventKind::kAltBlockEnd, parent.pid(), kNoPid, group,
                 static_cast<std::uint64_t>(out.failure),
                 static_cast<VTime>(blk->clock.elapsed_us()));
  return out;
}

}  // namespace internal

}  // namespace mw
