#include "core/spec_scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "core/spec_policy.hpp"
#include "fault/fault.hpp"
#include "pagestore/page.hpp"
#include "pagestore/shard.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/threading.hpp"

namespace mw {

namespace {

// Which scheduler (if any) the current thread is a worker of. Lets submit()
// route nested spawns to the worker's own deque and should_help() detect
// that blocking would idle a pool thread.
struct WorkerIdentity {
  SpecScheduler* sched = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity t_worker;

bool is_kill_fault(FaultKind k) {
  return k == FaultKind::kCrashException || k == FaultKind::kFailAlternative ||
         k == FaultKind::kNodeCrash;
}

}  // namespace

SpecScheduler::SpecScheduler(SchedConfig cfg)
    : cfg_(cfg), det_rng_(cfg.deterministic_seed) {
  std::size_t workers = cfg_.workers;
  if (workers == 0) workers = hw_threads();
  if (deterministic()) {
    // No OS threads: the seed drives execution via run_one()/drain(), but
    // the deque geometry (and therefore the interleaving space) still
    // matches the requested worker count.
    workers = std::max<std::size_t>(1, cfg_.workers);
  }
  deques_.reserve(workers + 1);
  for (std::size_t i = 0; i < workers + 1; ++i)
    deques_.push_back(std::make_unique<Deque>());
  if (!deterministic()) {
    worker_threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      worker_threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

SpecScheduler::~SpecScheduler() {
  shutdown_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  for (auto& t : worker_threads_) t.join();
  // Anything still queued is an orphan of a block that never completed;
  // revoke it through the normal terminal path — on_skipped fires exactly
  // once for a task whose body never ran, shutdown included.
  for (auto& d : deques_) {
    std::lock_guard<std::mutex> lk(d->mu);
    for (auto& t : d->tasks) {
      int expected = static_cast<int>(SchedTask::State::kQueued);
      if (!t->state_.compare_exchange_strong(
              expected, static_cast<int>(SchedTask::State::kRevoked))) {
        continue;
      }
      pending_.fetch_sub(1, std::memory_order_release);
      {
        std::lock_guard<std::mutex> slk(stats_mu_);
        ++stats_.revoked;
      }
      if (t->on_skipped_) t->on_skipped_(*t);
      t->fn_ = nullptr;
      t->on_skipped_ = nullptr;
    }
    d->tasks.clear();
  }
}

SchedTaskRef SpecScheduler::submit(std::function<void()> fn, double priority,
                                   std::uint64_t group, Pid pid,
                                   std::function<void(SchedTask&)> on_skipped,
                                   Pid parent, std::uint64_t alt_index) {
  auto task = std::make_shared<SchedTask>();
  task->fn_ = std::move(fn);
  task->on_skipped_ = std::move(on_skipped);
  task->priority_ = priority;
  task->group_ = group;
  task->pid_ = pid;
  task->seq_ = seq_.fetch_add(1, std::memory_order_relaxed);

  // A worker's own spawns stay local (LIFO locality for nested races);
  // everything else goes through the shared inbox, where workers steal it.
  std::size_t target = inbox_index();
  if (t_worker.sched == this) target = t_worker.index;
  {
    std::lock_guard<std::mutex> lk(deques_[target]->mu);
    deques_[target]->tasks.push_back(task);
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.submitted;
  }
  MW_TRACE_EVENT(trace::EventKind::kSchedEnqueue, pid, parent, group,
                 alt_index);
  work_cv_.notify_one();
  return task;
}

bool SpecScheduler::revoke(const SchedTaskRef& task) {
  if (!task) return false;
  const FaultAction fa = MW_FAULT_POINT("sched.revoke");
  if (is_kill_fault(fa.kind)) return false;  // injected miss: body will run
  int expected = static_cast<int>(SchedTask::State::kQueued);
  if (!task->state_.compare_exchange_strong(
          expected, static_cast<int>(SchedTask::State::kRevoked),
          std::memory_order_acq_rel)) {
    return false;  // already claimed: cooperative cancellation's job now
  }
  pending_.fetch_sub(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.revoked;
  }
  if (task->on_skipped_) task->on_skipped_(*task);
  // The deque entry is erased lazily; drop the closures now so a parked
  // revoked task owns nothing of its dead race.
  task->fn_ = nullptr;
  task->on_skipped_ = nullptr;
  return true;
}

namespace {

// Drops terminal entries (revoked in place), then removes and returns the
// entry `better` prefers. Index-based: deque erasure invalidates iterators.
template <typename Better>
SchedTaskRef select_queued(std::deque<SchedTaskRef>& tasks, Better better) {
  tasks.erase(std::remove_if(tasks.begin(), tasks.end(),
                             [](const SchedTaskRef& t) {
                               return t->state() != SchedTask::State::kQueued;
                             }),
              tasks.end());
  if (tasks.empty()) return nullptr;
  std::size_t best = 0;
  for (std::size_t i = 1; i < tasks.size(); ++i)
    if (better(*tasks[i], *tasks[best])) best = i;
  SchedTaskRef task = tasks[best];
  tasks.erase(tasks.begin() + static_cast<std::ptrdiff_t>(best));
  return task;
}

}  // namespace

SchedTaskRef SpecScheduler::pop_own(std::size_t self) {
  Deque& d = *deques_[self];
  std::lock_guard<std::mutex> lk(d.mu);
  // Owner end: highest priority; ties LIFO (newest first).
  return select_queued(d.tasks, [](const SchedTask& a, const SchedTask& b) {
    return a.priority() >= b.priority();
  });
}

SchedTaskRef SpecScheduler::steal_from(std::size_t victim,
                                       std::uint64_t thief) {
  Deque& d = *deques_[victim];
  const bool from_inbox = victim == inbox_index();
  SchedTaskRef task;
  {
    std::lock_guard<std::mutex> lk(d.mu);
    // Thief end: lowest priority; ties FIFO (oldest first) — steal the
    // coarsest, least-locality-sensitive work and leave the owner its most
    // promising alternatives. The shared inbox has no owner to be polite
    // to: it drains highest-priority first (ties FIFO), so an externally
    // submitted race starts with the alternative most likely to win.
    task = select_queued(d.tasks, [&](const SchedTask& a, const SchedTask& b) {
      return from_inbox ? a.priority() > b.priority()
                        : a.priority() < b.priority();
    });
    if (!task) return nullptr;
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.stolen;
  }
  MW_TRACE_EVENT(trace::EventKind::kSchedSteal, task->pid_, kNoPid,
                 task->group_, thief);
  return task;
}

SchedTaskRef SpecScheduler::take_any_as_thief(std::uint64_t thief,
                                              std::size_t skip_own) {
  // Inbox first — external work-sharing — then sweep the other workers.
  SchedTaskRef task = steal_from(inbox_index(), thief);
  if (task) return task;
  for (std::size_t v = 0; v < deques_.size() - 1; ++v) {
    if (v == skip_own) continue;
    task = steal_from(v, thief);
    if (task) return task;
  }
  return nullptr;
}

bool SpecScheduler::execute(const SchedTaskRef& task, bool stolen) {
  int expected = static_cast<int>(SchedTask::State::kQueued);
  if (!task->state_.compare_exchange_strong(
          expected, static_cast<int>(SchedTask::State::kRunning),
          std::memory_order_acq_rel)) {
    return false;  // revoked between deque removal and the claim
  }
  pending_.fetch_sub(1, std::memory_order_release);

  if (stolen) {
    // The steal-path fault point: a kill fault here models a worker dying
    // with a stolen task in hand — the task terminates without running and
    // the submitter sees a crash, never a hang.
    const FaultAction fa = MW_FAULT_POINT("sched.steal");
    if (is_kill_fault(fa.kind)) {
      task->state_.store(static_cast<int>(SchedTask::State::kFaulted),
                         std::memory_order_release);
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.faulted;
      }
      if (task->on_skipped_) task->on_skipped_(*task);
      task->fn_ = nullptr;
      task->on_skipped_ = nullptr;
      return true;
    }
    if (fa.kind == FaultKind::kDelay && !deterministic()) {
      std::this_thread::sleep_for(std::chrono::microseconds(fa.delay));
    }
  }

  task->fn_();
  task->state_.store(static_cast<int>(SchedTask::State::kDone),
                     std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.executed;
  }
  task->fn_ = nullptr;
  task->on_skipped_ = nullptr;
  return true;
}

void SpecScheduler::worker_loop(std::size_t self) {
  t_worker.sched = this;
  t_worker.index = self;
  // Bind this worker to its pagestore shard: every page the tasks it runs
  // allocate, recycle, or destroy accounts against a per-worker free list
  // and ledger slot instead of one contended global.
  PageShard::bind(self);
  while (true) {
    SchedTaskRef task = pop_own(self);
    bool stolen = false;
    if (!task) {
      task = take_any_as_thief(self, self);
      stolen = task != nullptr;
    }
    if (task) {
      execute(task, stolen);
      continue;
    }
    std::unique_lock<std::mutex> lk(work_mu_);
    work_cv_.wait_for(lk, std::chrono::milliseconds(10), [&] {
      return pending_.load(std::memory_order_acquire) > 0 ||
             shutdown_.load(std::memory_order_acquire);
    });
    if (shutdown_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      break;
    }
  }
  PageShard::unbind();
  t_worker.sched = nullptr;
}

bool SpecScheduler::run_one() {
  if (deterministic()) return run_one_deterministic();
  // Threaded mode: an external or worker thread helping while it waits
  // acts as a thief (its own deque first if it is a worker).
  SchedTaskRef task;
  bool stolen = false;
  if (t_worker.sched == this) {
    task = pop_own(t_worker.index);
    if (!task) {
      task = take_any_as_thief(t_worker.index, t_worker.index);
      stolen = task != nullptr;
    }
  } else {
    task = take_any_as_thief(kSchedExternalHelper, deques_.size());
    stolen = task != nullptr;
  }
  if (!task) return false;
  return execute(task, stolen);
}

bool SpecScheduler::run_one_deterministic() {
  // One seeded scheduling step: pick a non-empty deque, then act as its
  // owner (priority/LIFO) or as a thief (FIFO steal) — the coin that
  // enumerates interleavings across seeds.
  std::size_t victim = deques_.size();
  bool as_thief = false;
  {
    std::lock_guard<std::mutex> lk(det_mu_);
    std::vector<std::size_t> nonempty;
    for (std::size_t i = 0; i < deques_.size(); ++i) {
      std::lock_guard<std::mutex> dlk(deques_[i]->mu);
      for (const auto& t : deques_[i]->tasks) {
        if (t->state() == SchedTask::State::kQueued) {
          nonempty.push_back(i);
          break;
        }
      }
    }
    if (nonempty.empty()) return false;
    victim = nonempty[det_rng_.next_below(nonempty.size())];
    // Owner order and inbox-steal order both take the highest priority
    // first, so the coin varies only the tie-breaking (LIFO vs FIFO) —
    // priority hints stay honoured while seeds explore the interleavings
    // of equal-priority tasks.
    as_thief = det_rng_.next_bool(cfg_.deterministic_steal_prob);
  }
  SchedTaskRef task =
      as_thief ? steal_from(victim, kSchedDetDriver) : pop_own(victim);
  if (!task) return false;
  return execute(task, as_thief);
}

void SpecScheduler::drain() {
  MW_CHECK(deterministic());
  while (run_one_deterministic()) {
  }
}

bool SpecScheduler::should_help() const {
  return deterministic() || t_worker.sched == this;
}

bool SpecScheduler::admit(std::size_t worlds, Pid requester,
                          std::uint64_t group) {
  const FaultAction fa = MW_FAULT_POINT("sched.admit");
  if (is_kill_fault(fa.kind)) {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.admission_rejected;
    return false;
  }
  // One policy decision per admission attempt: in kAdaptive mode the
  // engine may narrow the world budget, but never below what this race
  // needs — any race the static budget admits stays admissible.
  std::size_t budget = cfg_.max_live_worlds;
  if (budget != 0 && cfg_.policy != nullptr &&
      cfg_.policy->mode() == PolicyMode::kAdaptive) {
    std::size_t width = cfg_.policy->admission_width(budget, group);
    budget = std::min(budget, std::max(width, worlds));
  }
  auto fits = [&] {
    if (budget != 0 && live_worlds_ + worlds > budget) {
      return false;
    }
    if (cfg_.max_resident_pages != 0 &&
        Page::live_instances() >=
            static_cast<std::int64_t>(cfg_.max_resident_pages)) {
      return false;
    }
    return true;
  };

  std::unique_lock<std::mutex> lk(admit_mu_);
  const bool forced_defer = fa.kind == FaultKind::kDelay;
  if (fits() && !forced_defer) {
    live_worlds_ += worlds;
    if (cfg_.policy != nullptr) cfg_.policy->observe_admission(false);
    return true;
  }

  if (cfg_.policy != nullptr) cfg_.policy->observe_admission(true);
  MW_TRACE_EVENT(trace::EventKind::kSchedAdmitDefer, requester, kNoPid,
                 group, live_worlds_);
  {
    std::lock_guard<std::mutex> slk(stats_mu_);
    ++stats_.admission_deferred;
  }
  if (deterministic()) {
    // Single-threaded: nothing can release capacity while we wait, so a
    // deferred race resolves immediately (admitted iff only force-deferred).
    if (fits()) {
      live_worlds_ += worlds;
      return true;
    }
    std::lock_guard<std::mutex> slk(stats_mu_);
    ++stats_.admission_rejected;
    return false;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(cfg_.admission_wait);
  // Poll in short slices: world releases signal the condvar, but page-count
  // pressure can also ease without any release() (worlds dying elsewhere).
  while (!fits()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      std::lock_guard<std::mutex> slk(stats_mu_);
      ++stats_.admission_rejected;
      return false;
    }
    admit_cv_.wait_for(lk, std::chrono::milliseconds(1));
  }
  live_worlds_ += worlds;
  return true;
}

void SpecScheduler::release(std::size_t worlds) {
  {
    std::lock_guard<std::mutex> lk(admit_mu_);
    MW_CHECK(live_worlds_ >= worlds);
    live_worlds_ -= worlds;
  }
  admit_cv_.notify_all();
}

void SpecScheduler::scrub(std::uint64_t group) {
  for (auto& d : deques_) {
    std::lock_guard<std::mutex> lk(d->mu);
    d->tasks.erase(
        std::remove_if(d->tasks.begin(), d->tasks.end(),
                       [&](const SchedTaskRef& t) {
                         return t->group_ == group &&
                                t->state() != SchedTask::State::kQueued;
                       }),
        d->tasks.end());
  }
}

std::size_t SpecScheduler::live_worlds() const {
  std::lock_guard<std::mutex> lk(admit_mu_);
  return live_worlds_;
}

SchedStats SpecScheduler::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

}  // namespace mw
