// Trace export: renders an AltOutcome's schedule as Chrome trace-event
// JSON (load in chrome://tracing or https://ui.perfetto.dev) so users can
// *see* the speculation — who ran where, who was cut in the ready queue,
// where the commit and elimination costs landed.
#pragma once

#include <string>

#include "core/alt.hpp"

namespace mw {

/// One complete-event ("ph":"X") per alternative plus marker events for
/// the block's commit and elimination phases. Times are the outcome's
/// ticks reported as microseconds.
std::string to_chrome_trace(const AltOutcome& outcome,
                            const std::string& block_name = "alt-block");

/// Renders a compact fixed-width text timeline (one row per alternative)
/// for terminal inspection:
///
///   fast   |#####W                |
///   slow   |############x         |
///   queued |............          |
///
/// '#' running, 'W' won, 'x' killed/aborted, '.' waiting in the queue.
std::string to_text_timeline(const AltOutcome& outcome, int width = 60);

}  // namespace mw
