// The paper's literal §2.2 primitives over real POSIX processes:
//
//   switch (alt_spawn(n)) {
//     case 0:  /* parent */  alt_wait(TIMEOUT); fail();
//     case 1:  /* first alternative */ ... alt_wait(0);
//     ...
//     case n:  ... alt_wait(0);
//   }
//
// alt_spawn(n) forks n children, returning 1..n in the alternatives and 0
// in the parent. A child finishes by calling child_wait() — the paper's
// alt_wait(0) — which attempts the at-most-once synchronization and never
// returns. The parent calls parent_wait(TIMEOUT) — alt_wait(TIMEOUT) —
// which blocks until a child synchronizes or the timeout elapses, then
// eliminates the losing siblings.
//
// State is communicated the way the paper's design does: the winning
// child's address-space changes are "absorbed" by the parent. With real
// fork() we cannot swap page tables from user space, so the absorbed state
// is an explicit region registered up front (absorb()) and shipped through
// shared memory at sync — the "some copying might be needed for
// efficiency in the distributed case" escape hatch of §2.2.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace mw {

class PosixAltBlock {
 public:
  /// `absorb_bytes`: capacity of the absorbed-state region.
  explicit PosixAltBlock(std::size_t absorb_bytes = 4096);
  ~PosixAltBlock();

  PosixAltBlock(const PosixAltBlock&) = delete;
  PosixAltBlock& operator=(const PosixAltBlock&) = delete;

  /// Registers the parent memory the winning child's writes should be
  /// absorbed into. Must be called before alt_spawn; the region is
  /// snapshotted into the shared segment so children start from the
  /// parent's state (they also have it via fork COW anyway).
  void absorb(void* data, std::size_t bytes);

  /// Forks `n` alternatives. Returns 0 in the parent, 1..n in each child.
  int alt_spawn(int n);

  /// Child side of alt_wait(0): publish the absorbed region, attempt the
  /// at-most-once sync, and exit. Never returns.
  [[noreturn]] void child_sync();

  /// Child side of failure: exit without synchronizing. Never returns.
  [[noreturn]] void child_abort();

  /// Parent side of alt_wait(TIMEOUT): blocks until a child synchronizes
  /// or `timeout_us` elapses (0 = forever). On success, copies the
  /// winner's absorbed region back over the parent's memory and
  /// eliminates the siblings; returns the winning alternative number
  /// (1..n). On failure returns nullopt, as the signal to run the failure
  /// alternative.
  std::optional<int> parent_wait(std::uint64_t timeout_us = 0,
                                 bool synchronous_elimination = false);

 private:
  struct SharedRegion;
  SharedRegion* shared_ = nullptr;
  std::size_t shared_bytes_ = 0;
  std::size_t capacity_ = 0;
  void* absorb_data_ = nullptr;
  std::size_t absorb_len_ = 0;
  std::vector<int> kids_;
  int my_index_ = 0;  // 0 in parent, 1..n in children
  bool spawned_ = false;
};

}  // namespace mw
