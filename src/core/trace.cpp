#include "core/trace.hpp"

#include <algorithm>
#include <sstream>

namespace mw {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string to_chrome_trace(const AltOutcome& outcome,
                            const std::string& block_name) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& name, VTime start, VDuration dur,
                  int tid, const std::string& args) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"X\",\"ts\":"
       << start << ",\"dur\":" << dur << ",\"pid\":1,\"tid\":" << tid
       << ",\"cat\":\"" << json_escape(block_name) << "\"";
    if (!args.empty()) os << ",\"args\":{" << args << "}";
    os << "}";
  };

  for (const AltReport& a : outcome.alts) {
    if (!a.spawned) {
      emit(a.name + " (guarded out)", 0, 0,
           static_cast<int>(a.index), "\"spawned\":false");
      continue;
    }
    std::string status = a.success ? "won" : (a.ran ? "killed" : "cut");
    emit(a.name + " [" + status + "]", a.start,
         std::max<VDuration>(a.finish - a.start, 0),
         static_cast<int>(a.index),
         "\"pid\":" + std::to_string(a.pid) +
             ",\"pages_copied\":" + std::to_string(a.pages_copied) +
             ",\"status\":\"" + status + "\"");
  }

  // Block-level phases on tid 0.
  VTime t = 0;
  if (outcome.overhead.setup > 0) {
    emit("spawn (fork x" + std::to_string(outcome.alts.size()) + ")", t,
         outcome.overhead.setup, 0, "");
  }
  if (!outcome.failed) {
    // Winner finish = elapsed - commit - elimination.
    const VTime winner_finish =
        outcome.elapsed - outcome.overhead.commit -
        outcome.overhead.elimination;
    if (outcome.overhead.commit > 0)
      emit("commit", winner_finish, outcome.overhead.commit, 0, "");
    if (outcome.overhead.elimination > 0)
      emit("eliminate siblings", winner_finish + outcome.overhead.commit,
           outcome.overhead.elimination, 0, "");
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

std::string to_text_timeline(const AltOutcome& outcome, int width) {
  VTime horizon = 1;
  for (const AltReport& a : outcome.alts)
    horizon = std::max(horizon, a.finish);
  horizon = std::max(horizon, static_cast<VTime>(outcome.elapsed));

  std::size_t name_w = 4;
  for (const AltReport& a : outcome.alts)
    name_w = std::max(name_w, a.name.size());

  auto col = [&](VTime t) {
    return static_cast<int>(t * (width - 1) / horizon);
  };

  std::ostringstream os;
  for (const AltReport& a : outcome.alts) {
    os << a.name << std::string(name_w - a.name.size(), ' ') << " |";
    std::string row(static_cast<std::size_t>(width), ' ');
    if (a.spawned && a.ran) {
      const int s = col(a.start);
      const int f = std::max(col(a.finish), s);
      for (int i = 0; i < s; ++i) row[static_cast<std::size_t>(i)] = '.';
      for (int i = s; i <= f && i < width; ++i)
        row[static_cast<std::size_t>(i)] = '#';
      if (f < width)
        row[static_cast<std::size_t>(f)] = a.success ? 'W' : 'x';
    } else if (a.spawned) {
      const int f = std::min(col(a.finish), width - 1);
      for (int i = 0; i <= f; ++i) row[static_cast<std::size_t>(i)] = '.';
    } else {
      row[0] = '-';
    }
    os << row << "|\n";
  }
  return os.str();
}

}  // namespace mw
