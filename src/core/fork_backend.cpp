#include "core/fork_backend.hpp"

#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>

#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace mw {

namespace {

/// Header of the MAP_SHARED arbitration region. Lock-free atomics are
/// process-shared on every platform this library targets.
struct SharedSlot {
  std::atomic<int> winner;
  std::atomic<std::uint32_t> result_len;  // 0 until the winner publishes
  // result bytes follow
};
static_assert(std::atomic<int>::is_always_lock_free);
static_assert(std::atomic<std::uint32_t>::is_always_lock_free);

void* map_shared(std::size_t bytes) {
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  MW_CHECK(p != MAP_FAILED);
  return p;
}

}  // namespace

ForkOutcome run_alternatives_fork(const std::vector<ForkAlternative>& alts,
                                  const ForkOptions& opts) {
  ForkOutcome out;
  if (alts.empty()) return out;

  const std::size_t region_bytes = sizeof(SharedSlot) + opts.result_bytes;
  auto* slot = static_cast<SharedSlot*>(map_shared(region_bytes));
  new (&slot->winner) std::atomic<int>(-1);
  new (&slot->result_len) std::atomic<std::uint32_t>(0);
  auto* result_buf = reinterpret_cast<std::uint8_t*>(slot + 1);

  Stopwatch block_clock;
  std::vector<pid_t> kids(alts.size(), -1);
  for (std::size_t i = 0; i < alts.size(); ++i) {
    const pid_t pid = ::fork();
    MW_CHECK(pid >= 0);
    if (pid == 0) {
      // Child: the OS gave us a COW copy of the entire parent address
      // space — the paper's world fork, for free.
      std::vector<std::uint8_t> result;
      bool success = false;
      try {
        success = alts[i].body(result);
      } catch (...) {
        success = false;
      }
      if (success) {
        int expected = -1;
        if (slot->winner.compare_exchange_strong(expected,
                                                 static_cast<int>(i))) {
          const std::size_t n = std::min(result.size(), opts.result_bytes);
          std::memcpy(result_buf, result.data(), n);
          slot->result_len.store(static_cast<std::uint32_t>(n) + 1,
                                 std::memory_order_release);
        }
      }
      ::_exit(success ? 0 : 1);
    }
    kids[i] = pid;
  }

  // alt_wait: poll for a winner, reap aborted children, enforce timeout.
  std::size_t alive = alts.size();
  Stopwatch wait_clock;
  int winner = -1;
  for (;;) {
    winner = slot->winner.load(std::memory_order_acquire);
    if (winner >= 0) break;
    if (alive == 0) break;  // everyone aborted
    if (opts.timeout_us != 0 &&
        wait_clock.elapsed_us() > static_cast<double>(opts.timeout_us)) {
      break;
    }
    int status = 0;
    const pid_t reaped = ::waitpid(-1, &status, WNOHANG);
    if (reaped > 0) {
      for (auto& k : kids) {
        if (k == reaped) k = -1;
      }
      --alive;
      // A child that synchronized just before exiting counts as a winner
      // on the next loop iteration.
      continue;
    }
    ::usleep(100);
  }
  // Catch a child that won between the last poll and an exit we reaped.
  if (winner < 0) winner = slot->winner.load(std::memory_order_acquire);

  Stopwatch elim_clock;
  if (winner >= 0) {
    // Wait for the winner's publication and exit, then collect the result.
    while (slot->result_len.load(std::memory_order_acquire) == 0) ::usleep(50);
    out.failed = false;
    out.winner = static_cast<std::size_t>(winner);
    const std::uint32_t len =
        slot->result_len.load(std::memory_order_acquire) - 1;
    out.result.assign(result_buf, result_buf + len);
  } else {
    out.failed = true;
  }
  out.elapsed_sec = block_clock.elapsed_sec();

  // Sibling elimination: SIGKILL the survivors. Synchronous mode waits for
  // each termination before the measurement point; asynchronous issues the
  // kills, records the time, and reaps afterwards (zombies are still
  // collected before returning — the reap is off the response path).
  for (std::size_t i = 0; i < kids.size(); ++i) {
    if (kids[i] > 0 && static_cast<int>(i) != winner) ::kill(kids[i], SIGKILL);
  }
  if (opts.synchronous_elimination) {
    for (std::size_t i = 0; i < kids.size(); ++i) {
      if (kids[i] > 0 && static_cast<int>(i) != winner)
        ::waitpid(kids[i], nullptr, 0);
    }
    out.elimination_sec = elim_clock.elapsed_sec();
  } else {
    out.elimination_sec = elim_clock.elapsed_sec();
    for (std::size_t i = 0; i < kids.size(); ++i) {
      if (kids[i] > 0 && static_cast<int>(i) != winner)
        ::waitpid(kids[i], nullptr, 0);
    }
  }
  if (winner >= 0 && kids[static_cast<std::size_t>(winner)] > 0)
    ::waitpid(kids[static_cast<std::size_t>(winner)], nullptr, 0);

  ::munmap(slot, region_bytes);
  return out;
}

double measure_fork_latency(std::size_t touched_pages, std::size_t page_size) {
  // Dirty `touched_pages` pages so the kernel has that many page-table
  // entries to duplicate; the paper's 320 KB address spaces correspond to
  // 80–160 pages.
  std::vector<std::uint8_t> arena(touched_pages * page_size);
  for (std::size_t p = 0; p < touched_pages; ++p) arena[p * page_size] = 1;

  Stopwatch sw;
  const pid_t pid = ::fork();
  MW_CHECK(pid >= 0);
  if (pid == 0) ::_exit(0);
  const double sec = sw.elapsed_sec();  // latency of fork() in the parent
  ::waitpid(pid, nullptr, 0);
  // Keep the arena alive past the fork.
  volatile std::uint8_t sink = arena[0];
  (void)sink;
  return sec;
}

double measure_cow_copy_rate(std::size_t pages, std::size_t page_size) {
  struct Shared {
    std::atomic<double> seconds;
    std::atomic<int> done;
  };
  auto* sh = static_cast<Shared*>(map_shared(sizeof(Shared)));
  new (&sh->seconds) std::atomic<double>(0.0);
  new (&sh->done) std::atomic<int>(0);

  std::vector<std::uint8_t> arena(pages * page_size);
  for (std::size_t p = 0; p < pages; ++p) arena[p * page_size] = 1;

  const pid_t pid = ::fork();
  MW_CHECK(pid >= 0);
  if (pid == 0) {
    // Child: every write faults and copies one shared page.
    Stopwatch sw;
    for (std::size_t p = 0; p < pages; ++p) arena[p * page_size] = 2;
    sh->seconds.store(sw.elapsed_sec(), std::memory_order_release);
    sh->done.store(1, std::memory_order_release);
    ::_exit(0);
  }
  ::waitpid(pid, nullptr, 0);
  MW_CHECK(sh->done.load(std::memory_order_acquire) == 1);
  const double sec = sh->seconds.load(std::memory_order_acquire);
  ::munmap(sh, sizeof(Shared));
  if (sec <= 0.0) return 0.0;
  return static_cast<double>(pages) / sec;
}

}  // namespace mw
