// Alternative blocks: the paper's alt_spawn / alt_wait construct (§2.2) as
// a structured C++ API. A block is a set of mutually exclusive alternative
// methods; running it spawns one speculative world per alternative,
// synchronizes with the first to succeed, commits that world's state into
// the parent, and eliminates the rest. If no alternative succeeds within
// the timeout, the failure alternative is selected (§1.1: its conditional
// probability is 1 exactly when all others fail).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/world.hpp"
#include "util/bytes.hpp"
#include "util/vtime.hpp"

namespace mw {

class AltContext;

/// Where guard conditions are evaluated (§2.2: "serially before spawning
/// the alternatives ...; in the child process; at the synchronization
/// point; or at any combination of these places, for redundancy").
enum GuardPhase : unsigned {
  kGuardPreSpawn = 1u << 0,
  kGuardInChild = 1u << 1,
  kGuardAtSync = 1u << 2,
};

/// How losing siblings are eliminated (§2.2.1). Asynchronous elimination
/// gives better execution time at the expense of throughput.
enum class Elimination { kSynchronous, kAsynchronous };

/// Which engine executes the block.
///  * kVirtual — deterministic discrete-event backend: bodies run serially,
///    accounting work in ticks; a virtual-processor scheduler decides the
///    winner. Reproducible on any host.
///  * kThread — wall-clock backend: one OS thread per alternative, first
///    successful sync wins a CAS; losers are cancelled cooperatively.
///  * kPool — wall-clock backend for *many concurrent races*: alternatives
///    are enqueued as tasks on a shared work-stealing pool (one worker per
///    hardware thread) with bounded admission and cancellation-aware
///    pruning — queued losers are revoked before they ever run. See
///    core/spec_scheduler.hpp.
enum class AltBackend { kVirtual, kThread, kPool };

struct Alternative {
  std::string name;
  /// Precondition; evaluated per the guard-phase mask. Null = always true.
  std::function<bool(const World&)> guard;
  /// The alternative's computation, run in its own speculative world.
  std::function<void(AltContext&)> body;
  /// Acceptance test over the child's final state, evaluated at the sync
  /// point. Null = accept.
  std::function<bool(const World&)> accept;
  /// Scheduling hint: estimated success probability / preference. The pool
  /// backend runs high-priority alternatives first locally and steals
  /// low-priority ones last; other backends ignore it.
  double priority = 0.0;
};

struct AltOptions {
  /// Parent's alt_wait timeout. In the virtual backend this is virtual
  /// ticks; in the thread backend, microseconds of wall time. kVTimeMax
  /// waits forever. Choose "a value clearly unacceptable to the
  /// application" (§2.2).
  VDuration timeout = kVTimeMax;
  Elimination elimination = Elimination::kAsynchronous;
  unsigned guard_phases = kGuardInChild;
  /// Thread backend: how long (µs of wall time) the block waits for
  /// eliminated siblings to acknowledge cancellation before detaching them
  /// as stragglers. Losers normally unwind at their next checkpoint; this
  /// deadline bounds the damage of a loser that never checks (e.g. a hang
  /// with no cancellation token). kVTimeMax = wait forever (join).
  VDuration reap_deadline = 1'000'000;
};

/// τ(overhead) decomposition (§3.3): (1) setting up the worlds, (2)
/// run-time COW copying, (3) completion: commit plus sibling elimination.
struct OverheadBreakdown {
  VDuration setup = 0;
  VDuration copying = 0;
  VDuration commit = 0;
  VDuration elimination = 0;
  VDuration total() const { return setup + copying + commit + elimination; }
};

/// Per-alternative post-mortem.
struct AltReport {
  std::size_t index = 0;  // 1-based, matching alt_spawn's return value
  std::string name;
  Pid pid = kNoPid;
  bool spawned = false;  // false if a pre-spawn guard rejected it
  bool ran = false;      // started before the winner synchronized
  bool success = false;  // reached a successful sync
  /// Pool backend: pruned from the queue before its body ever ran (its
  /// world copied zero pages). Implies !ran.
  bool revoked = false;
  /// Thread backend: still running at the reap deadline and detached. Its
  /// world/result slots are kept alive until it unwinds, but its page
  /// counters were not sampled.
  bool straggler = false;
  VTime start = 0;
  VTime finish = 0;
  std::uint64_t pages_copied = 0;  // COW breaks in its world
};

enum class AltFailure {
  kNone,
  kAllFailed,
  kTimeout,
  kNoAlternatives,
  /// Pool backend: the admission controller could not fit this race within
  /// the speculation budget (live worlds / resident pages) before the
  /// admission deadline; nothing was spawned.
  kAdmissionRejected,
};

struct AltOutcome {
  bool failed = false;
  AltFailure failure = AltFailure::kNone;
  std::optional<std::size_t> winner;  // 0-based index into the input vector
  std::string winner_name;
  /// Block execution time as seen by the parent: ticks (virtual) or
  /// microseconds (thread backend).
  VDuration elapsed = 0;
  OverheadBreakdown overhead;
  /// Result bytes the winner published via AltContext::set_result.
  Bytes result;
  std::vector<AltReport> alts;
};

class Runtime;

/// Runs a block of alternatives against `parent`. On success the winning
/// world's pages are committed into `parent` before this returns.
AltOutcome run_alternatives(Runtime& rt, World& parent,
                            const std::vector<Alternative>& alts,
                            const AltOptions& opts = {});

/// Fluent builder for alternative blocks.
class AltBlock {
 public:
  AltBlock(Runtime& rt, World& parent) : rt_(rt), parent_(parent) {}

  AltBlock& alt(std::string name, std::function<void(AltContext&)> body) {
    alts_.push_back({std::move(name), nullptr, std::move(body), nullptr});
    return *this;
  }
  AltBlock& alt(Alternative a) {
    alts_.push_back(std::move(a));
    return *this;
  }
  AltBlock& timeout(VDuration t) {
    opts_.timeout = t;
    return *this;
  }
  AltBlock& elimination(Elimination e) {
    opts_.elimination = e;
    return *this;
  }
  AltBlock& guard_phases(unsigned mask) {
    opts_.guard_phases = mask;
    return *this;
  }

  AltOutcome run() { return run_alternatives(rt_, parent_, alts_, opts_); }

 private:
  Runtime& rt_;
  World& parent_;
  std::vector<Alternative> alts_;
  AltOptions opts_;
};

}  // namespace mw
