// Adaptive speculation policy engine. The runtime speculates blindly in the
// base paper: admission width (max_live_worlds), alternative priorities, and
// the service hedging delay are static constants chosen offline. The
// or-parallel splitting-strategies literature (PAPERS.md, arXiv:1301.7690)
// shows no single static choice dominates across workload shapes, so this
// engine closes the loop: SpecProfile-style online signals — wasted-work
// ratio, per-alternative win rate, pages copied by losers, admission-deferral
// rate, and a windowed latency reservoir (p50/p95) — feed three decisions the
// runtime previously hardcoded:
//
//   (a) dynamic admission width — how many speculative worlds SpecScheduler
//       admits before deferring, bounded above by the static
//       max_live_worlds budget and below by the width a single race needs;
//   (b) priority ordering / deferral of alternatives by historical win rate,
//       with an epsilon-explore floor so losing positions keep being
//       sampled (a deferred alternative still runs — it is ranked to the
//       cold end of the deque, where the winner's revocation usually
//       prunes it unrun at zero pages copied);
//   (c) hedge-launch timing in HedgedServer — hedge after the observed p95
//       of completed-request latency instead of a fixed delay, falling back
//       to the static delay while the reservoir is cold.
//
// Determinism contract: every decision is a pure function of
// (PolicyConfig, PolicySnapshot, seed, step). Randomness comes only from a
// derived Rng stream keyed (seed, step) — never from the callers' streams —
// so seed-replay tests keep their meaning. kStatic mode short-circuits each
// decision to its pass-through value without touching the step counter, the
// rng, or the trace stream: bit-for-bit today's behavior.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/alt.hpp"
#include "util/vtime.hpp"

namespace mw {

enum class PolicyMode {
  /// Pass-through: every decision returns its static input unchanged.
  kStatic,
  /// Closed-loop: decisions derive from the observed snapshot.
  kAdaptive,
};

struct PolicyConfig {
  PolicyMode mode = PolicyMode::kStatic;
  /// Seed for the policy's private decision stream. 0 = derive from the
  /// owning component's seed (Runtime / ServiceConfig).
  std::uint64_t seed = 0;
  /// Probability that a plan boosts a uniformly random position instead of
  /// the win-rate favourite (epsilon-greedy exploration).
  double epsilon = 0.05;
  /// Explore floor: any tracked position left unboosted for this many plan
  /// steps is force-boosted to the top slot, so with k alternatives every
  /// position leads at least once per ~k * explore_window plans.
  std::uint64_t explore_window = 8;
  /// Win-rate window: every `win_window` observed races the per-position
  /// win/spawn counters are halved (exponential decay), so bursty workloads
  /// whose winner migrates do not fight stale history forever.
  std::uint64_t win_window = 32;
  /// Latency reservoir capacity (ring of the most recent samples).
  std::size_t latency_window = 128;
  /// Cold-start guard: below this many samples the reservoir's percentiles
  /// are undefined and hedge timing falls back to the static delay.
  std::size_t min_latency_samples = 8;
  /// Races to observe before the width controller narrows admission.
  std::uint64_t min_races = 8;
  /// Admission width never drops below this many worlds (and never below
  /// what a single race needs — the scheduler clamps that side).
  std::size_t min_width = 2;
  /// Width controller thresholds on the windowed wasted-work ratio.
  double waste_high = 0.5;
  double waste_low = 0.15;
  /// Deferral-rate threshold above which (with low waste) width re-widens.
  double defer_high = 0.25;
  /// Lower clamp for the adaptive hedge delay.
  VDuration hedge_floor = 1;
};

/// Per-position (index into the submitted alternative vector) outcome
/// history. Positions are the learning key: repeated races submitted by the
/// same program site keep their alternatives in a stable order.
struct PolicyAltStat {
  std::uint64_t spawned = 0;
  std::uint64_t wins = 0;
  std::uint64_t last_boost_step = 0;
  /// Optimistic initialisation: an unsampled position scores 1.0 so it is
  /// tried before history accumulates.
  double win_rate() const {
    return spawned == 0 ? 1.0
                        : static_cast<double>(wins) / static_cast<double>(spawned);
  }
};

/// Immutable view of the accumulated signals; decisions are pure functions
/// of a snapshot (plus config, seed, step).
struct PolicySnapshot {
  std::uint64_t races = 0;
  /// Windowed work accounting (decayed with the win counters).
  double work_total = 0.0;
  double work_wasted = 0.0;
  std::uint64_t pages_copied_losers = 0;
  std::uint64_t admissions = 0;
  std::uint64_t admission_deferrals = 0;
  std::vector<PolicyAltStat> alts;
  std::size_t latency_samples = 0;
  VDuration latency_p50 = 0;
  VDuration latency_p95 = 0;

  double wasted_ratio() const {
    return work_total <= 0.0 ? 0.0 : work_wasted / work_total;
  }
  double defer_rate() const {
    const std::uint64_t n = admissions + admission_deferrals;
    return n == 0 ? 0.0
                  : static_cast<double>(admission_deferrals) /
                        static_cast<double>(n);
  }
};

/// A race plan: effective priorities for each submitted position.
struct PolicyPlan {
  std::vector<double> priority;
  /// Submission order, hottest first: a permutation of the input positions
  /// sorted by effective priority (descending, ties in input order). The
  /// dispatch paths submit in this order so the ranking bites even when
  /// workers start popping before the whole race is enqueued. Static mode
  /// returns the identity permutation — submission order unchanged.
  std::vector<std::size_t> order;
  /// Position ranked first (the predicted winner or the explored position).
  std::size_t top = 0;
  /// Position ranked last (the "deferred" alternative: still submitted, but
  /// coldest in the deque and most likely revoked unrun).
  std::size_t deferred = 0;
  /// True when the top slot was an exploration (floor or epsilon), not the
  /// win-rate favourite.
  bool explored = false;
};

struct PolicyStats {
  std::uint64_t plans = 0;
  std::uint64_t explores = 0;
  std::uint64_t width_decisions = 0;
  std::uint64_t width_shrinks = 0;
  std::uint64_t hedge_decisions = 0;
  std::uint64_t hedge_fallbacks = 0;  // cold-start static fallbacks
  std::uint64_t splits_vetoed = 0;
};

/// Windowed latency reservoir: a ring of the most recent samples with
/// percentile queries over the current window.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(std::size_t capacity = 128);
  void add(VDuration sample);
  std::size_t size() const { return size_; }
  /// Percentile over the window (nearest-rank on a sorted copy). Calling
  /// with an empty window is the caller's bug; decide_hedge_delay guards it.
  VDuration quantile(double q) const;

 private:
  std::vector<VDuration> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Thread-safe policy engine: workers feed observations concurrently; the
/// dispatch paths ask for decisions. One instance per Runtime (races,
/// admission, or-parallel splits) and one per HedgedServer (hedge timing).
class SpecPolicy {
 public:
  explicit SpecPolicy(PolicyConfig cfg = {});

  const PolicyConfig& config() const { return cfg_; }
  PolicyMode mode() const { return cfg_.mode; }

  // ---- feedback taps (thread-safe; cheap in static mode too, so enabling
  // adaptive mode later starts from real history) ----

  /// Race post-mortem: win/spawn per position, wasted vs total work, pages
  /// copied by losers. Positions past kMaxTrackedAlts are not tracked.
  void observe_race(const AltOutcome& out);
  /// Admission controller outcome: deferred (or shed to the queue) vs
  /// admitted immediately.
  void observe_admission(bool deferred);
  /// A completed operation's latency (service: request admission→response).
  void observe_latency(VDuration sample);

  PolicySnapshot snapshot() const;
  PolicyStats stats() const;

  // ---- pure decision functions; deterministic in their arguments ----

  /// (a) admission width in worlds, in [min(cfg.min_width, budget), budget].
  static std::size_t decide_width(const PolicyConfig& cfg,
                                  const PolicySnapshot& s, std::size_t budget);
  /// (b) effective priorities for a race of base.size() positions. Static
  /// mode returns base unchanged. Adaptive mode adds each position's win
  /// rate to its base priority, then boosts one position to the top slot:
  /// the stalest position past the explore floor, an epsilon-random
  /// position (rng keyed (seed, step)), or the win-rate favourite.
  static PolicyPlan decide_plan(const PolicyConfig& cfg,
                                const PolicySnapshot& s, std::uint64_t seed,
                                std::uint64_t step,
                                const std::vector<double>& base);
  /// (c) hedge-launch delay: observed p95 (clamped to >= hedge_floor) once
  /// the reservoir is warm; the static delay while it is cold.
  static VDuration decide_hedge_delay(const PolicyConfig& cfg,
                                      const PolicySnapshot& s,
                                      VDuration static_delay);
  /// Third consumer (or-parallel Prolog): whether splitting a choice point
  /// of `fanout` clauses into speculative worlds is worth it, or the solver
  /// should fall back to sequential search. A vetoed split is re-allowed
  /// once per explore_window steps so the snapshot keeps being refreshed
  /// (otherwise a veto would freeze the signals that caused it).
  static bool decide_split(const PolicyConfig& cfg, const PolicySnapshot& s,
                           std::uint64_t step, std::size_t fanout);

  // ---- stateful wrappers: advance the step counter, stamp last_boost,
  // bump PolicyStats, and emit policy trace events (adaptive mode only) ----

  /// Scheduler admission hook. `group` tags the trace event.
  std::size_t admission_width(std::size_t budget, std::uint64_t group = 0);
  /// Race-dispatch hook (alt_pool / or_parallel).
  PolicyPlan plan_race(std::uint64_t group, const std::vector<double>& base);
  /// Service hedge-timing hook. `ticket` tags the trace event.
  VDuration hedge_delay(VDuration static_delay, std::uint64_t ticket = 0);
  /// Or-parallel split hook.
  bool allow_split(std::uint64_t group, std::size_t fanout);

  /// Positions beyond this are passed through unlearned.
  static constexpr std::size_t kMaxTrackedAlts = 32;

 private:
  PolicySnapshot snapshot_locked() const;
  void decay_locked();

  PolicyConfig cfg_;
  std::uint64_t seed_ = 0;  // resolved (cfg.seed or owner-derived)

  mutable std::mutex mu_;
  std::uint64_t step_ = 0;        // plan steps (explore-floor staleness clock)
  std::uint64_t split_step_ = 0;  // split decisions (veto re-allow cadence)
  std::uint64_t races_ = 0;
  double work_total_ = 0.0;
  double work_wasted_ = 0.0;
  std::uint64_t pages_copied_losers_ = 0;
  std::uint64_t admissions_ = 0;
  std::uint64_t admission_deferrals_ = 0;
  std::vector<PolicyAltStat> alts_;
  LatencyReservoir reservoir_;
  std::size_t latency_total_ = 0;
  std::size_t last_width_ = 0;  // last emitted width (trace de-noise)
  PolicyStats stats_;
};

}  // namespace mw
