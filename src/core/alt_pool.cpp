// kPool: alternative blocks as work-stealing tasks. See alt_pool.hpp for
// the contract; the block-level semantics mirror alt_thread.cpp with three
// structural changes — admission before any world is forked, alternatives
// submitted as prioritized tasks instead of threads, and winner-side
// revocation of queued siblings at the sync point.
#include "core/alt_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "core/spec_scheduler.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace mw {

namespace internal {

namespace {

// How a spawned alternative's task ended. Extends the thread backend's
// fates with the two never-ran terminals the scheduler introduces.
enum class End {
  kPending,
  kSynced,
  kAborted,
  kCancelled,
  kRevoked,  // pruned while queued: body never ran, zero pages copied
  kFaulted,  // killed by sched.steal fault injection: body never ran
};

}  // namespace

AltOutcome run_alternatives_pool(Runtime& rt, World& parent,
                                 const std::vector<Alternative>& alts,
                                 const AltOptions& opts) {
  const std::size_t n = alts.size();
  AltOutcome out;
  out.alts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.alts[i].index = i + 1;
    out.alts[i].name = alts[i].name;
  }
  if (n == 0) {
    out.failed = true;
    out.failure = AltFailure::kNoAlternatives;
    return out;
  }

  SpecScheduler& sched = rt.scheduler();
  const std::uint64_t group = rt.next_alt_group();
  ProcessTable& table = rt.processes();
  Stopwatch block_clock;

  std::vector<std::size_t> spawned;
  for (std::size_t i = 0; i < n; ++i) {
    if ((opts.guard_phases & kGuardPreSpawn) && alts[i].guard &&
        !alts[i].guard(parent)) {
      continue;
    }
    spawned.push_back(i);
    out.alts[i].spawned = true;
  }
  if (spawned.empty()) {
    out.failed = true;
    out.failure = AltFailure::kAllFailed;
    return out;
  }
  const std::size_t m = spawned.size();

  // Admission: fit the race inside the global speculation budget before a
  // single world exists. A rejected race spawns nothing — the block fails
  // the same way an all-guards-false block does, and the caller decides
  // whether to retry sequentially.
  if (!sched.admit(m, parent.pid(), group)) {
    for (std::size_t i = 0; i < n; ++i) out.alts[i].spawned = false;
    out.failed = true;
    out.failure = AltFailure::kAdmissionRejected;
    out.elapsed = static_cast<VDuration>(block_clock.elapsed_us());
    return out;
  }

  std::vector<Pid> sibling_pids;
  sibling_pids.reserve(m);
  for (std::size_t i : spawned)
    sibling_pids.push_back(table.create(parent.pid(), group, alts[i].name));

  MW_TRACE_EVENT(trace::EventKind::kAltBlockBegin, parent.pid(), kNoPid,
                 group, m, 0);
  Stopwatch setup_clock;
  std::vector<World> worlds;
  worlds.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    MW_TRACE_EVENT(trace::EventKind::kAltSpawn, sibling_pids[k], parent.pid(),
                   group, spawned[k] + 1,
                   static_cast<VTime>(block_clock.elapsed_us()));
    worlds.push_back(parent.fork_alternative(sibling_pids[k], sibling_pids));
    table.set_status(sibling_pids[k], ProcStatus::kRunning);
  }
  out.overhead.setup = static_cast<VDuration>(setup_clock.elapsed_us());

  // Heap-allocated and shared with every task closure, as in the thread
  // backend: a task's trailing notify_all runs after blk->mu is released,
  // so the parent — woken by a timed poll on the helping path, or a
  // spurious wakeup — can observe terminal == m and return first,
  // destroying a stack block under the notifier. The sync state must own
  // its own lifetime; everything else (worlds, results, cancels) is
  // written strictly before the terminal count is published and may stay
  // on this frame.
  struct Block {
    std::mutex mu;
    std::condition_variable cv;
    // At-most-once sync arbiter, as in the thread backend. The parent waits
    // on `synced`/`terminal`, published under the mutex.
    std::atomic<int> race{-1};
    int synced = -1;
    std::size_t terminal = 0;  // done + revoked + faulted
    std::vector<End> ends;
  };
  auto blk = std::make_shared<Block>();
  blk->ends.assign(m, End::kPending);

  std::vector<CancelToken> cancels(m);
  std::vector<Bytes> results(m);
  // Task handles, written by the submit loop and read by the winner's
  // pruning pass — both under blk->mu (a task can win while later
  // siblings are still being submitted).
  std::vector<SchedTaskRef> tasks(m);

  // Prune every queued sibling of `self` and request cooperative
  // cancellation of the running ones. Called by the winning task at sync
  // time (before the parent wakes: the window in which another worker
  // could start a doomed sibling is the CAS-to-revoke gap, not the
  // sync-to-parent-wakeup gap) and again by the parent, which sweeps any
  // sibling submitted after the winner's pass.
  auto prune_siblings = [&](std::size_t self) {
    std::vector<SchedTaskRef> snapshot;
    {
      std::lock_guard<std::mutex> lk(blk->mu);
      snapshot = tasks;
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (j == self || !snapshot[j]) continue;
      sched.revoke(snapshot[j]);
      cancels[j].request();
    }
  };

  // Effective priorities: in kAdaptive mode the policy engine reorders the
  // race by learned per-position win rate (with an epsilon-explore floor),
  // boosting its predicted winner to the hot end of the deque; the
  // last-ranked position is the "deferred" alternative — still submitted,
  // but the likeliest to be revoked unrun when the winner prunes. Keyed by
  // input position, matching observe_race's AltReport.index accounting.
  // kStatic mode passes the base priorities through unchanged.
  std::vector<double> base_priority(n);
  for (std::size_t i = 0; i < n; ++i) base_priority[i] = alts[i].priority;
  const PolicyPlan plan = rt.policy().plan_race(group, base_priority);

  // Submit hottest-first (plan.order): priorities alone cannot reorder a
  // race when workers start popping the inbox before the last sibling is
  // enqueued. Static plans carry the identity order, so this loop walks
  // `spawned` exactly as before.
  std::vector<std::size_t> submit_seq(m);
  for (std::size_t k = 0; k < m; ++k) submit_seq[k] = k;
  if (plan.order.size() == n) {
    std::vector<std::size_t> rank(n, 0);
    for (std::size_t r = 0; r < n; ++r) rank[plan.order[r]] = r;
    std::stable_sort(submit_seq.begin(), submit_seq.end(),
                     [&](std::size_t a, std::size_t b) {
                       return rank[spawned[a]] < rank[spawned[b]];
                     });
  }

  const bool virtual_bodies = sched.deterministic();
  for (const std::size_t k : submit_seq) {
    const std::size_t i = spawned[k];
    auto body_fn = [&, blk, k, i] {
      const Alternative& alt = alts[i];
      World& child = worlds[k];
      AltContext ctx(child, i + 1, rt.rng_for(group, i + 1), &cancels[k],
                     virtual_bodies);
      MW_TRACE_EVENT(trace::EventKind::kAltChildBegin, sibling_pids[k],
                     kNoPid, group, 0,
                     static_cast<VTime>(block_clock.elapsed_us()));
      End end = End::kAborted;
      try {
        bool success = true;
        if ((opts.guard_phases & kGuardInChild) && alt.guard &&
            !alt.guard(child)) {
          success = false;
        } else {
          alt.body(ctx);
        }
        if (success && (opts.guard_phases & kGuardAtSync) && alt.guard &&
            !alt.guard(child)) {
          success = false;
        }
        if (success && alt.accept && !alt.accept(child)) success = false;
        if (success) {
          int expected = -1;
          end = blk->race.compare_exchange_strong(expected,
                                                  static_cast<int>(k))
                    ? End::kSynced
                    : End::kCancelled;  // lost the race: eliminated
        }
      } catch (const CancelledError&) {
        end = End::kCancelled;
      } catch (const AltFailed&) {
        end = End::kAborted;
      } catch (const AltHung&) {
        end = End::kAborted;
      } catch (const std::exception&) {
        end = End::kAborted;
      } catch (...) {
        // Foreign exceptions (e.g. an injected crash) fail the alternative
        // without taking down the pool worker executing it.
        end = End::kAborted;
      }
      results[k] = ctx.result();
      MW_TRACE_EVENT(trace::EventKind::kAltChildEnd, sibling_pids[k], kNoPid,
                     group, child.space().table().stats().pages_copied,
                     static_cast<VTime>(block_clock.elapsed_us()));
      if (end == End::kSynced) {
        MW_TRACE_EVENT(trace::EventKind::kAltSync, sibling_pids[k],
                       parent.pid(), group, 0,
                       static_cast<VTime>(block_clock.elapsed_us()));
        // Cancellation-aware pruning: kill the queued siblings while they
        // have copied zero pages, before the parent even wakes.
        prune_siblings(k);
      }
      {
        std::lock_guard<std::mutex> lk(blk->mu);
        blk->ends[k] = end;
        if (end == End::kSynced) blk->synced = static_cast<int>(k);
        ++blk->terminal;
      }
      blk->cv.notify_all();
    };
    auto on_skipped = [blk, k](SchedTask& t) {
      {
        std::lock_guard<std::mutex> lk(blk->mu);
        blk->ends[k] = t.faulted() ? End::kFaulted : End::kRevoked;
        ++blk->terminal;
      }
      blk->cv.notify_all();
    };
    SchedTaskRef task =
        sched.submit(std::move(body_fn), plan.priority[i], group,
                     sibling_pids[k], std::move(on_skipped), parent.pid(),
                     spawned[k] + 1);
    {
      std::lock_guard<std::mutex> lk(blk->mu);
      tasks[k] = std::move(task);
    }
  }

  // alt_wait. A helping parent (pool worker or deterministic driver) runs
  // tasks between checks instead of sleeping — a fully subscribed pool
  // with nested races must never deadlock on its own parents.
  MW_TRACE_EVENT(trace::EventKind::kAltWait, parent.pid(), kNoPid, group, 0,
                 static_cast<VTime>(block_clock.elapsed_us()));
  const bool bounded = opts.timeout != kVTimeMax;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(bounded ? opts.timeout : 0);
  auto wait_for_pred = [&](auto pred, bool use_deadline) -> bool {
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(blk->mu);
        if (pred()) return true;
      }
      if (use_deadline && std::chrono::steady_clock::now() >= deadline)
        return false;
      if (sched.should_help()) {
        if (sched.run_one()) continue;
        if (sched.deterministic()) {
          // Single-threaded and nothing runnable: every task of this block
          // is terminal, so the predicate must hold now.
          std::unique_lock<std::mutex> lk(blk->mu);
          MW_CHECK(pred());
          return true;
        }
        std::unique_lock<std::mutex> lk(blk->mu);
        blk->cv.wait_for(lk, std::chrono::microseconds(200), pred);
      } else {
        std::unique_lock<std::mutex> lk(blk->mu);
        if (use_deadline) {
          if (!blk->cv.wait_until(lk, deadline, pred)) return false;
        } else {
          blk->cv.wait(lk, pred);
        }
        return true;
      }
    }
  };

  auto decided = [&] { return blk->synced >= 0 || blk->terminal == m; };
  auto all_terminal = [&] { return blk->terminal == m; };

  const bool decided_in_time = wait_for_pred(decided, bounded);
  int wk;
  {
    std::lock_guard<std::mutex> lk(blk->mu);
    wk = blk->synced;
  }

  if (!decided_in_time && wk < 0) {
    // Timeout: revoke what never started, cancel what did, then wait the
    // stragglers out. A child that synced while the timeout fired keeps
    // its at-most-once win and is honoured below.
    prune_siblings(m);  // no winner: prune everyone
    wait_for_pred(all_terminal, false);
    std::lock_guard<std::mutex> lk(blk->mu);
    wk = blk->synced;
    if (wk < 0) {
      out.failed = true;
      out.failure = AltFailure::kTimeout;
    }
  }

  if (wk >= 0) {
    // The winner already pruned its queued siblings; sweep again from the
    // parent to catch any sibling submitted after the winner's pass, then
    // honour the elimination mode.
    Stopwatch elim_clock;
    prune_siblings(static_cast<std::size_t>(wk));
    if (opts.elimination == Elimination::kSynchronous)
      wait_for_pred(all_terminal, false);
    out.overhead.elimination = static_cast<VDuration>(elim_clock.elapsed_us());

    const auto wku = static_cast<std::size_t>(wk);
    const std::size_t wi = spawned[wku];
    out.winner = wi;
    out.winner_name = alts[wi].name;
    out.alts[wi].pages_copied =
        worlds[wku].space().table().stats().pages_copied;

    Stopwatch commit_clock;
    table.set_status(sibling_pids[wku], ProcStatus::kSynced);
    out.result = std::move(results[wku]);
    parent.commit_from(std::move(worlds[wku]));
    out.overhead.commit = static_cast<VDuration>(commit_clock.elapsed_us());
    out.elapsed = static_cast<VDuration>(block_clock.elapsed_us());
  } else if (decided_in_time) {
    out.failed = true;
    out.failure = AltFailure::kAllFailed;
    out.elapsed = static_cast<VDuration>(block_clock.elapsed_us());
  } else {
    out.elapsed = static_cast<VDuration>(block_clock.elapsed_us());
  }

  // The pool's equivalent of joining the threads: every task must be
  // terminal before the worlds vector leaves scope. Running losers unwind
  // at their next checkpoint; revoked ones are already terminal.
  wait_for_pred(all_terminal, false);

  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t i = spawned[k];
    AltReport& rep = out.alts[i];
    rep.pid = sibling_pids[k];
    rep.success = static_cast<int>(k) == wk;
    if (static_cast<int>(k) != wk)
      rep.pages_copied = worlds[k].space().table().stats().pages_copied;
    switch (blk->ends[k]) {
      case End::kSynced:
        rep.ran = true;
        break;
      case End::kAborted:
        rep.ran = true;
        table.set_status(sibling_pids[k], ProcStatus::kFailed);
        MW_TRACE_EVENT(trace::EventKind::kAltAbort, sibling_pids[k], kNoPid,
                       group, 0,
                       static_cast<VTime>(block_clock.elapsed_us()));
        break;
      case End::kPending:
      case End::kCancelled:
        rep.ran = blk->ends[k] == End::kCancelled;
        table.set_status(sibling_pids[k], ProcStatus::kEliminated);
        MW_TRACE_EVENT(trace::EventKind::kAltEliminate, sibling_pids[k],
                       kNoPid, group, 0,
                       static_cast<VTime>(block_clock.elapsed_us()));
        break;
      case End::kRevoked:
        rep.revoked = true;
        table.set_status(sibling_pids[k], ProcStatus::kEliminated);
        MW_TRACE_EVENT(trace::EventKind::kSchedRevoke, sibling_pids[k],
                       kNoPid, group, rep.pages_copied,
                       static_cast<VTime>(block_clock.elapsed_us()));
        MW_TRACE_EVENT(trace::EventKind::kAltEliminate, sibling_pids[k],
                       kNoPid, group, 0,
                       static_cast<VTime>(block_clock.elapsed_us()));
        break;
      case End::kFaulted:
        // Killed by an injected fault at the steal point: the sibling
        // crashed before its body ran. Failed, not eliminated — a
        // supervisor watching this pid must see a crash to recover.
        table.set_status(sibling_pids[k], ProcStatus::kFailed);
        MW_TRACE_EVENT(trace::EventKind::kAltAbort, sibling_pids[k], kNoPid,
                       group, 0,
                       static_cast<VTime>(block_clock.elapsed_us()));
        break;
    }
  }
  MW_TRACE_EVENT(trace::EventKind::kAltBlockEnd, parent.pid(), kNoPid, group,
                 static_cast<std::uint64_t>(out.failure),
                 static_cast<VTime>(block_clock.elapsed_us()));

  // Drop terminal task records of this race still parked in the deques,
  // then destroy this block's worlds (the losers' pages die here) before
  // giving the grant back — releasing first would let a new race admit
  // while the old one's pages are still resident, transiently blowing the
  // max_live_worlds/max_resident_pages budget.
  sched.scrub(group);
  worlds.clear();
  sched.release(m);
  return out;
}

}  // namespace internal

}  // namespace mw
