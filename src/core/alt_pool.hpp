// The kPool backend: alternative blocks executed as tasks on the shared
// work-stealing SpecScheduler instead of one OS thread per alternative.
//
// Differences from the kThread backend, in decreasing order of importance:
//   * Admission — the block asks the scheduler's speculation budget for
//     room *before* forking any world; a rejected block fails with
//     AltFailure::kAdmissionRejected and spawns nothing.
//   * Pruning — when a winner synchronizes it immediately revokes its
//     still-queued siblings, inside the winning task and before the parent
//     even wakes. A revoked alternative's body never runs and its world
//     never breaks a COW page (AltReport::revoked, pages_copied == 0).
//   * Helping — a parent that is itself a pool worker (nested races) or a
//     deterministic-mode driver executes tasks while it waits instead of
//     blocking, so a fully subscribed pool cannot deadlock on nesting.
//
// Semantics (winner selection, guards, accept, commit, elimination of
// running losers) are identical to kThread.
#pragma once

#include <vector>

#include "core/alt.hpp"

namespace mw {

class Runtime;

namespace internal {

AltOutcome run_alternatives_pool(Runtime& rt, World& parent,
                                 const std::vector<Alternative>& alts,
                                 const AltOptions& opts);

}  // namespace internal

}  // namespace mw
