// AltContext: the execution context handed to an alternative's body. It is
// the body's window onto its speculative world and its link to the
// elimination machinery (cooperative cancellation) and the virtual clock.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "core/world.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"
#include "util/vtime.hpp"

namespace mw {

/// Thrown by AltContext::fail — aborts the alternative without synchronizing.
struct AltFailed {
  std::string reason;
};

/// Thrown by AltContext::hang in the virtual backend: the backend records
/// the alternative as never finishing on its own (it occupies a virtual
/// processor until the block's deadline eliminates it).
struct AltHung {};

class AltContext {
 public:
  AltContext(World& world, std::size_t index, Rng rng, CancelToken* cancel,
             bool virtual_mode)
      : world_(world), index_(index), rng_(rng), cancel_(cancel),
        virtual_(virtual_mode) {}

  /// This alternative's private world / address space.
  World& world() { return world_; }
  AddressSpace& space() { return world_.space(); }
  Pid pid() const { return world_.pid(); }

  /// 1-based alternative number — what alt_spawn returned in this child.
  std::size_t index() const { return index_; }

  /// Per-alternative deterministic random stream.
  Rng& rng() { return rng_; }

  /// Accounts `ticks` of virtual work and serves as a cancellation
  /// checkpoint. In the thread backend the ticks are recorded for reporting
  /// only; real work is whatever the body actually computes.
  void work(VDuration ticks);

  /// Like work(), but in the thread backend also *spends* roughly `ticks`
  /// microseconds of CPU — lets one synthetic workload drive both backends.
  void compute(VDuration ticks);

  /// Cancellation checkpoint; throws CancelledError if this alternative
  /// has been eliminated.
  void checkpoint();

  /// Aborts this alternative (guard/computation failure): throws AltFailed.
  [[noreturn]] void fail(std::string reason = {});

  /// Declares a named fault point in the body: queries the ambient
  /// FaultInjector (clocked by this alternative's accounted work in the
  /// virtual backend) and applies any injected action — fail, crash with a
  /// foreign exception, hang, or extra delay. No-op without an injector.
  void fault_point(std::string_view name);

  /// This alternative stops making progress. Virtual backend: unwinds via
  /// AltHung and is scheduled as never finishing. Thread backend: blocks
  /// until eliminated, then unwinds via CancelledError (with no
  /// cancellation token it degrades to fail(), which cannot wedge).
  [[noreturn]] void hang();

  /// Cancellable sleep: accounts `ticks` in the virtual backend; sleeps
  /// roughly `ticks` microseconds of wall time in the thread backend,
  /// polling for elimination.
  void sleep_for(VDuration ticks);

  /// Publishes result bytes; delivered in AltOutcome::result if this
  /// alternative wins.
  void set_result(std::span<const std::uint8_t> bytes) {
    result_.assign(bytes.begin(), bytes.end());
  }
  void set_result_string(const std::string& s) {
    result_.assign(s.begin(), s.end());
  }

  /// Total virtual work accounted so far.
  VDuration accounted_work() const { return work_; }
  const Bytes& result() const { return result_; }

 private:
  World& world_;
  std::size_t index_;
  Rng rng_;
  CancelToken* cancel_;
  bool virtual_;
  VDuration work_ = 0;
  Bytes result_;
};

}  // namespace mw
