// RuntimeAuditor: post-block invariant checking for the Multiple Worlds
// runtime. After an alternative block (or a whole workload) finishes, the
// auditor cross-examines the process table, the registered live worlds and
// the global page ledger, and reports three classes of violation:
//
//   * orphan processes   — pids still in a non-terminal status that no
//                          registered live world accounts for: a child that
//                          neither synced, failed, nor was eliminated;
//   * unresolved splits  — live worlds still carrying a non-empty predicate
//                          set, i.e. speculative state that was never
//                          resolved into certainty or discarded (§2.4.2);
//   * leaked pages       — Page instances alive beyond the pre-run baseline
//                          that are unreachable from any registered page
//                          table: memory kept by nothing.
//
// The auditor holds non-owning pointers; everything registered must outlive
// the call to run(). It is the assertion backbone of the fault-injection
// test suite: every fault schedule must leave the runtime clean.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/world.hpp"
#include "pagestore/page_table.hpp"
#include "proc/process_table.hpp"
#include "trace/trace.hpp"
#include "util/ids.hpp"

namespace mw {

struct AuditReport {
  std::vector<Pid> orphan_processes;
  std::vector<Pid> unresolved_splits;
  std::int64_t leaked_pages = 0;
  /// Frames cached in the global PagePool at audit time. Informational:
  /// pooled frames are bare buffers (their Page objects were destroyed and
  /// un-counted), so they never show up as leaks — this records how much
  /// reclaimed-world memory is parked for reuse instead.
  std::int64_t pooled_frames = 0;
  /// Per-shard breakdown of pooled_frames (slot 0 is the unbound-thread
  /// global shard). Sums to pooled_frames; shows how evenly reclaimed
  /// frames spread over the scheduler workers' shards.
  std::vector<std::int64_t> pooled_frames_per_shard;
  /// True when a trace stream was cross-checked against the process table
  /// (the three-argument run()); false when the check was skipped because
  /// the collector dropped events — a partial stream cannot be audited.
  bool trace_checked = false;
  std::size_t trace_events = 0;
  /// One human-readable line per finding, empty when the runtime is clean.
  std::vector<std::string> violations;
  /// Informational remarks (e.g. why the trace check was skipped); these do
  /// not make the report unclean.
  std::vector<std::string> notes;

  bool clean() const { return violations.empty(); }
  std::string to_string() const;
};

class RuntimeAuditor {
 public:
  /// Captures the current global Page population as the leak baseline —
  /// call before constructing the system under audit.
  RuntimeAuditor();

  /// Registers a live world: its pid is excused from the orphan check and
  /// its page table becomes a reachability root.
  void add_world(const World& w);

  /// Registers an extra reachability root that is not a world (e.g. a
  /// standalone AddressSpace used by the dist layer).
  void add_table(const PageTable& t);

  /// Overrides the baseline captured at construction.
  void set_baseline_pages(std::int64_t n) { baseline_pages_ = n; }
  std::int64_t baseline_pages() const { return baseline_pages_; }

  /// Runs every invariant check against `table` and the registered state.
  AuditReport run(const ProcessTable& table) const;

  /// run(table) plus a trace cross-check: every traced alt_spawn must name
  /// a pid the table knows (with the matching alt group and parent), every
  /// traced fate (sync / eliminate / abort) must agree with the pid's
  /// terminal status, and per-group spawn counts must match the table.
  /// `dropped` is the collector's dropped() counter at snapshot time: when
  /// non-zero the cross-check is skipped with a note, not failed — a ring
  /// that overwrote records cannot be audited exactly.
  AuditReport run(const ProcessTable& table,
                  const std::vector<trace::TraceEvent>& events,
                  std::uint64_t dropped = 0) const;

 private:
  std::vector<const World*> worlds_;
  std::vector<const PageTable*> tables_;
  std::int64_t baseline_pages_ = 0;
};

}  // namespace mw
