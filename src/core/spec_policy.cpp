#include "core/spec_policy.hpp"

#include <algorithm>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace mw {

namespace {

// Work attributed to one spawned alternative. The virtual backend stamps
// start/finish in ticks; the wall-clock backends do not, so a report that
// ran counts one unit and a revoked-unrun report counts zero. The *ratio*
// wasted/total is the signal, and it is comparable either way.
double report_work(const AltReport& a) {
  if (a.finish > a.start) return static_cast<double>(a.finish - a.start);
  return a.ran ? 1.0 : 0.0;
}

std::size_t argmax(const std::vector<double>& v) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;  // ties resolve to the lowest index
  }
  return best;
}

std::size_t argmin(const std::vector<double>& v) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] <= v[best]) best = i;  // ties resolve to the highest index
  }
  return best;
}

}  // namespace

LatencyReservoir::LatencyReservoir(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void LatencyReservoir::add(VDuration sample) {
  ring_[head_] = sample;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

VDuration LatencyReservoir::quantile(double q) const {
  if (size_ == 0) return 0;
  std::vector<VDuration> sorted(ring_.begin(),
                                ring_.begin() + static_cast<long>(size_));
  std::sort(sorted.begin(), sorted.end());
  double rank = q * static_cast<double>(size_ - 1);
  if (rank < 0) rank = 0;
  auto idx = static_cast<std::size_t>(rank + 0.5);  // nearest rank
  if (idx >= size_) idx = size_ - 1;
  return sorted[idx];
}

SpecPolicy::SpecPolicy(PolicyConfig cfg)
    : cfg_(cfg),
      seed_(cfg.seed != 0 ? cfg.seed : 0x9e3779b97f4a7c15ull),
      reservoir_(cfg.latency_window) {}

void SpecPolicy::observe_race(const AltOutcome& out) {
  std::lock_guard<std::mutex> lk(mu_);
  ++races_;
  for (const AltReport& a : out.alts) {
    if (!a.spawned || a.index == 0) continue;
    const std::size_t pos = a.index - 1;  // AltReport.index is 1-based
    const double w = report_work(a);
    work_total_ += w;
    if (!a.success) {
      work_wasted_ += w;
      pages_copied_losers_ += a.pages_copied;
    }
    if (pos >= kMaxTrackedAlts) continue;
    if (alts_.size() <= pos) alts_.resize(pos + 1);
    ++alts_[pos].spawned;
    if (a.success) ++alts_[pos].wins;
  }
  if (cfg_.win_window > 0 && races_ % cfg_.win_window == 0) decay_locked();
}

void SpecPolicy::observe_admission(bool deferred) {
  std::lock_guard<std::mutex> lk(mu_);
  if (deferred) {
    ++admission_deferrals_;
  } else {
    ++admissions_;
  }
}

void SpecPolicy::observe_latency(VDuration sample) {
  std::lock_guard<std::mutex> lk(mu_);
  reservoir_.add(sample);
  ++latency_total_;
}

// Exponential decay: halving the counters keeps the ratios but caps how
// much history a migrated workload has to outvote.
void SpecPolicy::decay_locked() {
  for (PolicyAltStat& a : alts_) {
    a.spawned /= 2;
    a.wins /= 2;
  }
  work_total_ /= 2;
  work_wasted_ /= 2;
  pages_copied_losers_ /= 2;
  admissions_ /= 2;
  admission_deferrals_ /= 2;
}

PolicySnapshot SpecPolicy::snapshot_locked() const {
  PolicySnapshot s;
  s.races = races_;
  s.work_total = work_total_;
  s.work_wasted = work_wasted_;
  s.pages_copied_losers = pages_copied_losers_;
  s.admissions = admissions_;
  s.admission_deferrals = admission_deferrals_;
  s.alts = alts_;
  s.latency_samples = reservoir_.size();
  if (s.latency_samples > 0) {
    s.latency_p50 = reservoir_.quantile(0.50);
    s.latency_p95 = reservoir_.quantile(0.95);
  }
  return s;
}

PolicySnapshot SpecPolicy::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return snapshot_locked();
}

PolicyStats SpecPolicy::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t SpecPolicy::decide_width(const PolicyConfig& cfg,
                                     const PolicySnapshot& s,
                                     std::size_t budget) {
  if (cfg.mode == PolicyMode::kStatic || budget == 0) return budget;
  std::size_t width = budget;
  if (s.races >= cfg.min_races) {
    const double waste = s.wasted_ratio();
    if (waste > cfg.waste_high) {
      width = budget / 2;
    } else if (waste > (cfg.waste_high + cfg.waste_low) / 2.0) {
      width = budget - budget / 4;
    }
    // Deferral pressure while speculation is paying off: widen back out.
    if (s.defer_rate() > cfg.defer_high && waste < cfg.waste_low) {
      width = budget;
    }
  }
  width = std::max(width, std::min(cfg.min_width, budget));
  return std::min(width, budget);
}

PolicyPlan SpecPolicy::decide_plan(const PolicyConfig& cfg,
                                   const PolicySnapshot& s, std::uint64_t seed,
                                   std::uint64_t step,
                                   const std::vector<double>& base) {
  PolicyPlan plan;
  plan.priority = base;
  const std::size_t k = base.size();
  if (k == 0) return plan;
  plan.order.resize(k);
  for (std::size_t i = 0; i < k; ++i) plan.order[i] = i;
  if (cfg.mode == PolicyMode::kStatic || k == 1) {
    // Identity order: static submission must be bit-for-bit unchanged.
    plan.top = argmax(plan.priority);
    plan.deferred = argmin(plan.priority);
    return plan;
  }

  // Blend: base priority + historical win rate per position. Positions the
  // snapshot has never seen score the optimistic 1.0.
  for (std::size_t i = 0; i < k; ++i) {
    const double rate = i < s.alts.size() ? s.alts[i].win_rate() : 1.0;
    plan.priority[i] += rate;
  }

  // Explore floor first: the stalest tracked position past the window is
  // force-boosted so every position keeps being sampled at the hot end.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t boost = kNone;
  std::uint64_t best_staleness = 0;
  const std::size_t tracked = std::min(k, s.alts.size());
  for (std::size_t i = 0; i < tracked; ++i) {
    const std::uint64_t staleness = step - s.alts[i].last_boost_step;
    if (staleness >= cfg.explore_window && staleness > best_staleness) {
      best_staleness = staleness;
      boost = i;
    }
  }
  if (boost == kNone && cfg.epsilon > 0.0) {
    // Epsilon draw from the policy's private stream, keyed (seed, step):
    // pure in the decision's arguments, invisible to the callers' streams.
    Rng rng = Rng(seed).split(step);
    if (rng.next_bool(cfg.epsilon)) {
      boost = static_cast<std::size_t>(rng.next_below(k));
    }
  }
  if (boost != kNone) {
    plan.priority[boost] =
        *std::max_element(plan.priority.begin(), plan.priority.end()) + 1.0;
    plan.explored = true;
  }
  // Hottest-first submission order; ties keep input order, so top matches
  // argmax (lowest index wins) and deferred matches argmin (highest index).
  std::stable_sort(plan.order.begin(), plan.order.end(),
                   [&plan](std::size_t a, std::size_t b) {
                     return plan.priority[a] > plan.priority[b];
                   });
  plan.top = plan.order.front();
  plan.deferred = plan.order.back();
  return plan;
}

VDuration SpecPolicy::decide_hedge_delay(const PolicyConfig& cfg,
                                         const PolicySnapshot& s,
                                         VDuration static_delay) {
  if (cfg.mode == PolicyMode::kStatic) return static_delay;
  // Cold start: below min_latency_samples the reservoir's p95 is undefined
  // (or degenerate); hedging must fall back to the static delay — never to
  // 0, which would hedge every request immediately.
  if (s.latency_samples < cfg.min_latency_samples || s.latency_p95 <= 0) {
    return static_delay;
  }
  return std::max(s.latency_p95, cfg.hedge_floor);
}

bool SpecPolicy::decide_split(const PolicyConfig& cfg, const PolicySnapshot& s,
                              std::uint64_t step, std::size_t fanout) {
  if (cfg.mode == PolicyMode::kStatic) return true;
  if (fanout < 2 || s.races < cfg.min_races) return true;
  if (s.wasted_ratio() <= cfg.waste_high) return true;
  // Re-allow periodically: a standing veto would stop producing races and
  // freeze the very snapshot that justified it.
  return cfg.explore_window > 0 && step % cfg.explore_window == 0;
}

std::size_t SpecPolicy::admission_width(std::size_t budget,
                                        std::uint64_t group) {
  if (cfg_.mode == PolicyMode::kStatic) return budget;
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t width = decide_width(cfg_, snapshot_locked(), budget);
  ++stats_.width_decisions;
  if (width < budget) ++stats_.width_shrinks;
  if (width != last_width_) {
    last_width_ = width;
    MW_TRACE_EVENT(trace::EventKind::kPolicyWidth, kNoPid, kNoPid,
                   static_cast<std::uint64_t>(width),
                   static_cast<std::uint64_t>(budget));
  }
  (void)group;
  return width;
}

PolicyPlan SpecPolicy::plan_race(std::uint64_t group,
                                 const std::vector<double>& base) {
  if (cfg_.mode == PolicyMode::kStatic) {
    PolicyPlan plan;
    plan.priority = base;
    plan.order.resize(base.size());
    for (std::size_t i = 0; i < base.size(); ++i) plan.order[i] = i;
    return plan;
  }
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t step = ++step_;
  PolicyPlan plan = decide_plan(cfg_, snapshot_locked(), seed_, step, base);
  ++stats_.plans;
  if (plan.explored) ++stats_.explores;
  // The boosted/top position counts as sampled for the explore floor.
  if (plan.top < alts_.size()) alts_[plan.top].last_boost_step = step;
  if (plan.priority.size() >= 2) {
    MW_TRACE_EVENT(trace::EventKind::kPolicyOrder, kNoPid, kNoPid, group,
                   static_cast<std::uint64_t>(plan.top));
    MW_TRACE_EVENT(trace::EventKind::kPolicyDefer, kNoPid, kNoPid, group,
                   static_cast<std::uint64_t>(plan.deferred));
    if (plan.explored) {
      MW_TRACE_EVENT(trace::EventKind::kPolicyExplore, kNoPid, kNoPid, group,
                     static_cast<std::uint64_t>(plan.top));
    }
  }
  return plan;
}

VDuration SpecPolicy::hedge_delay(VDuration static_delay,
                                  std::uint64_t ticket) {
  if (cfg_.mode == PolicyMode::kStatic) return static_delay;
  std::lock_guard<std::mutex> lk(mu_);
  const VDuration d =
      decide_hedge_delay(cfg_, snapshot_locked(), static_delay);
  ++stats_.hedge_decisions;
  const bool adaptive =
      reservoir_.size() >= cfg_.min_latency_samples && d != static_delay;
  if (reservoir_.size() < cfg_.min_latency_samples) ++stats_.hedge_fallbacks;
  if (adaptive) {
    MW_TRACE_EVENT(trace::EventKind::kPolicyHedge, kNoPid, kNoPid, ticket,
                   static_cast<std::uint64_t>(d));
  }
  return d;
}

bool SpecPolicy::allow_split(std::uint64_t group, std::size_t fanout) {
  if (cfg_.mode == PolicyMode::kStatic) return true;
  std::lock_guard<std::mutex> lk(mu_);
  // Splits have their own step clock: a split probe per race would double
  // the plan clock and make the explore floor fire twice as often.
  const std::uint64_t step = ++split_step_;
  const bool allow = decide_split(cfg_, snapshot_locked(), step, fanout);
  if (!allow) {
    ++stats_.splits_vetoed;
    MW_TRACE_EVENT(trace::EventKind::kPolicyDefer, kNoPid, kNoPid, group,
                   static_cast<std::uint64_t>(fanout));
  }
  return allow;
}

}  // namespace mw
