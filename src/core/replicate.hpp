// Replication × speculation (§5): "Transparent replication can easily be
// combined with the use of parallel execution of several alternatives for
// increases in performance, reliability, or both" (after Cooper's CIRCUS
// and Goldberg & Jefferson's process cloning).
//
// Two modes over the same alternative-block machinery:
//  * kFirstWins  — latency hedging: k identical replicas race; the first
//    successful one commits. Useful when per-replica time varies (runtime
//    jitter, fault injection): response time becomes min over replicas.
//  * kMajority   — reliability: ALL replicas run to completion; a result
//    value wins only if more than half of the replicas produced it. The
//    winning replica's world commits. Detects (does not merely mask)
//    value-corrupting faults.
#pragma once

#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"

namespace mw {

enum class ReplicaMode { kFirstWins, kMajority };

struct ReplicateOptions {
  ReplicaMode mode = ReplicaMode::kFirstWins;
  AltOptions alt;  // timeout / elimination / guard phases
  /// Hedging ladder for the kPool backend: replica r gets priority
  /// -(r-1) * stagger_priority, so replica 1 runs eagerly and the backups
  /// sit at the cold end of the deque — likely revoked unrun when the
  /// primary wins, which makes first-wins hedging nearly free under a
  /// bounded speculation budget. 0 = all replicas equal (true race).
  double stagger_priority = 0.0;
};

template <typename T>
struct ReplicateResult {
  std::optional<T> value;
  /// Replicas that produced the winning value (majority mode) or 1.
  int agreeing = 0;
  /// Replicas that completed with *some* value.
  int completed = 0;
  AltOutcome outcome;
};

/// Runs `body` as `k` replicas against copies of `parent`'s state; on
/// success, exactly one replica's world is committed into `parent`.
/// The body receives its replica number (1..k) as the second argument.
template <typename T>
ReplicateResult<T> replicate(Runtime& rt, World& parent,
                             std::function<T(AltContext&, int)> body, int k,
                             const ReplicateOptions& opts = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  ReplicateResult<T> out;

  std::vector<Alternative> alts;
  alts.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const int replica = i + 1;
    alts.push_back(Alternative{
        "replica" + std::to_string(replica), nullptr,
        [body, replica](AltContext& ctx) {
          T value = body(ctx, replica);
          std::uint8_t buf[sizeof(T)];
          std::memcpy(buf, &value, sizeof(T));
          ctx.set_result(std::span<const std::uint8_t>(buf, sizeof(T)));
        },
        nullptr, -static_cast<double>(i) * opts.stagger_priority});
  }

  if (opts.mode == ReplicaMode::kFirstWins) {
    out.outcome = run_alternatives(rt, parent, alts, opts.alt);
    if (!out.outcome.failed && out.outcome.result.size() == sizeof(T)) {
      T v;
      std::memcpy(&v, out.outcome.result.data(), sizeof(T));
      out.value = v;
      out.agreeing = 1;
      out.completed = 1;
    }
    return out;
  }

  // Majority: every replica must finish, so run them as k *separate*
  // single-alternative blocks, each against its own COW clone of the
  // parent (which absorbs that replica's state on success). Vote on the
  // byte representation, then commit one agreeing replica's world —
  // never re-executing a body, since non-determinism is exactly what
  // majority voting is there to catch.
  std::map<std::string, int> votes;
  std::vector<Bytes> results(static_cast<std::size_t>(k));
  std::vector<World> probes;
  probes.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    World probe =
        parent.clone_with_predicates(parent.predicates(), "replica-probe");
    AltOutcome o = run_alternatives(
        rt, probe, {alts[static_cast<std::size_t>(i)]}, opts.alt);
    if (!o.failed && o.result.size() == sizeof(T)) {
      results[static_cast<std::size_t>(i)] = o.result;
      ++votes[std::string(o.result.begin(), o.result.end())];
      ++out.completed;
    }
    probes.push_back(std::move(probe));
    out.outcome.elapsed += o.elapsed;  // replicas run on the same plant
  }
  for (const auto& [bytes, count] : votes) {
    if (2 * count <= k) continue;
    out.agreeing = count;
    T v;
    std::memcpy(&v, bytes.data(), sizeof(T));
    out.value = v;
    for (int i = 0; i < k; ++i) {
      const auto& r = results[static_cast<std::size_t>(i)];
      if (!r.empty() && std::string(r.begin(), r.end()) == bytes) {
        // The probe already absorbed this replica's state.
        parent.commit_from(std::move(probes[static_cast<std::size_t>(i)]));
        break;
      }
    }
    break;
  }
  // Hygiene: the probe processes are done either way.
  for (const World& p : probes)
    rt.processes().set_status(p.pid(), ProcStatus::kEliminated);
  return out;
}

}  // namespace mw
