#include "core/alt_posix.hpp"

#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>

#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace mw {

struct PosixAltBlock::SharedRegion {
  std::atomic<int> winner;              // -1 until a child syncs
  std::atomic<std::uint32_t> published; // 0 until the winner's data landed
  std::uint32_t len;
  // absorbed bytes follow
  std::uint8_t* data() { return reinterpret_cast<std::uint8_t*>(this + 1); }
};

PosixAltBlock::PosixAltBlock(std::size_t absorb_bytes)
    : capacity_(absorb_bytes) {
  shared_bytes_ = sizeof(SharedRegion) + absorb_bytes;
  void* p = ::mmap(nullptr, shared_bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  MW_CHECK(p != MAP_FAILED);
  shared_ = static_cast<SharedRegion*>(p);
  new (&shared_->winner) std::atomic<int>(-1);
  new (&shared_->published) std::atomic<std::uint32_t>(0);
  shared_->len = 0;
}

PosixAltBlock::~PosixAltBlock() {
  if (shared_) ::munmap(shared_, shared_bytes_);
}

void PosixAltBlock::absorb(void* data, std::size_t bytes) {
  MW_CHECK(!spawned_);
  MW_CHECK(bytes <= capacity_);
  absorb_data_ = data;
  absorb_len_ = bytes;
}

int PosixAltBlock::alt_spawn(int n) {
  MW_CHECK(!spawned_);
  MW_CHECK(n >= 1);
  spawned_ = true;
  kids_.assign(static_cast<std::size_t>(n), -1);
  for (int i = 1; i <= n; ++i) {
    const pid_t pid = ::fork();
    MW_CHECK(pid >= 0);
    if (pid == 0) {
      // The child: its entire address space is a COW copy of the parent.
      my_index_ = i;
      kids_.clear();
      return i;
    }
    kids_[static_cast<std::size_t>(i - 1)] = pid;
  }
  return 0;
}

void PosixAltBlock::child_sync() {
  MW_CHECK(my_index_ > 0);
  int expected = -1;
  if (shared_->winner.compare_exchange_strong(expected, my_index_)) {
    // Won the race: publish the absorbed state, then mark it complete.
    if (absorb_data_ && absorb_len_ > 0) {
      std::memcpy(shared_->data(), absorb_data_, absorb_len_);
      shared_->len = static_cast<std::uint32_t>(absorb_len_);
    }
    shared_->published.store(1, std::memory_order_release);
    ::_exit(0);
  }
  // A sibling already synchronized: this world is eliminated.
  ::_exit(1);
}

void PosixAltBlock::child_abort() {
  MW_CHECK(my_index_ > 0);
  ::_exit(2);
}

std::optional<int> PosixAltBlock::parent_wait(std::uint64_t timeout_us,
                                              bool synchronous_elimination) {
  MW_CHECK(my_index_ == 0);
  MW_CHECK(spawned_);

  Stopwatch sw;
  std::size_t alive = kids_.size();
  int winner = -1;
  for (;;) {
    winner = shared_->winner.load(std::memory_order_acquire);
    if (winner > 0) break;
    if (alive == 0) break;
    if (timeout_us != 0 &&
        sw.elapsed_us() > static_cast<double>(timeout_us)) {
      break;
    }
    int status = 0;
    const pid_t reaped = ::waitpid(-1, &status, WNOHANG);
    if (reaped > 0) {
      for (auto& k : kids_)
        if (k == reaped) k = -1;
      --alive;
      continue;
    }
    ::usleep(100);
  }
  if (winner <= 0) winner = shared_->winner.load(std::memory_order_acquire);

  // Eliminate the siblings (issue the kills; reap now or later per mode).
  for (std::size_t i = 0; i < kids_.size(); ++i) {
    if (kids_[i] > 0 && static_cast<int>(i + 1) != winner)
      ::kill(kids_[i], SIGKILL);
  }
  if (synchronous_elimination) {
    for (std::size_t i = 0; i < kids_.size(); ++i) {
      if (kids_[i] > 0 && static_cast<int>(i + 1) != winner) {
        ::waitpid(kids_[i], nullptr, 0);
        kids_[i] = -1;
      }
    }
  }

  std::optional<int> result;
  if (winner > 0) {
    // Absorb the winner's state changes, the §2.2 page-pointer swap (here
    // an explicit copy through the shared segment).
    while (shared_->published.load(std::memory_order_acquire) == 0)
      ::usleep(50);
    if (absorb_data_ && shared_->len > 0) {
      std::memcpy(absorb_data_, shared_->data(),
                  std::min<std::size_t>(shared_->len, absorb_len_));
    }
    result = winner;
  }
  // Always reap remaining children before returning (no zombie leaks);
  // under asynchronous elimination this is off the response path — the
  // caller already has its answer in `result`.
  for (std::size_t i = 0; i < kids_.size(); ++i) {
    if (kids_[i] > 0) {
      ::waitpid(kids_[i], nullptr, 0);
      kids_[i] = -1;
    }
  }
  return result;
}

}  // namespace mw
