#include "core/runtime_auditor.hpp"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "pagestore/page.hpp"
#include "pagestore/page_pool.hpp"

namespace mw {

std::string AuditReport::to_string() const {
  std::ostringstream os;
  if (clean()) {
    os << "audit: clean";
  } else {
    os << "audit: " << violations.size() << " violation(s)";
    for (const auto& v : violations) os << "\n  - " << v;
  }
  for (const auto& n : notes) os << "\n  (note) " << n;
  return os.str();
}

RuntimeAuditor::RuntimeAuditor()
    : baseline_pages_(Page::live_instances()) {}

void RuntimeAuditor::add_world(const World& w) { worlds_.push_back(&w); }

void RuntimeAuditor::add_table(const PageTable& t) { tables_.push_back(&t); }

AuditReport RuntimeAuditor::run(const ProcessTable& table) const {
  AuditReport report;

  std::unordered_set<Pid> accounted;
  for (const World* w : worlds_) accounted.insert(w->pid());

  // Orphans: a pid still marked live that no registered world answers for.
  // Every child of an alternative block must end Synced, Failed or
  // Eliminated — anything else is a process the runtime lost track of.
  for (const ProcessRecord& rec : table.snapshot()) {
    if (is_terminal(rec.status)) continue;
    if (accounted.count(rec.pid)) continue;
    report.orphan_processes.push_back(rec.pid);
    std::ostringstream os;
    os << "orphan process: pid " << rec.pid << " (" << rec.label << ") still "
       << mw::to_string(rec.status) << " with no live world";
    report.violations.push_back(os.str());
  }

  // Unresolved splits: a live world still predicated on siblings that have
  // long since been decided. Certainty must be restored before the world
  // may touch sources (§2.4.2).
  for (const World* w : worlds_) {
    if (table.exists(w->pid()) && is_terminal(table.status(w->pid())))
      continue;
    if (w->certain()) continue;
    report.unresolved_splits.push_back(w->pid());
    std::ostringstream os;
    os << "unresolved split: world pid " << w->pid() << " holds "
       << w->predicates().size() << " unresolved predicate(s)";
    report.violations.push_back(os.str());
  }

  // Leaks: pages alive beyond the baseline that nothing registered reaches.
  // collect_pages walks each table's radix tree; identical shared subtrees
  // still insert each distinct Page exactly once via the set.
  std::unordered_set<const Page*> reachable;
  for (const World* w : worlds_)
    w->space().table().collect_pages(reachable);
  for (const PageTable* t : tables_) t->collect_pages(reachable);
  const PagePool& pool = PagePool::global();
  report.pooled_frames = static_cast<std::int64_t>(pool.frames_held());
  report.pooled_frames_per_shard.reserve(pool.shard_count());
  for (std::size_t s = 0; s < pool.shard_count(); ++s)
    report.pooled_frames_per_shard.push_back(
        static_cast<std::int64_t>(pool.shard_frames_held(s)));
  const std::int64_t live = Page::live_instances();
  report.leaked_pages =
      live - baseline_pages_ - static_cast<std::int64_t>(reachable.size());
  if (report.leaked_pages > 0) {
    std::ostringstream os;
    os << "leaked pages: " << report.leaked_pages << " live Page instance(s) ("
       << live << " total, " << baseline_pages_ << " baseline, "
       << reachable.size() << " reachable)";
    report.violations.push_back(os.str());
  }

  return report;
}

AuditReport RuntimeAuditor::run(const ProcessTable& table,
                                const std::vector<trace::TraceEvent>& events,
                                std::uint64_t dropped) const {
  AuditReport report = run(table);
  report.trace_events = events.size();
  if (dropped > 0) {
    report.notes.push_back(
        "trace cross-check skipped: " + std::to_string(dropped) +
        " event(s) dropped by full rings; the stream is incomplete");
    return report;
  }
  report.trace_checked = true;

  // Reconstruct the trace's view: who was spawned into which group, and
  // each world's final traced fate (the last fate event wins — a loser of
  // the at-most-once race can legitimately overwrite nothing else).
  std::unordered_map<Pid, trace::TraceEvent> spawn_of;
  std::unordered_map<Pid, trace::EventKind> fate_of;
  std::unordered_map<std::uint64_t, std::size_t> group_spawns;
  for (const trace::TraceEvent& e : events) {
    switch (e.kind) {
      case trace::EventKind::kAltSpawn:
        spawn_of[e.pid] = e;
        ++group_spawns[e.a];
        break;
      case trace::EventKind::kAltSync:
      case trace::EventKind::kAltEliminate:
      case trace::EventKind::kAltAbort:
        fate_of[e.pid] = e.kind;
        break;
      default: break;
    }
  }

  auto mismatch = [&report](const std::string& what) {
    report.violations.push_back("trace mismatch: " + what);
  };

  for (const auto& [pid, e] : spawn_of) {
    if (!table.exists(pid)) {
      mismatch("traced spawn of pid " + std::to_string(pid) +
               " unknown to the process table");
      continue;
    }
    const ProcessRecord& rec = table.get(pid);
    if (rec.alt_group != e.a)
      mismatch("pid " + std::to_string(pid) + " traced in group " +
               std::to_string(e.a) + " but tabled in group " +
               std::to_string(rec.alt_group));
    if (e.other != kNoPid && rec.parent != e.other)
      mismatch("pid " + std::to_string(pid) + " traced parent " +
               std::to_string(e.other) + " but tabled parent " +
               std::to_string(rec.parent));
    const auto fit = fate_of.find(pid);
    if (fit == fate_of.end()) continue;  // still racing at snapshot time
    ProcStatus expected = ProcStatus::kSynced;
    switch (fit->second) {
      case trace::EventKind::kAltSync: expected = ProcStatus::kSynced; break;
      case trace::EventKind::kAltEliminate:
        expected = ProcStatus::kEliminated;
        break;
      default: expected = ProcStatus::kFailed; break;
    }
    if (table.status(pid) != expected)
      mismatch("pid " + std::to_string(pid) + " traced fate " +
               trace::kind_name(fit->second) + " but tabled status " +
               mw::to_string(table.status(pid)));
  }

  // World counts per race: the table must hold exactly as many members of
  // each traced alt group as the trace saw spawned.
  std::unordered_map<std::uint64_t, std::size_t> group_tabled;
  for (const ProcessRecord& rec : table.snapshot())
    if (rec.alt_group != 0) ++group_tabled[rec.alt_group];
  for (const auto& [group, traced] : group_spawns) {
    const auto git = group_tabled.find(group);
    const std::size_t tabled = git == group_tabled.end() ? 0 : git->second;
    if (tabled != traced)
      mismatch("alt group " + std::to_string(group) + " spawned " +
               std::to_string(traced) + " world(s) in the trace but holds " +
               std::to_string(tabled) + " in the process table");
  }

  return report;
}

}  // namespace mw
