#include "core/runtime_auditor.hpp"

#include <sstream>
#include <unordered_set>

#include "pagestore/page.hpp"
#include "pagestore/page_pool.hpp"

namespace mw {

std::string AuditReport::to_string() const {
  if (clean()) return "audit: clean";
  std::ostringstream os;
  os << "audit: " << violations.size() << " violation(s)";
  for (const auto& v : violations) os << "\n  - " << v;
  return os.str();
}

RuntimeAuditor::RuntimeAuditor()
    : baseline_pages_(Page::live_instances()) {}

void RuntimeAuditor::add_world(const World& w) { worlds_.push_back(&w); }

void RuntimeAuditor::add_table(const PageTable& t) { tables_.push_back(&t); }

AuditReport RuntimeAuditor::run(const ProcessTable& table) const {
  AuditReport report;

  std::unordered_set<Pid> accounted;
  for (const World* w : worlds_) accounted.insert(w->pid());

  // Orphans: a pid still marked live that no registered world answers for.
  // Every child of an alternative block must end Synced, Failed or
  // Eliminated — anything else is a process the runtime lost track of.
  for (const ProcessRecord& rec : table.snapshot()) {
    if (is_terminal(rec.status)) continue;
    if (accounted.count(rec.pid)) continue;
    report.orphan_processes.push_back(rec.pid);
    std::ostringstream os;
    os << "orphan process: pid " << rec.pid << " (" << rec.label << ") still "
       << mw::to_string(rec.status) << " with no live world";
    report.violations.push_back(os.str());
  }

  // Unresolved splits: a live world still predicated on siblings that have
  // long since been decided. Certainty must be restored before the world
  // may touch sources (§2.4.2).
  for (const World* w : worlds_) {
    if (table.exists(w->pid()) && is_terminal(table.status(w->pid())))
      continue;
    if (w->certain()) continue;
    report.unresolved_splits.push_back(w->pid());
    std::ostringstream os;
    os << "unresolved split: world pid " << w->pid() << " holds "
       << w->predicates().size() << " unresolved predicate(s)";
    report.violations.push_back(os.str());
  }

  // Leaks: pages alive beyond the baseline that nothing registered reaches.
  // collect_pages walks each table's radix tree; identical shared subtrees
  // still insert each distinct Page exactly once via the set.
  std::unordered_set<const Page*> reachable;
  for (const World* w : worlds_)
    w->space().table().collect_pages(reachable);
  for (const PageTable* t : tables_) t->collect_pages(reachable);
  report.pooled_frames =
      static_cast<std::int64_t>(PagePool::global().frames_held());
  const std::int64_t live = Page::live_instances();
  report.leaked_pages =
      live - baseline_pages_ - static_cast<std::int64_t>(reachable.size());
  if (report.leaked_pages > 0) {
    std::ostringstream os;
    os << "leaked pages: " << report.leaked_pages << " live Page instance(s) ("
       << live << " total, " << baseline_pages_ << " baseline, "
       << reachable.size() << " reachable)";
    report.violations.push_back(os.str());
  }

  return report;
}

}  // namespace mw
