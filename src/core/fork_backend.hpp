// The real-POSIX backend: alternatives as genuine fork()ed child processes
// sharing the parent's address space copy-on-write — the exact mechanism
// the paper measures in §3.4 ("Effects of copy-on-write memory management
// on the response time of UNIX fork operations"). Children race to a
// shared-memory at-most-once slot; the parent kills losing siblings with
// SIGKILL (asynchronous elimination) or kill+waitpid (synchronous).
//
// This backend exists for fidelity and for the overhead benchmarks; the
// portable library API is run_alternatives (core/alt.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace mw {

struct ForkAlternative {
  std::string name;
  /// Runs in the child process. Returns true to attempt synchronization
  /// (success), false to abort. `result` (up to ForkOptions::result_bytes)
  /// is delivered to the parent if this child wins.
  std::function<bool(std::vector<std::uint8_t>& result)> body;
};

struct ForkOptions {
  /// Parent wait timeout in microseconds; 0 = forever.
  std::uint64_t timeout_us = 0;
  /// true = kill losers and waitpid them before returning (synchronous
  /// elimination); false = kill and reap without blocking the return path.
  bool synchronous_elimination = false;
  /// Capacity of the shared result slot.
  std::size_t result_bytes = 4096;
};

struct ForkOutcome {
  bool failed = true;
  std::optional<std::size_t> winner;  // index into the alternatives
  std::vector<std::uint8_t> result;
  double elapsed_sec = 0.0;      // parent-observed wall time of the block
  double elimination_sec = 0.0;  // time spent eliminating siblings
};

/// Runs the block with real processes. Not reentrant from multiple threads
/// (uses waitpid on its own children).
ForkOutcome run_alternatives_fork(const std::vector<ForkAlternative>& alts,
                                  const ForkOptions& opts = {});

/// Measures one fork()+exit round-trip with `touched_pages` of the parent's
/// heap resident and dirty, returning seconds — the §3.4 fork-latency
/// experiment.
double measure_fork_latency(std::size_t touched_pages, std::size_t page_size);

/// Measures the COW page-fault copy service rate: forks a child that
/// rewrites `pages` shared pages, returning pages/second observed in the
/// child — the §3.4 page-copy-rate experiment.
double measure_cow_copy_rate(std::size_t pages, std::size_t page_size);

}  // namespace mw
