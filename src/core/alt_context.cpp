#include "core/alt_context.hpp"

#include <chrono>
#include <thread>

#include "fault/fault.hpp"
#include "util/stopwatch.hpp"

namespace mw {

void AltContext::work(VDuration ticks) {
  work_ += ticks;
  checkpoint();
}

void AltContext::compute(VDuration ticks) {
  work_ += ticks;
  if (!virtual_) {
    // Burn roughly `ticks` microseconds of CPU so wall-clock runs exhibit
    // the same relative costs the virtual schedule models.
    Stopwatch sw;
    volatile std::uint64_t sink = 0;
    while (sw.elapsed_us() < static_cast<double>(ticks)) {
      std::uint64_t acc = sink;
      for (int i = 0; i < 64; ++i) acc += static_cast<std::uint64_t>(i) * 2654435761u;
      sink = acc;
      if (cancel_ && cancel_->cancelled()) throw CancelledError{};
    }
  }
  checkpoint();
}

void AltContext::checkpoint() {
  if (cancel_ && cancel_->cancelled()) throw CancelledError{};
}

void AltContext::fail(std::string reason) {
  throw AltFailed{std::move(reason)};
}

void AltContext::fault_point(std::string_view name) {
  FaultInjector* inj = fault_injector();
  if (!inj) return;
  // The body's natural clock is the work it has accounted so far; wall
  // time is meaningless for replay.
  const FaultAction action = inj->query(name, virtual_ ? work_ : 0);
  switch (action.kind) {
    case FaultKind::kFailAlternative:
      fail("fault injected at " + std::string(name));
    case FaultKind::kCrashException:
      throw InjectedCrash{std::string(name)};
    case FaultKind::kHang:
      hang();
    case FaultKind::kDelay:
      sleep_for(action.delay);
      break;
    default:
      break;  // message/node faults have no meaning inside a body
  }
}

void AltContext::hang() {
  if (virtual_) throw AltHung{};
  if (!cancel_) fail("hang with no cancellation token");
  for (;;) {
    if (cancel_->cancelled()) throw CancelledError{};
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void AltContext::sleep_for(VDuration ticks) {
  work_ += ticks;
  if (!virtual_) {
    Stopwatch sw;
    while (sw.elapsed_us() < static_cast<double>(ticks)) {
      checkpoint();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  checkpoint();
}

}  // namespace mw
