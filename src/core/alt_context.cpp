#include "core/alt_context.hpp"

#include "util/stopwatch.hpp"

namespace mw {

void AltContext::work(VDuration ticks) {
  work_ += ticks;
  checkpoint();
}

void AltContext::compute(VDuration ticks) {
  work_ += ticks;
  if (!virtual_) {
    // Burn roughly `ticks` microseconds of CPU so wall-clock runs exhibit
    // the same relative costs the virtual schedule models.
    Stopwatch sw;
    volatile std::uint64_t sink = 0;
    while (sw.elapsed_us() < static_cast<double>(ticks)) {
      std::uint64_t acc = sink;
      for (int i = 0; i < 64; ++i) acc += static_cast<std::uint64_t>(i) * 2654435761u;
      sink = acc;
      if (cancel_ && cancel_->cancelled()) throw CancelledError{};
    }
  }
  checkpoint();
}

void AltContext::checkpoint() {
  if (cancel_ && cancel_->cancelled()) throw CancelledError{};
}

void AltContext::fail(std::string reason) {
  throw AltFailed{std::move(reason)};
}

}  // namespace mw
