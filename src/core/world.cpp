#include "core/world.hpp"

#include "trace/trace.hpp"
#include "util/check.hpp"

namespace mw {

World::World(ProcessTable& table, std::size_t page_size,
             std::size_t num_pages, std::string label)
    : table_(&table),
      pid_(table.create(kNoPid, 0, std::move(label))),
      space_(page_size, num_pages) {
  table_->set_status(pid_, ProcStatus::kRunning);
}

World::World(ProcessTable& table, Pid pid, AddressSpace space,
             PredicateSet preds)
    : table_(&table), pid_(pid), space_(std::move(space)),
      preds_(std::move(preds)) {}

World World::fork_alternative(Pid self_pid,
                              const std::vector<Pid>& sibling_pids) {
  PredicateSet child_preds =
      PredicateSet::for_alternative(preds_, self_pid, sibling_pids);
  MW_TRACE_EVENT(trace::EventKind::kWorldFork, self_pid, pid_);
  return World(*table_, self_pid, space_.fork(), std::move(child_preds));
}

World World::clone_with_predicates(PredicateSet preds,
                                   std::string label) const {
  const Pid pid = table_->create(table_->get(pid_).parent, 0, std::move(label));
  table_->set_status(pid, ProcStatus::kRunning);
  MW_TRACE_EVENT(trace::EventKind::kWorldSplit, pid, pid_, 0,
                 table_->get(pid_).alt_group);
  return World(*table_, pid, space_.fork(), std::move(preds));
}

void World::commit_from(World&& child) {
  MW_CHECK(child.table_ == table_);
  MW_TRACE_EVENT(trace::EventKind::kWorldCommit, pid_, child.pid_);
  space_.adopt(std::move(child.space_));
  // The flow of control through the child "appears to have been seamless,
  // up to and including maintenance of the process id" — the parent keeps
  // its own pid; the child's assumptions about itself are now resolved and
  // do not transfer.
}

std::size_t World::commit_from_segment(World&& child, const Segment& seg) {
  MW_CHECK(child.table_ == table_);
  MW_TRACE_EVENT(trace::EventKind::kWorldCommit, pid_, child.pid_);
  return space_.adopt_segment(std::move(child.space_), seg);
}

PageTable::AdoptBatchStats World::commit_from_parallel(
    const std::vector<SegmentCommit>& commits) {
  std::vector<AddressSpace::SegmentCommit> ops;
  ops.reserve(commits.size());
  for (const SegmentCommit& c : commits) {
    MW_CHECK(c.child != nullptr && c.child->table_ == table_);
    MW_TRACE_EVENT(trace::EventKind::kWorldCommit, pid_, c.child->pid_);
    ops.push_back({&c.child->space_, c.segment});
  }
  return space_.adopt_parallel(ops);
}

void World::rollback(const AddressSpace& snapshot) {
  MW_TRACE_EVENT(trace::EventKind::kWorldRollback, pid_);
  space_.adopt(snapshot.fork());
}

}  // namespace mw
