// SpecScheduler: the work-stealing executor behind the kPool backend.
//
// The paper spawns every alternative eagerly; the kThread backend inherits
// that as one OS thread per alternative, which collapses once many races
// run concurrently (256 races x 4 alternatives = 1024 threads on however
// many cores the host has). Or-parallel Prolog engines solved the same
// problem with scheduler-mediated work *sharing* instead of
// branch-per-thread (Vieira/Rocha/Silva's splitting strategies,
// Van Overveldt/Demoen's hProlog); this is the worlds equivalent:
//
//   * One worker per hardware thread. `alt_spawn` enqueues alternatives as
//     *tasks*; the OS never sees more runnable threads than cores.
//   * Per-worker deques with Chase-Lev-style discipline: the owner pushes
//     and pops at one end (highest priority first, ties LIFO for cache
//     locality), thieves take from the other (lowest priority first, ties
//     FIFO — stealing the oldest, coarsest work). Each deque is guarded by
//     its own mutex rather than the lock-free Chase-Lev protocol: tasks
//     are whole alternative bodies (microseconds and up), so O(1) critical
//     sections are invisible in profile, and the invariants stay checkable
//     under TSan.
//   * External submitters (a parent thread entering a block, a Supervisor
//     dispatching an attempt) push into a shared *inbox* deque that every
//     worker steals from — all cross-thread hand-offs go through one
//     stealing path, which is also where the `sched.steal` fault point and
//     kSchedSteal trace event live. The inbox has no owner to be polite
//     to, so unlike a worker deque it drains highest-priority first: an
//     externally submitted race starts with its most promising
//     alternative.
//   * Cancellation-aware pruning: a queued task can be *revoked* — an
//     atomic state transition that guarantees its body never runs and its
//     world never copies a page. The winner of a race revokes its queued
//     siblings at sync time, before the parent even wakes.
//   * Bounded admission: a global speculation budget (live speculative
//     worlds, resident pages via the Page ledger) defers or rejects new
//     races under pressure instead of oversubscribing.
//
// Deterministic mode (`deterministic_seed != 0`): no OS threads are
// created; `run_one`/`drain` execute tasks on the calling thread, with a
// seeded RNG choosing at every step which deque to service and whether to
// act as owner (priority/LIFO) or thief (FIFO steal). Each seed explores a
// different interleaving of the same task set — the engine of the
// scheduler equivalence property suite (tests/core/sched_model_test.cpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/vtime.hpp"

namespace mw {

class SpecPolicy;

/// Reported as the taking worker id (trace payload b of kSchedSteal) when a
/// task is taken from the shared inbox by an external helper thread.
inline constexpr std::uint64_t kSchedExternalHelper = ~0ull;

/// Reported as the taking worker id when the deterministic driver's
/// scheduling coin lands on the thief path — there is no real thief, and
/// reporting the victim's own index would misattribute the steal.
inline constexpr std::uint64_t kSchedDetDriver = ~0ull - 1;

struct SchedConfig {
  /// Worker threads. 0 = one per hardware thread.
  std::size_t workers = 0;

  /// Admission budget: maximum speculative worlds in flight across every
  /// concurrent race. 0 = unbounded. When the budget is exhausted a new
  /// race *defers* (waits for capacity) instead of oversubscribing, and is
  /// rejected if capacity does not free up within `admission_wait`.
  std::size_t max_live_worlds = 0;

  /// Admission budget on resident COW pages, checked against the global
  /// Page ledger (Page::live_instances(), the same counter the
  /// RuntimeAuditor audits). 0 = unbounded.
  std::size_t max_resident_pages = 0;

  /// How long (microseconds of wall time) a deferred race waits for the
  /// budget before being rejected outright.
  VDuration admission_wait = 2'000'000;

  /// Non-zero: deterministic single-threaded mode. No workers are spawned;
  /// the seed drives the interleaving exploration described above.
  std::uint64_t deterministic_seed = 0;

  /// Deterministic mode only: probability that a scheduling step acts as a
  /// thief (FIFO steal) rather than as the deque's owner (priority/LIFO).
  double deterministic_steal_prob = 0.5;

  /// Optional adaptive policy consulted at admission time (see
  /// core/spec_policy.hpp): in kAdaptive mode it narrows the effective
  /// max_live_worlds budget, never below what the requesting race needs.
  /// Not owned — the Runtime wires its own engine in. Null or kStatic
  /// mode: the static budget applies unchanged.
  SpecPolicy* policy = nullptr;
};

/// One schedulable unit: an alternative body (or a supervised attempt)
/// plus the metadata the stealing and pruning machinery needs.
class SchedTask {
 public:
  enum class State : int {
    kQueued,   // in some deque, not yet claimed
    kRunning,  // claimed by a worker/helper, body executing
    kDone,     // body ran to completion (however it ended)
    kRevoked,  // pruned while queued: the body never ran
    kFaulted,  // killed by an injected fault at the steal point: never ran
  };

  State state() const {
    return static_cast<State>(state_.load(std::memory_order_acquire));
  }
  bool revoked() const { return state() == State::kRevoked; }
  bool faulted() const { return state() == State::kFaulted; }
  bool never_ran() const {
    const State s = state();
    return s == State::kRevoked || s == State::kFaulted;
  }

  double priority() const { return priority_; }
  std::uint64_t group() const { return group_; }
  Pid pid() const { return pid_; }

 private:
  friend class SpecScheduler;

  std::function<void()> fn_;
  /// Called exactly once when the task terminates *without running*
  /// (revoked or faulted) — the submitter's bookkeeping hook. Completion
  /// of a body that ran is the body's own job.
  std::function<void(SchedTask&)> on_skipped_;
  double priority_ = 0.0;
  std::uint64_t group_ = 0;
  Pid pid_ = kNoPid;
  std::uint64_t seq_ = 0;  // global submission order: the FIFO age
  std::atomic<int> state_{static_cast<int>(State::kQueued)};
};

using SchedTaskRef = std::shared_ptr<SchedTask>;

struct SchedStats {
  std::uint64_t submitted = 0;
  std::uint64_t executed = 0;  // bodies actually run
  std::uint64_t stolen = 0;    // tasks taken from a deque the taker
                               // does not own (includes the inbox)
  std::uint64_t revoked = 0;   // pruned while queued: body never ran
  std::uint64_t faulted = 0;   // killed by sched.steal fault injection
  std::uint64_t admission_deferred = 0;
  std::uint64_t admission_rejected = 0;
};

class SpecScheduler {
 public:
  explicit SpecScheduler(SchedConfig cfg = {});
  ~SpecScheduler();

  SpecScheduler(const SpecScheduler&) = delete;
  SpecScheduler& operator=(const SpecScheduler&) = delete;

  /// Enqueues a task. Called from a worker of this scheduler the task goes
  /// to that worker's own deque (LIFO locality: a nested race runs close
  /// to its parent); from any other thread it goes to the shared inbox.
  /// `on_skipped` fires exactly once if the task terminates without its
  /// body ever running (revoked or faulted).
  SchedTaskRef submit(std::function<void()> fn, double priority,
                      std::uint64_t group, Pid pid,
                      std::function<void(SchedTask&)> on_skipped = nullptr,
                      Pid parent = kNoPid, std::uint64_t alt_index = 0);

  /// Revokes a queued task: guarantees the body never runs. False if the
  /// task already started (or finished) — the caller falls back to
  /// cooperative cancellation. Queried through the `sched.revoke` fault
  /// point: an injected failure makes the revoke "miss", so correctness
  /// may never depend on pruning.
  bool revoke(const SchedTaskRef& task);

  /// Runs at most one pending task on the calling thread. The helping
  /// primitive: a parent blocked in alt_wait on a worker thread calls this
  /// instead of sleeping (nested races would otherwise deadlock a fully
  /// blocked pool), and it is the execution engine of deterministic mode.
  bool run_one();

  /// Deterministic mode: runs tasks until every deque is empty.
  void drain();

  /// Admission control. `admit` blocks (defers) while the budget is
  /// exhausted, up to `cfg.admission_wait`; a race that cannot be admitted
  /// is rejected and must not spawn. Every admit(n) that returns true must
  /// be paired with release(n) when the race's worlds die.
  bool admit(std::size_t worlds, Pid requester, std::uint64_t group);
  void release(std::size_t worlds);

  /// Drops terminal (revoked/done) tasks of `group` still parked in the
  /// deques, releasing their closures. Called at block end so a revoked
  /// sibling's task record does not outlive its race.
  void scrub(std::uint64_t group);

  /// True when alt_wait should drive/help instead of sleeping: always in
  /// deterministic mode, and on threads that are workers of this pool.
  bool should_help() const;

  bool deterministic() const { return cfg_.deterministic_seed != 0; }
  std::size_t worker_count() const { return worker_threads_.size(); }
  std::size_t live_worlds() const;
  const SchedConfig& config() const { return cfg_; }
  SchedStats stats() const;

 private:
  struct Deque {
    mutable std::mutex mu;
    std::deque<SchedTaskRef> tasks;
  };

  std::size_t inbox_index() const { return deques_.size() - 1; }
  void worker_loop(std::size_t self);
  /// Owner end: highest priority, ties broken LIFO (newest).
  SchedTaskRef pop_own(std::size_t self);
  /// Thief end: lowest priority, ties broken FIFO (oldest); the ownerless
  /// inbox instead drains highest priority first. `thief` is a worker
  /// index or kSchedExternalHelper; fires sched.steal.
  SchedTaskRef steal_from(std::size_t victim, std::uint64_t thief);
  SchedTaskRef take_any_as_thief(std::uint64_t thief, std::size_t skip_own);
  /// Claims the task (kQueued -> kRunning) and runs it; handles a fault
  /// injected at the steal point. False if the claim was lost to a revoke.
  bool execute(const SchedTaskRef& task, bool faulted);
  bool run_one_deterministic();

  SchedConfig cfg_;
  std::vector<std::unique_ptr<Deque>> deques_;  // workers... + inbox last
  std::vector<std::thread> worker_threads_;

  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> seq_{0};

  mutable std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  std::size_t live_worlds_ = 0;

  std::mutex det_mu_;  // deterministic mode: guards det_rng_
  Rng det_rng_;

  mutable std::mutex stats_mu_;
  SchedStats stats_;
};

}  // namespace mw
