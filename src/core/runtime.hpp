// Runtime: configuration and shared services (process table, alt-group id
// allocation, deterministic seeding) for alternative-block execution.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/alt.hpp"
#include "core/spec_policy.hpp"
#include "core/spec_scheduler.hpp"
#include "core/world.hpp"
#include "proc/cost_model.hpp"
#include "proc/process_table.hpp"
#include "util/rng.hpp"

namespace mw {

struct RuntimeConfig {
  AltBackend backend = AltBackend::kVirtual;

  /// World geometry. 256 pages of 4 KiB = a 1 MiB address space, roughly
  /// the era's process sizes; benches override.
  std::size_t page_size = 4096;
  std::size_t num_pages = 256;

  /// Virtual processors for the kVirtual scheduler (the paper's Table I
  /// machine had 2). The thread backend lets the OS schedule.
  std::size_t processors = 2;

  /// Virtual scheduling policy: run-to-completion FCFS, or timesharing
  /// (egalitarian processor sharing — what the paper's UNIX machines ran;
  /// required to reproduce Table I's behaviour when processes outnumber
  /// processors).
  enum class Sched { kFcfs, kProcessorSharing };
  Sched sched = Sched::kFcfs;

  /// Per-operation overhead charges for the kVirtual backend.
  CostModel cost = CostModel::calibrated_hp();

  /// Root seed; every alternative derives an independent stream.
  std::uint64_t seed = 1;

  /// The kPool backend's scheduler: worker count, admission budget,
  /// deterministic mode. Ignored by the other backends.
  SchedConfig pool;

  /// Adaptive speculation policy (core/spec_policy.hpp). Defaults to
  /// kStatic, which is bit-for-bit today's behavior; kAdaptive closes the
  /// loop from race outcomes into admission width, alternative ordering,
  /// and or-parallel split selection. policy.seed 0 derives from `seed`.
  PolicyConfig policy;
};

/// Aggregate speculation accounting across a runtime's lifetime: the
/// throughput ledger behind the paper's response-time-vs-throughput trade.
struct RuntimeStats {
  std::uint64_t blocks_run = 0;
  std::uint64_t blocks_won = 0;       // a winner committed
  std::uint64_t blocks_failed = 0;    // failure alternative selected
  std::uint64_t alternatives_spawned = 0;
  std::uint64_t alternatives_eliminated = 0;  // losers killed
  std::uint64_t alternatives_aborted = 0;     // guard/body failures
  /// Pool backend: losers pruned from the queue before their body ever ran
  /// (a subset of alternatives_eliminated — free eliminations).
  std::uint64_t alternatives_revoked = 0;
  VDuration total_elapsed = 0;           // sum of block response times
  VDuration total_overhead = 0;          // sum of charged tau(overhead)
  /// Work performed by losers: pure throughput cost (virtual backend).
  VDuration wasted_work = 0;

  /// Fraction of spawned alternatives whose work was discarded.
  double waste_ratio() const {
    const auto spawned = static_cast<double>(alternatives_spawned);
    return spawned > 0
               ? static_cast<double>(alternatives_eliminated +
                                     alternatives_aborted) /
                     spawned
               : 0.0;
  }
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config = {})
      : config_(config), policy_(resolve_policy(config)) {}

  const RuntimeConfig& config() const { return config_; }
  ProcessTable& processes() { return table_; }

  /// The speculation policy engine: every backend feeds it race outcomes
  /// via record_outcome; the kPool dispatch paths and the or-parallel
  /// driver consult it for decisions. In kStatic mode the decisions are
  /// pass-throughs and only the (cheap) observation taps run.
  SpecPolicy& policy() { return policy_; }

  /// Lifetime speculation ledger; updated by every alternative block.
  const RuntimeStats& stats() const { return stats_; }

  /// Folds a finished block into the ledger (called by the backends;
  /// thread-safe for nested blocks running on worker threads).
  void record_outcome(const AltOutcome& out) {
    policy_.observe_race(out);
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.blocks_run;
    if (out.failed) {
      ++stats_.blocks_failed;
    } else {
      ++stats_.blocks_won;
    }
    for (const AltReport& a : out.alts) {
      if (!a.spawned) continue;
      ++stats_.alternatives_spawned;
      if (a.revoked) ++stats_.alternatives_revoked;
      if (a.success) continue;
      if (a.pid != kNoPid &&
          table_.status(a.pid) == ProcStatus::kFailed) {
        ++stats_.alternatives_aborted;
      } else {
        ++stats_.alternatives_eliminated;
      }
      if (a.ran && a.finish > a.start) stats_.wasted_work += a.finish - a.start;
    }
    stats_.total_elapsed += out.elapsed;
    stats_.total_overhead += out.overhead.total();
  }

  /// A fresh root world with the configured geometry.
  World make_root(std::string label = "root") {
    return World(table_, config_.page_size, config_.num_pages,
                 std::move(label));
  }

  std::uint64_t next_alt_group() {
    return group_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// The shared work-stealing scheduler behind the kPool backend, built
  /// lazily from config().sched on first use — a Runtime that never runs a
  /// pool block never spawns a worker thread.
  SpecScheduler& scheduler() {
    std::call_once(sched_once_, [this] {
      SchedConfig sc = config_.pool;
      sc.policy = &policy_;  // admission consults the runtime's engine
      sched_ = std::make_unique<SpecScheduler>(sc);
    });
    return *sched_;
  }

  /// Deterministic per-(group, alternative) random stream.
  Rng rng_for(std::uint64_t group, std::size_t alt_index) const {
    Rng base(config_.seed);
    return base.split(group * 1000003ull + alt_index);
  }

 private:
  static PolicyConfig resolve_policy(const RuntimeConfig& config) {
    PolicyConfig pc = config.policy;
    if (pc.seed == 0) pc.seed = config.seed ^ 0xa02bdbf7bb3c0a7ull;
    return pc;
  }

  RuntimeConfig config_;
  SpecPolicy policy_;
  ProcessTable table_;
  std::atomic<std::uint64_t> group_counter_{0};
  std::once_flag sched_once_;
  std::unique_ptr<SpecScheduler> sched_;
  std::mutex stats_mu_;
  RuntimeStats stats_;
};

}  // namespace mw
