#include "core/alt.hpp"

#include "core/runtime.hpp"

namespace mw {

namespace internal {
AltOutcome run_alternatives_virtual(Runtime& rt, World& parent,
                                    const std::vector<Alternative>& alts,
                                    const AltOptions& opts);
AltOutcome run_alternatives_thread(Runtime& rt, World& parent,
                                   const std::vector<Alternative>& alts,
                                   const AltOptions& opts);
AltOutcome run_alternatives_pool(Runtime& rt, World& parent,
                                 const std::vector<Alternative>& alts,
                                 const AltOptions& opts);
}  // namespace internal

AltOutcome run_alternatives(Runtime& rt, World& parent,
                            const std::vector<Alternative>& alts,
                            const AltOptions& opts) {
  AltOutcome out;
  switch (rt.config().backend) {
    case AltBackend::kVirtual:
      out = internal::run_alternatives_virtual(rt, parent, alts, opts);
      break;
    case AltBackend::kThread:
      out = internal::run_alternatives_thread(rt, parent, alts, opts);
      break;
    case AltBackend::kPool:
      out = internal::run_alternatives_pool(rt, parent, alts, opts);
      break;
  }
  rt.record_outcome(out);
  return out;
}

}  // namespace mw
