// Typed convenience layer over alternative blocks: race plain functions
// that *return a value*, get the winner's value back. State isolation,
// commit and elimination all still apply — the value travels through the
// winner's result bytes.
//
//   auto r = mw::speculate<double>(rt, {
//       {"bisect", [](mw::AltContext& ctx) { ... return x; }},
//       {"newton", [](mw::AltContext& ctx) { ... return y; }},
//   });
//   if (r.value) use(*r.value);
#pragma once

#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"

namespace mw {

template <typename T>
struct TypedAlternative {
  std::string name;
  /// Returns the alternative's value; throw AltFailed (ctx.fail) to abort.
  std::function<T(AltContext&)> body;
  std::function<bool(const World&)> guard;
  /// Scheduling hint for the kPool backend (see Alternative::priority):
  /// the caller's estimate of how likely this method is to win.
  double priority = 0.0;
};

template <typename T>
struct SpeculateResult {
  std::optional<T> value;      // the winner's return value
  std::string winner_name;
  AltOutcome outcome;          // full per-alternative report
};

/// Races `alts` in a throwaway world of `rt` and returns the winner's
/// value. T must be trivially copyable (it crosses the world boundary as
/// bytes; worlds do not share heap objects).
template <typename T>
SpeculateResult<T> speculate(Runtime& rt,
                             std::vector<TypedAlternative<T>> alts,
                             const AltOptions& opts = {}) {
  static_assert(std::is_trivially_copyable_v<T>,
                "speculate<T> ships the value across worlds as bytes");
  World scratch = rt.make_root("speculate");
  std::vector<Alternative> raw;
  raw.reserve(alts.size());
  for (auto& a : alts) {
    raw.push_back(Alternative{
        std::move(a.name), std::move(a.guard),
        [body = std::move(a.body)](AltContext& ctx) {
          T value = body(ctx);
          std::uint8_t buf[sizeof(T)];
          std::memcpy(buf, &value, sizeof(T));
          ctx.set_result(std::span<const std::uint8_t>(buf, sizeof(T)));
        },
        nullptr, a.priority});
  }
  SpeculateResult<T> out;
  out.outcome = run_alternatives(rt, scratch, raw, opts);
  if (!out.outcome.failed && out.outcome.result.size() == sizeof(T)) {
    T value;
    std::memcpy(&value, out.outcome.result.data(), sizeof(T));
    out.value = value;
    out.winner_name = out.outcome.winner_name;
  }
  return out;
}

}  // namespace mw
