// World: one timeline of the computation — a process identity, its paged
// sink state, and the assumptions under which it exists (§2.4.2). Forking a
// world is O(1) in address-space size (persistent page-map root share), so
// speculation depth and receiver splits cost the same for a 64 KiB world as
// for a gigabyte one; committing a world back into its parent is the
// paper's alt_wait page-pointer replacement — also an O(1) root swap.
#pragma once

#include <cstdint>
#include <string>

#include "pagestore/address_space.hpp"
#include "pred/predicate_set.hpp"
#include "proc/process_table.hpp"
#include "util/ids.hpp"

namespace mw {

class World {
 public:
  /// A root world: a fresh process with an empty (certain) predicate set.
  World(ProcessTable& table, std::size_t page_size, std::size_t num_pages,
        std::string label = "root");

  Pid pid() const { return pid_; }
  ProcessTable& processes() { return *table_; }
  const ProcessTable& processes() const { return *table_; }

  AddressSpace& space() { return space_; }
  const AddressSpace& space() const { return space_; }

  PredicateSet& predicates() { return preds_; }
  const PredicateSet& predicates() const { return preds_; }

  /// True when this world holds no unresolved assumptions and may therefore
  /// interface with sources (§2.4.2).
  bool certain() const { return preds_.empty(); }

  /// Spawns alternative child `self_index` of an alt group whose members
  /// will carry the pids in `sibling_pids` (the pid for this child must be
  /// pre-allocated and included). The child COW-shares this world's pages
  /// and carries the sibling-rivalry predicate set.
  World fork_alternative(Pid self_pid, const std::vector<Pid>& sibling_pids);

  /// Clones this world with explicit predicates — used by the message layer
  /// when a receiver must be split (§2.4.2).
  World clone_with_predicates(PredicateSet preds, std::string label) const;

  /// The paper's synchronization: absorb the child's state changes by
  /// atomically replacing this world's page map with the child's. The
  /// child's world object is consumed.
  void commit_from(World&& child);

  /// Segment-scoped commit: absorbs only the child's writes inside `seg`
  /// (a segment of this world's space). Unlike commit_from, this *merges*
  /// rather than replaces, so several children each owning a distinct
  /// segment can all commit into one parent. Returns pages spliced.
  std::size_t commit_from_segment(World&& child, const Segment& seg);

  /// One child of a parallel segment commit.
  struct SegmentCommit {
    World* child = nullptr;
    Segment segment;
  };

  /// Commits a batch of children, each confined to its declared segment of
  /// this world's space. Disjoint, confined batches extract their write
  /// sets in parallel (one thread per child) and splice serially; overlap
  /// or an escaped write falls back to serialized commits in vector order.
  /// Every child is consumed either way.
  PageTable::AdoptBatchStats commit_from_parallel(
      const std::vector<SegmentCommit>& commits);

  /// Supervised recovery: rewind this world's sink state to a previously
  /// captured COW snapshot (an O(1) page-map root swap, the inverse of
  /// commit_from). Identity, status, and predicates are untouched — the
  /// world is the same speculative process, replaying from its checkpoint.
  void rollback(const AddressSpace& snapshot);

  /// Pages this world's map shares physically with `other` — the COW
  /// sharing the design maximizes (§2.3).
  std::size_t shared_pages_with(const World& other) const {
    return space_.table().shared_pages_with(other.space_.table());
  }

 private:
  World(ProcessTable& table, Pid pid, AddressSpace space, PredicateSet preds);

  ProcessTable* table_;
  Pid pid_;
  AddressSpace space_;
  PredicateSet preds_;
};

}  // namespace mw
