// The deterministic virtual-time backend for alternative blocks.
//
// Bodies execute serially on the calling thread, accounting virtual work
// through AltContext::work/compute; the recorded tasks are then laid out on
// the configured number of virtual processors (proc/vsched) and the
// overhead model (proc/cost_model) charges spawn, COW-copy, commit and
// elimination costs exactly where the paper's τ(overhead) analysis puts
// them. The result is bit-reproducible on any host.
#include <exception>
#include <utility>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "proc/vsched.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace mw {

namespace internal {

AltOutcome run_alternatives_virtual(Runtime& rt, World& parent,
                                    const std::vector<Alternative>& alts,
                                    const AltOptions& opts) {
  const std::size_t n = alts.size();
  AltOutcome out;
  out.alts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.alts[i].index = i + 1;
    out.alts[i].name = alts[i].name;
  }
  if (n == 0) {
    out.failed = true;
    out.failure = AltFailure::kNoAlternatives;
    return out;
  }

  const CostModel& cost = rt.config().cost;
  const std::uint64_t group = rt.next_alt_group();
  ProcessTable& table = rt.processes();

  // Phase 0: optional serial guard evaluation in the parent (§2.2 —
  // improves throughput at the expense of response time: rejected
  // alternatives are never spawned, but the checks serialize).
  std::vector<std::size_t> spawned;
  for (std::size_t i = 0; i < n; ++i) {
    if ((opts.guard_phases & kGuardPreSpawn) && alts[i].guard &&
        !alts[i].guard(parent)) {
      continue;
    }
    spawned.push_back(i);
    out.alts[i].spawned = true;
  }
  if (spawned.empty()) {
    out.failed = true;
    out.failure = AltFailure::kAllFailed;
    return out;
  }

  // Phase 1: spawn. Fork costs are serial in the parent; child i becomes
  // ready only after the parent has forked children 0..i.
  std::vector<Pid> sibling_pids;
  sibling_pids.reserve(spawned.size());
  for (std::size_t i : spawned) {
    sibling_pids.push_back(table.create(parent.pid(), group, alts[i].name));
  }
  const std::size_t resident = parent.space().table().resident_pages();
  const VDuration fork_cost = cost.fork_cost(resident);
  std::vector<VTime> ready(spawned.size());
  for (std::size_t k = 0; k < spawned.size(); ++k) {
    out.overhead.setup += fork_cost;
    ready[k] = static_cast<VTime>(fork_cost) * static_cast<VTime>(k + 1);
  }

  // Phase 2: run each body to its sync/abort point, recording virtual work
  // and COW copying. Worlds are kept so the winner can be committed.
  struct Ran {
    World world;
    Bytes result;
    VDuration duration = 0;
    bool success = false;
    bool hung = false;
    std::uint64_t pages_copied = 0;
  };
  std::vector<Ran> ran;
  ran.reserve(spawned.size());

  for (std::size_t k = 0; k < spawned.size(); ++k) {
    const std::size_t i = spawned[k];
    const Alternative& alt = alts[i];
    // Page/world events emitted while this body runs carry the child's
    // ready time; the precise lifecycle events are emitted post-scheduling.
    MW_TRACE_SET_NOW(ready[k]);
    World child = parent.fork_alternative(sibling_pids[k], sibling_pids);
    table.set_status(sibling_pids[k], ProcStatus::kRunning);
    AltContext ctx(child, i + 1, rt.rng_for(group, i + 1), nullptr,
                   /*virtual_mode=*/true);
    bool success = true;
    bool hung = false;
    if ((opts.guard_phases & kGuardInChild) && alt.guard &&
        !alt.guard(child)) {
      success = false;
    } else {
      try {
        alt.body(ctx);
      } catch (const AltFailed&) {
        success = false;
      } catch (const AltHung&) {
        // The body declared it will never finish: modelled below as a task
        // that outlives the block's deadline.
        success = false;
        hung = true;
      } catch (const std::exception&) {
        success = false;
      } catch (...) {
        // Foreign exceptions (e.g. an injected crash) must not escape the
        // block: the child is simply Failed.
        success = false;
      }
    }
    if (success && (opts.guard_phases & kGuardAtSync) && alt.guard &&
        !alt.guard(child)) {
      success = false;
    }
    if (success && alt.accept && !alt.accept(child)) success = false;

    const std::uint64_t copied = child.space().table().stats().pages_copied;
    Ran r{std::move(child), ctx.result(),
          ctx.accounted_work() +
              cost.cow_copy_per_page * static_cast<VDuration>(copied),
          success, hung, copied};
    out.alts[i].pages_copied = copied;
    out.overhead.copying +=
        cost.cow_copy_per_page * static_cast<VDuration>(copied);
    ran.push_back(std::move(r));
  }

  // Phase 3: schedule on the virtual processors. A hung alternative is a
  // task that provably outlives the block's deadline — the timeout path
  // fires exactly as it would against a real non-terminating child.
  const VDuration hang_duration =
      opts.timeout == kVTimeMax ? vt_sec(3600) : opts.timeout + 1;
  std::vector<VirtualTask> tasks(spawned.size());
  for (std::size_t k = 0; k < spawned.size(); ++k) {
    const VDuration dur =
        ran[k].hung ? std::max(ran[k].duration, hang_duration)
                    : ran[k].duration;
    tasks[k] = VirtualTask{sibling_pids[k], ready[k], dur, ran[k].success};
  }
  ScheduleOutcome sched =
      rt.config().sched == RuntimeConfig::Sched::kProcessorSharing
          ? ps_schedule(rt.config().processors, tasks)
          : list_schedule(rt.config().processors, tasks);

  const bool winner_in_time =
      sched.winner_index.has_value() && sched.winner_finish <= opts.timeout;

  // Phase 4: statuses, commit, elimination. Scheduling fixed every virtual
  // timestamp, so the lifecycle trace is emitted here with exact times.
  MW_TRACE_EVENT(trace::EventKind::kAltBlockBegin, parent.pid(), kNoPid,
                 group, spawned.size(), 0);
  for (std::size_t k = 0; k < spawned.size(); ++k) {
    MW_TRACE_EVENT(trace::EventKind::kAltSpawn, sibling_pids[k], parent.pid(),
                   group, spawned[k] + 1,
                   static_cast<VTime>(fork_cost) * static_cast<VTime>(k));
  }
  MW_TRACE_EVENT(trace::EventKind::kAltWait, parent.pid(), kNoPid, group, 0,
                 ready.back());
  for (std::size_t k = 0; k < spawned.size(); ++k) {
    const TaskSchedule& s = sched.tasks[k];
    if (!s.ran) continue;
    MW_TRACE_EVENT(trace::EventKind::kAltChildBegin, sibling_pids[k], kNoPid,
                   group, 0, s.start);
    MW_TRACE_EVENT(trace::EventKind::kAltChildEnd, sibling_pids[k], kNoPid,
                   group, ran[k].pages_copied, s.finish);
  }
  for (std::size_t k = 0; k < spawned.size(); ++k) {
    const std::size_t i = spawned[k];
    AltReport& rep = out.alts[i];
    const TaskSchedule& s = sched.tasks[k];
    rep.pid = sibling_pids[k];
    rep.ran = s.ran;
    rep.start = s.start;
    rep.finish = s.finish;
    rep.success = winner_in_time && sched.winner_index == k;
  }

  if (winner_in_time) {
    const std::size_t wk = *sched.winner_index;
    const std::size_t wi = spawned[wk];
    out.winner = wi;
    out.winner_name = alts[wi].name;
    out.result = std::move(ran[wk].result);

    // alt_wait rendezvous: absorb the child's changed pages.
    const std::size_t changed =
        ran[wk].world.space().table().diff(parent.space().table()).size();
    out.overhead.commit = cost.commit_cost(changed);
    table.set_status(sibling_pids[wk], ProcStatus::kSynced);
    MW_TRACE_EVENT(trace::EventKind::kAltSync, sibling_pids[wk], parent.pid(),
                   group, 0, sched.winner_finish);
    MW_TRACE_SET_NOW(sched.winner_finish + out.overhead.commit);
    parent.commit_from(std::move(ran[wk].world));

    // Eliminate the siblings. Issue costs always land on the parent;
    // synchronous elimination additionally waits for each termination.
    const std::size_t victims = spawned.size() - 1;
    out.overhead.elimination = cost.elimination_cost(
        victims, opts.elimination == Elimination::kSynchronous);
    for (std::size_t k = 0; k < spawned.size(); ++k) {
      if (k == wk) continue;
      // A sibling that aborted on its own (guard/body failure) before the
      // winner synchronized reached kFailed by itself; the rest are killed.
      if (!ran[k].success && sched.tasks[k].ran &&
          sched.tasks[k].finish <= sched.winner_finish) {
        table.set_status(sibling_pids[k], ProcStatus::kFailed);
        MW_TRACE_EVENT(trace::EventKind::kAltAbort, sibling_pids[k], kNoPid,
                       group, 0, sched.tasks[k].finish);
      } else {
        table.set_status(sibling_pids[k], ProcStatus::kEliminated);
        MW_TRACE_EVENT(trace::EventKind::kAltEliminate, sibling_pids[k],
                       kNoPid, group, 0,
                       sched.winner_finish + out.overhead.commit +
                           out.overhead.elimination);
      }
    }
    out.elapsed = sched.winner_finish + out.overhead.commit +
                  out.overhead.elimination;
    MW_TRACE_EVENT(trace::EventKind::kAltBlockEnd, parent.pid(), kNoPid,
                   group, 0, out.elapsed);
    return out;
  }

  // Failure: either every alternative aborted, or the parent timed out.
  out.failed = true;
  VTime last_finish = 0;
  for (const auto& s : sched.tasks) last_finish = std::max(last_finish, s.finish);
  if (!sched.winner_index.has_value() && last_finish <= opts.timeout) {
    // All aborted before the timeout; the parent learns of failure when the
    // last child does, and nothing is left to eliminate.
    out.failure = AltFailure::kAllFailed;
    out.elapsed = last_finish;
    for (std::size_t k = 0; k < spawned.size(); ++k) {
      table.set_status(sibling_pids[k], ProcStatus::kFailed);
      MW_TRACE_EVENT(trace::EventKind::kAltAbort, sibling_pids[k], kNoPid,
                     group, 0, sched.tasks[k].finish);
    }
  } else {
    // Timed out with children still running (or succeeding too late): the
    // parent returns from alt_wait, fails, and kills everything.
    out.failure = AltFailure::kTimeout;
    out.overhead.elimination = cost.elimination_cost(
        spawned.size(), opts.elimination == Elimination::kSynchronous);
    out.elapsed = opts.timeout + out.overhead.elimination;
    for (std::size_t k = 0; k < spawned.size(); ++k) {
      table.set_status(sibling_pids[k], ProcStatus::kEliminated);
      MW_TRACE_EVENT(trace::EventKind::kAltEliminate, sibling_pids[k], kNoPid,
                     group, 0, out.elapsed);
    }
  }
  MW_TRACE_EVENT(trace::EventKind::kAltBlockEnd, parent.pid(), kNoPid, group,
                 static_cast<std::uint64_t>(out.failure), out.elapsed);
  return out;
}

}  // namespace internal

}  // namespace mw
