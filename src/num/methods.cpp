#include "num/methods.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace mw {

bool roots_acceptable(const Poly& p, const std::vector<Cx>& roots,
                      double residual_tol) {
  if (static_cast<int>(roots.size()) != p.degree()) return false;
  double coeff_scale = 0.0;
  for (const Cx& c : p.coeffs()) coeff_scale += std::abs(c);
  for (const Cx& r : roots) {
    const double zmag = std::max(1.0, std::abs(r));
    double zpow = 1.0;
    for (int k = 0; k < p.degree(); ++k) zpow *= zmag;
    if (!(std::abs(p.eval(r)) <= residual_tol * coeff_scale * zpow))
      return false;
  }
  return true;
}

RootResult durand_kerner(const Poly& p, const DkConfig& cfg) {
  RootResult res;
  const Poly m = p.monic();
  const int n = m.degree();
  MW_CHECK(n >= 1);

  // Initial guesses on a circle inside the root bound, rotated off the
  // axes (the classic 0.4 + 0.9i style offset keeps symmetry from locking
  // the iteration).
  const double radius = 0.5 * (m.root_bound_lower() + m.root_bound_upper());
  std::vector<Cx> z(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = cfg.init_angle_rad +
                     2.0 * std::numbers::pi * static_cast<double>(i) / n;
    z[static_cast<std::size_t>(i)] = radius * Cx(std::cos(a), std::sin(a));
  }

  for (int sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    double max_step = 0.0;
    for (int i = 0; i < n; ++i) {
      ++res.iterations;
      Cx denom(1.0, 0.0);
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        denom *= z[static_cast<std::size_t>(i)] - z[static_cast<std::size_t>(j)];
      }
      if (std::abs(denom) == 0.0) {
        res.note = "coincident iterates";
        return res;
      }
      const Cx step = m.eval(z[static_cast<std::size_t>(i)]) / denom;
      z[static_cast<std::size_t>(i)] -= step;
      max_step = std::max(max_step, std::abs(step));
    }
    if (max_step < cfg.tol) {
      res.roots = z;
      if (roots_acceptable(p, res.roots)) {
        res.converged = true;
      } else {
        res.note = "converged to bad residuals";
      }
      return res;
    }
  }
  res.note = "sweep budget exhausted";
  return res;
}

RootResult aberth(const Poly& p, const DkConfig& cfg) {
  RootResult res;
  const Poly m = p.monic();
  const int n = m.degree();
  MW_CHECK(n >= 1);

  const double radius = 0.5 * (m.root_bound_lower() + m.root_bound_upper());
  std::vector<Cx> z(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = cfg.init_angle_rad +
                     2.0 * std::numbers::pi * static_cast<double>(i) / n;
    z[static_cast<std::size_t>(i)] = radius * Cx(std::cos(a), std::sin(a));
  }

  for (int sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    double max_step = 0.0;
    for (int i = 0; i < n; ++i) {
      ++res.iterations;
      Cx d;
      const Cx pz = m.eval_with_deriv(z[static_cast<std::size_t>(i)], &d);
      if (std::abs(d) == 0.0) {
        res.note = "derivative vanished";
        return res;
      }
      const Cx newton = pz / d;
      Cx sum(0.0, 0.0);
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        sum += 1.0 / (z[static_cast<std::size_t>(i)] -
                      z[static_cast<std::size_t>(j)]);
      }
      const Cx denom = Cx(1.0, 0.0) - newton * sum;
      if (std::abs(denom) == 0.0) {
        res.note = "aberth denominator vanished";
        return res;
      }
      const Cx step = newton / denom;
      z[static_cast<std::size_t>(i)] -= step;
      max_step = std::max(max_step, std::abs(step));
    }
    if (max_step < cfg.tol) {
      res.roots = z;
      if (roots_acceptable(p, res.roots)) {
        res.converged = true;
      } else {
        res.note = "converged to bad residuals";
      }
      return res;
    }
  }
  res.note = "sweep budget exhausted";
  return res;
}

namespace {

/// One Laguerre root of `p` from start `z0`. Cubically convergent and
/// famously hard to defeat.
bool laguerre_one(const Poly& p, Cx z0, int max_iters, double tol, Cx* root,
                  std::uint64_t* iterations) {
  const int n = p.degree();
  Cx z = z0;
  for (int it = 0; it < max_iters; ++it) {
    ++*iterations;
    Cx d1;
    const Cx pz = p.eval_with_deriv(z, &d1);
    double coeff_scale = 0.0;
    for (const Cx& c : p.coeffs()) coeff_scale += std::abs(c);
    if (std::abs(pz) <= tol * coeff_scale) {
      *root = z;
      return true;
    }
    // Second derivative by evaluating the derivative polynomial.
    Cx d2;
    p.derivative().eval_with_deriv(z, &d2);
    const Cx g = d1 / pz;
    const Cx g2 = g * g;
    const Cx h = g2 - d2 / pz;  // H = G^2 - p''/p
    const Cx rad = std::sqrt(static_cast<double>(n - 1) *
                             (static_cast<double>(n) * h - g2));
    const Cx dplus = g + rad, dminus = g - rad;
    const Cx denom = (std::abs(dplus) >= std::abs(dminus)) ? dplus : dminus;
    if (std::abs(denom) == 0.0) {
      // Stuck at a saddle: nudge.
      z += Cx(0.1, 0.1);
      continue;
    }
    const Cx step = Cx(static_cast<double>(n), 0.0) / denom;
    z -= step;
    if (std::abs(step) < 1e-15 * std::max(1.0, std::abs(z))) {
      *root = z;
      return true;
    }
  }
  return false;
}

}  // namespace

RootResult laguerre(const Poly& p, const LaguerreConfig& cfg) {
  RootResult res;
  MW_CHECK(p.degree() >= 1);
  Poly work = p.monic();
  while (work.degree() >= 1) {
    if (work.degree() == 1) {
      res.roots.push_back(-work.coeff(0) / work.coeff(1));
      break;
    }
    Cx root;
    if (!laguerre_one(work, cfg.start, cfg.max_iters, cfg.tol, &root,
                      &res.iterations)) {
      res.note = "laguerre stalled at degree " + std::to_string(work.degree());
      return res;
    }
    res.roots.push_back(root);
    work = work.deflate(root);
  }
  if (!roots_acceptable(p, res.roots)) {
    res.note = "residual check failed";
    return res;
  }
  res.converged = true;
  return res;
}

RootResult newton_deflation(const Poly& p, const NewtonConfig& cfg) {
  RootResult res;
  MW_CHECK(p.degree() >= 1);
  Poly work = p.monic();
  Cx start = cfg.start;
  while (work.degree() >= 1) {
    if (work.degree() == 1) {
      res.roots.push_back(-work.coeff(0) / work.coeff(1));
      break;
    }
    Cx z = start;
    bool found = false;
    double coeff_scale = 0.0;
    for (const Cx& c : work.coeffs()) coeff_scale += std::abs(c);
    for (int it = 0; it < cfg.max_iters; ++it) {
      ++res.iterations;
      Cx d;
      const Cx pz = work.eval_with_deriv(z, &d);
      if (std::abs(pz) <= cfg.tol * coeff_scale) {
        found = true;
        break;
      }
      if (std::abs(d) == 0.0) break;  // flat spot: plain Newton gives up
      z -= pz / d;
      if (!(std::isfinite(z.real()) && std::isfinite(z.imag()))) break;
    }
    if (!found) {
      res.note = "newton diverged at degree " + std::to_string(work.degree());
      return res;
    }
    res.roots.push_back(z);
    work = work.deflate(z);
  }
  if (!roots_acceptable(p, res.roots)) {
    res.note = "residual check failed";
    return res;
  }
  res.converged = true;
  return res;
}

}  // namespace mw
