// The Jenkins–Traub complex polynomial zero finder (CPOLY, CACM Algorithm
// 419 [11]) — the paper's Table I workload.
//
// The method runs three stages per root: a no-shift phase that
// accentuates the smallest zeros in the H-polynomial sequence, a
// fixed-shift phase started at s = β·e^{iθ} (β a lower bound on the root
// modulus), and a variable-shift (Newton-like) phase. "Using polar
// coordinates, the angle of the starting value is a random choice" — θ is
// the algorithm's degree of freedom, and different angles genuinely take
// different times or fail to converge, which is exactly the execution-time
// variance the Multiple Worlds scheme exploits (§4.3): run several angles
// as parallel alternatives and commit the first to find all roots.
#pragma once

#include "num/rootfinder.hpp"

namespace mw {

struct JtConfig {
  /// The starting-value angle, in degrees. Algorithm 419's sequential
  /// driver starts at 49° and rotates by 94° on each retry; the parallel
  /// version instead races several angles.
  double start_angle_deg = 49.0;
  int no_shift_iters = 5;
  /// Fixed-shift budget per shot.
  int fixed_shift_iters = 40;
  int variable_shift_iters = 40;
  /// Shots per root: each retry rotates the shift angle a further 94°
  /// (Algorithm 419's retry rule). Retries are what make the per-angle
  /// execution time vary; when every shot fails on some root, the whole
  /// attempt fails — the Table I `fails` column.
  int per_root_shots = 2;
  double tol = 1e-10;
};

/// One single-angle attempt: finds all roots or fails. This is what one
/// speculative alternative runs.
RootResult jenkins_traub(const Poly& p, const JtConfig& cfg = {});

/// The sequential Algorithm 419 driver: retries with rotated angles
/// (49° + k·94°) until success or `max_attempts` exhausted. Iteration
/// counts accumulate across attempts — the cost a sequential user pays.
RootResult jenkins_traub_seq(const Poly& p, int max_attempts = 8,
                             const JtConfig& cfg = {});

}  // namespace mw
