#include "num/jenkins_traub.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace mw {

namespace {

bool finite(Cx z) { return std::isfinite(z.real()) && std::isfinite(z.imag()); }

/// Solves a_2 z^2 + a_1 z + a_0 = 0 stably.
void solve_quadratic(Cx a2, Cx a1, Cx a0, Cx* r1, Cx* r2) {
  const Cx disc = std::sqrt(a1 * a1 - 4.0 * a2 * a0);
  // Choose the sign that avoids cancellation.
  const Cx q = (std::real(std::conj(a1) * disc) >= 0.0)
                   ? -0.5 * (a1 + disc)
                   : -0.5 * (a1 - disc);
  *r1 = q / a2;
  *r2 = (std::abs(q) > 0.0) ? a0 / q : Cx(0.0, 0.0);
}

/// H(z) <- [H(z) - (H(s)/P(s)) P(z)] / (z - s). The numerator vanishes at
/// s by construction, so the deflation is exact. The result is rescaled to
/// unit max-norm: H is only ever used through the normalized H̄, and
/// without rescaling its coefficients drift toward overflow/underflow over
/// the dozens of fixed-shift iterations (CPOLY rescales the same way).
Poly advance_h(const Poly& h, const Poly& p, Cx s) {
  const Cx hs = h.eval(s);
  const Cx ps = p.eval(s);
  const Cx c = hs / ps;
  std::vector<Cx> num(static_cast<std::size_t>(p.degree()) + 1, Cx(0, 0));
  for (int i = 0; i <= p.degree(); ++i) {
    Cx v = -c * p.coeff(i);
    if (i <= h.degree()) v += h.coeff(i);
    num[static_cast<std::size_t>(i)] = v;
  }
  Poly next = Poly::from_coeffs(std::move(num)).deflate(s);
  if (next.zero()) return next;
  double maxmag = 0.0;
  for (const Cx& v : next.coeffs()) maxmag = std::max(maxmag, std::abs(v));
  if (maxmag > 0.0 && std::isfinite(maxmag)) {
    std::vector<Cx> scaled = next.coeffs();
    for (Cx& v : scaled) v /= maxmag;
    return Poly::from_coeffs(std::move(scaled));
  }
  return next;
}

/// The Jenkins–Traub correction t = s - P(s)/H̄(s), H̄ monic-normalized.
Cx correction(const Poly& h, const Poly& p, Cx s, bool* ok) {
  const Cx hbar = h.eval(s) / h.leading();
  if (std::abs(hbar) == 0.0) {
    *ok = false;
    return s;
  }
  *ok = true;
  return s - p.eval(s) / hbar;
}

/// Residual convergence test, relative to the coefficient scale at |z|.
bool residual_small(const Poly& p, Cx z, Cx pz, double tol) {
  const double zmag = std::max(1.0, std::abs(z));
  double zpow = std::abs(p.leading());
  for (int k = 0; k < p.degree(); ++k) zpow *= zmag;
  return std::abs(pz) <= tol * zpow;
}

/// Stage 3 (variable shift) from estimate z0 with the current H sequence.
/// Returns true and the refined root on convergence.
bool stage3(const Poly& p, Poly h, Cx z0, const JtConfig& cfg,
            std::uint64_t* iterations, Cx* root) {
  Cx z = z0;
  const double bound = p.root_bound_upper();
  for (int j = 0; j < cfg.variable_shift_iters; ++j) {
    ++*iterations;
    const Cx pz = p.eval(z);
    if (residual_small(p, z, pz, cfg.tol)) {
      *root = z;
      return true;
    }
    h = advance_h(h, p, z);
    if (h.zero()) return false;
    bool ok = false;
    const Cx next = correction(h, p, z, &ok);
    if (!ok || !finite(next) || std::abs(next) > 1e3 * bound) return false;
    z = next;
  }
  return false;
}

/// One fixed-shift "shot" at angle theta: stage 2 until the t-sequence
/// converges weakly, then stage 3. Per Algorithm 419, stage 3 is also
/// attempted on the final t even when stage 2 only hints at convergence.
bool one_shot(const Poly& p, const Poly& h0, double beta, double theta,
              const JtConfig& cfg, std::uint64_t* iterations, Cx* root) {
  const Cx s(beta * std::cos(theta), beta * std::sin(theta));
  if (std::abs(p.eval(s)) == 0.0) {
    *root = s;
    return true;
  }
  Poly h = h0;
  bool ok = false;
  Cx t_old = correction(h, p, s, &ok);
  if (!ok) return false;
  int weak = 0;
  Cx t_new = t_old;
  for (int j = 0; j < cfg.fixed_shift_iters; ++j) {
    ++*iterations;
    h = advance_h(h, p, s);
    if (h.zero()) return false;
    t_new = correction(h, p, s, &ok);
    if (!ok || !finite(t_new)) return false;
    if (std::abs(t_new - t_old) <= 0.5 * std::abs(t_old)) {
      if (++weak >= 2) {
        // Strong enough evidence: switch to the variable shift.
        return stage3(p, h, t_new, cfg, iterations, root);
      }
    } else {
      weak = 0;
    }
    t_old = t_new;
  }
  // Budget exhausted without firm convergence; gamble a stage-3 run on the
  // last estimate anyway (CPOLY does the same before rotating the angle).
  return stage3(p, h, t_new, cfg, iterations, root);
}

struct StageOutcome {
  bool found = false;
  Cx root;
};

/// Finds one root of the monic polynomial `p`, rotating the shift angle by
/// 94° between up to `per_root_shots` shots (Algorithm 419's retry rule).
StageOutcome find_one_root(const Poly& p, const JtConfig& cfg, double theta0,
                           std::uint64_t* iterations) {
  StageOutcome out;
  const int n = p.degree();
  MW_CHECK(n >= 1);

  if (std::abs(p.coeff(0)) == 0.0) {
    out.found = true;
    out.root = Cx(0.0, 0.0);
    return out;
  }
  if (n == 1) {
    out.found = true;
    out.root = -p.coeff(0) / p.coeff(1);
    return out;
  }
  if (n == 2) {
    Cx r1, r2;
    solve_quadratic(p.coeff(2), p.coeff(1), p.coeff(0), &r1, &r2);
    out.found = true;
    out.root = (std::abs(r1) <= std::abs(r2)) ? r1 : r2;
    return out;
  }

  // Stage 1: no-shift iterations accentuate the small zeros in H.
  Poly h = p.derivative();
  for (int j = 0; j < cfg.no_shift_iters; ++j) {
    ++*iterations;
    h = advance_h(h, p, Cx(0.0, 0.0));
    if (h.zero()) return out;
  }

  const double beta = p.root_bound_lower();
  const double rotate = 94.0 * std::numbers::pi / 180.0;
  for (int shot = 0; shot < cfg.per_root_shots; ++shot) {
    Cx root;
    if (one_shot(p, h, beta, theta0 + rotate * shot, cfg, iterations,
                 &root)) {
      out.found = true;
      out.root = root;
      return out;
    }
  }
  return out;
}

}  // namespace

RootResult jenkins_traub(const Poly& p, const JtConfig& cfg) {
  RootResult res;
  MW_CHECK(p.degree() >= 1);
  const double theta0 = cfg.start_angle_deg * std::numbers::pi / 180.0;

  Poly work = p.monic();
  const Poly original = work;
  while (work.degree() >= 1) {
    StageOutcome one = find_one_root(work, cfg, theta0, &res.iterations);
    if (!one.found) {
      res.note = "stage failed at degree " + std::to_string(work.degree());
      return res;
    }
    res.roots.push_back(one.root);
    work = work.deflate(one.root);
  }

  // Guard: the roots must actually satisfy the original polynomial.
  if (!roots_acceptable(original, res.roots)) {
    res.note = "residual check failed";
    return res;
  }
  res.converged = true;
  return res;
}

RootResult jenkins_traub_seq(const Poly& p, int max_attempts,
                             const JtConfig& cfg) {
  RootResult total;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    JtConfig c = cfg;
    c.start_angle_deg = cfg.start_angle_deg + 94.0 * attempt;
    RootResult r = jenkins_traub(p, c);
    total.iterations += r.iterations;
    if (r.converged) {
      total.converged = true;
      total.roots = std::move(r.roots);
      return total;
    }
  }
  total.note = "all angles failed";
  return total;
}

}  // namespace mw
