// Common interface for the alternative rootfinding methods (§4.3). Every
// method reports the iteration count it consumed — the virtual-work
// currency the speculation benches use — and whether it converged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "num/complex_poly.hpp"

namespace mw {

struct RootResult {
  bool converged = false;
  std::vector<Cx> roots;
  /// Total inner iterations across all stages/roots: the method's cost in
  /// work units.
  std::uint64_t iterations = 0;
  std::string note;  // diagnostic: why a failure failed
};

/// Tolerances shared by the iterative methods.
struct RootConfig {
  double tol = 1e-10;          // relative residual target
  int max_outer = 400;         // per-root / per-sweep iteration budget
  double give_up_residual = 1e-6;  // acceptance threshold for verification
};

/// Verifies a candidate root set against the polynomial: every residual
/// must be small relative to the coefficient scale. This is the GUARD for
/// rootfinding alternatives.
bool roots_acceptable(const Poly& p, const std::vector<Cx>& roots,
                      double residual_tol = 1e-6);

}  // namespace mw
