#include "num/complex_poly.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace mw {

Poly Poly::from_coeffs(std::vector<Cx> coeffs) {
  while (!coeffs.empty() && std::abs(coeffs.back()) == 0.0) coeffs.pop_back();
  Poly p;
  p.coeffs_ = std::move(coeffs);
  return p;
}

Poly Poly::from_roots(std::span<const Cx> roots) {
  std::vector<Cx> c{Cx(1.0, 0.0)};
  for (const Cx& r : roots) {
    // Multiply by (z - r).
    std::vector<Cx> next(c.size() + 1, Cx(0.0, 0.0));
    for (std::size_t i = 0; i < c.size(); ++i) {
      next[i + 1] += c[i];
      next[i] -= r * c[i];
    }
    c = std::move(next);
  }
  Poly p;
  p.coeffs_ = std::move(c);
  return p;
}

Cx Poly::eval(Cx z) const {
  MW_CHECK(!coeffs_.empty());
  Cx acc = coeffs_.back();
  for (std::size_t i = coeffs_.size() - 1; i-- > 0;) acc = acc * z + coeffs_[i];
  return acc;
}

Cx Poly::eval_with_deriv(Cx z, Cx* deriv) const {
  MW_CHECK(!coeffs_.empty());
  Cx p = coeffs_.back();
  Cx d(0.0, 0.0);
  for (std::size_t i = coeffs_.size() - 1; i-- > 0;) {
    d = d * z + p;
    p = p * z + coeffs_[i];
  }
  *deriv = d;
  return p;
}

Poly Poly::derivative() const {
  if (coeffs_.size() <= 1) return Poly::from_coeffs({});
  std::vector<Cx> d(coeffs_.size() - 1);
  for (std::size_t i = 1; i < coeffs_.size(); ++i)
    d[i - 1] = coeffs_[i] * static_cast<double>(i);
  return Poly::from_coeffs(std::move(d));
}

Poly Poly::deflate(Cx root) const {
  MW_CHECK(degree() >= 1);
  // Synthetic division, high to low: b_{n-1} = a_n, b_{k-1} = a_k + r b_k.
  const auto n = coeffs_.size();
  std::vector<Cx> q(n - 1);
  Cx carry = coeffs_[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    q[i] = carry;
    carry = coeffs_[i] + root * carry;
  }
  // `carry` is the remainder P(root); dropped.
  return Poly::from_coeffs(std::move(q));
}

Poly Poly::monic() const {
  MW_CHECK(!coeffs_.empty());
  std::vector<Cx> c = coeffs_;
  const Cx lead = c.back();
  for (auto& x : c) x /= lead;
  return Poly::from_coeffs(std::move(c));
}

double Poly::root_bound_upper() const {
  MW_CHECK(degree() >= 1);
  const double lead = std::abs(coeffs_.back());
  double m = 0.0;
  for (std::size_t i = 0; i + 1 < coeffs_.size(); ++i)
    m = std::max(m, std::abs(coeffs_[i]) / lead);
  return 1.0 + m;
}

double Poly::root_bound_lower() const {
  MW_CHECK(degree() >= 1);
  // f(x) = -|a_0| + Σ_{i>=1} |a_i| x^i is increasing for x>0; its positive
  // zero lower-bounds the smallest root modulus. Bisection + Newton polish.
  const double a0 = std::abs(coeffs_[0]);
  if (a0 == 0.0) return 0.0;
  auto f = [&](double x) {
    double acc = -a0;
    double xp = 1.0;
    for (std::size_t i = 1; i < coeffs_.size(); ++i) {
      xp *= x;
      acc += std::abs(coeffs_[i]) * xp;
    }
    return acc;
  };
  double lo = 0.0, hi = 1.0;
  while (f(hi) < 0.0) hi *= 2.0;
  for (int it = 0; it < 100; ++it) {
    const double mid = 0.5 * (lo + hi);
    (f(mid) < 0.0 ? lo : hi) = mid;
  }
  return lo;
}

double max_residual(const Poly& p, std::span<const Cx> roots) {
  double worst = 0.0;
  for (const Cx& r : roots) worst = std::max(worst, std::abs(p.eval(r)));
  return worst;
}

double match_roots(std::span<const Cx> expected, std::span<const Cx> found) {
  std::vector<bool> used(found.size(), false);
  double worst = 0.0;
  for (const Cx& e : expected) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = 0;
    for (std::size_t j = 0; j < found.size(); ++j) {
      if (used[j]) continue;
      const double d = std::abs(e - found[j]);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    if (best == std::numeric_limits<double>::infinity()) return best;
    used[best_j] = true;
    worst = std::max(worst, best);
  }
  return worst;
}

}  // namespace mw
