#include "num/workload.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace mw {

PolyWorkload make_clustered_poly(Rng& rng, const WorkloadConfig& cfg) {
  MW_CHECK(cfg.degree >= 2);
  MW_CHECK(cfg.clusters * 2 <= cfg.degree);
  std::vector<Cx> roots;
  roots.reserve(static_cast<std::size_t>(cfg.degree));

  auto random_point = [&] {
    const double r = rng.next_double_in(cfg.min_radius, cfg.max_radius);
    const double a = rng.next_double_in(0.0, 2.0 * std::numbers::pi);
    return Cx(r * std::cos(a), r * std::sin(a));
  };

  // Tight pairs: nearly multiple roots.
  for (int c = 0; c < cfg.clusters; ++c) {
    const Cx center = random_point();
    const double ga = rng.next_double_in(0.0, 2.0 * std::numbers::pi);
    const Cx gap(cfg.cluster_gap * std::cos(ga), cfg.cluster_gap * std::sin(ga));
    roots.push_back(center + gap * 0.5);
    roots.push_back(center - gap * 0.5);
  }
  // The rest: isolated roots over the annulus.
  while (static_cast<int>(roots.size()) < cfg.degree)
    roots.push_back(random_point());

  PolyWorkload w;
  w.poly = Poly::from_roots(roots);
  w.true_roots = std::move(roots);
  return w;
}

std::vector<PolyWorkload> make_workload_batch(std::uint64_t seed, int count,
                                              const WorkloadConfig& cfg) {
  Rng rng(seed);
  std::vector<PolyWorkload> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Rng sub = rng.split(static_cast<std::uint64_t>(i) + 1);
    out.push_back(make_clustered_poly(sub, cfg));
  }
  return out;
}

}  // namespace mw
