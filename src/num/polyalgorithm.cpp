#include "num/polyalgorithm.hpp"

#include <algorithm>
#include <cmath>

#include "num/jenkins_traub.hpp"
#include "num/methods.hpp"

namespace mw {

std::vector<PolyMethod> standard_method_suite() {
  std::vector<PolyMethod> m;
  m.push_back({"jenkins-traub",
               [](const Poly& p) { return jenkins_traub(p); },
               nullptr});
  m.push_back({"laguerre", [](const Poly& p) { return laguerre(p); },
               nullptr});
  m.push_back({"aberth", [](const Poly& p) { return aberth(p); }, nullptr});
  m.push_back({"durand-kerner",
               [](const Poly& p) { return durand_kerner(p); }, nullptr});
  // Newton's heuristic: plain Newton with deflation is only worth trying
  // on low-degree problems, where its failure modes are rare.
  m.push_back({"newton", [](const Poly& p) { return newton_deflation(p); },
               [](const Poly& p) { return p.degree() <= 8; }});
  return m;
}

PolyalgoResult run_polyalgorithm(const Poly& p,
                                 const std::vector<PolyMethod>& methods) {
  PolyalgoResult out;
  for (const PolyMethod& m : methods) {
    if (m.applicable && !m.applicable(p)) continue;
    ++out.methods_tried;
    RootResult r = m.run(p);
    out.total_iterations += r.iterations;
    if (r.converged) {
      out.result = std::move(r);
      out.result.iterations = out.total_iterations;
      out.method_used = m.name;
      return out;
    }
  }
  out.result.converged = false;
  out.result.iterations = out.total_iterations;
  out.result.note = "all methods failed";
  return out;
}

void harvest_partial_roots(const Poly& p, const RootResult& attempt,
                           ProblemNotes* notes) {
  double coeff_scale = 0.0;
  for (const Cx& c : p.coeffs()) coeff_scale += std::abs(c);
  for (const Cx& r : attempt.roots) {
    // Verify against the *original* polynomial: deflation drift in the
    // failed attempt must not poison the notes.
    const double zmag = std::max(1.0, std::abs(r));
    double zpow = 1.0;
    for (int k = 0; k < p.degree(); ++k) zpow *= zmag;
    if (std::abs(p.eval(r)) > 1e-8 * coeff_scale * zpow) continue;
    bool duplicate = false;
    for (const Cx& seen : notes->confirmed_partial_roots)
      duplicate |= std::abs(seen - r) < 1e-9;
    if (!duplicate &&
        notes->confirmed_partial_roots.size() <
            static_cast<std::size_t>(p.degree())) {
      notes->confirmed_partial_roots.push_back(r);
    }
  }
}

Poly deflate_by_notes(const Poly& p, const ProblemNotes& notes) {
  Poly work = p.monic();
  for (const Cx& r : notes.confirmed_partial_roots) {
    if (work.degree() < 1) break;
    work = work.deflate(r);
  }
  return work;
}

std::vector<InformedMethod> informed_method_suite() {
  std::vector<InformedMethod> m;
  // The scout: a single-angle Jenkins–Traub attempt. Cheap, usually
  // enough; its partial progress feeds the warm starts below.
  m.push_back({"jenkins-traub",
               [](const Poly& p, const ProblemNotes&) {
                 return jenkins_traub(p);
               },
               nullptr});
  // Warm-started Laguerre: solve only what the failed scouts left behind.
  m.push_back(
      {"laguerre-warmstart",
       [](const Poly& p, const ProblemNotes& notes) {
         const Poly rest = deflate_by_notes(p, notes);
         RootResult sub = rest.degree() >= 1
                              ? laguerre(rest)
                              : RootResult{true, {}, 0, ""};
         if (!sub.converged) return sub;
         RootResult out;
         out.roots = notes.confirmed_partial_roots;
         out.roots.insert(out.roots.end(), sub.roots.begin(),
                          sub.roots.end());
         out.iterations = sub.iterations;
         out.converged = roots_acceptable(p, out.roots);
         if (!out.converged) out.note = "combined residual check failed";
         return out;
       },
       nullptr});
  // Full-strength fallbacks.
  m.push_back({"aberth",
               [](const Poly& p, const ProblemNotes&) { return aberth(p); },
               nullptr});
  m.push_back({"durand-kerner",
               [](const Poly& p, const ProblemNotes&) {
                 return durand_kerner(p);
               },
               nullptr});
  return m;
}

PolyalgoResult run_informed_polyalgorithm(
    const Poly& p, const std::vector<InformedMethod>& methods) {
  PolyalgoResult out;
  ProblemNotes notes;
  for (const InformedMethod& m : methods) {
    if (m.applicable && !m.applicable(p, notes)) continue;
    ++out.methods_tried;
    RootResult r = m.run(p, notes);
    out.total_iterations += r.iterations;
    if (r.converged) {
      out.result = std::move(r);
      out.result.iterations = out.total_iterations;
      out.method_used = m.name;
      return out;
    }
    // Build up information about the problem from the failure.
    ++notes.failed_methods;
    notes.failure_log.push_back(m.name + ": " + r.note);
    harvest_partial_roots(p, r, &notes);
  }
  out.result.converged = false;
  out.result.iterations = out.total_iterations;
  out.result.note = "all methods failed";
  return out;
}

std::vector<std::vector<PolyMethod>> method_rotations(
    const std::vector<PolyMethod>& methods) {
  std::vector<std::vector<PolyMethod>> out;
  const std::size_t n = methods.size();
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<PolyMethod> rot;
    rot.reserve(n);
    for (std::size_t i = 0; i < n; ++i) rot.push_back(methods[(k + i) % n]);
    out.push_back(std::move(rot));
  }
  return out;
}

}  // namespace mw
