// Workload generators for the rootfinding experiments. The Ardent Titan
// inputs behind Table I were not published; this family is the documented
// substitution (DESIGN.md): polynomials with clustered roots spread over an
// annulus, for which single-angle Jenkins–Traub attempts genuinely show
// execution-time variance and occasional non-convergence — the properties
// Table I's min/max/avg/fails columns measure.
#pragma once

#include <vector>

#include "num/complex_poly.hpp"
#include "util/rng.hpp"

namespace mw {

struct PolyWorkload {
  Poly poly;
  std::vector<Cx> true_roots;
};

struct WorkloadConfig {
  int degree = 24;
  /// Number of tight root clusters (pairs at ~cluster_gap separation);
  /// clusters are what make convergence angle-sensitive. The defaults put
  /// single-angle Jenkins–Traub at ~97% success with a ~2x iteration
  /// spread across angles — the Table I regime.
  int clusters = 4;
  double cluster_gap = 5e-3;
  double min_radius = 0.4;
  double max_radius = 2.5;
};

/// Deterministic random polynomial with the configured cluster structure.
PolyWorkload make_clustered_poly(Rng& rng, const WorkloadConfig& cfg = {});

/// A batch of workloads (one per input of a domain-level experiment).
std::vector<PolyWorkload> make_workload_batch(std::uint64_t seed, int count,
                                              const WorkloadConfig& cfg = {});

}  // namespace mw
