// Rice-style polyalgorithms (§4.3, [15]): "several methods are combined
// along with information about the circumstances under which a method is
// likely to be successful. As different methods are tried and fail,
// information about the problem is built up."
//
// The Multiple Worlds use: create artificial alternatives, each trying a
// different solution method *first* — "fastest first" scheduling improves
// the response-time properties of a NAPSS-like system.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "num/rootfinder.hpp"

namespace mw {

struct PolyMethod {
  std::string name;
  std::function<RootResult(const Poly&)> run;
  /// Cheap applicability heuristic over the problem ("information about
  /// the circumstances under which a method is likely to be successful").
  /// Null = always applicable.
  std::function<bool(const Poly&)> applicable;
};

/// The standard method suite: Jenkins–Traub (49°), Laguerre, Aberth,
/// Durand–Kerner, Newton.
std::vector<PolyMethod> standard_method_suite();

struct PolyalgoResult {
  RootResult result;
  std::string method_used;       // which method produced the answer
  int methods_tried = 0;
  std::uint64_t total_iterations = 0;  // across all tried methods
};

/// The sequential polyalgorithm: try applicable methods in order until one
/// succeeds; costs accumulate (the price NAPSS users complained about).
PolyalgoResult run_polyalgorithm(const Poly& p,
                                 const std::vector<PolyMethod>& methods);

/// Method orderings for the parallel polyalgorithm: rotation k puts method
/// k first. Each rotation is one speculative alternative.
std::vector<std::vector<PolyMethod>> method_rotations(
    const std::vector<PolyMethod>& methods);

// --- Information build-up (§4.3) --------------------------------------
// "As different methods are tried and fail, information about the problem
// is built up ... discovering multiple zeros in a failing root-finder may
// be useful to the next solution method."

/// What failed attempts taught us about the problem.
struct ProblemNotes {
  /// Roots recovered from failed attempts that verify against the
  /// polynomial (each with a small residual).
  std::vector<Cx> confirmed_partial_roots;
  int failed_methods = 0;
  std::vector<std::string> failure_log;  // "method: note"
};

struct InformedMethod {
  std::string name;
  std::function<RootResult(const Poly&, const ProblemNotes&)> run;
  std::function<bool(const Poly&, const ProblemNotes&)> applicable;
};

/// Like standard_method_suite, but later methods exploit the notes: the
/// warm-start members first deflate the polynomial by the confirmed
/// partial roots of earlier failures, then solve only the remainder.
std::vector<InformedMethod> informed_method_suite();

/// Sequential informed polyalgorithm: tries methods in order, harvesting
/// partial roots from each failure into the notes for the next method.
PolyalgoResult run_informed_polyalgorithm(
    const Poly& p, const std::vector<InformedMethod>& methods);

/// Extracts the verified roots from a (possibly failed) attempt and folds
/// them into `notes`, deduplicating against roots already present.
void harvest_partial_roots(const Poly& p, const RootResult& attempt,
                           ProblemNotes* notes);

/// Deflates `p` by every confirmed partial root; returns the remainder.
Poly deflate_by_notes(const Poly& p, const ProblemNotes& notes);

}  // namespace mw
