// Alternative rootfinding methods beyond Jenkins–Traub: the raw material
// for Rice-style polyalgorithms (§4.3). Each has a different convergence
// profile and failure mode — exactly the "performance differences between
// the alternatives, due to data dependencies or use of heuristic methods"
// the Multiple Worlds design wants (§4, property 3).
#pragma once

#include "num/rootfinder.hpp"

namespace mw {

/// Configuration for the simultaneous-iteration methods.
struct DkConfig {
  double tol = 1e-12;
  int max_sweeps = 500;
  /// Rotation of the initial circle of iterates — their degree of freedom.
  double init_angle_rad = 0.4;
};

/// Durand–Kerner (Weierstrass) simultaneous iteration: all roots at once,
/// no deflation error accumulation, but slow on clustered roots.
RootResult durand_kerner(const Poly& p, const DkConfig& cfg = {});

/// Aberth–Ehrlich simultaneous iteration: cubic convergence, usually the
/// fastest of the sweep methods.
RootResult aberth(const Poly& p, const DkConfig& cfg = {});

struct LaguerreConfig {
  double tol = 1e-12;
  int max_iters = 200;
  Cx start = Cx(0.0, 0.0);
};

/// Laguerre's method with deflation: very robust per-root convergence.
RootResult laguerre(const Poly& p, const LaguerreConfig& cfg = {});

struct NewtonConfig {
  double tol = 1e-12;
  int max_iters = 200;
  Cx start = Cx(1.0, 1.0);
};

/// Plain Newton with deflation: fast when it works, diverges or cycles on
/// hard geometry — the classic "sometimes fails" alternative.
RootResult newton_deflation(const Poly& p, const NewtonConfig& cfg = {});

}  // namespace mw
