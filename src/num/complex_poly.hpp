// Complex polynomial arithmetic for the rootfinding application (§4.3).
// Coefficients are stored in ascending powers; evaluation is Horner's rule.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace mw {

using Cx = std::complex<double>;

class Poly {
 public:
  Poly() = default;

  /// coeffs[i] multiplies z^i; trailing zero coefficients are trimmed.
  static Poly from_coeffs(std::vector<Cx> coeffs);

  /// Monic polynomial with the given roots.
  static Poly from_roots(std::span<const Cx> roots);

  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  bool zero() const { return coeffs_.empty(); }
  const std::vector<Cx>& coeffs() const { return coeffs_; }
  Cx coeff(int i) const { return coeffs_[static_cast<std::size_t>(i)]; }
  Cx leading() const { return coeffs_.back(); }

  Cx eval(Cx z) const;

  /// Evaluates P and P' in one Horner pass.
  Cx eval_with_deriv(Cx z, Cx* deriv) const;

  Poly derivative() const;

  /// Synthetic division by (z - root); the remainder (≈0 for a true root)
  /// is discarded.
  Poly deflate(Cx root) const;

  /// Makes the leading coefficient 1.
  Poly monic() const;

  /// Cauchy's bound: all roots lie within |z| <= bound.
  double root_bound_upper() const;

  /// A lower bound on the smallest root modulus (the Jenkins–Traub β):
  /// the unique positive zero of |a_0| - Σ|a_i| x^i, found by Newton.
  double root_bound_lower() const;

  bool operator==(const Poly&) const = default;

 private:
  std::vector<Cx> coeffs_;  // ascending powers
};

/// Largest residual |P(r)| over the proposed roots.
double max_residual(const Poly& p, std::span<const Cx> roots);

/// Greedy matching distance: for each expected root, the distance to the
/// nearest unmatched found root; returns the maximum. Large values mean a
/// root was missed.
double match_roots(std::span<const Cx> expected, std::span<const Cx> found);

}  // namespace mw
