#include "rb/recovery_block.hpp"

#include <exception>

#include "util/stopwatch.hpp"

#include "util/check.hpp"

namespace mw {

RbResult RecoveryBlock::run_sequential(Runtime& rt, World& world) const {
  RbResult out;
  const CostModel& cost = rt.config().cost;
  const bool virtual_mode = rt.config().backend == AltBackend::kVirtual;

  for (std::size_t i = 0; i < alternates_.size(); ++i) {
    const Alternate& alt = alternates_[i];
    // Each alternate is guaranteed the same initial state: a fresh COW
    // child of the (unmodified) parent world.
    const std::uint64_t group = rt.next_alt_group();
    const Pid pid = rt.processes().create(world.pid(), group, alt.name);
    World child = world.fork_alternative(pid, {pid});
    rt.processes().set_status(pid, ProcStatus::kRunning);
    out.elapsed += cost.fork_cost(world.space().table().resident_pages());

    AltContext ctx(child, i + 1, rt.rng_for(group, i + 1), nullptr,
                   virtual_mode);
    bool ok = true;
    Stopwatch wall;
    try {
      ctx.fault_point("rb." + name_ + "." + alt.name);
      alt.body(ctx);
    } catch (const AltFailed&) {
      ok = false;
    } catch (const AltHung&) {
      // Sequential standby-spares has no concurrent deadline; a hung
      // alternate is detected (by a watchdog the model does not charge
      // for) and treated as a failed spare.
      ok = false;
    } catch (const std::exception&) {
      ok = false;
    } catch (...) {
      ok = false;  // injected crash or other foreign exception
    }
    const std::uint64_t copied = child.space().table().stats().pages_copied;
    out.elapsed += virtual_mode
                       ? ctx.accounted_work() +
                             cost.cow_copy_per_page *
                                 static_cast<VDuration>(copied)
                       : static_cast<VDuration>(wall.elapsed_us());

    if (ok && acceptance_ && !acceptance_(child)) ok = false;
    if (ok) {
      const std::size_t changed =
          child.space().table().diff(world.space().table()).size();
      out.elapsed += cost.commit_cost(changed);
      rt.processes().set_status(pid, ProcStatus::kSynced);
      world.commit_from(std::move(child));
      out.succeeded = true;
      out.alternate_used = i;
      out.alternate_name = alt.name;
      return out;
    }
    // Rollback is free: the child world is simply dropped.
    rt.processes().set_status(pid, ProcStatus::kFailed);
    ++out.rejected;
  }
  return out;  // error: every alternate rejected
}

RbResult RecoveryBlock::run_concurrent(Runtime& rt, World& world,
                                       const AltOptions& opts) const {
  RbResult out;
  std::vector<Alternative> alts;
  alts.reserve(alternates_.size());
  for (const Alternate& a : alternates_) {
    // Every alternate declares a named fault point before its body: the
    // injector can fail, crash or hang any specific alternate of any block.
    auto body = [point = "rb." + name_ + "." + a.name,
                 inner = a.body](AltContext& ctx) {
      ctx.fault_point(point);
      inner(ctx);
    };
    alts.push_back(Alternative{a.name, nullptr, std::move(body), acceptance_});
  }
  AltOutcome ao = run_alternatives(rt, world, alts, opts);
  out.elapsed = ao.elapsed;
  out.succeeded = !ao.failed;
  if (ao.winner.has_value()) {
    out.alternate_used = *ao.winner;
    out.alternate_name = ao.winner_name;
  }
  for (const AltReport& r : ao.alts) {
    if (r.spawned && !r.success) ++out.rejected;
  }
  return out;
}

FaultPlan FaultPlan::fail_first(int n) {
  FaultPlan p;
  p.kind_ = Kind::kFirst;
  p.n_ = n;
  return p;
}

FaultPlan FaultPlan::always() {
  FaultPlan p;
  p.kind_ = Kind::kAlways;
  return p;
}

FaultPlan FaultPlan::periodic(int period, int phase) {
  MW_CHECK(period >= 1);
  FaultPlan p;
  p.kind_ = Kind::kPeriodic;
  p.period_ = period;
  p.phase_ = phase;
  return p;
}

FaultPlan FaultPlan::none() { return FaultPlan{}; }

bool FaultPlan::next_fails() {
  const int k = count_++;
  switch (kind_) {
    case Kind::kNone:
      return false;
    case Kind::kFirst:
      return k < n_;
    case Kind::kAlways:
      return true;
    case Kind::kPeriodic:
      return (k + phase_) % period_ == 0;
  }
  return false;
}

}  // namespace mw
