// Recovery blocks (§4.1, after Randell): "a recovery block is composed of
// several alternative methods of computing a result; the goal is to emulate
// the behavior of 'standby-spares' to tolerate faults in software. Since
// each alternative is guaranteed the same initial state, they can be
// executed concurrently."
//
//   ensure <acceptance test>
//   by     <primary alternate>
//   else by <alternate 2> ... else error
//
// Two execution strategies over the same block:
//  * run_sequential — classic standby spares: try alternates in order, each
//    against a fresh COW world; roll back on acceptance failure. Response
//    time accumulates across failed alternates.
//  * run_concurrent — the Multiple Worlds execution: all alternates race;
//    the first to pass the acceptance test commits. Recovery costs nothing
//    extra because "some alternative is already pursuing the recovery
//    strategy" (§5).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"

namespace mw {

struct RbResult {
  bool succeeded = false;
  /// Which alternate produced the accepted state (0 = primary).
  std::size_t alternate_used = 0;
  std::string alternate_name;
  /// Alternates whose acceptance test rejected (sequential: tried before
  /// the winner; concurrent: observed failures).
  int rejected = 0;
  /// Virtual ticks (virtual backend) / microseconds (thread backend).
  VDuration elapsed = 0;
};

class RecoveryBlock {
 public:
  /// `acceptance` is the ensure-clause: it judges the candidate world.
  RecoveryBlock(std::string name, std::function<bool(const World&)> acceptance)
      : name_(std::move(name)), acceptance_(std::move(acceptance)) {}

  /// Adds an alternate; the first added is the primary.
  RecoveryBlock& ensure_by(std::string name,
                           std::function<void(AltContext&)> body) {
    alternates_.push_back({std::move(name), std::move(body)});
    return *this;
  }

  std::size_t alternate_count() const { return alternates_.size(); }
  const std::string& name() const { return name_; }

  /// Standby-spares execution. On success the winning alternate's state is
  /// committed into `world`; on total failure `world` is untouched.
  RbResult run_sequential(Runtime& rt, World& world) const;

  /// Multiple Worlds execution: one speculative world per alternate, first
  /// acceptance-passing sync wins.
  RbResult run_concurrent(Runtime& rt, World& world,
                          const AltOptions& opts = {}) const;

 private:
  struct Alternate {
    std::string name;
    std::function<void(AltContext&)> body;
  };

  std::string name_;
  std::function<bool(const World&)> acceptance_;
  std::vector<Alternate> alternates_;
};

/// Deterministic fault injection for testing and benches: decides whether
/// invocation k of a component "fails".
class FaultPlan {
 public:
  /// Fails the first n invocations (then recovers) — a warming bug.
  static FaultPlan fail_first(int n);
  /// Fails every invocation — a hard fault.
  static FaultPlan always();
  /// Fails invocation k when (k * a + b) mod m == 0 — periodic flakiness.
  static FaultPlan periodic(int period, int phase = 0);
  /// Never fails.
  static FaultPlan none();

  /// Consumes one invocation; true = this invocation fails.
  bool next_fails();

  int invocations() const { return count_; }

 private:
  enum class Kind { kNone, kFirst, kAlways, kPeriodic };
  Kind kind_ = Kind::kNone;
  int n_ = 0;
  int period_ = 1;
  int phase_ = 0;
  int count_ = 0;
};

}  // namespace mw
