// Microbenchmarks of the speculation substrate's primitive operations:
// page writes (with and without a COW break), world fork and commit,
// message delivery decisions, unification, and one Jenkins–Traub
// iteration's worth of polynomial work. These are the constants behind
// every τ(overhead) term.
#include <benchmark/benchmark.h>

#include "core/world.hpp"
#include "msg/mailbox.hpp"
#include "num/jenkins_traub.hpp"
#include "num/workload.hpp"
#include "pagestore/page_table.hpp"
#include "prolog/solver.hpp"
#include "prolog/unify.hpp"
#include "worlds/spec_runtime.hpp"

namespace mw {
namespace {

void BM_PageWriteOwned(benchmark::State& state) {
  PageTable t(4096, 64);
  std::vector<std::uint8_t> data(64, 1);
  t.write(0, data);  // allocate once
  for (auto _ : state) {
    t.write(0, data);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_PageWriteOwned);

void BM_PageWriteCowBreak(benchmark::State& state) {
  PageTable parent(4096, 64);
  std::vector<std::uint8_t> data(64, 1);
  parent.write(0, data);
  for (auto _ : state) {
    state.PauseTiming();
    PageTable child = parent.fork();
    state.ResumeTiming();
    child.write(0, data);  // one 4 KiB copy
    benchmark::DoNotOptimize(child);
  }
}
BENCHMARK(BM_PageWriteCowBreak);

void BM_WorldFork(benchmark::State& state) {
  const auto resident = static_cast<std::size_t>(state.range(0));
  PageTable parent(4096, 2048);
  std::vector<std::uint8_t> one{1};
  for (std::size_t p = 0; p < resident; ++p) parent.write(p * 4096, one);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parent.fork());
  }
}
BENCHMARK(BM_WorldFork)->Arg(16)->Arg(160)->Arg(1600);

void BM_WorldCommit(benchmark::State& state) {
  PageTable parent(4096, 256);
  std::vector<std::uint8_t> one{1};
  for (std::size_t p = 0; p < 64; ++p) parent.write(p * 4096, one);
  for (auto _ : state) {
    state.PauseTiming();
    PageTable child = parent.fork();
    child.write(0, one);
    state.ResumeTiming();
    parent.adopt(std::move(child));
    benchmark::DoNotOptimize(parent);
  }
}
BENCHMARK(BM_WorldCommit);

void BM_MailboxPushPop(benchmark::State& state) {
  Mailbox mb;
  for (auto _ : state) {
    mb.push(Message::of_text("ping"));
    benchmark::DoNotOptimize(mb.pop());
  }
}
BENCHMARK(BM_MailboxPushPop);

void BM_Unify(benchmark::State& state) {
  using namespace prolog;
  TermPtr a = parse_term("f(X, g(Y, [1,2,3|T]), h(Z))");
  TermPtr b = parse_term("f(a, g(b, [1,2,3,4,5]), h(c))");
  for (auto _ : state) {
    Bindings env;
    Trail trail;
    benchmark::DoNotOptimize(unify(a, b, env, trail));
  }
}
BENCHMARK(BM_Unify);

void BM_PrologInference(benchmark::State& state) {
  using namespace prolog;
  Program p = Program::parse(
      "append([], L, L). append([H|T], L, [H|R]) :- append(T, L, R).");
  Solver s(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.solve("append([1,2,3,4], [5,6], X)"));
  }
}
BENCHMARK(BM_PrologInference);

void BM_SpecRuntimeMessageRoundTrip(benchmark::State& state) {
  // One certain-to-certain message through the DES: send + deliver +
  // handler dispatch.
  SpecRuntime rt;
  std::uint64_t handled = 0;
  LogicalId echo = rt.spawn_root(
      "echo", [&handled](ProcCtx&, const Message&) { ++handled; });
  for (auto _ : state) {
    rt.send_external_text(echo, "ping");
    rt.run();
  }
  benchmark::DoNotOptimize(handled);
}
BENCHMARK(BM_SpecRuntimeMessageRoundTrip);

void BM_SpecRuntimeSplitAndResolve(benchmark::State& state) {
  // The full Figure-2 cycle: spawn two alternatives, speculative message
  // splits the observer, winner syncs, cascade resolves everything.
  for (auto _ : state) {
    SpecRuntime rt;
    LogicalId obs = rt.spawn_root("obs", [](ProcCtx&, const Message&) {});
    LogicalId parent = rt.spawn_root("parent");
    rt.spawn_alternatives(
        parent,
        {AltSpec{"talker",
                 [obs](ProcCtx& ctx) {
                   ctx.send_text(obs, "m");
                   ctx.after(vt_ms(1), [](ProcCtx& c) { c.try_sync(); });
                 },
                 nullptr},
         AltSpec{"quiet", nullptr, nullptr}});
    rt.run();
    benchmark::DoNotOptimize(rt.stats().splits);
  }
}
BENCHMARK(BM_SpecRuntimeSplitAndResolve);

void BM_JenkinsTraubAttempt(benchmark::State& state) {
  Rng rng(5);
  WorkloadConfig cfg;
  cfg.degree = static_cast<int>(state.range(0));
  cfg.clusters = 1;
  cfg.cluster_gap = 0.05;
  PolyWorkload w = make_clustered_poly(rng, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jenkins_traub(w.poly));
  }
}
BENCHMARK(BM_JenkinsTraubAttempt)->Arg(8)->Arg(16);

}  // namespace
}  // namespace mw

BENCHMARK_MAIN();
