// FORK-SWEEP — the §2.3 fork-latency curve, before and after the
// persistent page map.
//
//   "The time required to fork grows linearly with the size of the address
//    space, because a fork copies the table of page references."
//
// This bench sweeps address-space size over {2^minpow … 2^maxpow} pages and
// measures, per size:
//
//   * flat_fork / flat_adopt   — a faithful replica of the pre-radix page
//     table (std::vector<PageRef> slot copy): the paper's measured shape;
//   * radix_fork / radix_adopt — the persistent PageMap (root share/swap);
//   * radix_split              — a full World::clone_with_predicates, i.e.
//     what a §2.4.2 receiver split actually costs through the whole stack.
//
// The headline claim this guards: radix fork/split/adopt latency is flat in
// address-space size (the flat baseline grows ~64x from 2^8 to 2^14 pages).
// With --check the binary exits non-zero if the radix fork or split latency
// at the largest swept size exceeds 4x the smallest — the CI bench-smoke
// job runs exactly that.
//
//   $ fork_latency_sweep [--minpow=8] [--maxpow=18] [--step=2] [--trials=5]
//                        [--min_ms=2] [--page_size=128] [--check]
//                        [--json=BENCH_fork_latency_sweep.json]
//                        [--trace=FILE] [--profile]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/world.hpp"
#include "pagestore/page_table.hpp"
#include "pred/predicate_set.hpp"
#include "proc/process_table.hpp"
#include "trace/trace_cli.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

// The pre-radix page table, kept as the measurement baseline: fork copies
// the whole slot vector (O(pages)), adopt moves it and clears the touched
// bits (O(pages)).
class FlatTable {
 public:
  FlatTable(std::size_t page_size, std::size_t num_pages)
      : page_size_(page_size), slots_(num_pages), touched_(num_pages, false) {}

  void write_page(std::size_t i) {
    PageRef& slot = slots_[i];
    if (!slot) {
      slot = make_page(page_size_);
    } else if (slot.use_count() > 1) {
      slot = std::make_shared<Page>(*slot);
    }
    touched_[i] = true;
  }

  FlatTable fork() const {
    FlatTable child(page_size_, slots_.size());
    child.slots_ = slots_;  // O(pages) reference copies
    return child;
  }

  void adopt(FlatTable&& child) {
    slots_ = std::move(child.slots_);
    std::fill(touched_.begin(), touched_.end(), false);
  }

 private:
  std::size_t page_size_;
  std::vector<PageRef> slots_;
  std::vector<bool> touched_;
};

// ns/op of `op`, batching iterations until the wall clock passes `min_ms`.
template <typename F>
double ns_per_op(F&& op, double min_ms) {
  op();  // warm up
  Stopwatch sw;
  std::size_t iters = 0;
  do {
    op();
    ++iters;
  } while (sw.elapsed_ms() < min_ms);
  return sw.elapsed_ms() * 1e6 / static_cast<double>(iters);
}

template <typename F>
double median_ns(int trials, double min_ms, F&& op) {
  std::vector<double> samples;
  for (int t = 0; t < trials; ++t) samples.push_back(ns_per_op(op, min_ms));
  return summarize(samples).median;
}

// Adopt is consuming, so it is timed over a pre-built batch of children;
// the batch size shrinks with the address-space size to bound memory.
template <typename Table>
double adopt_ns(Table& parent, std::size_t pages, int trials, double min_ms) {
  const std::size_t batch =
      std::max<std::size_t>(8, (std::size_t{1} << 21) / pages);
  std::vector<double> samples;
  for (int t = 0; t < trials; ++t) {
    std::vector<Table> kids;
    kids.reserve(batch);
    for (std::size_t k = 0; k < batch; ++k) kids.push_back(parent.fork());
    Stopwatch sw;
    for (auto& kid : kids) parent.adopt(std::move(kid));
    samples.push_back(sw.elapsed_ms() * 1e6 / static_cast<double>(batch));
    (void)min_ms;
  }
  return summarize(samples).median;
}

struct Row {
  std::size_t pages = 0;
  double flat_fork = 0, flat_adopt = 0;
  double radix_fork = 0, radix_adopt = 0, radix_split = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int minpow = static_cast<int>(cli.get_int("minpow", 8));
  const int maxpow = static_cast<int>(cli.get_int("maxpow", 18));
  const int step = static_cast<int>(cli.get_int("step", 2));
  const int trials = static_cast<int>(cli.get_int("trials", 5));
  const double min_ms = cli.get_double("min_ms", 2.0);
  const std::size_t page_size =
      static_cast<std::size_t>(cli.get_int("page_size", 128));
  const bool check = cli.has("check");
  const std::string json_path = cli.get("json", "");
  // Note: --trace/--profile record the sweep's own fork/split/adopt page
  // events; the timed loops then include the (small) emit cost.
  trace::TraceSession trace_session(cli);

  std::cout << "Fork/split/adopt latency vs address-space size ("
            << page_size << " B pages, fully resident; ns per op, median of "
            << trials << " trials)\n";
  TablePrinter table({"pages", "flat_fork", "flat_adopt", "radix_fork",
                      "radix_adopt", "radix_split"});

  std::vector<Row> rows;
  for (int pow = minpow; pow <= maxpow; pow += step) {
    const std::size_t pages = std::size_t{1} << pow;
    Row row;
    row.pages = pages;

    {  // Flat baseline: populate every page, then time fork and adopt.
      FlatTable flat(page_size, pages);
      for (std::size_t p = 0; p < pages; ++p) flat.write_page(p);
      row.flat_fork = median_ns(trials, min_ms, [&] {
        FlatTable child = flat.fork();
        (void)child;
      });
      row.flat_adopt = adopt_ns(flat, pages, trials, min_ms);
    }

    {  // Radix PageTable.
      PageTable radix(page_size, pages);
      for (std::size_t p = 0; p < pages; ++p) radix.write_page(p);
      row.radix_fork = median_ns(trials, min_ms, [&] {
        PageTable child = radix.fork();
        (void)child;
      });
      row.radix_adopt = adopt_ns(radix, pages, trials, min_ms);
    }

    {  // Whole-stack receiver split: clone a fully resident World.
      ProcessTable procs;
      World world(procs, page_size, pages, "sweep");
      for (std::size_t p = 0; p < pages; ++p)
        world.space().table().write_page(p);
      row.radix_split = median_ns(trials, min_ms, [&] {
        World copy = world.clone_with_predicates(PredicateSet{}, "s");
        (void)copy;
      });
    }

    table.add_row({TablePrinter::num(static_cast<std::int64_t>(pages)),
                   TablePrinter::num(row.flat_fork, 0),
                   TablePrinter::num(row.flat_adopt, 0),
                   TablePrinter::num(row.radix_fork, 0),
                   TablePrinter::num(row.radix_adopt, 0),
                   TablePrinter::num(row.radix_split, 0)});
    rows.push_back(row);
  }
  table.print(std::cout);
  std::cout << "(shape to verify: flat_fork/flat_adopt grow linearly with "
               "pages — the paper's §2.3 curve — while the radix columns "
               "stay flat; radix_split is a full World clone, so receiver "
               "splits inherit the O(1) cost)\n";

  double fork_ratio = 0.0, split_ratio = 0.0;
  bool pass = true;
  if (rows.size() >= 2) {
    const Row& lo = rows.front();
    const Row& hi = rows.back();
    fork_ratio = hi.radix_fork / lo.radix_fork;
    split_ratio = hi.radix_split / lo.radix_split;
    if (check) {
      pass = fork_ratio <= 4.0 && split_ratio <= 4.0;
      std::cout << "\ncheck: radix fork " << lo.pages << "->" << hi.pages
                << " pages ratio " << fork_ratio << ", split ratio "
                << split_ratio << " (limit 4.0): "
                << (pass ? "PASS" : "FAIL") << "\n";
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"fork_latency_sweep\",\n"
        << "  \"page_size\": " << page_size << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"pages\": " << r.pages
          << ", \"flat_fork_ns\": " << r.flat_fork
          << ", \"flat_adopt_ns\": " << r.flat_adopt
          << ", \"radix_fork_ns\": " << r.radix_fork
          << ", \"radix_adopt_ns\": " << r.radix_adopt
          << ", \"radix_split_ns\": " << r.radix_split << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"check\": {\"enabled\": " << (check ? "true" : "false")
        << ", \"fork_ratio\": " << fork_ratio
        << ", \"split_ratio\": " << split_ratio
        << ", \"limit\": 4.0, \"pass\": " << (pass ? "true" : "false")
        << "}\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  trace_session.finish(std::cout);
  return pass ? 0 : 1;
}
