// RECOVERY-MTTR — supervised checkpoint-restart: mean time to repair and
// work lost vs checkpoint interval.
//
// A supervised task (population phase touches a wide resident set, steady
// state rewrites a small working set) runs under seeded crash injection.
// The sweep compares restart-from-scratch (interval 0) against periodic
// incremental checkpoints at several intervals, measuring per config:
//
//   * elapsed        — virtual completion time including all recovery costs;
//   * work_lost      — re-executed virtual time across all restarts;
//   * mttr           — (detection + backoff + restore + re-execution) per
//                      failure;
//   * ckpt_overhead  — virtual time spent producing checkpoint images;
//   * avg full/delta image bytes — the incremental-checkpoint payoff.
//
// The same seed drives every config, so the first crash lands at the same
// step everywhere and the comparison is apples-to-apples. With --check the
// binary exits non-zero unless (a) crashes actually fired, (b) every
// checkpointed config loses strictly less work than scratch, and (c) delta
// images stay well under full images (write set, not resident set) — the
// CI bench-smoke job runs exactly that.
//
//   $ recovery_mttr [--steps=600] [--seed=17] [--prob=0.01] [--limit=4]
//                   [--check] [--json=BENCH_recovery_mttr.json]
//                   [--trace=FILE] [--profile]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "super/supervisor.hpp"
#include "trace/trace_cli.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

constexpr std::size_t kPageSize = 256;
constexpr std::size_t kNumPages = 256;
constexpr std::size_t kPopulatePages = 200;  // resident set after warm-up
constexpr std::size_t kWorkingSet = 8;       // steady-state write set

TaskSpec mttr_task(std::size_t steps) {
  TaskSpec t;
  t.name = "mttr";
  t.page_size = kPageSize;
  t.num_pages = kNumPages;
  t.total_steps = steps;
  t.step = [](SuperCtx& c) {
    const std::size_t s = c.step();
    c.space().store<std::uint32_t>(0, static_cast<std::uint32_t>(s + 1));
    if (s == 0) {
      // Warm-up burst: populate the resident set in one step so every full
      // image carries ~kPopulatePages pages while steady-state deltas carry
      // only the working set.
      for (std::size_t p = 1; p <= kPopulatePages; ++p)
        c.space().store<std::uint32_t>(kPageSize * p,
                                       static_cast<std::uint32_t>(p));
    }
    c.space().store<std::uint32_t>(kPageSize * (1 + s % kWorkingSet),
                                   static_cast<std::uint32_t>(s));
  };
  return t;
}

struct Row {
  VDuration interval = 0;
  SupervisedResult r;
  double avg_full_bytes() const {
    return r.checkpoints_full
               ? static_cast<double>(r.checkpoint_bytes_full) /
                     static_cast<double>(r.checkpoints_full)
               : 0.0;
  }
  double avg_delta_bytes() const {
    return r.checkpoints_delta
               ? static_cast<double>(r.checkpoint_bytes_delta) /
                     static_cast<double>(r.checkpoints_delta)
               : 0.0;
  }
};

double ms(VDuration d) { return static_cast<double>(d) / 1000.0; }

Row run_config(VDuration interval, std::size_t steps, std::uint64_t seed,
               double prob, std::size_t limit) {
  FaultInjector inj(seed);
  inj.arm("super.step",
          FaultSpec::with_probability(FaultKind::kCrashException, prob)
              .limit(limit));
  FaultScope scope(inj);
  CheckpointSchedule sched;
  sched.interval = interval;
  Supervisor sup(RestartPolicy{}, sched);
  Row row;
  row.interval = interval;
  row.r = sup.run(mttr_task(steps));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t steps = static_cast<std::size_t>(cli.get_int("steps", 600));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
  const double prob = cli.get_double("prob", 0.01);
  const std::size_t limit = static_cast<std::size_t>(cli.get_int("limit", 4));
  const bool check = cli.has("check");
  const std::string json_path = cli.get("json", "");
  trace::TraceSession trace_session(cli);

  const std::vector<VDuration> intervals{0, vt_ms(1), vt_ms(2), vt_ms(5),
                                         vt_ms(10)};

  std::cout << "Supervised recovery: MTTR and work lost vs checkpoint "
               "interval (" << steps << " steps x "
            << ms(TaskSpec{}.step_cost) << " ms, crash p=" << prob
            << " limit " << limit << ", seed " << seed << ")\n";
  TablePrinter table({"interval_ms", "elapsed_ms", "crashes", "restarts",
                      "work_lost_ms", "mttr_ms", "ckpt_ms", "fulls", "deltas",
                      "full_B", "delta_B"});

  std::vector<Row> rows;
  for (const VDuration interval : intervals) {
    Row row = run_config(interval, steps, seed, prob, limit);
    const SupervisedResult& r = row.r;
    table.add_row(
        {interval == 0 ? "scratch" : TablePrinter::num(ms(interval), 0),
         TablePrinter::num(ms(r.elapsed), 2),
         TablePrinter::num(static_cast<std::int64_t>(r.failures_crash)),
         TablePrinter::num(static_cast<std::int64_t>(r.restarts)),
         TablePrinter::num(ms(r.work_lost), 2),
         TablePrinter::num(ms(r.mttr()), 2),
         TablePrinter::num(ms(r.checkpoint_overhead), 2),
         TablePrinter::num(static_cast<std::int64_t>(r.checkpoints_full)),
         TablePrinter::num(static_cast<std::int64_t>(r.checkpoints_delta)),
         TablePrinter::num(row.avg_full_bytes(), 0),
         TablePrinter::num(row.avg_delta_bytes(), 0)});
    rows.push_back(row);
  }
  table.print(std::cout);
  std::cout << "(shape to verify: work_lost and mttr shrink as the interval "
               "tightens, at the price of ckpt overhead; delta images stay "
               "near the " << kWorkingSet << "-page working set while full "
               "images carry the ~" << kPopulatePages + 1
            << "-page resident set)\n";

  // --check: the claims the sweep guards.
  bool pass = true;
  auto fail = [&pass, check](const std::string& why) {
    if (check) std::cout << "check FAIL: " << why << "\n";
    pass = false;
  };
  const Row& scratch = rows.front();
  if (scratch.r.failures_crash == 0)
    fail("no crash fired; the sweep is vacuous");
  for (const Row& row : rows) {
    if (!row.r.ok) fail("config did not complete");
    if (row.interval == 0) continue;
    if (row.r.failures_crash == 0) fail("checkpointed config saw no crash");
    if (row.r.work_lost >= scratch.r.work_lost)
      fail("interval " + std::to_string(ms(row.interval)) +
           " ms did not beat scratch on work lost");
    if (row.r.checkpoints_delta > 0 &&
        row.avg_delta_bytes() * 4.0 > row.avg_full_bytes())
      fail("delta images not well under full images at interval " +
           std::to_string(ms(row.interval)) + " ms");
  }
  if (check)
    std::cout << "\ncheck: " << (pass ? "PASS" : "FAIL") << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"recovery_mttr\",\n  \"steps\": " << steps
        << ",\n  \"seed\": " << seed << ",\n  \"crash_prob\": " << prob
        << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      const SupervisedResult& r = row.r;
      out << "    {\"interval_ms\": " << ms(row.interval)
          << ", \"elapsed_ms\": " << ms(r.elapsed)
          << ", \"crashes\": " << r.failures_crash
          << ", \"restarts\": " << r.restarts
          << ", \"work_lost_ms\": " << ms(r.work_lost)
          << ", \"mttr_ms\": " << ms(r.mttr())
          << ", \"ckpt_overhead_ms\": " << ms(r.checkpoint_overhead)
          << ", \"fulls\": " << r.checkpoints_full
          << ", \"deltas\": " << r.checkpoints_delta
          << ", \"avg_full_bytes\": " << row.avg_full_bytes()
          << ", \"avg_delta_bytes\": " << row.avg_delta_bytes() << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"check\": {\"enabled\": " << (check ? "true" : "false")
        << ", \"pass\": " << (pass ? "true" : "false") << "}\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  trace_session.finish(std::cout);
  return (check && !pass) ? 1 : 0;
}
