// APP-PROLOG — §4.2's qualitative claim made quantitative: OR-parallel
// committed-choice execution against the sequential engine, across
// programs whose clause order is favourable or adversarial, and across
// processor counts and spawn depths (the granularity knob).
//
//   $ prolog_or_parallel
#include <iostream>

#include "prolog/or_parallel.hpp"
#include "util/table.hpp"

using namespace mw;
using namespace mw::prolog;

namespace {

RuntimeConfig virtual_config(std::size_t procs) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = procs;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;
  return cfg;
}

std::string queens_program(int n) {
  std::string board = "[1";
  for (int i = 2; i <= n; ++i) board += "," + std::to_string(i);
  board += "]";
  return R"(
    select(X, [X|T], T).
    select(X, [H|T], [H|R]) :- select(X, T, R).
    perm([], []).
    perm(L, [H|T]) :- select(H, L, R), perm(R, T).
    safe([]).
    safe([Q|Qs]) :- safe(Qs, Q, 1), safe(Qs).
    safe([], _, _).
    safe([Q|Qs], Q0, D) :-
      Q =\= Q0 + D, Q =\= Q0 - D, D1 is D + 1, safe(Qs, Q0, D1).
    queens(Qs) :- perm()" + board + R"(, Qs), safe(Qs).
  )";
}

// Adversarial clause order: a deep dead-end branch listed before the
// answer. Sequential Prolog must exhaust it; OR-parallel explores both.
const char* kDeadFirst = R"(
  n(z).
  n(s(X)) :- n(X).
  deep(X) :- n(X), impossible(X).
  impossible(never_matches).
  answer(X) :- deep(X).
  answer(found).
)";

struct Case {
  std::string name;
  std::string program;
  std::string query;
  std::uint64_t budget;
};

}  // namespace

int main() {
  const std::vector<Case> cases = {
      {"queens-5", queens_program(5), "queens(Qs)", 0},
      {"queens-6", queens_program(6), "queens(Qs)", 0},
      {"dead-branch-first", kDeadFirst, "answer(X)", 3000},
  };

  std::cout << "OR-parallel committed choice vs sequential SLD "
               "(ticks = inferences on the critical path)\n";
  TablePrinter table({"program", "procs", "depth", "seq_inf", "par_ticks",
                      "speedup", "total_inf", "worlds"});
  for (const Case& c : cases) {
    Program prog = Program::parse(c.program);
    for (std::size_t procs : {1u, 2u, 4u, 8u}) {
      Runtime rt(virtual_config(procs));
      OrParallelConfig ocfg;
      ocfg.spawn_depth = 2;
      ocfg.max_inferences = c.budget;
      auto r = solve_or_parallel(rt, prog, c.query, ocfg);
      table.add_row(
          {c.name, TablePrinter::num(static_cast<std::int64_t>(procs)),
           TablePrinter::num(static_cast<std::int64_t>(ocfg.spawn_depth)),
           TablePrinter::num(
               static_cast<std::int64_t>(r.sequential_inferences)),
           r.success ? TablePrinter::num(static_cast<std::int64_t>(r.elapsed))
                     : "fail",
           r.success && r.elapsed > 0
               ? TablePrinter::num(
                     static_cast<double>(r.sequential_inferences) /
                     static_cast<double>(r.elapsed))
               : "-",
           TablePrinter::num(static_cast<std::int64_t>(r.total_inferences)),
           TablePrinter::num(static_cast<std::int64_t>(r.worlds_spawned))});
    }
  }
  table.print(std::cout);

  std::cout << "\nGranularity ablation (queens-6, 4 procs): spawn depth vs "
               "response and throughput\n";
  TablePrinter depth_table({"depth", "par_ticks", "total_inf", "worlds"});
  Program q6 = Program::parse(queens_program(6));
  for (int depth : {1, 2, 3, 4}) {
    Runtime rt(virtual_config(4));
    OrParallelConfig ocfg;
    ocfg.spawn_depth = depth;
    auto r = solve_or_parallel(rt, q6, "queens(Qs)", ocfg);
    depth_table.add_row(
        {TablePrinter::num(static_cast<std::int64_t>(depth)),
         r.success ? TablePrinter::num(static_cast<std::int64_t>(r.elapsed))
                   : "fail",
         TablePrinter::num(static_cast<std::int64_t>(r.total_inferences)),
         TablePrinter::num(static_cast<std::int64_t>(r.worlds_spawned))});
  }
  depth_table.print(std::cout);
  std::cout << "\nShape to verify: speedup >= 1 grows with procs on "
               "adversarial clause order (dead-branch-first gains most); "
               "deeper spawning buys response time at the cost of total "
               "work — the paper's granularity trade (§4.2).\n";
  return 0;
}
