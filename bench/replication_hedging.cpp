// §5 extension bench: "Transparent replication can easily be combined with
// the use of parallel execution of several alternatives for increases in
// performance, reliability, or both."
//
// Performance: first-wins replication hedges execution-time jitter — the
// response time is the minimum over k replica draws, so mean and tail
// collapse as k grows. Reliability: majority voting masks value faults at
// a quantified replica cost.
//
//   $ replication_hedging [--trials=200]
#include <iostream>

#include "core/replicate.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace mw;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 200));

  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 16;
  cfg.cost = CostModel::free();
  cfg.page_size = 64;
  cfg.num_pages = 32;

  std::cout << "A. Latency hedging: k first-wins replicas of a jittery "
               "task (exponential service time, mean 10 ms)\n";
  TablePrinter hedging({"replicas", "mean_ms", "p90_ms", "p99_ms",
                        "work_ms (throughput price)"});
  for (int k : {1, 2, 4, 8}) {
    std::vector<double> response;
    double total_work = 0;
    for (int t = 0; t < trials; ++t) {
      cfg.seed = static_cast<std::uint64_t>(t) * 7919 + 13;
      Runtime rt(cfg);
      World root = rt.make_root();
      double work_this_trial = 0;
      auto r = replicate<int>(
          rt, root,
          [&work_this_trial](AltContext& ctx, int) {
            const double ms =
                ctx.rng().next_exponential(10.0);  // service jitter
            work_this_trial += ms;
            ctx.work(vt_us(static_cast<std::int64_t>(ms * 1000)));
            return 1;
          },
          k);
      if (r.value) response.push_back(vt_to_ms(r.outcome.elapsed));
      total_work += work_this_trial;
    }
    Summary s = summarize(response);
    hedging.add_row({TablePrinter::num(static_cast<std::int64_t>(k)),
                     TablePrinter::num(s.mean), TablePrinter::num(s.p90),
                     TablePrinter::num(s.p99),
                     TablePrinter::num(total_work / trials)});
  }
  hedging.print(std::cout);
  std::cout << "(shape: mean ~ 10/k ms — the min of k exponentials; tail "
               "collapses even faster; work grows ~k — the throughput "
               "price §1 accepts)\n\n";

  std::cout << "B. Reliability: majority voting over replicas with "
               "fault probability 0.2 per replica\n";
  TablePrinter voting({"replicas", "correct_%", "undetected_wrong_%",
                       "no_majority_%"});
  for (int k : {1, 3, 5, 7}) {
    int correct = 0, wrong = 0, none = 0;
    for (int t = 0; t < trials; ++t) {
      cfg.seed = static_cast<std::uint64_t>(t) * 104729 + 7;
      Runtime rt(cfg);
      World root = rt.make_root();
      ReplicateOptions opts;
      opts.mode = k == 1 ? ReplicaMode::kFirstWins : ReplicaMode::kMajority;
      auto r = replicate<int>(
          rt, root,
          [](AltContext& ctx, int) {
            ctx.work(1);
            // A value-corrupting fault with probability 0.2.
            return ctx.rng().next_bool(0.2) ? 666 : 42;
          },
          k, opts);
      if (!r.value) {
        ++none;
      } else if (*r.value == 42) {
        ++correct;
      } else {
        ++wrong;
      }
    }
    auto pct = [&](int n) {
      return TablePrinter::num(100.0 * n / trials, 1);
    };
    voting.add_row({TablePrinter::num(static_cast<std::int64_t>(k)),
                    pct(correct), pct(wrong), pct(none)});
  }
  voting.print(std::cout);
  std::cout << "(shape: undetected wrong answers fall rapidly with k; "
               "no-majority rounds are *detected* failures, the safe "
               "outcome)\n";
  return 0;
}
