// FAULT-RECOVERY — response time of a recovery block as the software fault
// rate rises, concurrent Multiple Worlds execution vs classic standby
// spares (§4.1, §5):
//
//   "recovery costs nothing extra because some alternative is already
//    pursuing the recovery strategy"
//
// Each alternate carries a named fault point ("rb.<block>.<alt>"); a seeded
// FaultInjector fails it with probability p. Sequential execution pays for
// every failed spare before trying the next; concurrent execution only pays
// when *every* alternate fails. Both strategies replay the identical fault
// schedule (same seed, same per-point streams), so the comparison isolates
// the execution strategy.
//
//   $ fault_recovery [--trials=200] [--seed=1]
#include <iostream>
#include <vector>

#include "core/runtime.hpp"
#include "fault/fault.hpp"
#include "rb/recovery_block.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

RecoveryBlock make_block() {
  RecoveryBlock rb("fr", [](const World&) { return true; });
  // Primary is fastest; each spare is a little slower — the classic
  // standby-spares shape. The fault point sits *after* the work: a faulty
  // alternate is only found out at its acceptance test, when its whole
  // computation has already been paid for. That is the case the paper's
  // concurrent execution is built for.
  rb.ensure_by("primary",
               [](AltContext& ctx) {
                 ctx.work(vt_ms(20));
                 ctx.fault_point("fr.primary");
               })
      .ensure_by("spare1",
                 [](AltContext& ctx) {
                   ctx.work(vt_ms(24));
                   ctx.fault_point("fr.spare1");
                 })
      .ensure_by("spare2", [](AltContext& ctx) {
        ctx.work(vt_ms(28));
        ctx.fault_point("fr.spare2");
      });
  return rb;
}

void arm_alternates(FaultInjector& inj, double p) {
  if (p <= 0.0) return;
  for (const char* alt : {"primary", "spare1", "spare2"}) {
    inj.arm(std::string("fr.") + alt,
            FaultSpec::with_probability(FaultKind::kFailAlternative, p));
  }
}

struct Sweep {
  double mean_ms = 0;
  double success_rate = 0;
};

Sweep run(bool concurrent, double p, int trials, std::uint64_t seed) {
  FaultInjector inj(seed);
  arm_alternates(inj, p);
  FaultScope scope(inj);

  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 3;
  cfg.cost = CostModel::calibrated_3b2();
  Runtime rt(cfg);
  const RecoveryBlock rb = make_block();

  std::vector<double> ms;
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    World root = rt.make_root("fr");
    const RbResult r =
        concurrent ? rb.run_concurrent(rt, root) : rb.run_sequential(rt, root);
    ms.push_back(vt_to_ms(r.elapsed));
    if (r.succeeded) ++ok;
  }
  return {summarize(ms).mean, static_cast<double>(ok) / trials};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 200));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  std::cout << "Recovery-block response time vs alternate fault rate\n"
            << "(virtual 3B2 model, 3 alternates, " << trials
            << " trials, seed " << seed << ")\n";
  TablePrinter t({"fault_p", "seq_ms", "conc_ms", "seq_ok", "conc_ok",
                  "seq/conc"});
  for (double p : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    // Fresh injectors with the same seed: both strategies replay the
    // identical per-point fault schedule.
    const Sweep seq = run(/*concurrent=*/false, p, trials, seed);
    const Sweep conc = run(/*concurrent=*/true, p, trials, seed);
    t.add_row({TablePrinter::num(p, 2), TablePrinter::num(seq.mean_ms, 2),
               TablePrinter::num(conc.mean_ms, 2),
               TablePrinter::num(seq.success_rate, 2),
               TablePrinter::num(conc.success_rate, 2),
               TablePrinter::num(
                   conc.mean_ms > 0 ? seq.mean_ms / conc.mean_ms : 0.0, 2)});
  }
  t.print(std::cout);
  std::cout << "(shape: sequential response time grows with p — failed "
               "spares are paid for serially; concurrent stays near the "
               "slowest-surviving-alternate cost until every alternate "
               "fails)\n";
  return 0;
}
