// TAB1 — reproduces Table I: "Parallel Rootfinder".
//
// The paper ran the complex Jenkins–Traub zero finder with several random
// starting angles on a two-processor Ardent Titan, applying 1..6 processes.
// Columns: procs (alternatives), max/min/avg (sequential per-angle CPU
// time), fails (angle choices that failed to find all roots), par
// (wall-clock of the parallel race, overheads included).
//
// Substitution (DESIGN.md): the Titan's inputs are unpublished, so the
// workload is the documented clustered-root family; times are virtual
// ticks calibrated to land in the paper's ~4-second range. The shape to
// check against the paper: par tracks min + overhead once procs >= 2, par
// beats avg (speculation wins), and par for procs > processors grows only
// via queueing.
//
//   $ table1_rootfinder [--seed=8] [--procs=2] [--maxn=6] [--ms-per-iter=7]
#include <algorithm>
#include <iostream>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "model/perf_model.hpp"
#include "num/jenkins_traub.hpp"
#include "num/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mw;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 8));
  const auto processors = static_cast<std::size_t>(cli.get_int("procs", 2));
  const int maxn = static_cast<int>(cli.get_int("maxn", 6));
  const VDuration ms_per_iter = vt_ms(cli.get_int("ms-per-iter", 7));

  Rng rng(seed);
  PolyWorkload w = make_clustered_poly(rng);

  // The angle pool: deterministic "random choices" shared across rows, so
  // row n races the first n angles — like giving the Titan more processes.
  Rng angle_rng = rng.split(99);
  std::vector<double> angles;
  for (int i = 0; i < maxn; ++i)
    angles.push_back(angle_rng.next_double_in(0.0, 360.0));

  // Sequential per-angle times (one attempt run to completion each).
  struct Attempt {
    bool ok = false;
    VDuration time = 0;
  };
  std::vector<Attempt> attempts;
  for (double a : angles) {
    JtConfig jt;
    jt.start_angle_deg = a;
    RootResult r = jenkins_traub(w.poly, jt);
    attempts.push_back(
        {r.converged, static_cast<VDuration>(r.iterations) * ms_per_iter});
  }

  TablePrinter table({"procs", "max", "min", "avg", "fails", "par"});
  for (int n = 1; n <= maxn; ++n) {
    double mx = 0, mn = 1e18, sum = 0;
    int fails = 0;
    for (int i = 0; i < n; ++i) {
      const double sec = vt_to_sec(attempts[static_cast<std::size_t>(i)].time);
      mx = std::max(mx, sec);
      mn = std::min(mn, sec);
      sum += sec;
      if (!attempts[static_cast<std::size_t>(i)].ok) ++fails;
    }

    // The parallel race: n alternatives on `processors` virtual CPUs with
    // the calibrated HP overhead model.
    RuntimeConfig cfg;
    cfg.backend = AltBackend::kVirtual;
    cfg.processors = processors;
    // The Titan ran a timesharing UNIX: processes beyond the processor
    // count slow everyone down — the effect behind the paper's 8.61 s row.
    cfg.sched = RuntimeConfig::Sched::kProcessorSharing;
    cfg.cost = CostModel::calibrated_hp();
    Runtime rt(cfg);
    World root = rt.make_root("table1");
    // A realistically-sized parent: ~32 resident pages of coefficients.
    for (int p = 0; p < 32; ++p)
      root.space().store<double>(static_cast<std::uint64_t>(p) * 4096, 1.0);

    std::vector<Alternative> alts;
    for (int i = 0; i < n; ++i) {
      const double angle = angles[static_cast<std::size_t>(i)];
      alts.push_back(Alternative{
          "angle" + std::to_string(i), nullptr,
          [&, angle](AltContext& ctx) {
            JtConfig jt;
            jt.start_angle_deg = angle;
            RootResult r = jenkins_traub(w.poly, jt);
            ctx.work(static_cast<VDuration>(r.iterations) * ms_per_iter);
            if (!r.converged) ctx.fail(r.note);
          },
          nullptr});
    }
    AltOutcome out = run_alternatives(rt, root, alts);

    table.add_row({TablePrinter::num(static_cast<std::int64_t>(n)),
                   TablePrinter::num(mx), TablePrinter::num(mn),
                   TablePrinter::num(sum / n),
                   TablePrinter::num(static_cast<std::int64_t>(fails)),
                   out.failed ? "fail" : TablePrinter::num(vt_to_sec(out.elapsed))});
  }

  std::cout << "Table I: Parallel Rootfinder (degree-" << w.poly.degree()
            << " polynomial, " << processors
            << " virtual processors, seed " << seed << ")\n";
  table.print(std::cout);
  std::cout << "\nAll times in (virtual) seconds. Paper shape to verify: "
               "par ~= min + overhead while procs <= processors (the\n"
               "speculative race beats avg); beyond that, timesharing "
               "slows every process down (the paper's 8.61 s at procs=5\n"
               "on 2 CPUs: \"performance in the 4 process case would be "
               "much better if there had been more than two processors\").\n";

  // Aggregate over a domain of inputs, as §3.3's domain analysis asks.
  // The angle pool only holds maxn entries, so race at most that many.
  const int domain_k = std::min(4, maxn);
  std::vector<std::vector<double>> times;
  std::vector<double> overheads;
  Rng batch_rng(seed + 1);
  for (int trial = 0; trial < 8; ++trial) {
    Rng sub = batch_rng.split(static_cast<std::uint64_t>(trial) + 1);
    PolyWorkload bw = make_clustered_poly(sub);
    std::vector<double> row;
    for (int i = 0; i < domain_k; ++i) {
      JtConfig jt;
      jt.start_angle_deg = angles[static_cast<std::size_t>(i)];
      RootResult r = jenkins_traub(bw.poly, jt);
      // A failed angle is a very long effective time (retry elsewhere).
      row.push_back(r.converged
                        ? vt_to_sec(static_cast<VDuration>(r.iterations) *
                                    ms_per_iter)
                        : 60.0);
    }
    times.push_back(std::move(row));
    overheads.push_back(0.2);  // ~fork+commit+elimination at this scale
  }
  DomainStats d = domain_analysis(times, overheads);
  std::cout << "\nDomain analysis over 8 random polynomials, " << domain_k
            << " angles (PI = tau(Cmean)/(tau(Cbest)+tau(overhead))):\n";
  std::cout << "  mean PI " << TablePrinter::num(d.mean_pi) << ", min "
            << TablePrinter::num(d.min_pi) << ", max "
            << TablePrinter::num(d.max_pi) << ", inputs improved "
            << TablePrinter::num(d.fraction_improved * 100.0, 0) << "%\n";
  return 0;
}
