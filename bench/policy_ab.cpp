// POLICY-AB — static vs adaptive speculation policy (core/spec_policy.hpp)
// across three workload shapes, on the two surfaces the policy engine
// drives hardest:
//
//   * the kPool race path: k-way races where exactly one scripted position
//     wins fast and the losers burn CPU until cancelled. Base priorities
//     are equal — the static policy runs alternatives in submission order,
//     the adaptive policy reorders by learned per-position win rate (with
//     the epsilon-explore floor), so the predicted winner starts first and
//     the losers are revoked unrun.
//   * the or-parallel Prolog driver (deterministic kPool): a 4-clause
//     choice point whose winning clause is scripted per query; the
//     adaptive policy both reorders clause tasks and holds the
//     splitting-strategy veto.
//
// Shapes: `uniform` (winner position uniformly random — no signal; the
// modes should tie), `skewed` (one position wins 85% of the time — the
// adaptive policy's design case), `bursty` (the winner migrates every
// `burst` races — the win-rate decay keeps history cheap to outvote).
//
// With --check the binary exits non-zero unless the adaptive policy
// dominates-or-ties static on BOTH the wasted-work ratio (traced
// SpecProfile) and the p99 latency, per surface, on all three shapes —
// ties are banded (`tie_wasted`/`tie_p99` factors plus a small absolute
// slack) because "no signal to exploit" must not fail on noise.
//
//   $ policy_ab [--races=200] [--queries=120] [--alts=4] [--work_us=4]
//               [--spins=40] [--burst=60] [--reps=3] [--seed=1]
//               [--tie_wasted=1.10] [--tie_p99=1.25] [--check]
//               [--json=BENCH_policy_ab.json]
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "core/spec_policy.hpp"
#include "prolog/or_parallel.hpp"
#include "trace/spec_profile.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

enum class Shape { kUniform, kSkewed, kBursty };

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kUniform: return "uniform";
    case Shape::kSkewed: return "skewed";
    case Shape::kBursty: return "bursty";
  }
  return "?";
}

/// The scripted winner position for race/query `r`. Both modes of a cell
/// draw from identically seeded streams, so they see the same sequence.
std::size_t winner_at(Shape shape, std::size_t r, std::size_t k,
                      std::size_t burst, Rng& rng) {
  switch (shape) {
    case Shape::kUniform:
      return static_cast<std::size_t>(rng.next_below(k));
    case Shape::kSkewed:
      // One hot position — deliberately NOT position 0, which submission
      // order would favour anyway.
      if (rng.next_double() < 0.85) return (k >= 3) ? 2 : k - 1;
      return static_cast<std::size_t>(rng.next_below(k));
    case Shape::kBursty:
      rng.next_below(k);  // keep the streams aligned across shapes
      return (r / burst) % k;
  }
  return 0;
}

// One k-way race with the winner at `winner`: that position computes
// briefly and syncs; the others grind compute/checkpoint slices until the
// winner's cancellation lands (with a self-abort bound so a lost
// cancellation cannot wedge the bench). All base priorities are equal —
// the policy engine is the only thing that can reorder.
std::vector<Alternative> make_race(std::size_t alts, std::size_t winner,
                                   VDuration work_us, int spins) {
  std::vector<Alternative> race;
  race.reserve(alts);
  for (std::size_t i = 0; i < alts; ++i) {
    if (i == winner) {
      race.push_back(Alternative{
          "win" + std::to_string(i), nullptr,
          [work_us](AltContext& ctx) {
            ctx.compute(work_us);
            const std::uint64_t v = ctx.index();
            ctx.space().store(0, v);
            std::uint8_t buf[sizeof(v)];
            std::memcpy(buf, &v, sizeof(v));
            ctx.set_result(std::span<const std::uint8_t>(buf, sizeof(v)));
          },
          nullptr, /*priority=*/0.0});
    } else {
      race.push_back(Alternative{
          "lose" + std::to_string(i), nullptr,
          [work_us, spins](AltContext& ctx) {
            for (int spin = 0; spin < spins; ++spin) {
              ctx.compute(work_us);
              ctx.checkpoint();  // cancellation lands here
            }
            ctx.fail("never won");
          },
          nullptr, /*priority=*/0.0});
    }
  }
  return race;
}

struct Cell {
  double wasted = 0;  // SpecProfile wasted-work ratio over the cell
  // Latency order statistics. Race cells: wall microseconds per race.
  // Prolog cells: total inferences to the first answer per query — the
  // deterministic driver executes sequentially, so inferences ARE the
  // query's latency, in inference units, with zero wall-clock noise.
  double p50 = 0;
  double p99 = 0;
  std::uint64_t explores = 0;       // policy trace: floor/epsilon boosts
  std::uint64_t width_updates = 0;  // policy trace: admission-width moves
  std::uint64_t vetoes = 0;         // prolog only: splits refused
};

PolicyConfig bench_policy(PolicyMode mode) {
  PolicyConfig pc;
  pc.mode = mode;
  pc.win_window = 8;  // fast decay: bursty winners migrate every `burst`
  // Exploration budget: with k=4 the floor boosts ~3/explore_window of the
  // races; 64 keeps it near the 5% epsilon instead of drowning the ranking.
  pc.explore_window = 64;
  return pc;
}

// One rep = a fresh Runtime learning from scratch over the full race
// sequence. Reps exist for noise robustness only: the cell's p50/p99 are
// the elementwise minima across reps, the standard defense against the
// multi-millisecond scheduling spikes a shared CI core injects into ~1% of
// wall-clock samples (which would otherwise own a 200-sample p99).
Cell run_race_cell(PolicyMode mode, Shape shape, std::size_t races,
                   std::size_t alts, VDuration work_us, int spins,
                   std::size_t burst, std::uint64_t seed, std::size_t reps) {
  Cell c;
  double wasted_sum = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    RuntimeConfig cfg;
    cfg.backend = AltBackend::kPool;
    cfg.page_size = 256;
    cfg.num_pages = 16;
    cfg.seed = seed;
    cfg.pool.workers = 2;
    cfg.pool.max_live_worlds = 8;
    cfg.policy = bench_policy(mode);
    Runtime rt(cfg);
    rt.scheduler();  // exclude worker spawn from the first race's latency

    trace::reset();
    trace::Scope traced(true);
    World parent = rt.make_root("ab");
    AltOptions opts;
    opts.reap_deadline = 2'000'000;
    Rng script(seed ^ 0x5ab5ab);  // same winner sequence every rep and mode
    std::vector<double> lat;
    lat.reserve(races);
    for (std::size_t r = 0; r < races; ++r) {
      const std::size_t w = winner_at(shape, r, alts, burst, script);
      const std::vector<Alternative> race = make_race(alts, w, work_us, spins);
      Stopwatch sw;
      (void)run_alternatives(rt, parent, race, opts);
      lat.push_back(sw.elapsed_ms() * 1000.0);
    }
    const trace::SpecProfile prof =
        trace::build_spec_profile(trace::collect(), trace::dropped());
    const Summary s = summarize(lat);
    wasted_sum += prof.wasted_ratio();
    c.p50 = rep == 0 ? s.median : std::min(c.p50, s.median);
    c.p99 = rep == 0 ? s.p99 : std::min(c.p99, s.p99);
    c.explores = prof.policy_explores;
    c.width_updates = prof.policy_width_updates;
  }
  c.wasted = wasted_sum / static_cast<double>(reps);
  return c;
}

// The or-parallel surface: route/2 has one clause per fact table; only the
// table holding the query key succeeds, so the winning *clause position*
// is key / facts_per. Deterministic kPool, zero steal probability: task
// order is pure priority order — exactly what the policy reorders.
std::string route_program(std::size_t tables, std::size_t facts_per) {
  std::string p;
  for (std::size_t t = 0; t < tables; ++t) {
    p += "route(X, Y) :- tab" + std::to_string(t) + "(X, Y).\n";
  }
  for (std::size_t t = 0; t < tables; ++t) {
    for (std::size_t f = 0; f < facts_per; ++f) {
      const std::size_t key = t * facts_per + f;
      p += "tab" + std::to_string(t) + "(" + std::to_string(key) + ", " +
           std::to_string(1000 + key) + ").\n";
    }
  }
  return p;
}

Cell run_prolog_cell(PolicyMode mode, Shape shape, std::size_t queries,
                     std::size_t tables, std::size_t facts_per,
                     std::size_t burst, std::uint64_t seed) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kPool;
  cfg.page_size = 64;
  cfg.num_pages = 32;
  cfg.seed = seed;
  cfg.pool.deterministic_seed = seed ^ 0xde7;
  cfg.pool.deterministic_steal_prob = 0.0;
  cfg.pool.max_live_worlds = 8;
  cfg.policy = bench_policy(mode);
  Runtime rt(cfg);

  const prolog::Program prog = prolog::Program::parse(
      route_program(tables, facts_per));
  prolog::OrParallelConfig ocfg;
  ocfg.spawn_depth = 1;

  trace::reset();
  trace::Scope traced(true);
  Rng script(seed ^ 0x5ab5ab);
  std::vector<double> lat;
  lat.reserve(queries);
  std::uint64_t vetoes = 0;
  std::uint64_t total_inf = 0;
  std::uint64_t seq_inf = 0;
  for (std::size_t q = 0; q < queries; ++q) {
    const std::size_t t = winner_at(shape, q, tables, burst, script);
    const std::size_t key =
        t * facts_per + static_cast<std::size_t>(script.next_below(facts_per));
    const std::string query = "route(" + std::to_string(key) + ", Y)";
    const prolog::OrParallelResult r =
        prolog::solve_or_parallel(rt, prog, query, ocfg);
    // Deterministic latency: the det driver executes one task at a time,
    // so total inferences (losers included) IS the time-to-first-answer.
    lat.push_back(static_cast<double>(r.total_inferences));
    total_inf += r.total_inferences;
    seq_inf += r.sequential_inferences;
    vetoes += r.splits_vetoed;
    if (!r.success) {
      std::cerr << "query failed: " << query << "\n";
      std::exit(2);
    }
  }
  const trace::SpecProfile prof =
      trace::build_spec_profile(trace::collect(), trace::dropped());
  const Summary s = summarize(lat);
  Cell c;
  // Deterministic wasted-work ratio: inferences the speculative engine
  // executed beyond what the sequential engine pays for the same answers.
  // (A well-ordered adaptive run can beat sequential — the winning clause
  // runs without scanning the clauses before it — which clamps to 0.)
  c.wasted =
      total_inf <= seq_inf
          ? 0.0
          : static_cast<double>(total_inf - seq_inf) /
                static_cast<double>(total_inf);
  c.p50 = s.median;
  c.p99 = s.p99;
  c.explores = prof.policy_explores;
  c.width_updates = prof.policy_width_updates;
  c.vetoes = vetoes;
  return c;
}

struct ShapeResult {
  Shape shape;
  Cell race_static, race_adaptive;
  Cell pl_static, pl_adaptive;
};

struct CheckLine {
  std::string what;
  double adaptive = 0, standard = 0, bound = 0;
  bool ok = false;
};

CheckLine check_metric(const std::string& what, double adaptive,
                       double standard, double factor, double slack) {
  CheckLine l;
  l.what = what;
  l.adaptive = adaptive;
  l.standard = standard;
  l.bound = standard * factor + slack;
  l.ok = adaptive <= l.bound;
  return l;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t races = static_cast<std::size_t>(cli.get_int("races", 200));
  const std::size_t queries =
      static_cast<std::size_t>(cli.get_int("queries", 120));
  const std::size_t alts = static_cast<std::size_t>(cli.get_int("alts", 4));
  const VDuration work_us = cli.get_int("work_us", 4);
  const int spins = static_cast<int>(cli.get_int("spins", 40));
  const std::size_t burst = static_cast<std::size_t>(cli.get_int("burst", 60));
  const std::size_t reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const double tie_wasted = cli.get_double("tie_wasted", 1.10);
  const double tie_p99 = cli.get_double("tie_p99", 1.25);
  const bool check = cli.has("check");
  const std::string json_path = cli.get("json", "");

  const std::size_t tables = alts;
  const std::size_t facts_per = 24;
  const std::size_t pl_burst = std::max<std::size_t>(1, burst / 2);

  std::cout << "Static vs adaptive speculation policy (core/spec_policy)\n"
            << "race surface: " << alts << "-way kPool races x " << races
            << ", winner " << work_us << " us, losers " << spins
            << " spins; prolog surface: " << tables << "-clause choice x "
            << queries << " queries\n";

  std::vector<ShapeResult> results;
  TablePrinter table({"shape", "surface", "st_wasted", "ad_wasted", "st_p99",
                      "ad_p99", "explores", "vetoes"});
  for (Shape shape : {Shape::kUniform, Shape::kSkewed, Shape::kBursty}) {
    ShapeResult r;
    r.shape = shape;
    r.race_static = run_race_cell(PolicyMode::kStatic, shape, races, alts,
                                  work_us, spins, burst, seed, reps);
    r.race_adaptive = run_race_cell(PolicyMode::kAdaptive, shape, races, alts,
                                    work_us, spins, burst, seed, reps);
    r.pl_static = run_prolog_cell(PolicyMode::kStatic, shape, queries, tables,
                                  facts_per, pl_burst, seed);
    r.pl_adaptive = run_prolog_cell(PolicyMode::kAdaptive, shape, queries,
                                    tables, facts_per, pl_burst, seed);
    results.push_back(r);
    table.add_row({shape_name(shape), "race",
                   TablePrinter::num(r.race_static.wasted, 3),
                   TablePrinter::num(r.race_adaptive.wasted, 3),
                   TablePrinter::num(r.race_static.p99, 0),
                   TablePrinter::num(r.race_adaptive.p99, 0),
                   TablePrinter::num(
                       static_cast<std::int64_t>(r.race_adaptive.explores)),
                   "-"});
    table.add_row({shape_name(shape), "prolog",
                   TablePrinter::num(r.pl_static.wasted, 3),
                   TablePrinter::num(r.pl_adaptive.wasted, 3),
                   TablePrinter::num(r.pl_static.p99, 0),
                   TablePrinter::num(r.pl_adaptive.p99, 0),
                   TablePrinter::num(
                       static_cast<std::int64_t>(r.pl_adaptive.explores)),
                   TablePrinter::num(
                       static_cast<std::int64_t>(r.pl_adaptive.vetoes))});
  }
  table.print(std::cout);
  std::cout << "(race p99 in wall us; prolog p99 in inferences-to-answer — "
               "deterministic. On `skewed` and `bursty` the adaptive columns "
               "should be clearly lower: the policy learns the hot position "
               "and runs it first, so losers are revoked unrun. On `uniform` "
               "there is no signal and the modes tie.)\n";

  bool pass = true;
  std::vector<CheckLine> lines;
  if (check) {
    const double wasted_slack = 0.05;
    const double p99_slack_us = 150.0;
    // One full fact-table scan of slack: with no signal (uniform) the two
    // modes' orderings differ by at most where the winning clause lands.
    const double p99_slack_inf = static_cast<double>(facts_per);
    for (const ShapeResult& r : results) {
      const std::string n = shape_name(r.shape);
      lines.push_back(check_metric(n + "/race wasted",
                                   r.race_adaptive.wasted,
                                   r.race_static.wasted, tie_wasted,
                                   wasted_slack));
      lines.push_back(check_metric(n + "/race p99", r.race_adaptive.p99,
                                   r.race_static.p99, tie_p99,
                                   p99_slack_us));
      lines.push_back(check_metric(n + "/prolog wasted",
                                   r.pl_adaptive.wasted, r.pl_static.wasted,
                                   tie_wasted, wasted_slack));
      lines.push_back(check_metric(n + "/prolog p99", r.pl_adaptive.p99,
                                   r.pl_static.p99, tie_p99, p99_slack_inf));
    }
    for (const CheckLine& l : lines) {
      pass = pass && l.ok;
      std::cout << "check: " << l.what << " adaptive " << l.adaptive
                << " <= " << l.bound << " (static " << l.standard
                << "): " << (l.ok ? "PASS" : "FAIL") << "\n";
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"policy_ab\",\n  \"alts\": " << alts
        << ",\n  \"races\": " << races << ",\n  \"queries\": " << queries
        << ",\n  \"seed\": " << seed << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ShapeResult& r = results[i];
      auto cell = [](const Cell& c) {
        std::string s = "{\"wasted\": " + std::to_string(c.wasted) +
                        ", \"p50\": " + std::to_string(c.p50) +
                        ", \"p99\": " + std::to_string(c.p99) +
                        ", \"explores\": " + std::to_string(c.explores) +
                        ", \"width_updates\": " +
                        std::to_string(c.width_updates) +
                        ", \"vetoes\": " + std::to_string(c.vetoes) + "}";
        return s;
      };
      out << "    {\"shape\": \"" << shape_name(r.shape) << "\",\n"
          << "     \"race_static\": " << cell(r.race_static) << ",\n"
          << "     \"race_adaptive\": " << cell(r.race_adaptive) << ",\n"
          << "     \"prolog_static\": " << cell(r.pl_static) << ",\n"
          << "     \"prolog_adaptive\": " << cell(r.pl_adaptive) << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"check\": {\"enabled\": " << (check ? "true" : "false")
        << ", \"tie_wasted\": " << tie_wasted << ", \"tie_p99\": " << tie_p99
        << ", \"pass\": " << (pass ? "true" : "false") << "}\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return pass ? 0 : 1;
}
