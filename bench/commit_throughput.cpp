// COMMIT-THROUGHPUT — the sharded-pagestore scaling sweep.
//
// Scheduler workers used to funnel every page allocation, COW break and
// frame recycle through one global pool mutex and one ledger cacheline, so
// speculation throughput stopped scaling with cores right where the paper's
// model says it should take off. This bench measures the whole commit
// pipeline — fork a child, COW-write a segment, extract its write set,
// splice it back into the parent — as worker count grows, with each worker
// bound to its own pagestore shard (PageShard) exactly as SpecScheduler
// binds its pool threads.
//
// Per round, each of W workers forks the shared parent, COW-writes its own
// `--writes` pages inside its private segment, and extracts its delta
// concurrently (extract_segment is a pure read on both maps); the main
// thread then splices all W deltas serially. One op = one child committed.
//
// Two checks guard the refactor (--check):
//   * no 1-thread regression — a worker bound to a shard must commit within
//     10% of an *unbound* worker, whose ops all land on shard 0, the locked
//     global-fallback shard that is structurally the pre-shard pool;
//   * scaling — with at least 4 hardware threads, aggregate commit
//     throughput at W >= 4 must be at least 2x the 1-thread figure (skipped
//     with a note on smaller machines; the sweep itself still runs).
//
//   $ commit_throughput [--maxw=N] [--seg_pages=64] [--writes=64]
//                       [--rounds=50] [--trials=5] [--page_size=1024]
//                       [--check] [--json=BENCH_commit_throughput.json]
//                       [--trace=FILE] [--profile]
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "core/runtime_auditor.hpp"
#include "pagestore/page_pool.hpp"
#include "pagestore/page_table.hpp"
#include "pagestore/shard.hpp"
#include "proc/process_table.hpp"
#include "trace/trace_cli.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/threading.hpp"

using namespace mw;

namespace {

// Reusable two-phase barrier (generation counter); std::barrier without the
// C++20 header dependency gamble.
class Barrier {
 public:
  explicit Barrier(std::size_t n) : n_(n) {}
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lk(mu_);
    const std::uint64_t gen = gen_;
    if (++arrived_ == n_) {
      arrived_ = 0;
      ++gen_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lk, [&] { return gen_ != gen; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t n_;
  std::size_t arrived_ = 0;
  std::uint64_t gen_ = 0;
};

struct Opts {
  std::size_t seg_pages = 64;   // pages per worker segment
  std::size_t writes = 64;      // COW writes per child per round
  std::size_t rounds = 50;      // rounds per trial
  int trials = 5;
  std::size_t page_size = 1024;
};

struct ConfigResult {
  std::size_t workers = 0;
  bool bound = true;            // workers bound to shards (vs all on shard 0)
  double ns_per_commit = 0;
  double commits_per_sec = 0;
  double pages_per_sec = 0;
};

// Runs the fork/COW-write/extract/splice pipeline with `W` persistent
// worker threads against one shared parent table; returns the median-trial
// throughput. `bind` selects sharded (worker w on shard w) or baseline
// (every worker unbound, i.e. the pre-shard single global shard) mode.
ConfigResult run_config(std::size_t W, bool bind, const Opts& o) {
  const std::size_t num_pages = W * o.seg_pages;
  PageTable parent(o.page_size, num_pages);
  for (std::size_t p = 0; p < num_pages; ++p) parent.write_page(p)[0] = 1;

  Barrier start(W + 1), done(W + 1);
  std::vector<PageMap::RangeDelta> deltas(W);
  std::vector<CowStats> kid_stats(W);
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  workers.reserve(W);
  for (std::size_t w = 0; w < W; ++w) {
    workers.emplace_back([&, w] {
      if (bind) PageShard::bind(w);
      const std::size_t lo = w * o.seg_pages;
      const std::size_t hi = lo + o.seg_pages;
      while (true) {
        start.arrive_and_wait();
        if (stop.load(std::memory_order_acquire)) break;
        PageTable child = parent.fork();
        for (std::size_t i = 0; i < o.writes; ++i) {
          std::uint8_t* d = child.write_page(lo + i % o.seg_pages);
          d[i % o.page_size] ^= 0x5a;
        }
        deltas[w] = parent.extract_segment(child, lo, hi);
        kid_stats[w] = child.stats();
        done.arrive_and_wait();
        // child dies here: its path-copied nodes free and any dropped page
        // frames recycle into this worker's shard while the main thread is
        // splicing — exactly the concurrency the sharded pool absorbs.
      }
      PageShard::unbind();
    });
  }

  auto run_rounds = [&](std::size_t rounds) {
    for (std::size_t r = 0; r < rounds; ++r) {
      start.arrive_and_wait();
      done.arrive_and_wait();
      for (std::size_t w = 0; w < W; ++w) {
        parent.apply_segment(deltas[w], kid_stats[w]);
        deltas[w] = PageMap::RangeDelta{};  // drop refs before the next fork
      }
    }
  };

  run_rounds(2);  // warm up: populate pools, reach COW steady state
  std::vector<double> samples;  // commits per second, one per trial
  for (int t = 0; t < o.trials; ++t) {
    Stopwatch sw;
    run_rounds(o.rounds);
    const double secs = sw.elapsed_ms() / 1e3;
    samples.push_back(static_cast<double>(o.rounds * W) / secs);
  }
  stop.store(true, std::memory_order_release);
  start.arrive_and_wait();
  for (auto& th : workers) th.join();

  ConfigResult res;
  res.workers = W;
  res.bound = bind;
  res.commits_per_sec = summarize(samples).median;
  res.ns_per_commit = 1e9 / res.commits_per_sec;
  res.pages_per_sec = res.commits_per_sec * static_cast<double>(o.writes);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Opts o;
  o.seg_pages = static_cast<std::size_t>(cli.get_int("seg_pages", 64));
  o.writes = static_cast<std::size_t>(
      cli.get_int("writes", static_cast<std::int64_t>(o.seg_pages)));
  o.rounds = static_cast<std::size_t>(cli.get_int("rounds", 50));
  o.trials = static_cast<int>(cli.get_int("trials", 5));
  o.page_size = static_cast<std::size_t>(cli.get_int("page_size", 1024));
  const std::size_t hw = hw_threads();
  const std::size_t maxw = static_cast<std::size_t>(
      cli.get_int("maxw", static_cast<std::int64_t>(hw)));
  const bool check = cli.has("check");
  const std::string json_path = cli.get("json", "");
  trace::TraceSession trace_session(cli);
  trace_session.set_profile_hook(
      [](trace::SpecProfile& p) { PagePool::global().fold_into(p); });

  // Leak guard: every config must hand all its pages back by destruction.
  RuntimeAuditor auditor;

  // Worker counts: powers of two up to maxw, plus maxw itself.
  std::vector<std::size_t> ws;
  for (std::size_t w = 1; w <= maxw; w *= 2) ws.push_back(w);
  if (ws.empty() || ws.back() != maxw) ws.push_back(maxw);

  std::cout << "Parallel segment-commit throughput vs worker count ("
            << o.page_size << " B pages, " << o.seg_pages
            << "-page segments, " << o.writes
            << " COW writes per child; median of " << o.trials
            << " trials x " << o.rounds << " rounds; " << hw
            << " hardware thread(s))\n";
  TablePrinter table(
      {"workers", "mode", "ns_per_commit", "commits_per_s", "pages_per_s"});

  // The pre-shard baseline: one worker left unbound, so its every pool and
  // ledger op lands on shard 0 — the locked global-fallback shard that
  // behaves exactly like the old single-mutex pool.
  const ConfigResult base = run_config(1, /*bind=*/false, o);
  table.add_row({TablePrinter::num(std::int64_t{1}), "global",
                 TablePrinter::num(base.ns_per_commit, 0),
                 TablePrinter::num(base.commits_per_sec, 0),
                 TablePrinter::num(base.pages_per_sec, 0)});

  std::vector<ConfigResult> rows;
  for (std::size_t w : ws) {
    rows.push_back(run_config(w, /*bind=*/true, o));
    const ConfigResult& r = rows.back();
    table.add_row({TablePrinter::num(static_cast<std::int64_t>(r.workers)),
                   "sharded", TablePrinter::num(r.ns_per_commit, 0),
                   TablePrinter::num(r.commits_per_sec, 0),
                   TablePrinter::num(r.pages_per_sec, 0)});
  }
  table.print(std::cout);
  std::cout << "(commits_per_s is aggregate across workers: each commit is "
               "fork + COW-write + concurrent extract + serial splice; the "
               "global row is the pre-shard pool baseline)\n";

  const double regression = rows.front().ns_per_commit / base.ns_per_commit;
  bool pass = true;
  bool scaling_checked = false;
  double speedup = 0.0;
  if (check) {
    const bool reg_ok = regression <= 1.10;
    if (!reg_ok) pass = false;
    std::cout << "\ncheck: 1-thread sharded/baseline ns ratio " << regression
              << " (limit 1.10): " << (reg_ok ? "PASS" : "FAIL") << "\n";
    // Scaling: best aggregate throughput at >= 4 workers vs 1 thread.
    double best = 0.0;
    for (const ConfigResult& r : rows)
      if (r.workers >= 4 && r.commits_per_sec > best)
        best = r.commits_per_sec;
    if (hw >= 4 && best > 0.0) {
      scaling_checked = true;
      speedup = best / rows.front().commits_per_sec;
      const bool ok = speedup >= 2.0;
      if (!ok) pass = false;
      std::cout << "check: aggregate speedup at >=4 workers " << speedup
                << "x (limit 2.0x): " << (ok ? "PASS" : "FAIL") << "\n";
    } else {
      std::cout << "check: scaling skipped (" << hw
                << " hardware thread(s) < 4 — the 2x bound needs real "
                   "cores)\n";
    }
  }

  // All parents/children are gone: the pool may hold frames, but no Page
  // object may outlive its table.
  ProcessTable procs;
  const AuditReport audit = auditor.run(procs);
  std::cout << audit.to_string() << "\n";
  if (!audit.clean()) pass = false;

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"commit_throughput\",\n"
        << "  \"page_size\": " << o.page_size
        << ",\n  \"seg_pages\": " << o.seg_pages
        << ",\n  \"writes\": " << o.writes
        << ",\n  \"hardware_threads\": " << hw
        << ",\n  \"baseline\": {\"workers\": 1, \"mode\": \"global\", "
        << "\"ns_per_commit\": " << base.ns_per_commit
        << ", \"commits_per_sec\": " << base.commits_per_sec << "},\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ConfigResult& r = rows[i];
      out << "    {\"workers\": " << r.workers
          << ", \"ns_per_commit\": " << r.ns_per_commit
          << ", \"commits_per_sec\": " << r.commits_per_sec
          << ", \"pages_per_sec\": " << r.pages_per_sec << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"check\": {\"enabled\": " << (check ? "true" : "false")
        << ", \"regression_ratio\": " << regression
        << ", \"regression_limit\": 1.10"
        << ", \"scaling_checked\": " << (scaling_checked ? "true" : "false")
        << ", \"speedup\": " << speedup
        << ", \"speedup_limit\": 2.0"
        << ", \"audit_clean\": " << (audit.clean() ? "true" : "false")
        << ", \"pass\": " << (pass ? "true" : "false") << "}\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  trace_session.finish(std::cout);
  return pass ? 0 : 1;
}
