// OVH-FORK — reproduces the §3.4 fork/COW measurements:
//
//   "For the 3B2, a fork() (with no updates to a 320K address space) takes
//    about 31 milliseconds; under the same conditions the HP requires
//    about 12 milliseconds. The measured service rate of page copying was
//    326 2K pages/second for the 3B2, and 1034 4K pages/second for the HP.
//    The fraction of the pages in the address space which are written is
//    the important independent variable..."
//
// Three parts: (A) real POSIX fork() latency vs resident size on this
// host — same primitive, modern constants; (B) real COW page-copy service
// rate; (C) the calibrated virtual cost model reproducing the paper's
// absolute numbers, plus the write-fraction sweep (paper observed
// fractions of 0.2-0.5).
//
//   $ overhead_fork_cow [--trials=5]
#include <iostream>

#include "core/fork_backend.hpp"
#include "pagestore/page_table.hpp"
#include "proc/cost_model.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace mw;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 5));

  std::cout << "A. Real fork() latency vs resident pages (4 KiB pages, "
               "this host)\n";
  TablePrinter forks({"pages", "kbytes", "fork_ms(median)"});
  for (std::size_t pages : {20u, 80u, 160u, 320u, 1280u}) {
    std::vector<double> ms;
    for (int t = 0; t < trials; ++t)
      ms.push_back(measure_fork_latency(pages, 4096) * 1e3);
    forks.add_row({TablePrinter::num(static_cast<std::int64_t>(pages)),
                   TablePrinter::num(static_cast<std::int64_t>(pages * 4)),
                   TablePrinter::num(summarize(ms).median, 3)});
  }
  forks.print(std::cout);
  std::cout << "(paper: 320 KB forks in 31 ms on the 3B2, 12 ms on the "
               "HP9000/350; shape to verify: latency grows with resident "
               "size)\n\n";

  std::cout << "B. Real COW page-copy service rate (child rewrites shared "
               "pages)\n";
  TablePrinter rates({"page_size", "pages", "pages_per_sec(median)"});
  for (std::size_t ps : {2048u, 4096u}) {
    std::vector<double> rate;
    for (int t = 0; t < trials; ++t)
      rate.push_back(measure_cow_copy_rate(512, ps));
    rates.add_row({TablePrinter::num(static_cast<std::int64_t>(ps)),
                   TablePrinter::num(static_cast<std::int64_t>(512)),
                   TablePrinter::num(summarize(rate).median, 0)});
  }
  rates.print(std::cout);
  std::cout << "(paper: 326 2K-pages/s on the 3B2, 1034 4K-pages/s on the "
               "HP)\n\n";

  std::cout << "C. Calibrated era cost models (what the virtual backend "
               "charges)\n";
  TablePrinter model({"machine", "fork_320K_ms", "copy_rate_pages_per_s",
                      "elim16_sync_ms", "elim16_async_ms"});
  for (const auto& [name, m] :
       {std::pair<const char*, CostModel>{"3B2/310", CostModel::calibrated_3b2()},
        std::pair<const char*, CostModel>{"HP9000/350", CostModel::calibrated_hp()}}) {
    model.add_row(
        {name,
         TablePrinter::num(vt_to_ms(m.fork_cost(320 * 1024 / m.page_size)), 1),
         TablePrinter::num(1e6 / static_cast<double>(m.cow_copy_per_page), 0),
         TablePrinter::num(vt_to_ms(m.elimination_cost(16, true)), 1),
         TablePrinter::num(vt_to_ms(m.elimination_cost(16, false)), 1)});
  }
  model.print(std::cout);

  std::cout << "\nD. Write-fraction sweep on the software COW page table "
               "(the paper's key independent variable)\n";
  TablePrinter wf({"write_fraction", "pages_copied", "3B2_copy_ms",
                   "HP_copy_ms"});
  const std::size_t total_pages = 160;
  for (double frac : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    PageTable parent(2048, total_pages);
    std::vector<std::uint8_t> one{1};
    for (std::size_t p = 0; p < total_pages; ++p) parent.write(p * 2048, one);
    PageTable child = parent.fork();
    const auto k = static_cast<std::size_t>(frac * total_pages);
    for (std::size_t p = 0; p < k; ++p) child.write(p * 2048, one);
    const auto copied = child.stats().pages_copied;
    wf.add_row(
        {TablePrinter::num(child.write_fraction(), 2),
         TablePrinter::num(static_cast<std::int64_t>(copied)),
         TablePrinter::num(
             vt_to_ms(CostModel::calibrated_3b2().cow_copy_per_page *
                      static_cast<VDuration>(copied)), 1),
         TablePrinter::num(
             vt_to_ms(CostModel::calibrated_hp().cow_copy_per_page *
                      static_cast<VDuration>(copied)), 1)});
  }
  wf.print(std::cout);
  std::cout << "(paper: observed write fractions 0.2-0.5, which with these "
               "copy rates dominate tau(overhead))\n";
  return 0;
}
