// ABL-PRED — §2.3's representation claim: predicating on *process ids*
// beats predicating on *data objects*, "with the idea that processes
// change status much less frequently than they make memory references to
// objects."
//
// google-benchmark microbenchmarks compare:
//  * message-acceptance checks against pid-list predicate sets of
//    realistic sizes, vs a data-predication strawman that version-checks
//    every object a message touches;
//  * predicate resolution (a status change) vs re-validating object
//    versions;
//  * the cost of splitting a receiver world (clone + predicate extension).
#include <benchmark/benchmark.h>

#include "core/world.hpp"
#include "msg/delivery.hpp"
#include "pred/predicate_set.hpp"
#include "util/rng.hpp"

namespace mw {
namespace {

PredicateSet set_of(std::size_t n, Pid base) {
  PredicateSet s;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      s.assume_completes(base + static_cast<Pid>(i));
    } else {
      s.assume_fails(base + static_cast<Pid>(i));
    }
  }
  return s;
}

void BM_PidPredicateCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  PredicateSet receiver = set_of(n, 1);
  Message msg;
  msg.sender = 100000;  // unknown to the receiver: full relation check
  msg.predicate = set_of(n, 1);  // implied: the worst full-scan case
  for (auto _ : state) {
    benchmark::DoNotOptimize(decide_delivery(receiver, msg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PidPredicateCheck)->Arg(2)->Arg(8)->Arg(32);

/// The strawman: each message carries versions of every object it read;
/// the receiver re-validates them all (optimistic concurrency control on
/// data, as in Eswaran-style predicate locks on objects).
void BM_DataPredicationCheck(benchmark::State& state) {
  const auto objects = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> object_versions(objects);
  Rng rng(7);
  for (auto& v : object_versions) v = rng.next_u64();
  std::vector<std::pair<std::size_t, std::uint64_t>> message_footprint;
  for (std::size_t i = 0; i < objects; ++i)
    message_footprint.emplace_back(i, object_versions[i]);
  for (auto _ : state) {
    bool ok = true;
    for (const auto& [idx, ver] : message_footprint)
      ok &= object_versions[idx] == ver;
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations());
}
// A world touches far more objects than it has relatives: the paper's
// point is this range gap (memory references vs status changes).
BENCHMARK(BM_DataPredicationCheck)->Arg(256)->Arg(4096)->Arg(65536);

void BM_PredicateResolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    PredicateSet s = set_of(n, 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.resolve(1, true));
  }
}
BENCHMARK(BM_PredicateResolve)->Arg(2)->Arg(8)->Arg(32);

void BM_SiblingRivalryConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  PredicateSet parent = set_of(4, 1000);
  std::vector<Pid> sibs;
  for (std::size_t i = 0; i < n; ++i) sibs.push_back(static_cast<Pid>(i + 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PredicateSet::for_alternative(parent, 1, sibs));
  }
}
BENCHMARK(BM_SiblingRivalryConstruction)->Arg(2)->Arg(6)->Arg(16);

void BM_WorldSplitClone(benchmark::State& state) {
  const auto resident = static_cast<std::size_t>(state.range(0));
  ProcessTable table;
  World w(table, 4096, 2048, "recv");
  for (std::size_t p = 0; p < resident; ++p)
    w.space().store<int>(p * 4096, 1);
  PredicateSet preds;
  preds.assume_completes(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.clone_with_predicates(preds, "copy"));
  }
}
BENCHMARK(BM_WorldSplitClone)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace mw

BENCHMARK_MAIN();
