// OVH-ELIM + ABL-ELIM — reproduces the §3.4 sibling-elimination
// measurement and the §2.2.1 design claim:
//
//   "the elimination of 16 subprocesses can be accomplished in about 40
//    milliseconds if waiting for their termination, and 20 milliseconds if
//    the elimination is done asynchronously"
//
//   "experiments indicate that asynchronous elimination gives better
//    execution-time performance, once again at the expense of throughput"
//
// Three backends: the calibrated virtual model (era numbers), real POSIX
// processes (SIGKILL + waitpid vs SIGKILL only), and the sweep over
// sibling counts that shows the linear growth.
//
//   $ overhead_elimination [--trials=5]
#include <unistd.h>

#include <iostream>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/fork_backend.hpp"
#include "core/runtime.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

/// One virtual-backend race: a trivial winner plus `siblings` spinners.
VDuration virtual_elimination(std::size_t siblings, Elimination mode) {
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = siblings + 1;
  cfg.cost = CostModel::calibrated_3b2();
  Runtime rt(cfg);
  World root = rt.make_root("elim");
  std::vector<Alternative> alts;
  alts.push_back(Alternative{"winner", nullptr,
                             [](AltContext& ctx) { ctx.work(vt_ms(1)); },
                             nullptr});
  for (std::size_t i = 0; i < siblings; ++i) {
    alts.push_back(Alternative{
        "spin" + std::to_string(i), nullptr,
        [](AltContext& ctx) { ctx.work(vt_sec(100)); }, nullptr});
  }
  AltOptions opts;
  opts.elimination = mode;
  return run_alternatives(rt, root, alts, opts).overhead.elimination;
}

/// One real-process race: a winner plus `siblings` sleepers, timed.
double fork_elimination_sec(std::size_t siblings, bool synchronous) {
  std::vector<ForkAlternative> alts;
  alts.push_back(ForkAlternative{"winner", [](std::vector<std::uint8_t>& r) {
                                   r = {1};
                                   return true;
                                 }});
  for (std::size_t i = 0; i < siblings; ++i) {
    alts.push_back(ForkAlternative{"sleeper", [](std::vector<std::uint8_t>&) {
                                     ::usleep(30'000'000);
                                     return true;
                                   }});
  }
  ForkOptions opts;
  opts.synchronous_elimination = synchronous;
  return run_alternatives_fork(alts, opts).elimination_sec;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 5));

  std::cout << "A. Eliminating 16 siblings, calibrated 3B2 virtual model\n";
  TablePrinter era({"mode", "ms"});
  era.add_row({"synchronous (wait)",
               TablePrinter::num(
                   vt_to_ms(virtual_elimination(16, Elimination::kSynchronous)), 1)});
  era.add_row({"asynchronous",
               TablePrinter::num(
                   vt_to_ms(virtual_elimination(16, Elimination::kAsynchronous)), 1)});
  era.print(std::cout);
  std::cout << "(paper: ~40 ms waited, ~20 ms asynchronous)\n\n";

  std::cout << "B. Real POSIX processes: SIGKILL 16 siblings\n";
  TablePrinter real({"mode", "ms(median over trials)"});
  for (bool sync : {true, false}) {
    std::vector<double> ms;
    for (int t = 0; t < trials; ++t)
      ms.push_back(fork_elimination_sec(16, sync) * 1e3);
    real.add_row({sync ? "synchronous (kill+waitpid)" : "asynchronous (kill)",
                  TablePrinter::num(summarize(ms).median, 3)});
  }
  real.print(std::cout);
  std::cout << "(shape to verify: async <= sync on any host)\n\n";

  std::cout << "C. Ablation: elimination cost vs sibling count (virtual "
               "3B2 model)\n";
  TablePrinter sweep({"siblings", "sync_ms", "async_ms", "ratio"});
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const double s = vt_to_ms(virtual_elimination(n, Elimination::kSynchronous));
    const double a = vt_to_ms(virtual_elimination(n, Elimination::kAsynchronous));
    sweep.add_row({TablePrinter::num(static_cast<std::int64_t>(n)),
                   TablePrinter::num(s, 1), TablePrinter::num(a, 1),
                   TablePrinter::num(a > 0 ? s / a : 0.0)});
  }
  sweep.print(std::cout);
  std::cout << "(shape: both grow linearly in sibling count; async stays "
               "~2x cheaper)\n";
  return 0;
}
