// §5 related-work ablation: page-based Multiple Worlds vs Wilson's
// value-based "Alternate Universes". The paper's claim, measured:
// page-based "trades a higher startup cost against cheaper referencing
// from that point on".
//
//   $ ablation_page_vs_value [--trials=7]
#include <iostream>

#include "pagestore/overlay_store.hpp"
#include "pagestore/page_table.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace mw;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 7));
  const std::size_t objects = 4096;  // 64-bit objects in the world

  // Page-based world: objects packed 512 per 4K page.
  PageTable pages(4096, objects / 512 + 1);
  for (std::size_t i = 0; i < objects; ++i) {
    std::int64_t v = static_cast<std::int64_t>(i);
    pages.write(i * 8, std::span<const std::uint8_t>(
                           reinterpret_cast<const std::uint8_t*>(&v), 8));
  }
  // Value-based world with the same contents.
  OverlayStore values;
  for (std::size_t i = 0; i < objects; ++i)
    values.store(i, static_cast<std::int64_t>(i));

  std::cout << "A. Fork (startup) cost\n";
  TablePrinter forks({"mechanism", "fork_us(median)"});
  {
    std::vector<double> page_us, value_us;
    for (int t = 0; t < trials * 100; ++t) {
      Stopwatch sw;
      auto child = pages.fork();
      page_us.push_back(sw.elapsed_us());
      Stopwatch sw2;
      auto vchild = values.fork();
      value_us.push_back(sw2.elapsed_us());
    }
    forks.add_row({"page-based (map copy)",
                   TablePrinter::num(summarize(page_us).median, 3)});
    forks.add_row({"value-based (O(1) overlay)",
                   TablePrinter::num(summarize(value_us).median, 3)});
  }
  forks.print(std::cout);

  std::cout << "\nB. Referencing cost after the fork (1e5 random reads), "
               "by speculation depth\n";
  TablePrinter reads({"chain_depth", "page_read_us", "value_read_us",
                      "value/page"});
  const int n_reads = 100000;
  for (std::size_t depth : {1u, 4u, 16u, 64u}) {
    // Build a speculation line of the given depth; each level writes a
    // few objects (a realistic speculative write set).
    PageTable pline = pages.fork();
    OverlayStore vline = values.fork();
    for (std::size_t d = 1; d < depth; ++d) {
      pline = pline.fork();
      vline = vline.fork();
      for (std::size_t k = 0; k < 8; ++k) {
        std::int64_t v = static_cast<std::int64_t>(d * 1000 + k);
        pline.write((d * 31 + k) % objects * 8,
                    std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(&v), 8));
        vline.store((d * 31 + k) % objects, v);
      }
    }
    std::vector<double> pus, vus;
    for (int t = 0; t < trials; ++t) {
      std::uint64_t x = 0x9e3779b9;
      Stopwatch sp;
      std::int64_t sink = 0;
      for (int r = 0; r < n_reads; ++r) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        std::int64_t v;
        pline.read((x >> 33) % objects * 8,
                   std::span<std::uint8_t>(
                       reinterpret_cast<std::uint8_t*>(&v), 8));
        sink += v;
      }
      pus.push_back(sp.elapsed_us());
      x = 0x9e3779b9;
      Stopwatch sv;
      for (int r = 0; r < n_reads; ++r) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        sink += vline.load((x >> 33) % objects);
      }
      vus.push_back(sv.elapsed_us());
      if (sink == 42) std::cout << "";  // keep the loops alive
    }
    const double p = summarize(pus).median;
    const double v = summarize(vus).median;
    reads.add_row({TablePrinter::num(static_cast<std::int64_t>(depth)),
                   TablePrinter::num(p, 0), TablePrinter::num(v, 0),
                   TablePrinter::num(v / p, 1)});
  }
  reads.print(std::cout);
  std::cout << "\nShape to verify (§5): value-based forks are ~O(1) and "
               "beat page-map copies at startup; page-based reads are flat "
               "while value-based reads degrade with speculation depth — "
               "\"a higher startup cost against cheaper referencing from "
               "that point on\". Page-based wins for the paper's "
               "larger-grained parallelism.\n";
  return 0;
}
