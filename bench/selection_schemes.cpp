// §3.2's three selection schemes, compared on the rootfinder domain:
//
//   A. "Statistical data can be applied" — always pick the angle with the
//      best historical average (may be wrong on any given input).
//   B. "An algorithm can be selected at random" — expected cost is the
//      arithmetic mean, and "failures or infinite loops will frustrate
//      Scheme B" (a failed pick must be retried with another).
//   C. "The C_i can be applied concurrently; the first C_i which produces
//      an acceptable output is selected" — Multiple Worlds.
//
//   $ selection_schemes [--inputs=30] [--angles=4] [--procs=4]
#include <iostream>

#include "model/perf_model.hpp"
#include "num/jenkins_traub.hpp"
#include "num/workload.hpp"
#include "util/cli.hpp"
#include "util/vtime.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace mw;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int inputs = static_cast<int>(cli.get_int("inputs", 30));
  const int n_angles = static_cast<int>(cli.get_int("angles", 4));
  const auto procs = static_cast<std::size_t>(cli.get_int("procs", 4));
  const VDuration ms_per_iter = vt_ms(7);
  const VDuration overhead = vt_ms(60);  // spawn+commit+elim at this scale

  Rng rng(12);
  std::vector<double> angles;
  for (int i = 0; i < n_angles; ++i)
    angles.push_back(rng.next_double_in(0.0, 360.0));

  // Per-input per-angle costs & success.
  struct Cell {
    double sec = 0;
    bool ok = false;
  };
  std::vector<std::vector<Cell>> grid;
  for (int i = 0; i < inputs; ++i) {
    Rng sub = rng.split(static_cast<std::uint64_t>(i) + 1);
    PolyWorkload w = make_clustered_poly(sub);
    std::vector<Cell> row;
    for (double a : angles) {
      JtConfig jt;
      jt.start_angle_deg = a;
      RootResult r = jenkins_traub(w.poly, jt);
      row.push_back(Cell{
          vt_to_sec(static_cast<VDuration>(r.iterations) * ms_per_iter),
          r.converged});
    }
    grid.push_back(std::move(row));
  }

  // Scheme A: pick the angle with the best average over the domain
  // (trained on the same domain: the most charitable version of A).
  std::size_t best_avg_idx = 0;
  {
    double best = 1e18;
    for (std::size_t a = 0; a < angles.size(); ++a) {
      double sum = 0;
      for (const auto& row : grid)
        sum += row[a].ok ? row[a].sec : row[a].sec + 30.0;  // fail penalty
      if (sum < best) {
        best = sum;
        best_avg_idx = a;
      }
    }
  }

  std::vector<double> a_times, b_times, c_times;
  int a_fails = 0;
  Rng pick_rng(999);
  for (const auto& row : grid) {
    // A: fixed statistically-best angle; a failure strands the user (count
    // it and charge the attempt plus a retry with the next-best angle).
    {
      const Cell& c = row[best_avg_idx];
      if (c.ok) {
        a_times.push_back(c.sec);
      } else {
        ++a_fails;
        double t = c.sec;
        for (std::size_t k = 0; k < row.size(); ++k) {
          if (k == best_avg_idx) continue;
          t += row[k].sec;
          if (row[k].ok) break;
        }
        a_times.push_back(t);
      }
    }
    // B: uniformly random pick; on failure, redraw (costs accumulate) —
    // the "frustration" the paper notes.
    {
      double t = 0;
      auto order = pick_rng.permutation(row.size());
      for (std::size_t k : order) {
        t += row[k].sec;
        if (row[k].ok) break;
      }
      b_times.push_back(t);
    }
    // C: all angles race on `procs` processors; first success wins; the
    // block pays the overhead once.
    {
      // Processor-sharing finish times with equal arrival.
      std::vector<std::pair<double, bool>> tasks;
      for (const auto& c : row) tasks.emplace_back(c.sec, c.ok);
      // Fluid simulation (same as ps_schedule, but tiny and local).
      double now = 0;
      std::vector<double> rem;
      for (auto& [sec, ok] : tasks) rem.push_back(sec);
      std::vector<bool> done(tasks.size(), false);
      double winner = -1;
      std::size_t left = tasks.size();
      while (left > 0 && winner < 0) {
        const double rate =
            std::min(1.0, static_cast<double>(procs) /
                              static_cast<double>(left));
        double dt = 1e18;
        for (std::size_t k = 0; k < tasks.size(); ++k)
          if (!done[k]) dt = std::min(dt, rem[k] / rate);
        for (std::size_t k = 0; k < tasks.size(); ++k) {
          if (done[k]) continue;
          rem[k] -= rate * dt;
          if (rem[k] <= 1e-12) {
            done[k] = true;
            --left;
            if (tasks[k].second && winner < 0) winner = now + dt;
          }
        }
        now += dt;
      }
      c_times.push_back((winner < 0 ? now : winner) + vt_to_sec(overhead));
    }
  }

  auto sum_a = summarize(a_times);
  auto sum_b = summarize(b_times);
  auto sum_c = summarize(c_times);
  TablePrinter table({"scheme", "mean_s", "p90_s", "worst_s"});
  table.add_row({"A: statistical best angle", TablePrinter::num(sum_a.mean),
                 TablePrinter::num(sum_a.p90), TablePrinter::num(sum_a.max)});
  table.add_row({"B: random angle (+retries)", TablePrinter::num(sum_b.mean),
                 TablePrinter::num(sum_b.p90), TablePrinter::num(sum_b.max)});
  table.add_row({"C: Multiple Worlds race", TablePrinter::num(sum_c.mean),
                 TablePrinter::num(sum_c.p90), TablePrinter::num(sum_c.max)});
  std::cout << "Selection schemes over " << inputs << " random inputs, "
            << n_angles << " angles, " << procs << " processors (Scheme C)\n";
  table.print(std::cout);
  std::cout << "\nScheme A stranded " << a_fails << "/" << inputs
            << " inputs on a failing 'best' angle.\n";
  std::cout << "Shape to verify (§3.2): C's mean ~ best + overhead and its "
               "tail is the tightest; B pays the arithmetic mean plus "
               "failure retries; A is fast until its trained choice fails "
               "on an unseen input.\n";
  return 0;
}
