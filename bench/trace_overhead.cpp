// EXT-TRACE — cost of the observability layer (docs/OBSERVABILITY.md).
//
// Three tracing configurations exist:
//
//   off       — built with -DMW_TRACE=OFF: MW_TRACE_EVENT expands to
//               nothing, call sites vanish. Measured by building twice and
//               comparing bench/micro_ops; this binary cannot see it.
//   disabled  — compiled in (the default build) but trace::enabled() is
//               false: every site is one relaxed atomic load and a branch.
//   enabled   — trace::set_enabled(true): every site appends a 48-byte
//               record to the calling thread's ring.
//
// This bench measures disabled vs enabled on the same workloads the
// micro_ops and overhead_fork_cow suites time, plus the raw per-event
// emit cost. --check enforces the documented bound: enabled tracing adds
// < 10% to the composite workloads (a race and a fork/COW storm, where
// events amortize over real work). The owned-page write row demonstrates
// the fast path carries no trace site at all.
//
//   $ trace_overhead [--trials=7] [--reps=200] [--check] [--json[=file]]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "pagestore/page_table.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

struct Workload {
  const char* name;
  // Runs `reps` iterations of the operation; returns ops actually done
  // (some workloads do >1 logical op per rep).
  std::function<std::size_t(int reps)> run;
  bool composite;  // participates in the --check <10% bound
};

struct Measured {
  double off_ns = 0;
  double on_ns = 0;
};

// Best-of-trials ns/op with the configurations interleaved: disabled and
// enabled alternate within each trial so frequency drift and co-tenant
// noise hit both equally, and the min discards outlier trials entirely —
// the estimator of choice for small timing deltas on shared machines.
Measured measure(const Workload& w, int trials, int reps) {
  Measured m;
  m.off_ns = m.on_ns = 1e300;
  for (int t = 0; t < trials; ++t) {
    trace::set_enabled(false);
    trace::reset();
    {
      Stopwatch sw;
      const std::size_t ops = w.run(reps);
      m.off_ns = std::min(m.off_ns,
                          sw.elapsed_us() * 1e3 / static_cast<double>(ops));
    }
    trace::set_enabled(true);
    trace::reset();  // empty rings; keeps enabled trials comparable
    {
      Stopwatch sw;
      const std::size_t ops = w.run(reps);
      m.on_ns = std::min(m.on_ns,
                         sw.elapsed_us() * 1e3 / static_cast<double>(ops));
    }
  }
  trace::set_enabled(false);
  trace::reset();
  return m;
}

std::vector<Workload> make_workloads() {
  std::vector<Workload> ws;

  // Owned-page write: the hot path deliberately has no trace site.
  ws.push_back({"page_write_owned",
                [](int reps) {
                  PageTable t(4096, 64);
                  std::vector<std::uint8_t> data(64, 1);
                  t.write(0, data);
                  for (int i = 0; i < reps; ++i) t.write(0, data);
                  return static_cast<std::size_t>(reps);
                },
                false});

  // Fork + COW storm: fork a 64-page parent and rewrite 32 pages, which
  // emits page_fork + 32 page_copy (+ page_alloc) events per rep. Mirrors
  // overhead_fork_cow part D and BM_PageWriteCowBreak.
  ws.push_back({"fork_cow_storm",
                [](int reps) {
                  PageTable parent(4096, 64);
                  std::vector<std::uint8_t> one{1};
                  for (std::size_t p = 0; p < 64; ++p)
                    parent.write(p * 4096, one);
                  for (int i = 0; i < reps; ++i) {
                    PageTable child = parent.fork();
                    for (std::size_t p = 0; p < 32; ++p)
                      child.write(p * 4096, one);
                  }
                  return static_cast<std::size_t>(reps);
                },
                true});

  // A whole 3-alternative race through the virtual backend. Each race
  // emits ~20 lifecycle events (block begin/end, spawns, child spans,
  // fates, world fork/commit, page traffic), so the per-race overhead is
  // essentially fixed; what varies is the work it amortizes over.
  auto race = [](int reps, int body_iters) {
    RuntimeConfig cfg;
    cfg.backend = AltBackend::kVirtual;
    cfg.processors = 3;
    cfg.cost = CostModel::free();
    cfg.page_size = 256;
    cfg.num_pages = 64;
    Runtime rt(cfg);
    for (int i = 0; i < reps; ++i) {
      World root = rt.make_root("ovh");
      std::vector<Alternative> alts;
      for (int a = 0; a < 3; ++a) {
        const VDuration cost = vt_us(10 * (a + 1));
        alts.push_back(Alternative{
            "a" + std::to_string(a), nullptr,
            [cost, body_iters](AltContext& ctx) {
              // A murmur-style mix chain stands in for a real
              // alternative body (a rootfinder attempt, a replica
              // call); zero iterations = the do-nothing worst case.
              std::uint64_t h = 0x9e3779b97f4a7c15ull + ctx.pid();
              for (int it = 0; it < body_iters; ++it) {
                h ^= h >> 33;
                h *= 0xff51afd7ed558ccdull;
              }
              ctx.space().store<std::uint64_t>(0, h);
              ctx.work(cost);
            },
            nullptr});
      }
      run_alternatives(rt, root, alts);
    }
    return static_cast<std::size_t>(reps);
  };

  // Empty bodies: every event amortizes over pure engine overhead. The
  // honest worst case — reported, not bounded.
  ws.push_back({"alt_block_empty",
                [race](int reps) { return race(reps, 0); }, false});

  // Bodies doing ~2 us of real computation each, the regime the <10%
  // bound is documented for (real alternatives compute something).
  ws.push_back({"alt_block_compute",
                [race](int reps) { return race(reps, 2000); }, true});

  return ws;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 7));
  const int reps = static_cast<int>(cli.get_int("reps", 200));
  const bool check = cli.has("check");
  const bool json = cli.has("json");
  const std::string json_path = cli.get("json", "");

#if defined(MW_TRACE_DISABLED)
  std::cout << "trace_overhead: built with MW_TRACE=OFF — every trace site "
               "is compiled out;\nthe disabled/enabled columns below measure "
               "the same (instrumentation-free) code.\n\n";
#endif

  // Raw emit cost: the tightest possible loop around trace::emit. This is
  // the per-event constant the composite rows amortize.
  trace::reset();
  trace::set_enabled(true);
  double emit_ns;
  {
    constexpr int kEmits = 200000;
    Stopwatch sw;
    for (int i = 0; i < kEmits; ++i)
      MW_TRACE_EVENT(trace::EventKind::kPageCopy, 1, kNoPid,
                     static_cast<std::uint64_t>(i));
    emit_ns = sw.elapsed_us() * 1e3 / kEmits;
  }
  trace::set_enabled(false);
  trace::reset();

  TablePrinter table({"workload", "disabled_ns_op", "enabled_ns_op",
                      "overhead_pct"});
  bool pass = true;
  std::vector<std::pair<std::string, double>> overheads;
  for (const Workload& w : make_workloads()) {
    // Warm-up run so allocators and the page pool reach steady state
    // before either configuration is timed.
    w.run(reps / 4 + 1);
    Measured m = measure(w, trials, reps);
    double pct = (m.on_ns / m.off_ns - 1.0) * 100.0;
    if (check && w.composite) {
      // Co-tenant noise on shared CI runners occasionally lands a whole
      // burst inside one configuration's trials. A genuine regression
      // reproduces; noise does not — so re-measure before failing.
      for (int retry = 0; retry < 2 && pct >= 10.0; ++retry) {
        m = measure(w, trials, reps);
        pct = (m.on_ns / m.off_ns - 1.0) * 100.0;
      }
      if (pct >= 10.0) {
        std::printf("CHECK FAIL: %s enabled overhead %.1f%% >= 10%%\n", w.name,
                    pct);
        pass = false;
      }
    }
    overheads.emplace_back(w.name, pct);
    table.add_row({w.name, TablePrinter::num(m.off_ns, 1),
                   TablePrinter::num(m.on_ns, 1), TablePrinter::num(pct, 1)});
  }

  if (json) {
    std::ostringstream os;
    os << "{\"emit_ns\": " << TablePrinter::num(emit_ns, 1);
    for (const auto& [name, pct] : overheads)
      os << ", \"" << name << "_overhead_pct\": " << TablePrinter::num(pct, 1);
    os << "}\n";
    if (json_path.empty()) {
      std::cout << os.str();
    } else {
      std::ofstream(json_path) << os.str();
      std::cout << "wrote " << json_path << "\n";
    }
    return check && !pass ? 1 : 0;
  }

  std::cout << "Tracing overhead: compiled-in-disabled vs enabled ("
            << trials << " trials x " << reps << " reps)\n";
  table.print(std::cout);
  std::printf("\nraw emit cost: %.1f ns/event (48-byte record into a "
              "thread-local ring)\n", emit_ns);
  std::cout << "page_write_owned has no trace site (the COW fast path is "
               "untouched); the\ncomposite rows amortize per-event cost over "
               "real work and must stay <10%\nenabled. The third "
               "configuration — MW_TRACE=OFF — is measured by rebuilding\n"
               "and comparing bench/micro_ops (see docs/OBSERVABILITY.md).\n";
  if (check)
    std::printf("%s\n", pass ? "CHECK PASS: enabled overhead <10% on all "
                               "composite workloads"
                             : "CHECK FAIL (see above)");
  return check && !pass ? 1 : 0;
}
