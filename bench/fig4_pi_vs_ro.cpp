// FIG4 — reproduces Figure 4: PI as a function of R_o with R_μ = e,
// log-log scales.
//
// The overhead ratio is swept two ways:
//  * analytically, the paper's curve PI = e/(1+R_o) over R_o ∈ [0.01, 1];
//  * empirically, by racing two alternatives whose dispersion is fixed at
//    R_μ = e while the speculative worlds write an increasing number of
//    pages — the write fraction drives the COW copying term of
//    τ(overhead), which is exactly the knob the paper identifies ("the
//    major overhead we observed was copying").
//
//   $ fig4_pi_vs_ro [--points=9]
#include <iostream>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "model/perf_model.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mw;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int points = static_cast<int>(cli.get_int("points", 9));
  constexpr double kE = 2.718281828459045;

  std::cout << "Figure 4 (analytic): PI as a function of R_o "
               "(R_mu = e), log-log\n";
  TablePrinter analytic({"R_o", "PI", "PI/R_mu"});
  for (const SeriesPoint& p : figure4_series(kE, 0.01, 1.0, points)) {
    analytic.add_row({TablePrinter::num(p.x, 3), TablePrinter::num(p.pi, 3),
                      TablePrinter::num(p.pi / kE, 3)});
  }
  analytic.print(std::cout);

  // Empirical sweep: two alternatives, best = T and slow = (2e-1)T so the
  // mean is e*T; growing dirty-page counts inflate R_o.
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = 2;
  cfg.cost = CostModel::calibrated_hp();
  cfg.num_pages = 512;

  TablePrinter measured({"dirty_pages", "R_o_meas", "PI_meas", "PI_analytic"});
  const VDuration base = vt_ms(400);
  for (int dirty = 1; dirty <= 256; dirty *= 2) {
    Runtime rt(cfg);
    World root = rt.make_root("fig4");
    for (int p = 0; p < 16; ++p)
      root.space().store<double>(static_cast<std::uint64_t>(p) * 4096, 1.0);

    auto body = [&](VDuration dur) {
      return [dur, dirty](AltContext& ctx) {
        for (int p = 0; p < dirty; ++p)
          ctx.space().store<int>(static_cast<std::uint64_t>(p) * 4096, p);
        ctx.work(dur);
      };
    };
    const auto slow =
        static_cast<VDuration>((2.0 * kE - 1.0) * static_cast<double>(base));
    AltOutcome out = run_alternatives(
        rt, root,
        {Alternative{"fast", nullptr, body(base), nullptr},
         Alternative{"slow", nullptr, body(slow), nullptr}});

    const std::vector<double> secs{vt_to_sec(base), vt_to_sec(slow)};
    // Critical-path overhead: block elapsed minus the winner's own work.
    const double r_o = (vt_to_sec(out.elapsed) - tau_best(secs)) / tau_best(secs);
    const double pi = tau_mean(secs) / vt_to_sec(out.elapsed);
    measured.add_row({TablePrinter::num(static_cast<std::int64_t>(dirty)),
                      TablePrinter::num(r_o, 3), TablePrinter::num(pi, 3),
                      TablePrinter::num(performance_improvement(kE, r_o), 3)});
  }
  std::cout << "\nFigure 4 (measured): overhead driven by the COW write "
               "fraction\n";
  measured.print(std::cout);
  std::cout << "\nPaper shape to verify: PI falls from ~e toward e/2 as "
               "R_o grows to 1; the measured PI tracks\n"
               "PI = e/(1+R_o) with R_o produced by real page copying.\n";
  return 0;
}
