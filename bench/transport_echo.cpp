// Transport-layer echo bench: the same ping-pong protocol on both
// backends, so the abstraction's two halves can be compared side by side —
// virtual-time round trips through the seeded simulator vs real UDP round
// trips through the kernel on loopback. One TransportChannel endpoint
// pings, the other echoes; every echo is a full reliable transfer in each
// direction (fragmentation, acks, retries).
//
//   $ transport_echo                         # table, both backends
//   $ transport_echo --backend=sim --loss=0.2
//   $ transport_echo --json                  # machine-readable record
//   $ transport_echo --check                 # exit nonzero on any failure
#include <chrono>
#include <iostream>
#include <string>

#include "dist/sim_transport.hpp"
#include "dist/socket_transport.hpp"
#include "dist/transport_channel.hpp"
#include "util/cli.hpp"
#include "util/des.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

struct EchoResult {
  std::string backend;
  int requested = 0;
  int completed = 0;
  bool payloads_intact = true;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  VDuration backoff_total = 0;
  std::uint64_t frames_sent = 0;
  double elapsed_ms = 0;       // virtual (sim) or wall (socket)
  double rtts_per_sec = 0;
};

Bytes make_payload(std::size_t n, std::uint8_t salt) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::uint8_t>(i * 29 + salt);
  return b;
}

/// Serial ping-pong over any Transport: node 0 sends, node 1 echoes, the
/// arrival of each echo launches the next ping. `pump` drives the backend
/// until done or its budget runs out.
template <typename Pump>
EchoResult run_echo(Transport& transport, const std::string& backend,
                    int messages, std::size_t bytes, Pump&& pump) {
  RetryPolicy policy;
  policy.rto_initial = vt_ms(20);
  policy.rto_cap = vt_ms(160);
  policy.max_attempts = 8;
  TransportChannel pinger(transport, 0, policy);
  TransportChannel echoer(transport, 1, policy);

  EchoResult r;
  r.backend = backend;
  r.requested = messages;
  echoer.set_handler([&](NodeId from, const Bytes& p) {
    echoer.send(from, p);  // reflect, reliably
  });
  pinger.set_handler([&](NodeId, const Bytes& p) {
    if (p != make_payload(bytes, static_cast<std::uint8_t>(r.completed)))
      r.payloads_intact = false;
    ++r.completed;
    if (r.completed < messages)
      pinger.send(1, make_payload(
                         bytes, static_cast<std::uint8_t>(r.completed)));
  });

  const auto wall_start = std::chrono::steady_clock::now();
  const VTime vt_start = transport.now();
  pinger.send(1, make_payload(bytes, 0));
  pump([&] { return r.completed >= messages; });

  if (transport.simulated()) {
    r.elapsed_ms = (transport.now() - vt_start) / 1000.0;
  } else {
    r.elapsed_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  }
  r.rtts_per_sec = r.elapsed_ms > 0 ? r.completed * 1000.0 / r.elapsed_ms : 0;
  r.retransmissions =
      pinger.stats().retransmissions + echoer.stats().retransmissions;
  r.timeouts = pinger.stats().timeouts + echoer.stats().timeouts;
  r.backoff_total =
      pinger.stats().backoff_total + echoer.stats().backoff_total;
  r.frames_sent = pinger.stats().frames_sent + echoer.stats().frames_sent;
  return r;
}

EchoResult run_sim(int messages, std::size_t bytes, double loss,
                   std::uint64_t seed) {
  EventQueue q;
  LinkModel link;
  link.loss_probability = loss;
  SimTransport transport(q, link, seed);
  return run_echo(transport, "sim", messages, bytes,
                  [&](const std::function<bool()>& done) {
                    while (!done() && q.step()) {
                    }
                  });
}

EchoResult run_socket(int messages, std::size_t bytes) {
  SocketTransport a(0);
  // Both endpoints share one transport object per process in tests; here
  // the two nodes share a single socket loop the same way the sim shares
  // a queue: node 1 is just a second binding on the same instance.
  a.add_peer(1, a.port());
  return run_echo(a, "socket", messages, bytes,
                  [&](const std::function<bool()>& done) {
                    const auto deadline = std::chrono::steady_clock::now() +
                                          std::chrono::seconds(30);
                    while (!done() &&
                           std::chrono::steady_clock::now() < deadline) {
                      a.run_until(a.now() + vt_ms(1));
                    }
                  });
}

void print_json(std::ostream& os, const EchoResult& r) {
  os << "{\"backend\":\"" << r.backend << "\",\"requested\":" << r.requested
     << ",\"completed\":" << r.completed
     << ",\"payloads_intact\":" << (r.payloads_intact ? "true" : "false")
     << ",\"retransmissions\":" << r.retransmissions
     << ",\"timeouts\":" << r.timeouts
     << ",\"backoff_total_us\":" << r.backoff_total
     << ",\"frames_sent\":" << r.frames_sent
     << ",\"elapsed_ms\":" << r.elapsed_ms
     << ",\"rtts_per_sec\":" << r.rtts_per_sec << "}\n";
}

bool check(const EchoResult& r, std::ostream& os) {
  bool ok = true;
  if (r.completed != r.requested) {
    os << "CHECK FAILED [" << r.backend << "]: completed " << r.completed
       << " of " << r.requested << " echoes\n";
    ok = false;
  }
  if (!r.payloads_intact) {
    os << "CHECK FAILED [" << r.backend << "]: payload corrupted in echo\n";
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int messages = static_cast<int>(cli.get_int("messages", 200));
  const std::size_t bytes =
      static_cast<std::size_t>(cli.get_int("bytes", 1024));
  const double loss = cli.get_double("loss", 0.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string backend = cli.get("backend", "both");
  const bool json = cli.has("json");
  const bool do_check = cli.has("check");

  std::vector<EchoResult> results;
  if (backend == "sim" || backend == "both")
    results.push_back(run_sim(messages, bytes, loss, seed));
  if (backend == "socket" || backend == "both")
    results.push_back(run_socket(messages, bytes));

  bool ok = true;
  if (json) {
    for (const EchoResult& r : results) print_json(std::cout, r);
    if (do_check)
      for (const EchoResult& r : results) ok = check(r, std::cerr) && ok;
    return ok ? 0 : 1;
  }

  std::cout << "Reliable echo over Transport: " << messages << " x " << bytes
            << "B round trips (sim loss=" << loss << ")\n";
  TablePrinter table({"backend", "completed", "retransmits", "timeouts",
                      "frames", "elapsed_ms", "rtt_per_s"});
  for (const EchoResult& r : results) {
    table.add_row({r.backend, TablePrinter::num(std::int64_t{r.completed}),
                   TablePrinter::num(static_cast<std::int64_t>(
                       r.retransmissions)),
                   TablePrinter::num(static_cast<std::int64_t>(r.timeouts)),
                   TablePrinter::num(static_cast<std::int64_t>(r.frames_sent)),
                   TablePrinter::num(r.elapsed_ms),
                   TablePrinter::num(r.rtts_per_sec)});
  }
  table.print(std::cout);
  std::cout << "\nsim elapsed is virtual (the modeled link: latency + "
               "serialization); socket elapsed is wall-clock loopback UDP "
               "through the kernel.\n";
  if (do_check)
    for (const EchoResult& r : results) ok = check(r, std::cerr) && ok;
  return ok ? 0 : 1;
}
