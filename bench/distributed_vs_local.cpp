// §3.1's distributed-case analysis made concrete: when does shipping
// alternatives to remote nodes beat timesharing them on the local 2-CPU
// machine? The local machine pays contention (processor sharing); the
// distributed run pays rfork/checkpoint/latency once per alternative but
// races at full speed. The crossover moves with (a) the computation
// length and (b) the process image size — exactly the two knobs §3.1
// names (copying cost vs latency vs computation).
//
//   $ distributed_vs_local
#include <iostream>

#include "dist/remote_alt.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

AddressSpace process_of_kb(std::size_t kb) {
  AddressSpace as(4096, 512);
  for (std::size_t p = 0; p < kb * 1024 / 4096; ++p)
    as.store<int>(p * 4096, static_cast<int>(p) + 1);
  return as;
}

std::vector<RemoteAltSpec> make_specs(int n, double base_sec,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<RemoteAltSpec> specs;
  for (int i = 0; i < n; ++i) {
    // 1x..3x dispersion around the base computation time.
    const double sec = base_sec * rng.next_double_in(1.0, 3.0);
    specs.push_back(
        RemoteAltSpec{static_cast<VDuration>(sec * 1e6), true});
  }
  return specs;
}

}  // namespace

int main() {
  RemoteForker forker{LinkModel{}, DistCost{}};
  const VDuration local_fork = vt_ms(12);  // the HP's local fork cost

  std::cout << "Distributed (one node per alternative, rfork full-copy) vs "
               "local (2 CPUs, timesharing), 6 alternatives\n";
  TablePrinter table({"work_base_s", "image_kb", "local_s", "dist_s",
                      "winner"});
  for (double base : {0.1, 0.5, 2.0, 10.0}) {
    for (std::size_t kb : {35u, 280u}) {
      auto specs = make_specs(6, base, 17);
      AddressSpace image = process_of_kb(kb);
      const VDuration local = local_race(2, local_fork, specs);
      auto dist = distributed_race(forker, image, specs);
      table.add_row(
          {TablePrinter::num(base, 1),
           TablePrinter::num(static_cast<std::int64_t>(kb)),
           TablePrinter::num(vt_to_sec(local)),
           TablePrinter::num(vt_to_sec(dist.elapsed)),
           vt_to_sec(local) < vt_to_sec(dist.elapsed) ? "local" : "dist"});
    }
  }
  table.print(std::cout);

  std::cout << "\nOn-demand migration shifts the crossover (70 KB image, "
               "touch fraction 0.3)\n";
  TablePrinter od({"work_base_s", "dist_full_s", "dist_ondemand_s"});
  AddressSpace image = process_of_kb(70);
  for (double base : {0.1, 0.5, 2.0}) {
    auto specs = make_specs(6, base, 17);
    auto full = distributed_race(forker, image, specs, false);
    auto lazy = distributed_race(forker, image, specs, true, 0.3);
    od.add_row({TablePrinter::num(base, 1),
                TablePrinter::num(vt_to_sec(full.elapsed)),
                TablePrinter::num(vt_to_sec(lazy.elapsed))});
  }
  od.print(std::cout);
  std::cout << "\nShape to verify (§3.1): short computations / big images "
               "favour the local machine (copying+latency dominate); long "
               "computations favour distribution (contention dominates); "
               "on-demand state management moves the crossover toward "
               "distribution.\n";
  return 0;
}
