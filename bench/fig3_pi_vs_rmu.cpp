// FIG3 — reproduces Figure 3: PI as a function of R_μ with R_o = 0.5.
//
// Two columns are produced for each R_μ: the paper's analytic line
// PI = R_μ/(1+R_o), and a *measured* PI from actually racing synthetic
// alternatives through the speculation runtime with the block overhead
// arranged so R_o ≈ 0.5. The measured points landing on the analytic line
// is the reproduction.
//
//   $ fig3_pi_vs_rmu [--alts=4] [--points=11] [--trace=FILE] [--profile]
#include <iostream>

#include "core/alt.hpp"
#include "core/alt_context.hpp"
#include "core/runtime.hpp"
#include "model/perf_model.hpp"
#include "trace/trace_cli.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

/// Builds alternative durations with mean/best exactly `r_mu`: the best
/// runs `base`; the others share the excess evenly.
std::vector<VDuration> durations_for(double r_mu, int alts, VDuration base) {
  std::vector<VDuration> d(static_cast<std::size_t>(alts));
  d[0] = base;
  const double total = r_mu * static_cast<double>(alts) *
                       static_cast<double>(base);
  const double rest = (total - static_cast<double>(base)) / (alts - 1);
  for (int i = 1; i < alts; ++i) d[static_cast<std::size_t>(i)] =
      static_cast<VDuration>(rest);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int alts = static_cast<int>(cli.get_int("alts", 4));
  const int points = static_cast<int>(cli.get_int("points", 11));
  trace::TraceSession trace_session(cli);

  // Calibrate the block overhead once: an empty race with the calibrated
  // cost model and a fixed parent size.
  RuntimeConfig cfg;
  cfg.backend = AltBackend::kVirtual;
  cfg.processors = static_cast<std::size_t>(alts);  // dispersion, not queueing
  cfg.cost = CostModel::calibrated_hp();
  cfg.num_pages = 256;

  auto run_block = [&](const std::vector<VDuration>& durations) {
    Runtime rt(cfg);
    World root = rt.make_root("fig3");
    for (int p = 0; p < 16; ++p)
      root.space().store<double>(static_cast<std::uint64_t>(p) * 4096, 1.0);
    std::vector<Alternative> a;
    for (std::size_t i = 0; i < durations.size(); ++i) {
      const VDuration dur = durations[i];
      a.push_back(Alternative{"alt" + std::to_string(i), nullptr,
                              [dur](AltContext& ctx) {
                                // One page of private state: a realistic
                                // write fraction.
                                ctx.space().store<int>(0, 1);
                                ctx.work(dur);
                              },
                              nullptr});
    }
    return run_alternatives(rt, root, a);
  };

  // Overhead calibration run (all durations equal): the critical-path
  // overhead is whatever the block adds on top of the winner's own work.
  AltOutcome probe = run_block(std::vector<VDuration>(
      static_cast<std::size_t>(alts), vt_ms(100)));
  const VDuration overhead = probe.elapsed - vt_ms(100);
  // Pick the best-case duration so that R_o = overhead/best = 0.5.
  const auto base = static_cast<VDuration>(2 * overhead);

  TablePrinter table({"R_mu", "PI_analytic", "PI_measured", "R_o_meas"});
  for (int k = 0; k < points; ++k) {
    const double r_mu = 1.0 + 4.0 * k / (points - 1);  // [1, 5]
    auto durations = durations_for(r_mu, alts, base);
    AltOutcome out = run_block(durations);

    std::vector<double> secs;
    for (VDuration d : durations) secs.push_back(vt_to_sec(d));
    const double pi_measured = tau_mean(secs) / vt_to_sec(out.elapsed);
    // Critical-path overhead: block elapsed minus the winner's own work.
    const double r_o_meas =
        (vt_to_sec(out.elapsed) - tau_best(secs)) / tau_best(secs);
    table.add_row({TablePrinter::num(r_mu),
                   TablePrinter::num(performance_improvement(r_mu, 0.5)),
                   TablePrinter::num(pi_measured),
                   TablePrinter::num(r_o_meas)});
  }

  std::cout << "Figure 3: PI as a function of R_mu (R_o = 0.5), " << alts
            << " alternatives\n";
  table.print(std::cout);
  std::cout << "\nPaper shape to verify: a straight line of slope "
               "1/(1+R_o) = 0.67; break-even (PI = 1) at R_mu = 1.5;\n"
               "measured points track the analytic line.\n";
  trace_session.finish(std::cout);
  return 0;
}
