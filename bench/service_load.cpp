// SERVICE-LOAD — open-loop load sweep of the hedged-speculation service:
// where goodput saturates, how far latency tails stretch, and whether the
// server *sheds* instead of collapsing past saturation.
//
// An open-loop generator (arrivals on a fixed clock, never gated on
// completions — the only honest way to measure an overloaded server) sends
// numbered requests from several client nodes to one HedgedServer backed
// by a pool of executor nodes on a seeded SimTransport. Each sweep row
// offers a different request rate; per row we record goodput (kOk
// responses over the measurement window), shed/failed counts, and
// client-observed latency percentiles p50 / p99 / p99.9 of the admitted
// requests. After the sweep, one extra config runs at exactly 2x the
// saturation rate (the offered load of the peak-goodput row).
//
// With --check the binary exits non-zero unless the shed-not-collapse
// contract holds at 2x saturation:
//
//   * goodput >= 80% of the sweep's peak goodput (overload is refused at
//     admission, not absorbed into a collapsing queue);
//   * p99 latency of admitted (kOk) requests stays within the configured
//     deadline (plus wire transit) — shed requests answer immediately and
//     admitted ones are deadline-bounded, so the tail cannot run away;
//   * every kOk value equals service_reference() and the external
//     EffectLog holds no duplicate (client, seq) — load never buys the
//     server out of exactly-once;
//   * hedges actually fired somewhere in the sweep (the races/sec column
//     is not vacuous).
//
//   $ service_load                          # table, default ladder
//   $ service_load --duration=400ms --mean=1ms --inflight=8 --queue=16
//   $ service_load --check --json=BENCH_service_load.json
//   $ service_load --trace=trace.json --profile
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dist/sim_transport.hpp"
#include "service/hedged_server.hpp"
#include "service/service_backend.hpp"
#include "trace/trace_cli.hpp"
#include "util/cli.hpp"
#include "util/des.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

double ms(VDuration d) { return static_cast<double>(d) / 1000.0; }

constexpr NodeId kServerNode = 100;
constexpr NodeId kFirstClientNode = 200;
constexpr std::uint64_t kWork = 32;

/// Extra client-observed latency the deadline bound allows for: request
/// and response transit on the modeled link (the deadline clock starts at
/// the server, the stopwatch at the client).
constexpr double kWireSlackMs = 2.5;

struct LoadParams {
  VDuration duration = vt_ms(400);  // offered-load window (virtual)
  VDuration deadline = vt_ms(50);
  VDuration mean = vt_ms(1);  // backend service mean
  VDuration hedge_delay = vt_ms(2);
  std::size_t inflight = 8;
  std::size_t queue = 16;
  std::size_t clients = 4;
  std::size_t backends = 3;
  std::uint64_t seed = 1;
};

struct LoadRow {
  double offered_rps = 0;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t unanswered = 0;
  std::uint64_t wrong_values = 0;
  std::size_t effect_duplicates = 0;
  double goodput_rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  std::uint64_t hedges = 0;
  std::uint64_t brownout_enters = 0;
  std::size_t queue_peak = 0;
};

/// One open-loop sender: requests leave on a fixed interarrival clock
/// regardless of what came back, so offered load is exactly what the row
/// claims. No retries — the server's admission verdict is the datum.
class OpenLoopClient final : public TransportReceiver {
 public:
  OpenLoopClient(Transport& transport, NodeId self, VDuration deadline)
      : transport_(transport), self_(self), deadline_(deadline) {
    transport_.bind(self_, *this);
  }
  ~OpenLoopClient() override { transport_.unbind(self_); }

  void start(VDuration interarrival, VTime until) {
    interarrival_ = interarrival;
    until_ = until;
    tick();
  }

  void on_message(NodeId, std::span<const std::uint8_t> payload) override {
    const auto resp = decode_response(payload);
    if (!resp || resp->client != self_ || resp->seq == 0) return;
    const std::uint64_t i = resp->seq - 1;
    if (i >= sent_.size() || sent_[i].answered) return;
    Sent& s = sent_[i];
    s.answered = true;
    s.status = resp->status;
    s.latency_ms = (transport_.now() - s.sent_at) / 1000.0;
    if (resp->status == SvcStatus::kOk &&
        resp->value != service_reference(s.payload, kWork))
      ++wrong_values_;
  }

  void collect(LoadRow& row, std::vector<double>& ok_latencies) const {
    row.sent += sent_.size();
    row.wrong_values += wrong_values_;
    for (const Sent& s : sent_) {
      if (!s.answered) {
        ++row.unanswered;
      } else if (s.status == SvcStatus::kOk) {
        ++row.ok;
        ok_latencies.push_back(s.latency_ms);
      } else if (s.status == SvcStatus::kShed) {
        ++row.shed;
      } else {
        ++row.failed;
      }
    }
  }

 private:
  struct Sent {
    VTime sent_at = 0;
    std::uint64_t payload = 0;
    bool answered = false;
    SvcStatus status = SvcStatus::kOk;
    double latency_ms = 0;
  };

  void tick() {
    if (transport_.now() >= until_) return;
    SvcRequest r;
    r.client = self_;
    r.seq = static_cast<std::uint64_t>(sent_.size()) + 1;
    r.deadline = deadline_;
    r.work = kWork;
    r.payload = r.seq * 1315423911ull + self_;
    sent_.push_back({transport_.now(), r.payload});
    const Bytes frame = encode_request(r);
    transport_.send(self_, kServerNode,
                    std::span(frame.data(), frame.size()));
    transport_.schedule(interarrival_, [this] { tick(); });
  }

  Transport& transport_;
  NodeId self_;
  VDuration deadline_;
  VDuration interarrival_ = vt_ms(1);
  VTime until_ = 0;
  std::vector<Sent> sent_;
  std::uint64_t wrong_values_ = 0;
};

LoadRow run_config(const LoadParams& p, double offered_rps) {
  LoadRow row;
  row.offered_rps = offered_rps;

  LinkModel link;
  link.latency = vt_us(500);
  link.per_message_overhead = vt_us(100);
  EventQueue queue;
  SimTransport transport(queue, link, p.seed);
  EffectLog effects;

  ServiceConfig sc;
  sc.seed = p.seed;
  sc.max_inflight = p.inflight;
  sc.queue_capacity = p.queue;
  sc.default_deadline = p.deadline;
  sc.hedge_delay = p.hedge_delay;
  sc.service_mean = p.mean;
  sc.health.heartbeat_interval = vt_ms(10);
  sc.health.suspect_after = vt_ms(40);
  sc.health.dead_after = vt_ms(120);
  HedgedServer server(transport, kServerNode, effects, sc);

  std::vector<std::unique_ptr<ServiceBackend>> backends;
  for (std::size_t i = 1; i <= p.backends; ++i) {
    BackendConfig bc;
    bc.seed = p.seed + i;
    bc.service_mean = p.mean;
    bc.health = sc.health;
    backends.push_back(std::make_unique<ServiceBackend>(
        transport, static_cast<NodeId>(i), kServerNode, bc));
    server.add_backend(static_cast<NodeId>(i));
  }
  transport.run_until(vt_ms(2));  // beats land; every backend is alive

  // Interleave the clients' clocks so arrivals spread across the
  // interarrival period instead of striking in phase.
  const VTime load_start = transport.now();
  const VTime load_end = load_start + p.duration;
  const double per_client_rps = offered_rps / static_cast<double>(p.clients);
  const auto interarrival =
      static_cast<VDuration>(1'000'000.0 / per_client_rps);
  std::vector<std::unique_ptr<OpenLoopClient>> clients;
  for (std::size_t i = 0; i < p.clients; ++i) {
    clients.push_back(std::make_unique<OpenLoopClient>(
        transport, kFirstClientNode + static_cast<NodeId>(i), p.deadline));
    const VDuration phase = static_cast<VDuration>(
        interarrival * i / static_cast<VDuration>(p.clients));
    OpenLoopClient* cl = clients.back().get();
    transport.schedule(phase, [cl, interarrival, load_end] {
      cl->start(interarrival, load_end);
    });
  }

  // Drain: admitted requests resolve by their deadline, shed ones sooner;
  // the fixed margin keeps the measurement window identical across rows.
  const VTime drain_end = load_end + p.deadline + vt_ms(10);
  transport.run_until(drain_end);

  std::vector<double> ok_latencies;
  for (const auto& cl : clients) cl->collect(row, ok_latencies);
  std::sort(ok_latencies.begin(), ok_latencies.end());
  if (!ok_latencies.empty()) {
    row.p50_ms = percentile_sorted(ok_latencies, 0.50);
    row.p99_ms = percentile_sorted(ok_latencies, 0.99);
    row.p999_ms = percentile_sorted(ok_latencies, 0.999);
  }
  const double window_ms = (drain_end - load_start) / 1000.0;
  row.goodput_rps = window_ms > 0 ? row.ok * 1000.0 / window_ms : 0;
  row.effect_duplicates = effects.duplicates();
  row.hedges = server.stats().hedges;
  row.brownout_enters = server.stats().brownout_enters;
  row.queue_peak = server.stats().queue_peak;
  return row;
}

void add_table_row(TablePrinter& table, const std::string& label,
                   const LoadRow& r) {
  table.add_row(
      {label, TablePrinter::num(r.offered_rps, 0),
       TablePrinter::num(static_cast<std::int64_t>(r.sent)),
       TablePrinter::num(static_cast<std::int64_t>(r.ok)),
       TablePrinter::num(static_cast<std::int64_t>(r.shed)),
       TablePrinter::num(static_cast<std::int64_t>(r.failed)),
       TablePrinter::num(r.goodput_rps, 0), TablePrinter::num(r.p50_ms),
       TablePrinter::num(r.p99_ms), TablePrinter::num(r.p999_ms),
       TablePrinter::num(static_cast<std::int64_t>(r.hedges)),
       TablePrinter::num(static_cast<std::int64_t>(r.queue_peak))});
}

void json_row(std::ostream& out, const LoadRow& r, bool last) {
  out << "    {\"offered_rps\": " << r.offered_rps
      << ", \"sent\": " << r.sent << ", \"ok\": " << r.ok
      << ", \"shed\": " << r.shed << ", \"failed\": " << r.failed
      << ", \"unanswered\": " << r.unanswered
      << ", \"goodput_rps\": " << r.goodput_rps
      << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
      << ", \"p999_ms\": " << r.p999_ms << ", \"hedges\": " << r.hedges
      << ", \"queue_peak\": " << r.queue_peak << "}" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  LoadParams p;
  p.duration = cli.get_duration("duration", p.duration);
  p.deadline = cli.get_duration("deadline", p.deadline);
  p.mean = cli.get_duration("mean", p.mean);
  p.hedge_delay = cli.get_duration("hedge-delay", p.hedge_delay);
  p.inflight = static_cast<std::size_t>(cli.get_int("inflight", 8));
  p.queue = static_cast<std::size_t>(cli.get_int("queue", 16));
  p.clients = static_cast<std::size_t>(cli.get_int("clients", 4));
  p.backends = static_cast<std::size_t>(cli.get_int("backends", 3));
  p.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool do_check = cli.has("check");
  const std::string json_path = cli.get("json", "");
  trace::TraceSession trace_session(cli);

  // Nominal capacity from Little's law: max_inflight concurrent slots,
  // each occupied for the tail-weighted mean service time.
  const double eff_mean_ticks =
      static_cast<double>(p.mean) *
      (1.0 + ServiceConfig{}.tail_prob * (ServiceConfig{}.tail_factor - 1.0));
  const double nominal_rps =
      static_cast<double>(p.inflight) * 1'000'000.0 / eff_mean_ticks;
  const std::vector<double> multipliers{0.25, 0.5, 0.75, 1.0, 1.5, 2.0};

  std::cout << "Hedged-service open-loop load sweep: " << p.backends
            << " backends, inflight " << p.inflight << ", queue " << p.queue
            << ", mean " << ms(p.mean) << " ms, deadline " << ms(p.deadline)
            << " ms, window " << ms(p.duration) << " ms, seed " << p.seed
            << " (nominal " << static_cast<std::uint64_t>(nominal_rps)
            << " req/s)\n";

  std::vector<LoadRow> rows;
  for (const double m : multipliers)
    rows.push_back(run_config(p, nominal_rps * m));

  // Saturation = the offered rate of the peak-goodput row; the contract
  // is then probed at exactly twice that.
  std::size_t peak_i = 0;
  for (std::size_t i = 1; i < rows.size(); ++i)
    if (rows[i].goodput_rps > rows[peak_i].goodput_rps) peak_i = i;
  const double peak_goodput = rows[peak_i].goodput_rps;
  const double saturation_rps = rows[peak_i].offered_rps;
  const LoadRow over = run_config(p, 2.0 * saturation_rps);

  TablePrinter table({"load", "offered_rps", "sent", "ok", "shed", "failed",
                      "goodput_rps", "p50_ms", "p99_ms", "p999_ms", "hedges",
                      "queue_peak"});
  for (std::size_t i = 0; i < rows.size(); ++i)
    add_table_row(table, TablePrinter::num(multipliers[i]) + "x",
                  rows[i]);
  add_table_row(table, "2x-sat", over);
  table.print(std::cout);
  std::cout << "(shape to verify: goodput climbs to saturation then holds "
               "flat while shed absorbs the overflow; admitted p99 stays "
               "under the deadline because overload is refused at "
               "admission, not queued to death)\n";

  // --check: the shed-not-collapse contract, machine-checked.
  bool pass = true;
  auto fail = [&pass, do_check](const std::string& why) {
    if (do_check) std::cout << "check FAIL: " << why << "\n";
    pass = false;
  };
  std::uint64_t total_hedges = over.hedges;
  for (const LoadRow& r : rows) total_hedges += r.hedges;
  auto audit = [&fail](const std::string& label, const LoadRow& r) {
    if (r.wrong_values > 0)
      fail(label + ": " + std::to_string(r.wrong_values) + " wrong values");
    if (r.effect_duplicates > 0)
      fail(label + ": duplicate effects under load");
    if (r.unanswered > 0)
      fail(label + ": " + std::to_string(r.unanswered) +
           " requests never answered");
  };
  for (std::size_t i = 0; i < rows.size(); ++i)
    audit(TablePrinter::num(multipliers[i]) + "x", rows[i]);
  audit("2x-sat", over);
  if (peak_goodput <= 0) fail("no goodput anywhere; the sweep is vacuous");
  if (total_hedges == 0) fail("no hedge ever fired; the sweep is vacuous");
  if (over.shed == 0)
    fail("2x saturation shed nothing; overload never reached admission");
  if (over.goodput_rps < 0.8 * peak_goodput)
    fail("goodput collapsed past saturation: " +
         std::to_string(over.goodput_rps) + " req/s vs peak " +
         std::to_string(peak_goodput));
  if (over.p99_ms > ms(p.deadline) + kWireSlackMs)
    fail("admitted p99 " + std::to_string(over.p99_ms) +
         " ms exceeds the " + std::to_string(ms(p.deadline)) +
         " ms deadline at 2x saturation");
  if (do_check)
    std::cout << "\ncheck: " << (pass ? "PASS" : "FAIL") << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"service_load\",\n  \"seed\": " << p.seed
        << ",\n  \"backends\": " << p.backends
        << ",\n  \"inflight\": " << p.inflight
        << ",\n  \"queue\": " << p.queue
        << ",\n  \"mean_ms\": " << ms(p.mean)
        << ",\n  \"deadline_ms\": " << ms(p.deadline)
        << ",\n  \"window_ms\": " << ms(p.duration)
        << ",\n  \"nominal_rps\": " << nominal_rps
        << ",\n  \"saturation_rps\": " << saturation_rps
        << ",\n  \"peak_goodput_rps\": " << peak_goodput
        << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i)
      json_row(out, rows[i], false);
    json_row(out, over, true);
    out << "  ],\n  \"check\": \"" << (pass ? "PASS" : "FAIL") << "\"\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  trace_session.finish(std::cout);
  return pass ? 0 : 1;
}
