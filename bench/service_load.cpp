// SERVICE-LOAD — open-loop load sweep of the hedged-speculation service:
// where goodput saturates, how far latency tails stretch, and whether the
// server *sheds* instead of collapsing past saturation.
//
// An open-loop generator (arrivals on a fixed clock, never gated on
// completions — the only honest way to measure an overloaded server) sends
// numbered requests from several client nodes to the service. Three
// backends:
//
//   * default (no --cluster): one HedgedServer + executor pool on a seeded
//     SimTransport — the classic single-node sweep;
//   * --cluster=N: N backend-less ClusterNodes behind consistent-hash
//     routing (each client targets its ring owner), still on the sim;
//   * --backend=socket --cluster=N: every ClusterNode is a real forked
//     process on loopback UDP with a FileEffectLog over one shared file —
//     goodput, tails, and exactly-once measured across real processes.
//     --kill-one additionally SIGKILLs one node mid-load at saturation and
//     measures the cluster riding through the eviction.
//
// Each sweep row offers a different request rate; per row we record
// goodput (kOk responses over the measurement window), shed/failed counts,
// and client-observed latency percentiles p50 / p99 / p99.9 of the
// admitted requests — per node in cluster mode. After the sweep, one extra
// config runs at exactly 2x the saturation rate (the offered load of the
// peak-goodput row); with --cluster >= 2 another runs a 1-node baseline at
// the saturation rate, giving the scaling factor.
//
// With --check the binary exits non-zero unless the shed-not-collapse
// contract holds at 2x saturation:
//
//   * goodput >= 80% of the sweep's peak goodput (overload is refused at
//     admission, not absorbed into a collapsing queue);
//   * p99 latency of admitted (kOk) requests stays within the configured
//     deadline (plus wire transit) — PER NODE in cluster mode, so one hot
//     shard cannot hide behind the aggregate;
//   * every kOk value equals service_reference() and the effect log
//     (cluster-wide in cluster mode) holds no duplicate (client, seq) —
//     load never buys the service out of exactly-once;
//   * with --cluster >= 2, peak goodput beats the 1-node baseline at the
//     saturation rate (the ring actually buys capacity).
//
//   $ service_load                          # table, default ladder
//   $ service_load --duration=400ms --mean=1ms --inflight=8 --queue=16
//   $ service_load --check --json=BENCH_service_load.json
//   $ service_load --cluster=3 --check
//   $ service_load --backend=socket --cluster=3 --kill-one --check
//       [--json=BENCH_service_load_socket.json]
//   $ service_load --trace=trace.json --profile
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/sim_transport.hpp"
#include "dist/socket_transport.hpp"
#include "service/cluster.hpp"
#include "service/hedged_server.hpp"
#include "service/service_backend.hpp"
#include "trace/trace_cli.hpp"
#include "util/cli.hpp"
#include "util/des.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

double ms(VDuration d) { return static_cast<double>(d) / 1000.0; }

constexpr NodeId kServerNode = 100;
constexpr NodeId kFirstClientNode = 200;
constexpr std::uint64_t kWork = 32;
constexpr std::uint64_t kRingSeed = 7;
constexpr std::size_t kVnodes = 8;

/// Extra client-observed latency the deadline bound allows for: request
/// and response transit on the modeled link (the deadline clock starts at
/// the server, the stopwatch at the client). Real sockets get extra slack
/// for kernel scheduling jitter on shared CI cores.
constexpr double kWireSlackMs = 2.5;
constexpr double kSocketSlackMs = 10.0;

struct LoadParams {
  VDuration duration = vt_ms(400);  // offered-load window (virtual)
  VDuration deadline = vt_ms(50);
  VDuration mean = vt_ms(1);  // backend service mean
  VDuration hedge_delay = vt_ms(2);
  std::size_t inflight = 8;
  std::size_t queue = 16;
  std::size_t clients = 4;
  std::size_t backends = 3;
  std::uint64_t seed = 1;
  std::string backend = "sim";  // sim | socket
  std::size_t cluster = 0;      // 0 = classic single-server sweep
  bool kill_one = false;        // SIGKILL one node mid-load (cluster >= 2)
};

struct NodePerf {
  NodeId node = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t unanswered = 0;
  double p99_ms = 0;
};

struct LoadRow {
  double offered_rps = 0;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t unanswered = 0;
  std::uint64_t wrong_values = 0;
  std::size_t effect_duplicates = 0;
  double goodput_rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  std::uint64_t hedges = 0;
  std::uint64_t brownout_enters = 0;
  std::size_t queue_peak = 0;
  std::vector<NodePerf> nodes;  // per-node breakdown (cluster mode)
  bool killed = false;          // a node was SIGKILLed mid-row
};

/// Per-target-node accumulator while collecting client records.
struct NodeAccum {
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t unanswered = 0;
  std::vector<double> lat;
};

/// One open-loop sender: requests leave on a fixed interarrival clock
/// regardless of what came back, so offered load is exactly what the row
/// claims. No retries — the server's admission verdict is the datum. In
/// cluster mode the target is the client's ring owner; retarget() is the
/// operator action after an eviction.
class OpenLoopClient final : public TransportReceiver {
 public:
  OpenLoopClient(Transport& transport, NodeId self, NodeId target,
                 VDuration deadline)
      : transport_(transport),
        self_(self),
        target_(target),
        deadline_(deadline) {
    transport_.bind(self_, *this);
  }
  ~OpenLoopClient() override { transport_.unbind(self_); }

  NodeId self() const { return self_; }
  NodeId target() const { return target_; }
  void retarget(NodeId target) { target_ = target; }

  void start(VDuration interarrival, VTime until) {
    interarrival_ = interarrival;
    until_ = until;
    tick();
  }

  void on_message(NodeId, std::span<const std::uint8_t> payload) override {
    const auto resp = decode_response(payload);
    if (!resp || resp->client != self_ || resp->seq == 0) return;
    const std::uint64_t i = resp->seq - 1;
    if (i >= sent_.size() || sent_[i].answered) return;
    Sent& s = sent_[i];
    s.answered = true;
    s.status = resp->status;
    s.latency_ms = (transport_.now() - s.sent_at) / 1000.0;
    if (resp->status == SvcStatus::kOk &&
        resp->value != service_reference(s.payload, kWork))
      ++wrong_values_;
  }

  void collect(LoadRow& row, std::map<NodeId, NodeAccum>& nodes,
               std::vector<double>& ok_latencies) const {
    row.sent += sent_.size();
    row.wrong_values += wrong_values_;
    for (const Sent& s : sent_) {
      NodeAccum& a = nodes[s.target];
      if (!s.answered) {
        ++row.unanswered;
        ++a.unanswered;
      } else if (s.status == SvcStatus::kOk) {
        ++row.ok;
        ++a.ok;
        ok_latencies.push_back(s.latency_ms);
        a.lat.push_back(s.latency_ms);
      } else if (s.status == SvcStatus::kShed) {
        ++row.shed;
        ++a.shed;
      } else {
        ++row.failed;
        ++a.failed;
      }
    }
  }

 private:
  struct Sent {
    VTime sent_at = 0;
    std::uint64_t payload = 0;
    NodeId target = 0;
    bool answered = false;
    SvcStatus status = SvcStatus::kOk;
    double latency_ms = 0;
  };

  void tick() {
    if (transport_.now() >= until_) return;
    SvcRequest r;
    r.client = self_;
    r.seq = static_cast<std::uint64_t>(sent_.size()) + 1;
    r.deadline = deadline_;
    r.work = kWork;
    r.payload = r.seq * 1315423911ull + self_;
    sent_.push_back({transport_.now(), r.payload, target_});
    const Bytes frame = encode_request(r);
    transport_.send(self_, target_,
                    std::span(frame.data(), frame.size()));
    transport_.schedule(interarrival_, [this] { tick(); });
  }

  Transport& transport_;
  NodeId self_;
  NodeId target_;
  VDuration deadline_;
  VDuration interarrival_ = vt_ms(1);
  VTime until_ = 0;
  std::vector<Sent> sent_;
  std::uint64_t wrong_values_ = 0;
};

void finish_row(LoadRow& row, std::map<NodeId, NodeAccum>& per_node,
                std::vector<double>& ok_latencies, VTime load_start,
                VTime drain_end) {
  std::sort(ok_latencies.begin(), ok_latencies.end());
  if (!ok_latencies.empty()) {
    row.p50_ms = percentile_sorted(ok_latencies, 0.50);
    row.p99_ms = percentile_sorted(ok_latencies, 0.99);
    row.p999_ms = percentile_sorted(ok_latencies, 0.999);
  }
  const double window_ms = (drain_end - load_start) / 1000.0;
  row.goodput_rps = window_ms > 0 ? row.ok * 1000.0 / window_ms : 0;
  for (auto& [id, a] : per_node) {
    NodePerf np;
    np.node = id;
    np.ok = a.ok;
    np.shed = a.shed;
    np.failed = a.failed;
    np.unanswered = a.unanswered;
    std::sort(a.lat.begin(), a.lat.end());
    if (!a.lat.empty()) np.p99_ms = percentile_sorted(a.lat, 0.99);
    row.nodes.push_back(np);
  }
}

// ---------------------------------------------------------------------------
// Classic single-server sweep (the PR 8 bench, unchanged in behavior)

LoadRow run_config(const LoadParams& p, double offered_rps) {
  LoadRow row;
  row.offered_rps = offered_rps;

  LinkModel link;
  link.latency = vt_us(500);
  link.per_message_overhead = vt_us(100);
  EventQueue queue;
  SimTransport transport(queue, link, p.seed);
  EffectLog effects;

  ServiceConfig sc;
  sc.seed = p.seed;
  sc.max_inflight = p.inflight;
  sc.queue_capacity = p.queue;
  sc.default_deadline = p.deadline;
  sc.hedge_delay = p.hedge_delay;
  sc.service_mean = p.mean;
  sc.health.heartbeat_interval = vt_ms(10);
  sc.health.suspect_after = vt_ms(40);
  sc.health.dead_after = vt_ms(120);
  HedgedServer server(transport, kServerNode, effects, sc);

  std::vector<std::unique_ptr<ServiceBackend>> backends;
  for (std::size_t i = 1; i <= p.backends; ++i) {
    BackendConfig bc;
    bc.seed = p.seed + i;
    bc.service_mean = p.mean;
    bc.health = sc.health;
    backends.push_back(std::make_unique<ServiceBackend>(
        transport, static_cast<NodeId>(i), kServerNode, bc));
    server.add_backend(static_cast<NodeId>(i));
  }
  transport.run_until(vt_ms(2));  // beats land; every backend is alive

  // Interleave the clients' clocks so arrivals spread across the
  // interarrival period instead of striking in phase.
  const VTime load_start = transport.now();
  const VTime load_end = load_start + p.duration;
  const double per_client_rps = offered_rps / static_cast<double>(p.clients);
  const auto interarrival =
      static_cast<VDuration>(1'000'000.0 / per_client_rps);
  std::vector<std::unique_ptr<OpenLoopClient>> clients;
  for (std::size_t i = 0; i < p.clients; ++i) {
    clients.push_back(std::make_unique<OpenLoopClient>(
        transport, kFirstClientNode + static_cast<NodeId>(i), kServerNode,
        p.deadline));
    const VDuration phase = static_cast<VDuration>(
        interarrival * i / static_cast<VDuration>(p.clients));
    OpenLoopClient* cl = clients.back().get();
    transport.schedule(phase, [cl, interarrival, load_end] {
      cl->start(interarrival, load_end);
    });
  }

  // Drain: admitted requests resolve by their deadline, shed ones sooner;
  // the fixed margin keeps the measurement window identical across rows.
  const VTime drain_end = load_end + p.deadline + vt_ms(10);
  transport.run_until(drain_end);

  std::map<NodeId, NodeAccum> per_node;
  std::vector<double> ok_latencies;
  for (const auto& cl : clients) cl->collect(row, per_node, ok_latencies);
  finish_row(row, per_node, ok_latencies, load_start, drain_end);
  row.nodes.clear();  // single server: the aggregate IS the node
  row.effect_duplicates = effects.duplicates();
  row.hedges = server.stats().hedges;
  row.brownout_enters = server.stats().brownout_enters;
  row.queue_peak = server.stats().queue_peak;
  return row;
}

// ---------------------------------------------------------------------------
// Cluster sweep (sim or forked socket processes)

ClusterConfig cluster_config(const LoadParams& p, NodeId self) {
  ClusterConfig c;
  c.seed = kRingSeed;
  c.vnodes = kVnodes;
  c.beat_interval = vt_ms(10);
  c.peer_health = {.heartbeat_interval = vt_ms(10),
                   .suspect_after = vt_ms(40),
                   .dead_after = vt_ms(120)};
  c.handoff_retry = vt_ms(10);
  c.probation = vt_ms(60);
  c.service.seed = p.seed + self;
  c.service.max_inflight = p.inflight;
  c.service.queue_capacity = p.queue;
  c.service.default_deadline = p.deadline;
  c.service.hedge_delay = p.hedge_delay;
  c.service.service_mean = p.mean;
  return c;
}

/// SIGKILL + reap every forked node on scope exit.
struct ChildReaper {
  std::vector<pid_t> pids;
  ~ChildReaper() {
    for (pid_t p : pids) {
      ::kill(p, SIGKILL);
      int status = 0;
      ::waitpid(p, &status, 0);
    }
  }
};

bool read_full(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Forked cluster-node body: UDP port handshake over pipes, then serve
/// until the parent's SIGKILL (or a generous safety budget).
[[noreturn]] void cluster_node_process(const LoadParams& p, NodeId self,
                                       const std::vector<NodeId>& members,
                                       int wr_port, int rd_table,
                                       const std::string& log_path) {
  SocketTransport transport(self);
  const std::uint16_t port = transport.port();
  if (!write_full(wr_port, &port, sizeof port)) ::_exit(1);
  ::close(wr_port);
  for (std::size_t i = 0; i < members.size(); ++i) {
    std::uint64_t id = 0;
    std::uint16_t peer_port = 0;
    if (!read_full(rd_table, &id, sizeof id) ||
        !read_full(rd_table, &peer_port, sizeof peer_port))
      ::_exit(1);
    if (id != self) transport.add_peer(id, peer_port);
  }
  ::close(rd_table);
  FileEffectLog effects(log_path, self);
  if (!effects.valid()) ::_exit(1);
  ClusterNode node(transport, self, members, effects,
                   cluster_config(p, self));
  const VTime budget = transport.now() + vt_sec(120);
  while (transport.now() < budget)
    transport.run_until(transport.now() + vt_ms(2));
  ::_exit(0);
}

std::vector<pid_t> spawn_cluster(const LoadParams& p,
                                 const std::vector<NodeId>& members,
                                 const std::string& log_path,
                                 SocketTransport& parent) {
  std::vector<pid_t> pids;
  std::vector<std::uint16_t> ports(members.size(), 0);
  std::vector<int> table_wr;
  for (std::size_t i = 0; i < members.size(); ++i) {
    int up[2], down[2];  // child -> parent port; parent -> child table
    if (::pipe(up) != 0 || ::pipe(down) != 0) return {};
    const pid_t pid = ::fork();
    if (pid < 0) return {};
    if (pid == 0) {
      ::close(up[0]);
      ::close(down[1]);
      cluster_node_process(p, members[i], members, up[1], down[0], log_path);
    }
    ::close(up[1]);
    ::close(down[0]);
    if (!read_full(up[0], &ports[i], sizeof ports[i])) return {};
    ::close(up[0]);
    table_wr.push_back(down[1]);
    pids.push_back(pid);
  }
  for (int fd : table_wr) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      const std::uint64_t id = members[i];
      if (!write_full(fd, &id, sizeof id) ||
          !write_full(fd, &ports[i], sizeof ports[i]))
        return {};
    }
    ::close(fd);
  }
  for (std::size_t i = 0; i < members.size(); ++i)
    parent.add_peer(members[i], ports[i]);
  return pids;
}

LoadRow run_cluster_config(const LoadParams& p, double offered_rps,
                           bool kill_one_mid) {
  LoadRow row;
  row.offered_rps = offered_rps;
  const bool socket = p.backend == "socket";
  const std::size_t n = std::max<std::size_t>(1, p.cluster);
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < n; ++i)
    ids.push_back(kServerNode + static_cast<NodeId>(i));
  HashRing ring(kRingSeed, kVnodes);
  for (NodeId id : ids) ring.add(id);

  EventQueue queue;
  std::unique_ptr<SimTransport> sim;
  std::unique_ptr<SocketTransport> sock;
  if (socket) {
    sock = std::make_unique<SocketTransport>(kFirstClientNode - 1);
  } else {
    LinkModel link;
    link.latency = vt_us(500);
    link.per_message_overhead = vt_us(100);
    sim = std::make_unique<SimTransport>(queue, link, p.seed);
  }
  Transport& transport =
      socket ? static_cast<Transport&>(*sock) : static_cast<Transport&>(*sim);

  EffectLog effects;  // sim: the cluster-shared in-memory log
  std::string log_path;
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  ChildReaper children;
  static int socket_run = 0;
  if (socket) {
    log_path = "/tmp/mw_service_load_" + std::to_string(::getpid()) + "_" +
               std::to_string(socket_run++) + ".bin";
    ::unlink(log_path.c_str());
    children.pids = spawn_cluster(p, ids, log_path, *sock);
    if (children.pids.size() != ids.size()) {
      std::cerr << "service_load: failed to fork the socket cluster\n";
      std::exit(2);
    }
  } else {
    for (NodeId id : ids)
      nodes.push_back(std::make_unique<ClusterNode>(
          transport, id, ids, effects, cluster_config(p, id)));
    sim->run_until(vt_ms(2));  // first beats
  }

  auto run_to = [&](VTime t) {
    if (sim) {
      if (t > sim->now()) sim->run_until(t);
    } else {
      while (sock->now() < t) sock->run_until(sock->now() + vt_ms(2));
    }
  };

  const VTime load_start = transport.now();
  const VTime load_end = load_start + p.duration;
  const double per_client_rps = offered_rps / static_cast<double>(p.clients);
  const auto interarrival =
      static_cast<VDuration>(1'000'000.0 / per_client_rps);
  std::vector<std::unique_ptr<OpenLoopClient>> clients;
  for (std::size_t i = 0; i < p.clients; ++i) {
    const NodeId self = kFirstClientNode + static_cast<NodeId>(i);
    clients.push_back(std::make_unique<OpenLoopClient>(
        transport, self, ring.owner_of(self), p.deadline));
    const VDuration phase = static_cast<VDuration>(
        interarrival * i / static_cast<VDuration>(p.clients));
    OpenLoopClient* cl = clients.back().get();
    transport.schedule(phase, [cl, interarrival, load_end] {
      cl->start(interarrival, load_end);
    });
  }

  if (kill_one_mid && n >= 2) {
    run_to(load_start + p.duration / 2);
    // Victim: the highest node that actually owns traffic.
    NodeId victim = 0;
    for (auto it = ids.rbegin(); it != ids.rend() && victim == 0; ++it)
      for (const auto& cl : clients)
        if (cl->target() == *it) {
          victim = *it;
          break;
        }
    if (victim != 0) {
      row.killed = true;
      if (socket) {
        for (std::size_t i = 0; i < ids.size(); ++i)
          if (ids[i] == victim) {
            ::kill(children.pids[i], SIGKILL);
            int status = 0;
            ::waitpid(children.pids[i], &status, 0);
            children.pids.erase(children.pids.begin() +
                                static_cast<std::ptrdiff_t>(i));
            ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
      } else {
        for (auto it = nodes.begin(); it != nodes.end(); ++it)
          if ((*it)->self() == victim) {
            nodes.erase(it);
            break;
          }
      }
      // Survivors evict after dead_after; then the operator re-points the
      // orphaned clients at their new owners (open-loop: requests sent to
      // the corpse in between stay unanswered — that is the honest cost).
      run_to(transport.now() + vt_ms(120) + vt_ms(30));
      HashRing after = ring;
      after.remove(victim);
      for (auto& cl : clients)
        if (cl->target() == victim)
          cl->retarget(after.owner_of(cl->self()));
    }
  }

  run_to(load_end);
  const VTime drain_end = load_end + p.deadline + vt_ms(10);
  run_to(drain_end);

  std::map<NodeId, NodeAccum> per_node;
  std::vector<double> ok_latencies;
  for (const auto& cl : clients) cl->collect(row, per_node, ok_latencies);
  finish_row(row, per_node, ok_latencies, load_start, drain_end);
  if (socket) {
    const std::vector<Effect> all = FileEffectLog::read_all(log_path);
    EffectLog combined;
    for (const Effect& e : all) combined.append(e);
    row.effect_duplicates = combined.duplicates();
    ::unlink(log_path.c_str());
  } else {
    row.effect_duplicates = effects.duplicates();
    for (const auto& node : nodes) {
      row.hedges += node->server().stats().hedges;
      row.brownout_enters += node->server().stats().brownout_enters;
      row.queue_peak = std::max(row.queue_peak,
                                node->server().stats().queue_peak);
    }
  }
  return row;
}

// ---------------------------------------------------------------------------
// Output

void add_table_row(TablePrinter& table, const std::string& label,
                   const LoadRow& r) {
  table.add_row(
      {label, TablePrinter::num(r.offered_rps, 0),
       TablePrinter::num(static_cast<std::int64_t>(r.sent)),
       TablePrinter::num(static_cast<std::int64_t>(r.ok)),
       TablePrinter::num(static_cast<std::int64_t>(r.shed)),
       TablePrinter::num(static_cast<std::int64_t>(r.failed)),
       TablePrinter::num(r.goodput_rps, 0), TablePrinter::num(r.p50_ms),
       TablePrinter::num(r.p99_ms), TablePrinter::num(r.p999_ms),
       TablePrinter::num(static_cast<std::int64_t>(r.hedges)),
       TablePrinter::num(static_cast<std::int64_t>(r.queue_peak))});
}

void json_row(std::ostream& out, const LoadRow& r, bool last) {
  out << "    {\"offered_rps\": " << r.offered_rps
      << ", \"sent\": " << r.sent << ", \"ok\": " << r.ok
      << ", \"shed\": " << r.shed << ", \"failed\": " << r.failed
      << ", \"unanswered\": " << r.unanswered
      << ", \"goodput_rps\": " << r.goodput_rps
      << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
      << ", \"p999_ms\": " << r.p999_ms << ", \"hedges\": " << r.hedges
      << ", \"queue_peak\": " << r.queue_peak
      << ", \"killed\": " << (r.killed ? "true" : "false");
  if (!r.nodes.empty()) {
    out << ", \"nodes\": [";
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
      const NodePerf& np = r.nodes[i];
      out << "{\"node\": " << np.node << ", \"ok\": " << np.ok
          << ", \"shed\": " << np.shed
          << ", \"unanswered\": " << np.unanswered
          << ", \"p99_ms\": " << np.p99_ms << "}"
          << (i + 1 < r.nodes.size() ? ", " : "");
    }
    out << "]";
  }
  out << "}" << (last ? "\n" : ",\n");
}

void print_node_breakdown(const LoadRow& r, const std::string& label) {
  if (r.nodes.empty()) return;
  std::cout << label << " per node:";
  for (const NodePerf& np : r.nodes)
    std::cout << "  " << np.node << ": ok " << np.ok << ", shed " << np.shed
              << ", p99 " << TablePrinter::num(np.p99_ms) << " ms";
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  LoadParams p;
  p.duration = cli.get_duration("duration", p.duration);
  p.deadline = cli.get_duration("deadline", p.deadline);
  p.mean = cli.get_duration("mean", p.mean);
  p.hedge_delay = cli.get_duration("hedge-delay", p.hedge_delay);
  p.inflight = static_cast<std::size_t>(cli.get_int("inflight", 8));
  p.queue = static_cast<std::size_t>(cli.get_int("queue", 16));
  p.clients = static_cast<std::size_t>(cli.get_int("clients", 4));
  p.backends = static_cast<std::size_t>(cli.get_int("backends", 3));
  p.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  p.backend = cli.get("backend", "sim");
  p.cluster = static_cast<std::size_t>(cli.get_int("cluster", 0));
  p.kill_one = cli.has("kill-one");
  if (p.backend != "sim" && p.backend != "socket") {
    std::cerr << "service_load: --backend must be sim or socket\n";
    return 2;
  }
  if (p.backend == "socket" && p.cluster == 0) p.cluster = 1;
  const bool cluster_mode = p.cluster > 0;
  // Spread clients across the ring so every node owns some traffic.
  if (cluster_mode && !cli.has("clients")) p.clients = 4 * p.cluster;
  const bool do_check = cli.has("check");
  const std::string json_path = cli.get("json", "");
  trace::TraceSession trace_session(cli);

  // Nominal capacity from Little's law: max_inflight concurrent slots,
  // each occupied for the tail-weighted mean service time — per node.
  const double eff_mean_ticks =
      static_cast<double>(p.mean) *
      (1.0 + ServiceConfig{}.tail_prob * (ServiceConfig{}.tail_factor - 1.0));
  const double nominal_rps =
      static_cast<double>(p.inflight) * 1'000'000.0 / eff_mean_ticks *
      static_cast<double>(cluster_mode ? p.cluster : 1);
  const std::vector<double> multipliers{0.25, 0.5, 0.75, 1.0, 1.5, 2.0};

  if (cluster_mode)
    std::cout << "Hedged-service open-loop load sweep: " << p.cluster
              << "-node cluster (" << p.backend << " backend), inflight "
              << p.inflight << "/node, queue " << p.queue << ", mean "
              << ms(p.mean) << " ms, deadline " << ms(p.deadline)
              << " ms, window " << ms(p.duration) << " ms, " << p.clients
              << " clients, seed " << p.seed << " (nominal "
              << static_cast<std::uint64_t>(nominal_rps) << " req/s)\n";
  else
    std::cout << "Hedged-service open-loop load sweep: " << p.backends
              << " backends, inflight " << p.inflight << ", queue " << p.queue
              << ", mean " << ms(p.mean) << " ms, deadline " << ms(p.deadline)
              << " ms, window " << ms(p.duration) << " ms, seed " << p.seed
              << " (nominal " << static_cast<std::uint64_t>(nominal_rps)
              << " req/s)\n";

  auto run_one = [&](double rps, bool kill) {
    return cluster_mode ? run_cluster_config(p, rps, kill)
                        : run_config(p, rps);
  };

  std::vector<LoadRow> rows;
  for (const double m : multipliers) rows.push_back(run_one(nominal_rps * m, false));

  // Saturation = the offered rate of the peak-goodput row; the contract
  // is then probed at exactly twice that.
  std::size_t peak_i = 0;
  for (std::size_t i = 1; i < rows.size(); ++i)
    if (rows[i].goodput_rps > rows[peak_i].goodput_rps) peak_i = i;
  const double peak_goodput = rows[peak_i].goodput_rps;
  const double saturation_rps = rows[peak_i].offered_rps;
  const LoadRow over = run_one(2.0 * saturation_rps, false);

  // Scaling probe: the same saturation load against ONE node. Only
  // meaningful for a real cluster.
  LoadRow baseline;
  const bool have_baseline = cluster_mode && p.cluster >= 2;
  if (have_baseline) {
    LoadParams bp = p;
    bp.cluster = 1;
    baseline = run_cluster_config(bp, saturation_rps, false);
  }

  // Chaos probe: SIGKILL (or sim-destroy) one node at saturation mid-load.
  LoadRow kill_row;
  const bool have_kill = cluster_mode && p.kill_one && p.cluster >= 2;
  if (have_kill) kill_row = run_one(saturation_rps, true);

  TablePrinter table({"load", "offered_rps", "sent", "ok", "shed", "failed",
                      "goodput_rps", "p50_ms", "p99_ms", "p999_ms", "hedges",
                      "queue_peak"});
  for (std::size_t i = 0; i < rows.size(); ++i)
    add_table_row(table, TablePrinter::num(multipliers[i]) + "x",
                  rows[i]);
  add_table_row(table, "2x-sat", over);
  if (have_baseline) add_table_row(table, "1node", baseline);
  if (have_kill) add_table_row(table, "kill1", kill_row);
  table.print(std::cout);
  print_node_breakdown(over, "2x-sat");
  if (have_kill) print_node_breakdown(kill_row, "kill1");
  std::cout << "(shape to verify: goodput climbs to saturation then holds "
               "flat while shed absorbs the overflow; admitted p99 stays "
               "under the deadline because overload is refused at "
               "admission, not queued to death)\n";

  // --check: the shed-not-collapse contract, machine-checked.
  bool pass = true;
  auto fail = [&pass, do_check](const std::string& why) {
    if (do_check) std::cout << "check FAIL: " << why << "\n";
    pass = false;
  };
  std::uint64_t total_hedges = over.hedges;
  for (const LoadRow& r : rows) total_hedges += r.hedges;
  // Real UDP may drop the odd datagram under burst and open-loop senders
  // never retry, so socket rows tolerate a sliver of unanswered requests;
  // the sim is lossless and tolerates none. A killed node's orphans are
  // unanswered by design (allow_unanswered).
  const bool socket_backend = p.backend == "socket";
  auto audit = [&fail, socket_backend](const std::string& label,
                                       const LoadRow& r,
                                       bool allow_unanswered) {
    if (r.wrong_values > 0)
      fail(label + ": " + std::to_string(r.wrong_values) + " wrong values");
    if (r.effect_duplicates > 0)
      fail(label + ": duplicate effects under load");
    const std::uint64_t budget =
        allow_unanswered ? r.sent : (socket_backend ? r.sent / 200 : 0);
    if (r.unanswered > budget)
      fail(label + ": " + std::to_string(r.unanswered) +
           " requests never answered");
  };
  for (std::size_t i = 0; i < rows.size(); ++i)
    audit(TablePrinter::num(multipliers[i]) + "x", rows[i], false);
  audit("2x-sat", over, false);
  if (peak_goodput <= 0) fail("no goodput anywhere; the sweep is vacuous");
  // Backend-less cluster nodes race locally instead of hedging to
  // executors, so the hedge-vacuousness check is single-server-only.
  if (!cluster_mode && total_hedges == 0)
    fail("no hedge ever fired; the sweep is vacuous");
  if (over.shed == 0)
    fail("2x saturation shed nothing; overload never reached admission");
  if (over.goodput_rps < 0.8 * peak_goodput)
    fail("goodput collapsed past saturation: " +
         std::to_string(over.goodput_rps) + " req/s vs peak " +
         std::to_string(peak_goodput));
  const double slack_ms =
      p.backend == "socket" ? kSocketSlackMs : kWireSlackMs;
  if (over.p99_ms > ms(p.deadline) + slack_ms)
    fail("admitted p99 " + std::to_string(over.p99_ms) +
         " ms exceeds the " + std::to_string(ms(p.deadline)) +
         " ms deadline at 2x saturation");
  // Per node: one hot shard must not hide behind the aggregate.
  for (const NodePerf& np : over.nodes)
    if (np.ok > 0 && np.p99_ms > ms(p.deadline) + slack_ms)
      fail("node " + std::to_string(np.node) + " admitted p99 " +
           std::to_string(np.p99_ms) + " ms exceeds the deadline at 2x "
           "saturation");
  if (have_baseline) {
    audit("1node", baseline, false);
    if (peak_goodput < 1.2 * baseline.goodput_rps)
      fail("no scaling: " + std::to_string(p.cluster) + "-node peak " +
           std::to_string(peak_goodput) + " req/s vs 1-node " +
           std::to_string(baseline.goodput_rps) + " req/s at saturation");
  }
  if (have_kill) {
    // Requests aimed at the corpse between kill and retarget stay
    // unanswered by design; exactly-once and residual goodput must hold.
    audit("kill1", kill_row, true);
    if (!kill_row.killed) fail("kill1: no node was actually killed");
    if (kill_row.goodput_rps < 0.25 * peak_goodput)
      fail("kill1: goodput " + std::to_string(kill_row.goodput_rps) +
           " req/s collapsed after losing one of " +
           std::to_string(p.cluster) + " nodes");
  }
  if (do_check)
    std::cout << "\ncheck: " << (pass ? "PASS" : "FAIL") << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"service_load\",\n  \"backend\": \""
        << p.backend << "\",\n  \"cluster\": " << p.cluster
        << ",\n  \"seed\": " << p.seed
        << ",\n  \"backends\": " << p.backends
        << ",\n  \"inflight\": " << p.inflight
        << ",\n  \"queue\": " << p.queue
        << ",\n  \"clients\": " << p.clients
        << ",\n  \"mean_ms\": " << ms(p.mean)
        << ",\n  \"deadline_ms\": " << ms(p.deadline)
        << ",\n  \"window_ms\": " << ms(p.duration)
        << ",\n  \"nominal_rps\": " << nominal_rps
        << ",\n  \"saturation_rps\": " << saturation_rps
        << ",\n  \"peak_goodput_rps\": " << peak_goodput;
    if (have_baseline)
      out << ",\n  \"baseline_1node_goodput_rps\": " << baseline.goodput_rps
          << ",\n  \"scaling_x\": "
          << (baseline.goodput_rps > 0 ? peak_goodput / baseline.goodput_rps
                                       : 0);
    out << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i)
      json_row(out, rows[i], false);
    json_row(out, over, !have_baseline && !have_kill);
    if (have_baseline) json_row(out, baseline, !have_kill);
    if (have_kill) json_row(out, kill_row, true);
    out << "  ],\n  \"check\": \"" << (pass ? "PASS" : "FAIL") << "\"\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  trace_session.finish(std::cout);
  return pass ? 0 : 1;
}
