// The abstract's second problem, made measurable: "(2) combinatorial
// explosion in the amount of state which must be preserved. These are
// solved by process management and an application of 'copy-on-write'
// virtual memory management."
//
// k *concurrent, unresolved* speculative groups each message one observer:
// the observer splits per undecided sender, so its live copies grow
// toward 2^k — the combinatorial explosion is real at the *process* level.
// What COW buys: each copy shares its pages with the lineage, so the
// memory actually materialized grows only with the (tiny) per-copy write
// sets, not with copies x address-space-size. The table shows both curves
// plus the naive full-copy cost that an eager implementation would pay.
//
//   $ combinatorial_state [--maxk=7]
#include <iostream>

#include "util/cli.hpp"
#include "util/table.hpp"
#include "worlds/spec_runtime.hpp"

using namespace mw;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int maxk = static_cast<int>(cli.get_int("maxk", 7));

  std::cout << "Observer splitting under k concurrent unresolved "
               "speculations (observer state: 64 KiB resident)\n";
  TablePrinter table({"groups_k", "live_copies", "pages_materialized",
                      "cow_kb", "naive_full_copy_kb"});
  for (int k = 1; k <= maxk; ++k) {
    SpecConfig cfg;
    cfg.page_size = 1024;
    cfg.num_pages = 96;
    SpecRuntime rt(cfg);

    // The observer holds a 64 KiB resident state and notes each message
    // with a single page write — a realistic "append to a log" handler.
    LogicalId obs = rt.spawn_root(
        "observer",
        [](ProcCtx& ctx, const Message&) {
          const int n = ctx.space().load<int>(0) + 1;
          ctx.space().store<int>(0, n);
        },
        [](ProcCtx& ctx) {
          for (int p = 0; p < 64; ++p)
            ctx.space().store<int>(static_cast<std::uint64_t>(p) * 1024, p);
        });

    // k independent parents, each with 2 alternatives; every alternative
    // messages the observer and then... nothing: the races stay undecided.
    for (int g = 0; g < k; ++g) {
      LogicalId parent = rt.spawn_root("p" + std::to_string(g));
      rt.spawn_alternatives(
          parent,
          {AltSpec{"a",
                   [obs](ProcCtx& ctx) { ctx.send_text(obs, "hello"); },
                   nullptr},
           AltSpec{"b", nullptr, nullptr}});
      rt.run();  // deliver before the next group spawns
    }

    const auto copies = rt.live_copies(obs);
    // Pages actually materialized across every observer copy: count
    // *distinct* Page objects via sharing with the first copy as baseline.
    std::size_t total_resident = 0;
    std::size_t shared_with_first = 0;
    for (Pid c : copies) {
      total_resident += rt.world_of(c).space().table().resident_pages();
      if (c != copies.front())
        shared_with_first +=
            rt.world_of(c).space().table().shared_pages_with(
                rt.world_of(copies.front()).space().table());
    }
    // Materialized = total resident minus pages shared with the baseline
    // copy (an under-count of sharing between non-first copies, so this
    // *over-estimates* COW memory — still orders below naive).
    const std::size_t materialized = total_resident - shared_with_first;
    const std::size_t naive_kb = copies.size() * 64;  // full 64 KiB each
    table.add_row(
        {TablePrinter::num(static_cast<std::int64_t>(k)),
         TablePrinter::num(static_cast<std::int64_t>(copies.size())),
         TablePrinter::num(static_cast<std::int64_t>(materialized)),
         TablePrinter::num(static_cast<std::int64_t>(materialized)),
         TablePrinter::num(static_cast<std::int64_t>(naive_kb))});
  }
  table.print(std::cout);
  std::cout << "\nShape to verify: live copies grow ~2^k (the paper's "
               "combinatorial explosion at the process level) while COW "
               "memory grows orders of magnitude slower than the naive "
               "copies x 64 KiB — the abstract's claim that COW makes "
               "Multiple Worlds affordable.\n";
  return 0;
}
