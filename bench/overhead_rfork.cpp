// OVH-RFORK — reproduces the §3.4 distributed measurements:
//
//   "An rfork() of a 70K process requires slightly less than a second, and
//    network delays gave us an observed average execution time of about
//    1.3 seconds; we used a special-purpose remote-execution protocol
//    which uses a network file system... The major cost was creating a
//    checkpoint of the process."
//
// Plus the cited alternative [23]: on-demand state management, swept over
// the touched-page fraction (locality).
//
//   $ overhead_rfork
#include <iostream>

#include "dist/rfork.hpp"
#include "util/table.hpp"

using namespace mw;

namespace {

AddressSpace process_of_kb(std::size_t kb) {
  AddressSpace as(4096, 1024);
  const std::size_t pages = kb * 1024 / 4096;
  for (std::size_t p = 0; p < pages; ++p)
    as.store<int>(p * 4096, static_cast<int>(p) + 1);
  return as;
}

}  // namespace

int main() {
  RemoteForker forker{LinkModel{}, DistCost{}};

  std::cout << "A. Full-copy rfork via the NFS protocol, by process size\n";
  TablePrinter full({"size_kb", "checkpoint_s", "transfer_s", "restore_s",
                     "total_s"});
  for (std::size_t kb : {16u, 35u, 70u, 140u, 280u}) {
    AddressSpace as = process_of_kb(kb);
    RforkResult r = forker.full_copy(as);
    full.add_row({TablePrinter::num(static_cast<std::int64_t>(kb)),
                  TablePrinter::num(vt_to_sec(r.checkpoint_cost)),
                  TablePrinter::num(vt_to_sec(r.transfer_cost)),
                  TablePrinter::num(vt_to_sec(r.restore_cost)),
                  TablePrinter::num(vt_to_sec(r.total_elapsed))});
  }
  full.print(std::cout);
  std::cout << "(paper: 70 KB in ~1 s host work, ~1.3 s observed through "
               "the network protocol; the checkpoint dominates)\n\n";

  std::cout << "B. Ablation: on-demand page migration vs full copy "
               "(70 KB process)\n";
  AddressSpace as = process_of_kb(70);
  const RforkResult base = forker.full_copy(as);
  TablePrinter od({"strategy", "start_s", "total_s", "kb_shipped"});
  od.add_row({"full copy", TablePrinter::num(vt_to_sec(base.start_elapsed)),
              TablePrinter::num(vt_to_sec(base.total_elapsed)),
              TablePrinter::num(
                  static_cast<std::int64_t>(base.bytes_shipped / 1024))});
  for (double frac : {0.1, 0.2, 0.5, 0.8, 1.0}) {
    RforkResult r = forker.on_demand(as, frac);
    od.add_row({"on-demand " + TablePrinter::num(frac, 1),
                TablePrinter::num(vt_to_sec(r.start_elapsed)),
                TablePrinter::num(vt_to_sec(r.total_elapsed)),
                TablePrinter::num(
                    static_cast<std::int64_t>(r.bytes_shipped / 1024))});
  }
  od.print(std::cout);
  std::cout << "(shape: on-demand starts orders of magnitude sooner; with "
               "locality (low touched fraction) it also wins end-to-end — "
               "the \"more sophisticated migration schemes\" of [23])\n";
  return 0;
}
